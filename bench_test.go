// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (run `go test -bench=. -benchmem`), plus per-query
// microbenchmarks for each algorithm. The experiment benchmarks print the
// paper-style tables on their first iteration so a bench run doubles as a
// results regeneration (cmd/ltr-bench runs the same experiments at larger
// scale).
package longtail_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"longtailrec"
	"longtailrec/internal/core"
	"longtailrec/internal/experiments"
	"longtailrec/internal/graph"
)

// benchScale keeps every experiment benchmark in the seconds range.
func benchScale() experiments.Scale {
	return experiments.Scale{
		TestRatings: 40,
		Negatives:   200,
		PanelUsers:  30,
		Evaluators:  15,
		MaxN:        50,
		ListSize:    10,
	}
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[string]*experiments.Env{}
)

// benchEnv lazily builds and caches the per-dataset environment so env
// construction (corpus generation, LDA/SVD training) is excluded from
// every benchmark's measured loop.
func benchEnv(b *testing.B, kind string) *experiments.Env {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := benchEnvs[kind]; ok {
		return e
	}
	e, err := experiments.NewEnv(kind, benchScale(), 42)
	if err != nil {
		b.Fatal(err)
	}
	// Force model training (LDA for AC2, SVD) outside the timer.
	if _, err := e.Suite(); err != nil {
		b.Fatal(err)
	}
	benchEnvs[kind] = e
	return e
}

// printOnce emits the experiment table on the first benchmark iteration.
func printOnce(i int, text string) {
	if i == 0 {
		fmt.Print(text)
	}
}

// BenchmarkFigure2 regenerates the §3.3 worked example (exact hitting
// times on the Figure 2 graph).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkTable1 regenerates the LDA topic readout.
func BenchmarkTable1(b *testing.B) {
	env := benchEnv(b, "movielens")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(env, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkFigure5a regenerates Recall@N on the MovieLens-shaped corpus.
func BenchmarkFigure5a(b *testing.B) {
	benchRecall(b, "movielens")
}

// BenchmarkFigure5b regenerates Recall@N on the Douban-shaped corpus.
func BenchmarkFigure5b(b *testing.B) {
	benchRecall(b, "douban")
}

func benchRecall(b *testing.B, kind string) {
	env := benchEnv(b, kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(env)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkFigure6a regenerates Popularity@N on the Douban-shaped corpus
// (with Tables 2/3/5 as by-products of the same panel).
func BenchmarkFigure6a(b *testing.B) {
	benchLists(b, "douban", true)
}

// BenchmarkFigure6b regenerates Popularity@N on the MovieLens-shaped corpus.
func BenchmarkFigure6b(b *testing.B) {
	benchLists(b, "movielens", true)
}

// BenchmarkTable2Diversity regenerates the Table 2 diversity comparison.
func BenchmarkTable2Diversity(b *testing.B) {
	benchLists(b, "douban", false)
}

// BenchmarkTable3Similarity regenerates the Table 3 ontology-similarity
// comparison (same panel pass; the similarity column is the target).
func BenchmarkTable3Similarity(b *testing.B) {
	benchLists(b, "douban", false)
}

// BenchmarkTable5Timing regenerates the Table 5 per-user latency
// comparison.
func BenchmarkTable5Timing(b *testing.B) {
	benchLists(b, "douban", false)
}

func benchLists(b *testing.B, kind string, figure6 bool) {
	env := benchEnv(b, kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ListExperiments(env)
		if err != nil {
			b.Fatal(err)
		}
		if figure6 {
			printOnce(i, experiments.Figure6Text(res))
		} else {
			printOnce(i, res.Text)
		}
	}
}

// BenchmarkTable4MuSweep regenerates the µ-impact sweep for AC2.
func BenchmarkTable4MuSweep(b *testing.B) {
	env := benchEnv(b, "douban")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(env, []int{300, 600, 0})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkBeyondAccuracy regenerates the beyond-accuracy extension panel
// (novelty, serendipity, intra-list similarity, coverage).
func BenchmarkBeyondAccuracy(b *testing.B) {
	env := benchEnv(b, "movielens")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.BeyondAccuracyExperiment(env)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkStratifiedRecall regenerates the popularity-stratified recall
// extension (accuracy by held-out item popularity + bootstrap CIs).
func BenchmarkStratifiedRecall(b *testing.B) {
	env := benchEnv(b, "movielens")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.StratifiedExperiment(env)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// BenchmarkTable6UserStudy regenerates the simulated user study.
func BenchmarkTable6UserStudy(b *testing.B) {
	env := benchEnv(b, "movielens")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(env)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Text)
	}
}

// Per-query microbenchmarks: the cost of one user's recommendation.

func benchAlgorithmQuery(b *testing.B, name string) {
	env := benchEnv(b, "movielens")
	rec, err := env.Sys.Algorithm(name)
	if err != nil {
		b.Fatal(err)
	}
	users := env.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		if _, err := rec.Recommend(u, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryHT(b *testing.B)          { benchAlgorithmQuery(b, "HT") }
func BenchmarkQueryAT(b *testing.B)          { benchAlgorithmQuery(b, "AT") }
func BenchmarkQueryAC1(b *testing.B)         { benchAlgorithmQuery(b, "AC1") }
func BenchmarkQueryAC2(b *testing.B)         { benchAlgorithmQuery(b, "AC2") }
func BenchmarkQueryDPPR(b *testing.B)        { benchAlgorithmQuery(b, "DPPR") }
func BenchmarkQueryPureSVD(b *testing.B)     { benchAlgorithmQuery(b, "PureSVD") }
func BenchmarkQueryLDA(b *testing.B)         { benchAlgorithmQuery(b, "LDA") }
func BenchmarkQueryUserKNN(b *testing.B)     { benchAlgorithmQuery(b, "UserKNN") }
func BenchmarkQueryItemKNN(b *testing.B)     { benchAlgorithmQuery(b, "ItemKNN") }
func BenchmarkQueryMostPopular(b *testing.B) { benchAlgorithmQuery(b, "MostPopular") }
func BenchmarkQueryBiasedMF(b *testing.B)    { benchAlgorithmQuery(b, "BiasedMF") }
func BenchmarkQuerySVDPP(b *testing.B)       { benchAlgorithmQuery(b, "SVDPP") }
func BenchmarkQueryAsySVD(b *testing.B)      { benchAlgorithmQuery(b, "AsySVD") }

// Hot-path microbenchmarks for the walk query engine (run with -benchmem;
// allocs/op is the regression signal PERFORMANCE.md tracks).

// BenchmarkSubgraphExtract measures one pooled BFS + local-CSR extraction
// (Algorithm 1 step 2) through a reused SubgraphExtractor.
func BenchmarkSubgraphExtract(b *testing.B) {
	env := benchEnv(b, "movielens")
	g := env.Split.Train.Graph()
	ext := graph.NewSubgraphExtractor(g)
	users := env.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		seeds, _ := g.Neighbors(g.UserNode(u))
		if _, err := ext.Extract(seeds, 6000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkScores measures one full walk query (extract + fused DP
// sweeps) through the engine's compact scoring path.
func BenchmarkWalkScores(b *testing.B) {
	env := benchEnv(b, "movielens")
	at, ok := env.Sys.AT().(interface {
		ScoreItemsCompact(u int) ([]core.ItemScore, error)
	})
	if !ok {
		b.Fatal("AT recommender lost its compact scoring path")
	}
	users := env.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		if _, err := at.ScoreItemsCompact(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendBatch measures serving the whole panel through
// Engine.RecommendBatch at GOMAXPROCS workers. Compare -cpu 1,2,4 runs to
// see the multi-core scaling.
func BenchmarkRecommendBatch(b *testing.B) {
	env := benchEnv(b, "movielens")
	rec, err := env.Sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	br, ok := rec.(longtail.BatchRecommender)
	if !ok {
		b.Fatal("AT recommender does not implement BatchRecommender")
	}
	users := env.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.RecommendBatch(users, 10, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// Cached serving-path benchmarks: the epoch-invalidated result cache in
// front of the engine (PR 2). BenchmarkRecommendUncached is the same
// workload without the cache — the pair quantifies hit-rate vs recompute
// cost for PERFORMANCE.md.

// cachedBenchSystem builds a second System over the bench split with the
// result cache enabled (the per-query benchmarks above deliberately run
// uncached so they keep measuring the engine).
func cachedBenchSystem(b *testing.B, env *experiments.Env) *longtail.System {
	b.Helper()
	cfg := longtail.DefaultConfig()
	cfg.CacheSize = 8192
	sys, err := longtail.NewSystem(env.Split.Train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkRecommendCached measures a repeat query through the cached
// engine path: after one cold round over the panel, every iteration is a
// cache hit (lookup + copy of the top-k slice). Compare ns/op against
// BenchmarkRecommendUncached / BenchmarkQueryAT.
func BenchmarkRecommendCached(b *testing.B) {
	env := benchEnv(b, "movielens")
	sys := cachedBenchSystem(b, env)
	rec, err := sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	users := env.Panel
	for _, u := range users { // warm: one miss per panel user
		if _, err := rec.Recommend(u, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		if _, err := rec.Recommend(u, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendUncached is the identical workload through a cache-
// disabled System: every iteration runs the full BFS + fused-sweep engine.
func BenchmarkRecommendUncached(b *testing.B) {
	env := benchEnv(b, "movielens")
	rec, err := env.Sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	users := env.Panel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := users[i%len(users)]
		if _, err := rec.Recommend(u, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendCachedWithWrites interleaves one live write per 64
// queries — a 98.4% read mix — to show the cache under epoch churn.
func BenchmarkRecommendCachedWithWrites(b *testing.B) {
	env := benchEnv(b, "movielens")
	sys := cachedBenchSystem(b, env)
	rec, err := sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	users := env.Panel
	d := env.Split.Train
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			u := users[i%len(users)]
			if _, _, err := sys.ApplyRating(u, i%d.NumItems(), 1+float64(i%5)); err != nil {
				b.Fatal(err)
			}
		}
		u := users[i%len(users)]
		if _, err := rec.Recommend(u, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedWriteInvalidation measures the cache hit rate of a
// mixed read/write workload (1 write per 8 reads) as the serving fleet
// shards: with one replica every write's epoch bump kills the whole
// cache, while with N shards only the written user's shard recomputes —
// the other N−1 keep serving warm entries. The per-run "hit-rate" metric
// is the headline number PERFORMANCE.md's "Sharded invalidation blast
// radius" section tracks; ns/op follows it (a hit is ~5 orders of
// magnitude cheaper than a walk).
func BenchmarkShardedWriteInvalidation(b *testing.B) {
	env := benchEnv(b, "movielens")
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := longtail.DefaultConfig()
			cfg.CacheSize = 8192
			cfg.ShardCount = shards
			sys, err := longtail.NewSystem(env.Split.Train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := sys.Algorithm("AT")
			if err != nil {
				b.Fatal(err)
			}
			users := env.Panel
			for _, u := range users { // warm: one miss per panel user
				if _, err := rec.Recommend(u, 10); err != nil {
					b.Fatal(err)
				}
			}
			numItems := env.Split.Train.NumItems()
			// Snapshot the counters after warm-up: the reported hit rate
			// must cover only the timed mixed workload, not the one
			// guaranteed miss per panel user the warm loop just paid.
			warm := sys.ServingStats().Cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%8 == 7 { // 12.5% writes, routed to the writer's shard
					u := users[i%len(users)]
					if _, _, err := sys.ApplyRating(u, i%numItems, 1+float64(i%5)); err != nil {
						b.Fatal(err)
					}
				}
				u := users[(i*7+1)%len(users)]
				if _, err := rec.Recommend(u, 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := sys.ServingStats().Cache
			hits := (st.Hits + st.Shared) - (warm.Hits + warm.Shared)
			if lookups := (st.Hits + st.Misses + st.Shared) - (warm.Hits + warm.Misses + warm.Shared); lookups > 0 {
				b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
			}
		})
	}
	// The clustered cell is the fingerprint-precision headline: on the
	// community-structured corpus with writes confined to the writer's own
	// cluster, a single-shard fleet — where every write bumps the only
	// epoch — still retains the other clusters' entries, because subgraph
	// fingerprints prove non-overlap. The movielens cells above stay
	// byte-identical for cross-PR comparability; there the graph is one
	// connected component and sharding is the only blast-radius lever.
	b.Run("clustered/shards=1", func(b *testing.B) {
		env := benchEnv(b, "clustered")
		cfg := longtail.DefaultConfig()
		cfg.CacheSize = 8192
		cfg.ShardCount = 1
		sys, err := longtail.NewSystem(env.Split.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := sys.Algorithm("AT")
		if err != nil {
			b.Fatal(err)
		}
		users := env.Panel
		for _, u := range users {
			if _, err := rec.Recommend(u, 10); err != nil {
				b.Fatal(err)
			}
		}
		uPer := env.World.Config.UsersPerCluster()
		iPer := env.World.Config.ItemsPerCluster()
		warm := sys.ServingStats().Cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%8 == 7 {
				u := users[i%len(users)]
				item := (u/uPer)*iPer + i%iPer // writer's own cluster
				if _, _, err := sys.ApplyRating(u, item, 1+float64(i%5)); err != nil {
					b.Fatal(err)
				}
			}
			u := users[(i*7+1)%len(users)]
			if _, err := rec.Recommend(u, 10); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sys.ServingStats().Cache
		hits := (st.Hits + st.Shared) - (warm.Hits + warm.Shared)
		if lookups := (st.Hits + st.Misses + st.Shared) - (warm.Hits + warm.Misses + warm.Shared); lookups > 0 {
			b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
		}
		b.ReportMetric(float64(st.FingerprintHits-warm.FingerprintHits), "fp-hits")
	})
}

// BenchmarkFleetGraphMemory measures the steady-state graph heap of a
// freshly built fleet per shard count. The "bytes/shard" metric is the
// memory-regression gate: with the shared-base design the graph heap must
// stay ~flat as shards grow (one immutable base + N thin overlay views),
// so bytes/shard should fall ~linearly with the shard count — a fleet
// whose total grows with N means replicas are carrying full graph copies
// again. Caching is disabled so the measurement isolates graph storage.
func BenchmarkFleetGraphMemory(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := longtail.DefaultConfig()
			cfg.CacheSize = 0
			cfg.ShardCount = shards
			var ms runtime.MemStats
			for i := 0; i < b.N; i++ {
				runtime.GC()
				runtime.ReadMemStats(&ms)
				before := ms.HeapAlloc
				sys, err := longtail.NewSystem(train, cfg)
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				runtime.ReadMemStats(&ms)
				heap := float64(ms.HeapAlloc - before)
				runtime.KeepAlive(sys)
				b.ReportMetric(heap, "fleet-bytes")
				b.ReportMetric(heap/float64(shards), "bytes/shard")
			}
		})
	}
}

// BenchmarkSystemConstruction measures graph building and indexing on the
// MovieLens-shaped corpus (model training excluded: recommenders are lazy).
func BenchmarkSystemConstruction(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := longtail.NewSystem(train, longtail.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendRequest measures one no-options Request-path query —
// the primary serving surface. PERFORMANCE.md tracks its allocs/op,
// which must stay at parity with BenchmarkQueryAT (the legacy wrapper):
// the Request plumbing may not cost the hot path anything.
func BenchmarkRecommendRequest(b *testing.B) {
	env := benchEnv(b, "movielens")
	rec, err := env.Sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	v2, ok := rec.(longtail.RecommenderV2)
	if !ok {
		b.Fatal("AT does not implement RecommenderV2")
	}
	users := env.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := longtail.Request{User: users[i%len(users)], K: 10}
		if _, err := v2.RecommendRequest(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendRequestOptions measures the option-carrying query
// (exclusions + long-tail mode): the filters run inside the engine's
// stamped selection loop and settle into zero steady-state allocation
// beyond the result, so the option path stays within a few allocs/op of
// the plain query.
func BenchmarkRecommendRequestOptions(b *testing.B) {
	env := benchEnv(b, "movielens")
	rec, err := env.Sys.Algorithm("AT")
	if err != nil {
		b.Fatal(err)
	}
	v2 := rec.(longtail.RecommenderV2)
	users := env.Panel
	exclude := []int{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := longtail.Request{User: users[i%len(users)], K: 10, ExcludeItems: exclude, LongTailOnly: 0.8}
		if _, err := v2.RecommendRequest(req); err != nil {
			b.Fatal(err)
		}
	}
}
