// Shared-base sharding tests: with every shard replica a view over ONE
// immutable base snapshot, the fleet must (1) merge item popularity
// exactly — base counted once plus per-shard overlay deltas, never N
// times — even while auto-grow admissions race the merge, (2) keep the
// epoch invariant across fleet-wide compaction: folding the overlays
// into a new base republishes it fleet-wide without moving any epoch or
// evicting any warm cache entry, and (3) survive base swaps racing live
// readers and writers without torn reads.
//
// The TestFleet*/TestConcurrent* names put these under the race-gated
// suite in CI (see Makefile's race target).

package longtail

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"longtailrec/internal/lda"
)

// TestFleetSharedBaseStructure pins the memory claim structurally: every
// shard's view reports the fleet's view count, and between writes all
// views serve the SAME base CSR (pointer-identical Adjacency), so the
// graph heap cannot scale with the shard count.
func TestFleetSharedBaseStructure(t *testing.T) {
	w := shardTestWorld(t)
	sys := shardTestSystem(t, w, 4, 0)
	adj0 := sys.ShardGraph(0).Adjacency()
	for i := 0; i < sys.ShardCount(); i++ {
		g := sys.ShardGraph(i)
		if got := g.NumViews(); got != 4 {
			t.Fatalf("shard %d NumViews() = %d, want 4", i, got)
		}
		if g.Adjacency() != adj0 {
			t.Fatalf("shard %d serves its own base CSR copy; fleet base is not shared", i)
		}
	}
	// A single-shard system is a standalone graph: one view, no sharing.
	sys1 := shardTestSystem(t, w, 1, 0)
	if got := sys1.ShardGraph(0).NumViews(); got != 1 {
		t.Fatalf("unsharded NumViews() = %d, want 1", got)
	}
}

// TestFleetMergedPopularityExactness pins the double-count fix on
// Fleet.MergedItemPopularity: with a shared base, per-replica full scans
// would count every base rating N times. The merged vector must equal a
// single-graph control that received the identical write stream —
// exactly, per item — including while concurrent writers admit new items
// via auto-grow on several shards at once.
func TestFleetMergedPopularityExactness(t *testing.T) {
	w := shardTestWorld(t)
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = 4
	cfg.AutoGrow = true
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numUsers, numItems := w.Data.NumUsers(), w.Data.NumItems()

	// Sanity before any write: merged == the corpus popularity.
	base := w.Data.Graph().ItemPopularity()
	if got := sys.LiveItemPopularity(); len(got) != len(base) {
		t.Fatalf("pre-write merged popularity has %d items, want %d", len(got), len(base))
	} else {
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("pre-write merged popularity[%d] = %d, want %d (base counted more than once?)", i, got[i], base[i])
			}
		}
	}

	// One writer per shard: users u, u+4, ... all route to shard u, so
	// every (user, item) pair is written by exactly one goroutine and the
	// final edge set is deterministic. Writes mix in-universe upserts,
	// re-rates, and auto-grow item admissions racing the merge readers.
	type writeOp struct {
		user, item int
		score      float64
	}
	perShard := make([][]writeOp, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 30; i++ {
			op := writeOp{
				user:  s + 4*(i%5),
				item:  (s*13 + i*3) % numItems,
				score: 1 + float64((s+i)%5),
			}
			if i%6 == 5 { // admit a shard-distinct brand-new item
				op.item = numItems + s*8 + i/6
			}
			perShard[s] = append(perShard[s], op)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(ops []writeOp) {
			defer wg.Done()
			for _, op := range ops {
				if _, _, err := sys.ApplyRating(op.user, op.item, op.score); err != nil {
					errc <- err
					return
				}
			}
		}(perShard[s])
	}
	wg.Add(1)
	go func() { // the merge racing the admissions it must stay exact under
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if pop := sys.LiveItemPopularity(); len(pop) < numItems {
				errc <- fmt.Errorf("merged popularity shrank to %d items", len(pop))
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Single-graph control: the same stream applied serially.
	control := w.Data.Graph()
	for s := 0; s < 4; s++ {
		for _, op := range perShard[s] {
			if _, err := control.UpsertRatingAutoGrow(op.user, op.item, op.score); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := control.ItemPopularity()
	check := func(stage string) {
		t.Helper()
		got := sys.LiveItemPopularity()
		if len(got) != len(want) {
			t.Fatalf("%s: merged popularity has %d items, control %d", stage, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: merged popularity[%d] = %d, control %d", stage, i, got[i], want[i])
			}
		}
	}
	check("overlays pending") // merge over live overlays
	sys.CompactGraph()
	check("after fold") // merge over the republished base
	if numUsers == 0 {
		t.Fatal("empty corpus")
	}
}

// TestFleetEpochInvariantAcrossCompaction pins the epoch contract over a
// base republish: Fleet.Epoch() stays "sum of per-shard epochs = total
// accepted writes", compaction moves NO epoch, and shards whose overlays
// were empty keep serving their warm cached results — a fold must not
// spuriously invalidate them.
func TestFleetEpochInvariantAcrossCompaction(t *testing.T) {
	w := shardTestWorld(t)
	sys := shardTestSystem(t, w, 4, 1024)
	ctx := context.Background()
	numUsers := w.Data.NumUsers()

	warm := func() {
		for u := 0; u < numUsers; u++ {
			if _, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()
	warm() // second round: every entry now a hit

	// A burst of writes confined to shard 1 (users 1, 5, 9 — off-grid
	// scores so no upsert is an identical-weight no-op).
	writer, writes := 1, 6
	writtenShard := sys.ShardFor(writer)
	for i := 0; i < writes; i++ {
		if _, _, err := sys.ApplyRating(writer+4*(i%3), i, 4.25+float64(i)/8); err != nil {
			t.Fatal(err)
		}
	}

	before := sys.ServingStats()
	if got := before.Shards[writtenShard].Epoch; got != uint64(writes) {
		t.Fatalf("written shard epoch = %d, want %d", got, writes)
	}
	if before.Epoch != uint64(writes) {
		t.Fatalf("fleet epoch = %d, want %d (sum of per-shard epochs)", before.Epoch, writes)
	}

	// The base republish under test.
	sys.CompactGraph()

	after := sys.ServingStats()
	for i := range after.Shards {
		if after.Shards[i].Epoch != before.Shards[i].Epoch {
			t.Fatalf("shard %d epoch moved across compaction: %d -> %d", i, before.Shards[i].Epoch, after.Shards[i].Epoch)
		}
		if after.Shards[i].PendingWrites != 0 {
			t.Fatalf("shard %d still has %d pending writes after the fold", i, after.Shards[i].PendingWrites)
		}
	}
	if after.Epoch != before.Epoch {
		t.Fatalf("fleet epoch moved across compaction: %d -> %d", before.Epoch, after.Epoch)
	}

	// Warm entries on the unwritten shards survive the republish; only
	// the written shard recomputes (its entries were already stale from
	// the writes themselves, not from the fold).
	hitsBefore := sys.ServingStats().Cache.Hits
	warmHits := 0
	for u := 0; u < numUsers; u++ {
		resp, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if sys.ShardFor(u) != writtenShard {
			if !resp.CacheHit {
				t.Fatalf("user %d on an unwritten shard lost its cached entry to the fold", u)
			}
			warmHits++
		}
	}
	if got := sys.ServingStats().Cache.Hits - hitsBefore; got != uint64(warmHits) {
		t.Fatalf("cache hit counter moved by %d, want %d", got, warmHits)
	}
	if warmHits == 0 {
		t.Fatal("test corpus left no users on unwritten shards")
	}

	// A fold with every overlay empty must not even swap the base: the
	// published CSR stays pointer-identical (no allocation, no churn).
	adj := sys.ShardGraph(0).Adjacency()
	sys.CompactGraph()
	if sys.ShardGraph(0).Adjacency() != adj {
		t.Fatal("empty-overlay fold rebuilt the base CSR")
	}
}

// TestConcurrentFleetBaseSwapRaces races writers confined to one shard
// and a compaction/refresh loop (both swap the shared base out from
// under the fleet) against readers on every shard. Run under -race via
// make race: no torn reads, no errors — and once quiesced, the fleet's
// responses are byte-identical to a control fleet that applied the same
// stream without ever racing.
func TestConcurrentFleetBaseSwapRaces(t *testing.T) {
	w := shardTestWorld(t)
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = 4
	cfg.CacheSize = 0 // compare raw computation, not cache placement
	cfg.WALDir = t.TempDir()
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	numUsers, numItems := w.Data.NumUsers(), w.Data.NumItems()

	writer := 1 // users 1, 5, 9: all shard 1
	type writeOp struct {
		user, item int
		score      float64
	}
	var script []writeOp
	for i := 0; i < 60; i++ {
		script = append(script, writeOp{
			user:  writer + 4*(i%3),
			item:  (i * 7) % numItems,
			score: 1 + float64(i%9)/2,
		})
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() { // the write stream
		defer wg.Done()
		for _, op := range script {
			if _, _, err := sys.ApplyRating(op.user, op.item, op.score); err != nil {
				errc <- fmt.Errorf("write (%d,%d): %w", op.user, op.item, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // the base-swap loop: group folds and checkpoint refreshes
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if i%2 == 0 {
				sys.CompactGraph()
			} else if err := sys.SnapshotRefresh(); err != nil {
				errc <- fmt.Errorf("refresh: %w", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers on every shard, across every swap
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for u := 0; u < numUsers; u++ {
					resp, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5})
					if err != nil {
						errc <- fmt.Errorf("read user %d: %w", u, err)
						return
					}
					if len(resp.Items) == 0 {
						errc <- fmt.Errorf("user %d: empty response mid-swap", u)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce and compare against a never-raced control with the SAME
	// shard count (Response.Epoch is per-shard) and the same stream.
	sys.CompactGraph()
	ctlCfg := cfg
	ctlCfg.WALDir = ""
	control, err := NewSystem(w.Data, ctlCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range script {
		if _, _, err := control.ApplyRating(op.user, op.item, op.score); err != nil {
			t.Fatal(err)
		}
	}
	control.CompactGraph()
	for u := 0; u < numUsers; u++ {
		got, gerr := sys.Recommend(ctx, "AT", Request{User: u, K: 5})
		want, werr := control.Recommend(ctx, "AT", Request{User: u, K: 5})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("user %d: error divergence: %v vs %v", u, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("user %d: raced fleet diverged from quiesced control:\n raced:   %s\n control: %s", u, gb, wb)
		}
	}
}
