# CI entrypoints. `make` = tier-1 verify; `make bench` adds the short
# allocation-regression benchmark pass documented in PERFORMANCE.md;
# `make lint` machine-checks the invariants listed in INVARIANTS.md.

GO ?= go

.PHONY: all build test race bench fuzz fmt-check lint lab-smoke

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Static invariant gate: stock go vet, then the repo's own ltr-vet
# analyzer suite (lock ordering, pool hygiene, atomic-field discipline,
# context flow, allocation-free hot paths — see INVARIANTS.md).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ltr-vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detector pass over the concurrency-sensitive surfaces: the pooled
# walk query engine, the shared-System batch paths, the live delta-overlay
# graph (concurrent readers + one writer), the sharded result cache, the
# user-partitioned serving fleet (cross-shard write isolation —
# TestConcurrentShardedWriteIsolation in the root package) and the WAL
# group-commit ingester plus kill-and-restart recovery (TestFleet* in the
# root and shard packages).
# (The full suite under -race also works but takes many minutes; this is
# the CI-sized cut.)
# The second line self-checks the ltr-vet analyzer suite under -race
# (-short skips the whole-repo re-analysis; the testdata suites are the
# point here).
race:
	$(GO) test -race -run 'TestConcurrent|TestEngineConcurrentUse|TestRecommendBatch|TestCached|TestRouter|TestFleet|TestIngester' . ./internal/core/ ./internal/server/ ./internal/graph/ ./internal/cache/ ./internal/shard/ ./internal/wal/ ./internal/lab/
	$(GO) test -race -short ./internal/analysis/...

# Experiment-harness smoke: run the tiny grid (every scenario once at
# small sizes), validate the freshly emitted report against the schema,
# and re-validate the committed BENCH_10.json baseline — so neither the
# harness, the schema nor the checked-in trajectory point can bit-rot.
lab-smoke: build
	$(GO) run ./cmd/ltr-lab -grid grids/smoke.json -out /tmp/ltr-lab-smoke.json -csv /tmp/ltr-lab-smoke.csv -quiet
	$(GO) run ./cmd/ltr-lab -check /tmp/ltr-lab-smoke.json
	$(GO) run ./cmd/ltr-lab -check BENCH_10.json

# Short per-query benchmark pass with allocation counts — the regression
# signal for the zero-allocation query engine, the Request query surface,
# the cached serving path, the sharded-fleet invalidation blast radius,
# the shared-base fleet memory footprint (FleetGraphMemory reports
# bytes/shard; it must NOT scale with the shard count) and the WAL
# group-commit throughput (see PERFORMANCE.md).
bench: build
	$(GO) test -run '^$$' -bench 'Query|SubgraphExtract|WalkScores|RecommendBatch|RecommendCached|RecommendUncached|RecommendRequest|Sharded|FleetGraphMemory' -benchtime=100x -benchmem
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend' -benchmem ./internal/wal/

# Native fuzz targets, a short budget each — the long-haul hardening pass
# for the extractor, the live graph (closed- and open-universe), the WAL
# record decoder against torn and corrupted log tails, and the fingerprint
# cache's serve-stale-never soundness property (CI runs the seed corpus
# via `make test` plus a 10s smoke; this explores further).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSubgraphExtract -fuzztime 30s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzBuilderAddRating -fuzztime 30s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzUpsertRatingAutoGrow -fuzztime 30s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 30s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzFingerprintSoundness -fuzztime 30s ./internal/core/
