# CI entrypoints. `make` = tier-1 verify; `make bench` adds the short
# allocation-regression benchmark pass documented in PERFORMANCE.md.

GO ?= go

.PHONY: all build test race bench

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive surfaces: the pooled
# walk query engine and the shared-System batch paths. (The full suite
# under -race also works but takes many minutes; this is the CI-sized cut.)
race:
	$(GO) test -race -run 'TestConcurrent|TestEngineConcurrentUse|TestRecommendBatch' . ./internal/core/ ./internal/server/

# Short per-query benchmark pass with allocation counts — the regression
# signal for the zero-allocation query engine (see PERFORMANCE.md).
bench: build
	$(GO) test -run '^$$' -bench 'Query|SubgraphExtract|WalkScores|RecommendBatch' -benchtime=100x -benchmem
