// Sharded-serving tests: routing correctness (a sharded fleet must be
// indistinguishable from the single-replica stack on a static corpus),
// write-invalidation blast radius (a write must kill only its own
// shard's cached results) and cross-shard race isolation.

package longtail

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"longtailrec/internal/lda"
	"longtailrec/internal/synth"
)

// shardTestWorld is the shared corpus of the sharding tests: big enough
// for meaningful walks, small enough to replicate 4x cheaply.
func shardTestWorld(t testing.TB) *World {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		NumUsers:           60,
		NumItems:           80,
		NumGenres:          4,
		MeanRatingsPerUser: 12,
		MinRatingsPerUser:  4,
		Seed:               99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func shardTestSystem(t testing.TB, w *World, shards, cacheSize int) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = shards
	cfg.CacheSize = cacheSize
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ShardCount() != max(shards, 1) {
		t.Fatalf("ShardCount() = %d, want %d", sys.ShardCount(), max(shards, 1))
	}
	return sys
}

// TestShardedGoldenEquivalence pins the core routing contract: for the
// same dataset and the same request options, a 4-shard system returns
// byte-identical responses to the unsharded system — every replica is a
// faithful copy and routing only picks which copy answers.
func TestShardedGoldenEquivalence(t *testing.T) {
	w := shardTestWorld(t)
	sys1 := shardTestSystem(t, w, 1, 0)
	sys4 := shardTestSystem(t, w, 4, 0)
	ctx := context.Background()

	requests := []Request{
		{K: 5},
		{K: 5, ExcludeItems: []int{1, 2, 3}},
		{K: 5, CandidateItems: []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22}},
		{K: 5, LongTailOnly: 0.8},
	}
	for _, algo := range []string{"HT", "AT", "AC1", "DPPR", "MostPopular"} {
		for _, tmpl := range requests {
			for u := 0; u < w.Data.NumUsers(); u++ {
				req := tmpl
				req.User = u
				r1, err1 := sys1.Recommend(ctx, algo, req)
				r4, err4 := sys4.Recommend(ctx, algo, req)
				if (err1 == nil) != (err4 == nil) {
					t.Fatalf("%s user %d: error divergence: %v vs %v", algo, u, err1, err4)
				}
				if err1 != nil {
					continue
				}
				b1, _ := json.Marshal(r1)
				b4, _ := json.Marshal(r4)
				if string(b1) != string(b4) {
					t.Fatalf("%s user %d opts %+v: sharded response diverged:\n 1: %s\n 4: %s",
						algo, u, tmpl, b1, b4)
				}
			}
		}
	}
}

// TestShardedBatchGoldenEquivalence extends the golden contract to the
// fan-out batch path: responses merge back in input order and match the
// unsharded batch entry for entry.
func TestShardedBatchGoldenEquivalence(t *testing.T) {
	w := shardTestWorld(t)
	sys1 := shardTestSystem(t, w, 1, 0)
	sys4 := shardTestSystem(t, w, 4, 0)
	ctx := context.Background()

	reqs := make([]Request, 0, w.Data.NumUsers())
	for u := w.Data.NumUsers() - 1; u >= 0; u-- { // deliberately not shard-ordered
		reqs = append(reqs, Request{User: u, K: 5})
	}
	r1, err := sys1.RecommendRequests(ctx, "AT", reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := sys4.RecommendRequests(ctx, "AT", reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("sharded batch responses diverged from the unsharded batch")
	}
}

// TestShardedWriteInvalidationBlastRadius is the acceptance scenario:
// with 4 shards, one live write moves exactly one shard's epoch and
// leaves the other 3 shards' cached entries live.
func TestShardedWriteInvalidationBlastRadius(t *testing.T) {
	w := shardTestWorld(t)
	sys := shardTestSystem(t, w, 4, 1024)
	ctx := context.Background()
	numUsers := w.Data.NumUsers()

	// Warm every user's entry, then verify the whole panel hits.
	for round := 0; round < 2; round++ {
		for u := 0; u < numUsers; u++ {
			resp, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5})
			if err != nil {
				t.Fatal(err)
			}
			if round == 1 && !resp.CacheHit {
				t.Fatalf("user %d not cached after warm round", u)
			}
		}
	}

	writer := 2
	writtenShard := sys.ShardFor(writer)
	before := sys.ServingStats()
	// A score off the synthetic rating grid, so the upsert can never be
	// an identical-weight no-op (which would not move the epoch).
	if _, epoch, err := sys.ApplyRating(writer, 0, 4.25); err != nil {
		t.Fatal(err)
	} else if epoch != before.Shards[writtenShard].Epoch+1 {
		t.Fatalf("write epoch = %d, want shard epoch %d+1", epoch, before.Shards[writtenShard].Epoch)
	}

	after := sys.ServingStats()
	for i, sh := range after.Shards {
		want := before.Shards[i].Epoch
		if i == writtenShard {
			want++
		}
		if sh.Epoch != want {
			t.Fatalf("shard %d epoch = %d, want %d (invalidation leaked across shards)", i, sh.Epoch, want)
		}
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("fleet epoch = %d, want %d", after.Epoch, before.Epoch+1)
	}

	// The other 3 shards' entries are still served from cache; only the
	// written shard recomputes.
	hitsBefore := sys.ServingStats().Cache.Hits
	warmHits := 0
	for u := 0; u < numUsers; u++ {
		resp, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if sys.ShardFor(u) == writtenShard {
			if resp.CacheHit {
				t.Fatalf("user %d on the written shard served a stale cached result", u)
			}
		} else {
			if !resp.CacheHit {
				t.Fatalf("user %d on an unwritten shard lost its cached entry", u)
			}
			warmHits++
		}
	}
	if got := sys.ServingStats().Cache.Hits - hitsBefore; got != uint64(warmHits) {
		t.Fatalf("cache hit counter moved by %d, want %d (only unwritten shards hit)", got, warmHits)
	}
	if warmHits == 0 {
		t.Fatal("test corpus left no users on unwritten shards")
	}
}

// TestShardedPhantomUserServedAsCold pins the dense-fill gap semantics:
// an auto-grow write far past the universe edge admits the ids between
// on the WRITING user's shard only, so a gap id routing to another shard
// is unknown there. The serving layer must treat it as the unsharded
// stack treats a dense-filled, rating-less user — cold (fallback when
// allowed), never a 404 that aborts a whole batch.
func TestShardedPhantomUserServedAsCold(t *testing.T) {
	w := shardTestWorld(t)
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = 4
	cfg.AutoGrow = true
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := w.Data.NumUsers()

	// Writer (base+8) lands on its own shard and dense-fills base..base+8
	// there; pick a gap user whose home shard is a different one.
	writer := base + 8
	if _, _, err := sys.ApplyRating(writer, 0, 4.25); err != nil {
		t.Fatal(err)
	}
	phantom := -1
	for u := base; u < writer; u++ {
		if sys.ShardFor(u) != sys.ShardFor(writer) {
			phantom = u
			break
		}
	}
	if phantom < 0 {
		t.Fatal("no gap user on a foreign shard")
	}

	resp, err := sys.Recommend(ctx, "AT", Request{User: phantom, K: 5, AllowFallback: true})
	if err != nil {
		t.Fatalf("phantom user with fallback failed: %v", err)
	}
	if !resp.Fallback {
		t.Fatal("phantom user not served the popularity fallback")
	}
	if _, err := sys.Recommend(ctx, "AT", Request{User: phantom, K: 5}); !errors.Is(err, ErrColdUser) {
		t.Fatalf("phantom user without fallback: got %v, want ErrColdUser", err)
	}

	// A batch mixing real and phantom users must not abort: real entries
	// are served, the phantom takes the fallback.
	resps, err := sys.RecommendRequests(ctx, "AT", []Request{
		{User: 0, K: 5},
		{User: phantom, K: 5, AllowFallback: true},
		{User: 1, K: 5},
	}, 2)
	if err != nil {
		t.Fatalf("batch with phantom user aborted: %v", err)
	}
	if len(resps[0].Items) == 0 || len(resps[2].Items) == 0 {
		t.Fatal("real users in a phantom-carrying batch were not served")
	}
	if !resps[1].Fallback {
		t.Fatal("phantom batch entry not degraded to the fallback")
	}
}

// TestConcurrentShardedWriteIsolation races writers confined to one
// shard against readers on every shard (run under -race via make race):
// reads must stay consistent and only the written shard's epoch may
// move.
func TestConcurrentShardedWriteIsolation(t *testing.T) {
	w := shardTestWorld(t)
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = 4
	cfg.CacheSize = 256
	cfg.AutoGrow = true // growth writes race the merged-popularity readers
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	numUsers, numItems := w.Data.NumUsers(), w.Data.NumItems()

	writer := 1 // users 1, 5, 9, ... all live on shard 1
	writtenShard := sys.ShardFor(writer)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			u := writer + 4*(i%3) // 1, 5, 9: same shard, single writer per graph
			item := i % numItems
			if i%5 == 4 {
				item = numItems + i/5 // auto-grow: extend shard 1's item universe
			}
			if _, _, err := sys.ApplyRating(u, item, 1+float64(i%5)); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; u < numUsers; u++ {
				if _, err := sys.Recommend(ctx, "AT", Request{User: u, K: 5}); err != nil {
					errc <- err
					return
				}
				// The fleet-wide merged popularity must stay safe while a
				// shard's item universe grows under it.
				if pop := sys.LiveItemPopularity(); len(pop) < numItems {
					errc <- fmt.Errorf("merged popularity shrank to %d items", len(pop))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := sys.ServingStats()
	for i, sh := range st.Shards {
		if i == writtenShard {
			if sh.Epoch == 0 {
				t.Fatal("written shard's epoch did not move")
			}
			continue
		}
		if sh.Epoch != 0 {
			t.Fatalf("shard %d epoch = %d, want 0: writes to shard %d leaked", i, sh.Epoch, writtenShard)
		}
	}
}
