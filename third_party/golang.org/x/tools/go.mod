module golang.org/x/tools

go 1.24.0
