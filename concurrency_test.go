package longtail

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentRecommendSharedSystem hammers one shared System from many
// goroutines mixing single Recommend calls and RecommendBatch across the
// walk algorithms. Run with `go test -race` (the Makefile's race target)
// this locks in the thread-safety of the pooled walk query engine and the
// System's lazy recommender cache.
func TestConcurrentRecommendSharedSystem(t *testing.T) {
	sys, _ := smallSystem(t, 11)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(3)), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{"HT", "AT", "AC1", "AC3"}
	// Resolve sequentially once so lazy construction itself is also probed
	// concurrently below for a second system.
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 2*runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 8; q++ {
				algo := algos[(w+q)%len(algos)]
				if q%3 == 0 {
					if _, err := sys.RecommendBatch(algo, users, 5, 3); err != nil {
						errc <- err
						return
					}
					continue
				}
				rec, err := sys.Algorithm(algo)
				if err != nil {
					errc <- err
					return
				}
				if _, err := rec.Recommend(users[(w*5+q)%len(users)], 5); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentBatchDeterministic checks that concurrent batch scoring
// returns exactly what sequential scoring returns, for every walk
// algorithm, regardless of parallelism.
func TestConcurrentBatchDeterministic(t *testing.T) {
	sys, _ := smallSystem(t, 12)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(4)), 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"HT", "AT", "AC1", "AC3"} {
		sequential, err := sys.RecommendBatch(algo, users, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 0} {
			parallel, err := sys.RecommendBatch(algo, users, 6, par)
			if err != nil {
				t.Fatal(err)
			}
			for i := range users {
				if len(sequential[i]) != len(parallel[i]) {
					t.Fatalf("%s user %d parallelism %d: %d vs %d items",
						algo, users[i], par, len(parallel[i]), len(sequential[i]))
				}
				for j := range sequential[i] {
					if sequential[i][j] != parallel[i][j] {
						t.Fatalf("%s user %d slot %d differs at parallelism %d",
							algo, users[i], j, par)
					}
				}
			}
		}
	}
}

// TestConcurrentLiveWriteServing is the PR 2 serving-layer race check:
// one shared cache-enabled System serves concurrent Recommend and
// RecommendBatch traffic while a single writer streams live ratings into
// the graph, compacting and sweeping stale cache entries along the way.
// Run under `make race`.
func TestConcurrentLiveWriteServing(t *testing.T) {
	_, w := smallSystem(t, 13)
	cfg := DefaultConfig()
	cfg.CacheSize = 512
	cfg.CompactThreshold = 32
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(5)), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var served atomic.Int64
	stop := make(chan struct{})
	// One slot per reader so a systemic failure can never block a sender
	// (and thereby deadlock wg.Wait) on many-core machines.
	errc := make(chan error, 2*runtime.GOMAXPROCS(0))
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				algo := []string{"HT", "AT"}[(g+q)%2]
				if q%5 == 0 {
					if _, err := sys.RecommendBatch(algo, users, 5, 2); err != nil {
						errc <- err
						return
					}
					served.Add(1)
					continue
				}
				rec, err := sys.Algorithm(algo)
				if err != nil {
					errc <- err
					return
				}
				if _, err := rec.Recommend(users[(g*3+q)%len(users)], 5); err != nil {
					errc <- err
					return
				}
				served.Add(1)
			}
		}(g)
	}
	// Pace the write stream against actual query progress so readers and
	// the writer genuinely overlap (on one core a free-running writer
	// finishes before the first query completes).
	rng := rand.New(rand.NewSource(6))
	nu, ni := sys.Data().NumUsers(), sys.Data().NumItems()
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 150; i++ {
		if _, _, err := sys.ApplyRating(rng.Intn(nu), rng.Intn(ni), 1+float64(rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			sys.CompactGraph()
			sys.EvictStaleCache()
		}
		for served.Load() < int64(i/3) && time.Now().Before(deadline) && len(errc) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	for served.Load() < 40 && time.Now().Before(deadline) && len(errc) == 0 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if sys.Epoch() == 0 {
		t.Error("writer made no progress")
	}
	st := sys.ServingStats()
	if !st.CacheEnabled || st.Cache.Misses == 0 {
		t.Errorf("cache never exercised: %+v", st)
	}
}

// TestConcurrentOpenUniverseServing: one writer grows the universe with
// auto-grow rating writes — brand-new users rating a mix of existing and
// brand-new items — while readers recommend through the cached walk
// engines against the moving graph. Run under -race; this locks in the
// thread-safety of the atomic universe snapshot, the per-query scratch
// re-sizing, and epoch invalidation across admissions.
func TestConcurrentOpenUniverseServing(t *testing.T) {
	_, w := smallSystem(t, 17)
	cfg := ServingConfig(512, 32)
	cfg.LDA.NumTopics = 4
	cfg.LDA.Iterations = 10
	cfg.SVDRank = 8
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(9)), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var served atomic.Int64
	stop := make(chan struct{})
	errc := make(chan error, 2*runtime.GOMAXPROCS(0))
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				algo := []string{"HT", "AT"}[(g+q)%2]
				rec, err := sys.Algorithm(algo)
				if err != nil {
					errc <- err
					return
				}
				// Mostly established users; sometimes whoever is newest.
				u := users[(g*3+q)%len(users)]
				if q%4 == 3 {
					nu, _ := sys.Universe()
					u = nu - 1
				}
				if _, err := rec.Recommend(u, 5); err != nil && !errors.Is(err, ErrColdUser) {
					errc <- err
					return
				}
				served.Add(1)
			}
		}(g)
	}
	// The write stream: each step a never-before-seen user rates one
	// existing item and one never-before-seen item.
	rng := rand.New(rand.NewSource(10))
	baseUsers, baseItems := sys.Data().NumUsers(), sys.Data().NumItems()
	deadline := time.Now().Add(30 * time.Second)
	const newcomers = 60
	for k := 0; k < newcomers; k++ {
		u, i := baseUsers+k, baseItems+k
		if _, _, err := sys.ApplyRating(u, rng.Intn(baseItems), 1+float64(rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sys.ApplyRating(u, i, 1+float64(rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
		if k%20 == 19 {
			sys.CompactGraph()
			sys.EvictStaleCache()
		}
		for served.Load() < int64(k) && time.Now().Before(deadline) && len(errc) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	for served.Load() < 30 && time.Now().Before(deadline) && len(errc) == 0 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	nu, ni := sys.Universe()
	if nu != baseUsers+newcomers || ni != baseItems+newcomers {
		t.Errorf("universe %d/%d, want %d/%d", nu, ni, baseUsers+newcomers, baseItems+newcomers)
	}
	// The newest user is immediately servable by the live walk engine.
	recs, err := sys.AT().Recommend(nu-1, 5)
	if err != nil {
		t.Fatalf("recommend for grown user: %v", err)
	}
	if len(recs) == 0 {
		t.Error("no recommendations for grown user with two ratings")
	}
}
