package longtail

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentRecommendSharedSystem hammers one shared System from many
// goroutines mixing single Recommend calls and RecommendBatch across the
// walk algorithms. Run with `go test -race` (the Makefile's race target)
// this locks in the thread-safety of the pooled walk query engine and the
// System's lazy recommender cache.
func TestConcurrentRecommendSharedSystem(t *testing.T) {
	sys, _ := smallSystem(t, 11)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(3)), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{"HT", "AT", "AC1", "AC3"}
	// Resolve sequentially once so lazy construction itself is also probed
	// concurrently below for a second system.
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 2*runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 8; q++ {
				algo := algos[(w+q)%len(algos)]
				if q%3 == 0 {
					if _, err := sys.RecommendBatch(algo, users, 5, 3); err != nil {
						errc <- err
						return
					}
					continue
				}
				rec, err := sys.Algorithm(algo)
				if err != nil {
					errc <- err
					return
				}
				if _, err := rec.Recommend(users[(w*5+q)%len(users)], 5); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentBatchDeterministic checks that concurrent batch scoring
// returns exactly what sequential scoring returns, for every walk
// algorithm, regardless of parallelism.
func TestConcurrentBatchDeterministic(t *testing.T) {
	sys, _ := smallSystem(t, 12)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(4)), 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"HT", "AT", "AC1", "AC3"} {
		sequential, err := sys.RecommendBatch(algo, users, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 0} {
			parallel, err := sys.RecommendBatch(algo, users, 6, par)
			if err != nil {
				t.Fatal(err)
			}
			for i := range users {
				if len(sequential[i]) != len(parallel[i]) {
					t.Fatalf("%s user %d parallelism %d: %d vs %d items",
						algo, users[i], par, len(parallel[i]), len(sequential[i]))
				}
				for j := range sequential[i] {
					if sequential[i][j] != parallel[i][j] {
						t.Fatalf("%s user %d slot %d differs at parallelism %d",
							algo, users[i], j, par)
					}
				}
			}
		}
	}
}
