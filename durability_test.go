// Durability integration tests: kill-and-restart recovery (no
// acknowledged write may be lost; the recovered system must be
// byte-identical to one that never died), cross-shard convergence via
// the snapshot-refresh cycle, and graceful-shutdown checkpointing.
//
// The TestFleet* names put these under the race-gated suite in CI
// (see Makefile's race target).

package longtail

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"longtailrec/internal/graph"
	"longtailrec/internal/lda"
	"longtailrec/internal/persist"
)

// durableSystem builds a WAL-backed sharded System over the shared shard
// test corpus.
func durableSystem(t testing.TB, w *World, shards int, walDir string) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = shards
	cfg.AutoGrow = true
	cfg.WALDir = walDir
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// writeStream applies a deterministic mixed write stream — inserts,
// re-rates, auto-grow admissions — failing the test on any error.
func writeStream(t testing.TB, sys *System, phase int) {
	t.Helper()
	n := sys.Data().NumUsers()
	for i := 0; i < 12; i++ {
		user := (phase*31 + i*7) % n
		item := (phase*17 + i*5) % sys.Data().NumItems()
		if _, _, err := sys.ApplyRating(user, item, float64(1+(phase+i)%5)); err != nil {
			t.Fatalf("phase %d write %d: %v", phase, i, err)
		}
	}
	// One auto-grow admission per phase: a brand-new user rates a
	// brand-new item.
	if _, _, err := sys.ApplyRating(n+phase, sys.Data().NumItems()+phase, 3); err != nil {
		t.Fatalf("phase %d admission: %v", phase, err)
	}
}

// TestFleetRestartRecovery is the central durability claim: a server
// killed without warning (no graceful shutdown, no final checkpoint)
// and restarted over the same WAL directory recovers EVERY acknowledged
// write — its fleet epoch and its recommendation responses are
// byte-identical to a system that ran the same operations uninterrupted.
func TestFleetRestartRecovery(t *testing.T) {
	w := shardTestWorld(t)
	// control never dies; victim is killed after phase 2.
	control := durableSystem(t, w, 2, t.TempDir())
	defer control.Close()
	victimDir := t.TempDir()
	victim := durableSystem(t, w, 2, victimDir)

	// Phase 1: writes, then a checkpoint on BOTH systems (the refresh
	// also converges shards, so it must happen on both to keep them
	// comparable).
	writeStream(t, control, 1)
	writeStream(t, victim, 1)
	if err := control.SnapshotRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := victim.SnapshotRefresh(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more writes land AFTER the checkpoint, so recovery must
	// stitch checkpoint + WAL tail together.
	writeStream(t, control, 2)
	writeStream(t, victim, 2)

	// Kill: abandon the victim with no flush and no final checkpoint.
	// Every acknowledged write above is already fsync'd (acks follow
	// durability), so a restart over the same directory must see all of
	// them — this is the crash the WAL exists for.
	victim = nil

	recovered := durableSystem(t, w, 2, victimDir)
	defer recovered.Close()

	if got, want := recovered.Epoch(), control.Epoch(); got != want {
		t.Fatalf("recovered fleet epoch = %d, want %d (acknowledged writes lost or double-applied)", got, want)
	}
	gu, gi := recovered.Universe()
	wu, wi := control.Universe()
	if gu != wu || gi != wi {
		t.Fatalf("recovered universe = (%d,%d), want (%d,%d)", gu, gi, wu, wi)
	}

	// Byte-identical serving: same users, same algorithms, same JSON.
	ctx := context.Background()
	for _, algo := range []string{"HT", "AT", "MostPopular"} {
		for u := 0; u < w.Data.NumUsers()+3; u += 3 {
			req := Request{User: u, K: 5, AllowFallback: true}
			rc, errC := control.Recommend(ctx, algo, req)
			rr, errR := recovered.Recommend(ctx, algo, req)
			if (errC == nil) != (errR == nil) {
				t.Fatalf("%s user %d: error divergence: %v vs %v", algo, u, errC, errR)
			}
			if errC != nil {
				continue
			}
			bc, _ := json.Marshal(rc)
			br, _ := json.Marshal(rr)
			if string(bc) != string(br) {
				t.Fatalf("%s user %d: recovered response diverged:\n control  %s\n recovered %s", algo, u, bc, br)
			}
		}
	}
}

// TestFleetDurableConvergenceAndShutdown covers the snapshot-refresh
// consistency contract at the System level: a write is visible to its
// own shard immediately and to the other shards after a refresh; a
// graceful Close writes a final checkpoint that alone (the log having
// been truncated behind it) restores the full state.
func TestFleetDurableConvergenceAndShutdown(t *testing.T) {
	w := shardTestWorld(t)
	dir := t.TempDir()
	sys := durableSystem(t, w, 2, dir)

	user, item := 0, 3
	home := sys.ShardFor(user)
	other := 1 - home
	gHome, gOther := sys.ShardGraph(home), sys.ShardGraph(other)
	// Pick a score that differs from whatever the base corpus holds so
	// visibility is observable.
	before := gHome.Weight(gHome.UserNode(user), gHome.ItemNode(item))
	score := 2.0
	if before == score {
		score = 4
	}
	if _, _, err := sys.ApplyRating(user, item, score); err != nil {
		t.Fatal(err)
	}
	if got := gHome.Weight(gHome.UserNode(user), gHome.ItemNode(item)); got != score {
		t.Fatalf("home shard weight = %v, want %v", got, score)
	}
	if got := gOther.Weight(gOther.UserNode(user), gOther.ItemNode(item)); got != before {
		t.Fatalf("foreign shard weight = %v before any refresh, want the base %v", got, before)
	}
	if err := sys.SnapshotRefresh(); err != nil {
		t.Fatal(err)
	}
	if got := gOther.Weight(gOther.UserNode(user), gOther.ItemNode(item)); got != score {
		t.Fatalf("foreign shard weight after refresh = %v, want %v (convergence failed)", got, score)
	}

	// Write after the refresh, then shut down gracefully: Close must
	// flush and checkpoint so the restart needs no WAL tail at all.
	score2 := 3.0
	if gHome.Weight(gHome.UserNode(user), gHome.ItemNode(item+1)) == score2 {
		score2 = 1
	}
	if _, _, err := sys.ApplyRating(user, item+1, score2); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint inside Close converges the foreign replica
	// (one more epoch bump), so the reference epoch is read after it.
	wantEpoch := sys.Epoch()
	st := sys.ServingStats()
	if st.Durability.PendingBatch != 0 {
		t.Fatalf("pending batch = %d after Close, want 0", st.Durability.PendingBatch)
	}

	restarted := durableSystem(t, w, 2, dir)
	defer restarted.Close()
	if got := restarted.Epoch(); got != wantEpoch {
		t.Fatalf("restarted epoch = %d, want %d", got, wantEpoch)
	}
	g := restarted.ShardGraph(home)
	if got := g.Weight(g.UserNode(user), g.ItemNode(item+1)); got != score2 {
		t.Fatalf("post-refresh write lost across graceful restart: weight = %v, want %v", got, score2)
	}
	// Writes rejected after Close are rejected durably closed, not lost
	// silently.
	if _, _, err := sys.ApplyRating(user, item, 2); err == nil {
		t.Fatal("write accepted after Close")
	}
}

// TestFleetRestartFromLegacyCheckpoint pins upgrade compatibility: a
// server whose WAL directory holds a pre-shared-base checkpoint (legacy
// Kind 6: one full snapshot per shard) must restart from it — converted
// into one shared base plus per-shard epochs — and write its NEXT
// checkpoint in the shared format.
func TestFleetRestartFromLegacyCheckpoint(t *testing.T) {
	w := shardTestWorld(t)
	dir := t.TempDir()

	// Fabricate the legacy image the old code would have left behind: two
	// converged (content-identical) shard snapshots with distinct epochs.
	g := w.Data.Graph()
	if _, err := g.UpsertRating(0, 3, 4.25); err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRating(1, 5, 2.5); err != nil {
		t.Fatal(err)
	}
	legacy := &persist.FleetCheckpoint{
		Seq: 2,
		Shards: []persist.ShardCheckpoint{
			{BaseUsers: g.BaseNumUsers(), BaseItems: g.BaseNumItems(), Snapshot: g.Snapshot()},
			{BaseUsers: g.BaseNumUsers(), BaseItems: g.BaseNumItems(), Snapshot: g.Snapshot()},
		},
	}
	legacy.Shards[1].Snapshot.Epoch = 3
	ckptPath := filepath.Join(dir, "checkpoint.ltr")
	if err := persist.SaveFile(ckptPath, func(wr io.Writer) error {
		return persist.SaveFleetCheckpoint(wr, legacy)
	}); err != nil {
		t.Fatal(err)
	}

	sys := durableSystem(t, w, 2, dir)
	defer sys.Close()
	if got, want := sys.Epoch(), legacy.Shards[0].Snapshot.Epoch+3; got != want {
		t.Fatalf("restored fleet epoch = %d, want %d (sum of legacy per-shard epochs)", got, want)
	}
	g0, g1 := sys.ShardGraph(0), sys.ShardGraph(1)
	if !g0.SharesBaseWith(g1) {
		t.Fatal("legacy restore built independent replicas, want shared-base views")
	}
	for i, sg := range []*graph.Bipartite{g0, g1} {
		if got := sg.Weight(sg.UserNode(0), sg.ItemNode(3)); got != 4.25 {
			t.Fatalf("shard %d restored weight = %v, want 4.25", i, got)
		}
	}

	// The next refresh must upgrade the on-disk format.
	if err := sys.SnapshotRefresh(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := persist.LoadSharedFleetCheckpoint(f); err != nil {
		t.Fatalf("post-upgrade checkpoint is not shared-format: %v", err)
	}
}

// TestFleetRestartShardCountMismatch pins the guard rail: restarting a
// checkpointed fleet with a different shard count must fail loudly, not
// silently misroute users.
func TestFleetRestartShardCountMismatch(t *testing.T) {
	w := shardTestWorld(t)
	dir := t.TempDir()
	sys := durableSystem(t, w, 2, dir)
	if _, _, err := sys.ApplyRating(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 2, Iterations: 5}
	cfg.Seed = 7
	cfg.ShardCount = 3
	cfg.AutoGrow = true
	cfg.WALDir = dir
	if _, err := NewSystem(w.Data, cfg); err == nil {
		t.Fatal("shard-count mismatch against the checkpoint accepted")
	}
}
