module longtailrec

go 1.24.0

require golang.org/x/tools v0.28.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools
