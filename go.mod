module longtailrec

go 1.24.0
