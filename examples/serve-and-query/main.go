// Serve-and-query: the production loop end to end in one process.
//
// This example exports a corpus to the binary .ltrz container (the offline
// phase), reloads it, starts the HTTP recommendation server on a random
// port, and queries it like a client would: stats, a recommendation list,
// and an explanation for the top pick.
//
// Run with: go run ./examples/serve-and-query
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"longtailrec"
	"longtailrec/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Offline phase: build a corpus and persist it.
	world, err := longtail.GenerateMovieLensLike(21)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ltr-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.ltrz")
	if err := longtail.SaveDatasetFile(path, world.Data); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("exported corpus to %s (%d bytes)\n", filepath.Base(path), info.Size())

	// Online phase: reload and serve.
	data, err := longtail.LoadDatasetFile(path)
	if err != nil {
		return err
	}
	sys, err := longtail.NewSystem(data, longtail.DefaultConfig())
	if err != nil {
		return err
	}
	srv, err := server.New(sys, server.Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	// Client phase.
	var stats server.StatsResponse
	if err := getJSON(ts.URL+"/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("corpus: %d users, %d items, %d ratings (density %.2f%%, %.0f%% of items in the 20%% tail)\n",
		stats.NumUsers, stats.NumItems, stats.NumRatings, 100*stats.Density, 100*stats.TailItemFraction)

	const user = 11
	var rec server.RecommendResponse
	if err := getJSON(fmt.Sprintf("%s/v1/recommend?user=%d&k=5", ts.URL, user), &rec); err != nil {
		return err
	}
	fmt.Printf("\ntop-5 for user %d by %s:\n", rec.User, rec.Algorithm)
	for rank, item := range rec.Items {
		tag := "head"
		if item.LongTail {
			tag = "tail"
		}
		fmt.Printf("  %d. item %-5d score %9.3f  popularity %3d  (%s)\n",
			rank+1, item.Item, item.Score, item.Popularity, tag)
	}
	if len(rec.Items) == 0 {
		return fmt.Errorf("no recommendations for user %d", user)
	}

	var ex server.ExplainResponse
	if err := getJSON(fmt.Sprintf("%s/v1/explain?user=%d&item=%d", ts.URL, user, rec.Items[0].Item), &ex); err != nil {
		return err
	}
	fmt.Printf("\nwhy item %d? absorption shares over user %d's rated items:\n", ex.Item, ex.User)
	for i, a := range ex.Anchors {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(ex.Anchors)-3)
			break
		}
		fmt.Printf("  item %-5d %.0f%%\n", a.Item, 100*a.Probability)
	}

	// Graceful shutdown (httptest handles the listener; this shows the API).
	return srv.Shutdown(context.Background())
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, into)
}
