// Douban books scenario: sales-diversity and taste-relevance analysis on a
// sparse book corpus, reproducing the §5.2.3–§5.2.4 story: most
// recommenders concentrate everyone on the same head items (a
// rich-get-richer effect), while the absorbing-walk algorithms spread
// demand across the catalog without losing relevance — measured against a
// category ontology like the dangdang book hierarchy the paper used.
//
// Run with: go run ./examples/douban-books
package main

import (
	"fmt"
	"log"
	"math/rand"

	"longtailrec"
	"longtailrec/internal/eval"
	"longtailrec/internal/lda"
)

func main() {
	world, err := longtail.GenerateDoubanLike(3)
	if err != nil {
		log.Fatal(err)
	}
	data := world.Data
	s := data.Summarize()
	fmt.Printf("Douban-shaped book corpus: %d readers, %d books, %d ratings (density %.3f%%)\n",
		s.NumUsers, s.NumItems, s.NumRatings, 100*s.Density)
	fmt.Printf("long tail: %.0f%% of books share just 20%% of the ratings\n\n", 100*s.TailItemFraction)

	cfg := longtail.DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 24, Iterations: 40, Seed: 5}
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A reader panel, as in the paper's 2000-user diversity experiment
	// (scaled down so the example runs in seconds).
	panel, err := data.SampleUsers(rand.New(rand.NewSource(9)), 60, 5)
	if err != nil {
		log.Fatal(err)
	}

	suite, err := sys.PaperSuite()
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := eval.Lists(suite, data, panel, eval.ListOptions{
		ListSize: 10,
		Ontology: world.Ontology,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-10 lists for %d readers:\n\n", len(panel))
	fmt.Printf("%-9s %-15s %-10s %-18s %s\n", "algo", "avg popularity", "diversity", "ontology match", "sec/reader")
	for _, m := range metrics {
		fmt.Printf("%-9s %-15.1f %-10.3f %-18.3f %.4f\n",
			m.Name, m.MeanPopularity, m.Diversity, m.Similarity, m.SecondsPerUser)
	}

	fmt.Println("\ndiversity = unique books recommended / ideal maximum (Eq. 17);")
	fmt.Println("ontology match = mean category similarity to the reader's shelf (Eq. 18/19).")
	fmt.Println("AC2 keeps relevance near the factor models while recommending 50-100x less popular books.")
}
