// Factor-model comparison: the §5.1.1 choice of PureSVD, re-run.
//
// The paper picks PureSVD as its matrix-factorization competitor because
// Cremonesi et al. (RecSys 2010) found it beats the SGD models (regularized
// biased MF, SVD++, AsySVD) on top-N tasks. This example trains all four on
// the synthetic MovieLens-shaped corpus, runs the long-tail Recall@N
// protocol, and then shows the paper's real point: whichever factor model
// wins, the walk-based AC2 reaches the tail none of them do.
//
// Run with: go run ./examples/factor-models
package main

import (
	"fmt"
	"log"
	"math/rand"

	"longtailrec"
	"longtailrec/internal/eval"
	"longtailrec/internal/mf"
)

func main() {
	world, err := longtail.GenerateMovieLensLike(7)
	if err != nil {
		log.Fatal(err)
	}
	split, err := world.Data.SplitLongTailTest(rand.New(rand.NewSource(7)), 60, 5, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = 8
	cfg.LDA.Iterations = 30
	sys, err := longtail.NewSystem(split.Train, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Every factor baseline, plus AC2 for the punchline.
	var recs []longtail.Recommender
	for _, name := range []string{"PureSVD", "BiasedMF", "SVDPP", "AsySVD", "AC2"} {
		r, err := sys.Algorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		recs = append(recs, r)
	}

	results, err := eval.Recall(recs, split.Train, split.Test, eval.RecallOptions{
		NumNegatives: 300, MaxN: 50, Seed: 7, Parallelism: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long-tail Recall@N, %d held-out 5-star tail ratings, 300 negatives each\n\n", len(split.Test))
	fmt.Printf("%-10s %8s %8s %8s\n", "model", "R@10", "R@20", "R@50")
	for _, r := range results {
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", r.Name, r.Recall[9], r.Recall[19], r.Recall[49])
	}

	// The RMSE view: ranking quality and rating-prediction quality are
	// different contests (Cremonesi et al.'s observation).
	opts := mf.DefaultOptions()
	opts.Seed = 7
	biased, err := mf.TrainBiasedMF(split.Train, opts)
	if err != nil {
		log.Fatal(err)
	}
	svdpp, err := mf.TrainSVDPP(split.Train, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out RMSE:  BiasedMF %.3f   SVD++ %.3f\n",
		mf.RMSE(biased, split.Test), mf.RMSE(svdpp, split.Test))

	// Popularity of what each model actually recommends: the tail gap.
	pop := split.Train.ItemPopularity()
	users, err := split.Train.SampleUsers(rand.New(rand.NewSource(9)), 40, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmean popularity of top-10 recommendations over %d users:\n", len(users))
	for _, rec := range recs {
		total, slots := 0.0, 0
		for _, u := range users {
			list, err := rec.Recommend(u, 10)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range list {
				total += float64(pop[s.Item])
				slots++
			}
		}
		fmt.Printf("  %-10s %6.1f ratings/item\n", rec.Name(), total/float64(slots))
	}
	fmt.Println("\nThe factor models fight over the head; AC2 recommends from the tail.")
}
