// Quickstart: the paper's Figure 2 worked example in a dozen lines.
//
// Five users rated six movies; U5 likes action films (M2, M3). A classic
// collaborative filter would push the locally popular drama M1, but the
// hitting-time ranking surfaces the niche action movie M4 — the paper's
// §3.3 example, H(U5|M4) < H(U5|M1) < H(U5|M5) < H(U5|M6).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"longtailrec"
)

func main() {
	// The Figure 2 rating matrix (users 0-4 = U1-U5, items 0-5 = M1-M6).
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 3}, {User: 0, Item: 4, Score: 3}, {User: 0, Item: 5, Score: 5},
		{User: 1, Item: 0, Score: 5}, {User: 1, Item: 1, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 4, Score: 4}, {User: 1, Item: 5, Score: 5},
		{User: 2, Item: 0, Score: 4}, {User: 2, Item: 1, Score: 5}, {User: 2, Item: 2, Score: 4},
		{User: 3, Item: 2, Score: 5}, {User: 3, Item: 3, Score: 5},
		{User: 4, Item: 1, Score: 4}, {User: 4, Item: 2, Score: 5},
	}
	data, err := longtail.NewDataset(5, 6, ratings)
	if err != nil {
		log.Fatal(err)
	}

	cfg := longtail.DefaultConfig()
	cfg.Walk.Exact = true // tiny graph: solve the linear system exactly
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	const u5 = 4
	fmt.Println("Recommendations for U5 (likes action: rated M2, M3):")

	recs, err := sys.HT().Recommend(u5, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHitting Time (paper §3.3 — score is -H(U5|M)):")
	for rank, r := range recs {
		fmt.Printf("  %d. M%d  hitting time %.1f\n", rank+1, r.Item+1, -r.Score)
	}

	// For contrast: what a pure popularity ranking would suggest.
	popRecs, err := sys.MostPopular().Recommend(u5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMostPopular would instead push M%d — the generic hit.\n", popRecs[0].Item+1)
	fmt.Printf("Hitting time correctly prefers the niche action movie M%d.\n", recs[0].Item+1)

	// Why M4? Decompose the recommendation over U5's rated movies.
	anchors, err := sys.Explain(u5, recs[0].Item)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWhy? Walks from M4 reach U5's taste through:")
	for _, a := range anchors {
		fmt.Printf("  M%d with absorption share %.0f%%\n", a.Item+1, 100*a.Probability)
	}
}
