// Long-tail analysis: visualize the Pareto structure of a rating corpus
// (the Figure 1 hits-vs-niche curve) and quantify how well each algorithm
// covers the tail — the "help me find it" imperative from the paper's
// introduction.
//
// Run with: go run ./examples/longtail-analysis
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"longtailrec"
	"longtailrec/internal/lda"
)

func main() {
	world, err := longtail.GenerateMovieLensLike(13)
	if err != nil {
		log.Fatal(err)
	}
	data := world.Data

	// The Figure 1 curve: cumulative rating share vs catalog share.
	pop := data.ItemPopularity()
	sorted := append([]int(nil), pop...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, p := range sorted {
		total += p
	}
	fmt.Println("Pareto curve (catalog share -> rating share):")
	acc := 0
	next := 0.1
	for i, p := range sorted {
		acc += p
		share := float64(i+1) / float64(len(sorted))
		for share >= next-1e-9 && next <= 1.0 {
			ratingShare := float64(acc) / float64(total)
			bar := strings.Repeat("#", int(ratingShare*40))
			fmt.Printf("  top %3.0f%% of items -> %5.1f%% of ratings %s\n", next*100, ratingShare*100, bar)
			next += 0.1
		}
	}

	tail := data.LongTailItems(0.2)
	fmt.Printf("\n80/20 split: %d of %d items (%.0f%%) form the 20%%-of-ratings long tail\n\n",
		len(tail), data.NumItems(), 100*float64(len(tail))/float64(data.NumItems()))

	// Tail coverage per algorithm over a user panel.
	cfg := longtail.DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 16, Iterations: 30, Seed: 3}
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := data.SampleUsers(rand.New(rand.NewSource(4)), 50, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("long-tail coverage of top-10 lists (50 users):")
	fmt.Printf("%-12s %-12s %-14s %s\n", "algorithm", "tail slots", "unique tail", "tail share of recs")
	for _, name := range []string{"AC2", "AT", "HT", "DPPR", "PureSVD", "LDA"} {
		rec, err := sys.Algorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		slots, totalSlots := 0, 0
		uniqueTail := map[int]struct{}{}
		for _, u := range panel {
			recs, err := rec.Recommend(u, 10)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range recs {
				totalSlots++
				if _, niche := tail[r.Item]; niche {
					slots++
					uniqueTail[r.Item] = struct{}{}
				}
			}
		}
		share := 0.0
		if totalSlots > 0 {
			share = float64(slots) / float64(totalSlots)
		}
		fmt.Printf("%-12s %-12d %-14d %5.1f%%\n", name, slots, len(uniqueTail), share*100)
	}
	fmt.Println("\nGraph-walk algorithms route most recommendation slots into the tail,")
	fmt.Println("turning shelf space that factor models never touch into demand.")
}
