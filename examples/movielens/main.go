// MovieLens scenario: run the full algorithm suite on a MovieLens-shaped
// corpus and compare what each algorithm actually recommends — how popular
// the suggestions are, and whether they still match the user's taste.
//
// By default the example generates the calibrated synthetic corpus
// (DESIGN.md §4); pass the path to a real MovieLens 1M ratings.dat to run
// on the original data:
//
//	go run ./examples/movielens            # synthetic
//	go run ./examples/movielens ratings.dat
package main

import (
	"fmt"
	"log"
	"os"

	"longtailrec"
	"longtailrec/internal/lda"
)

func main() {
	var (
		data *longtail.Dataset
		err  error
	)
	if len(os.Args) > 1 {
		loaded, lerr := longtail.LoadMovieLensFile(os.Args[1])
		if lerr != nil {
			log.Fatal(lerr)
		}
		data = loaded.Data
		fmt.Printf("loaded %s\n", os.Args[1])
	} else {
		world, gerr := longtail.GenerateMovieLensLike(7)
		if gerr != nil {
			log.Fatal(gerr)
		}
		data = world.Data
		fmt.Println("generated MovieLens-shaped synthetic corpus (pass ratings.dat to use real data)")
	}
	err = runSuite(data)
	if err != nil {
		log.Fatal(err)
	}
}

func runSuite(data *longtail.Dataset) error {
	s := data.Summarize()
	fmt.Printf("%d users, %d items, %d ratings (density %.2f%%); %.0f%% of items form the 20%% long tail\n\n",
		s.NumUsers, s.NumItems, s.NumRatings, 100*s.Density, 100*s.TailItemFraction)

	cfg := longtail.DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 16, Iterations: 40, Seed: 11}
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		return err
	}

	// Pick the first user with a healthy profile.
	user := -1
	for u := 0; u < data.NumUsers(); u++ {
		if data.UserDegree(u) >= 20 {
			user = u
			break
		}
	}
	if user < 0 {
		return fmt.Errorf("no user with >= 20 ratings")
	}
	pop := data.ItemPopularity()
	tail := data.LongTailItems(0.2)

	fmt.Printf("top-10 recommendations for user %d (%d ratings):\n\n", user, data.UserDegree(user))
	fmt.Printf("%-10s %-14s %-12s %s\n", "algorithm", "avg popularity", "tail items", "top-3 items (popularity)")
	for _, name := range []string{"AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA", "MostPopular"} {
		rec, err := sys.Algorithm(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		recs, err := rec.Recommend(user, 10)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		meanPop, inTail := 0.0, 0
		for _, r := range recs {
			meanPop += float64(pop[r.Item])
			if _, niche := tail[r.Item]; niche {
				inTail++
			}
		}
		if len(recs) > 0 {
			meanPop /= float64(len(recs))
		}
		top3 := ""
		for i := 0; i < 3 && i < len(recs); i++ {
			top3 += fmt.Sprintf("#%d(%d) ", recs[i].Item, pop[recs[i].Item])
		}
		fmt.Printf("%-10s %-14.1f %2d/10        %s\n", name, meanPop, inTail, top3)
	}
	fmt.Println("\nThe graph algorithms (AC2/AC1/AT/HT) fill their lists from the long tail;")
	fmt.Println("PureSVD/LDA/MostPopular push the head — the paper's Figure 6 in miniature.")
	return nil
}
