// Streaming ingest: build a corpus from an event stream, persist it, and
// query item-to-item neighbors — the data-pipeline half of a deployment.
//
// A rating stream replays out of order and with re-ratings; the Builder
// resolves duplicates by policy (KeepLast here, event-stream semantics).
// The materialized dataset is snapshotted to a binary container, reloaded,
// and served: top-k for a user plus "people who liked X also liked".
//
// Run with: go run ./examples/streaming-ingest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"longtailrec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Simulate an event stream from the synthetic world: every rating
	// arrives as an event, 5% of users later revise their score.
	world, err := longtail.GenerateMovieLensLike(33)
	if err != nil {
		return err
	}
	events := world.Data.Ratings()
	rng := rand.New(rand.NewSource(33))
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	b := longtail.NewBuilder(longtail.KeepLast)
	revisions := 0
	for k, e := range events {
		if err := b.Add(e.User, e.Item, e.Score); err != nil {
			return err
		}
		// Occasional re-rating: the newest score must win.
		if k%20 == 0 {
			revised := e.Score/2 + 1
			if err := b.Add(e.User, e.Item, revised); err != nil {
				return err
			}
			revisions++
		}
	}
	data, err := b.Build(world.Data.NumUsers(), world.Data.NumItems())
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d events (%d re-ratings) -> %d distinct ratings\n",
		len(events)+revisions, revisions, data.NumRatings())

	// Snapshot and reload — the persistence boundary.
	dir, err := os.MkdirTemp("", "ltr-stream")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "snapshot.ltrz")
	if err := longtail.SaveDatasetFile(snap, data); err != nil {
		return err
	}
	reloaded, err := longtail.LoadDatasetFile(snap)
	if err != nil {
		return err
	}
	stats := reloaded.Summarize()
	fmt.Printf("snapshot %s: %d users / %d items / %d ratings (%.0f%% of items in the 20%% tail)\n",
		filepath.Base(snap), stats.NumUsers, stats.NumItems, stats.NumRatings, 100*stats.TailItemFraction)

	// Serve from the reloaded snapshot.
	sys, err := longtail.NewSystem(reloaded, longtail.DefaultConfig())
	if err != nil {
		return err
	}
	const user = 7
	recs, err := sys.AT().Recommend(user, 5)
	if err != nil {
		return err
	}
	pop := reloaded.ItemPopularity()
	fmt.Printf("\ntop-5 for user %d by Absorbing Time:\n", user)
	for rank, r := range recs {
		fmt.Printf("  %d. item %-5d (popularity %d)\n", rank+1, r.Item, pop[r.Item])
	}
	if len(recs) == 0 {
		return fmt.Errorf("no recommendations for user %d", user)
	}

	// Item-to-item: the "customers who liked this" panel for the top pick.
	sims, err := sys.SimilarItems(recs[0].Item, 5)
	if err != nil {
		return err
	}
	fmt.Printf("\npeople who liked item %d also liked:\n", recs[0].Item)
	for _, s := range sims {
		fmt.Printf("  item %-5d cosine %.3f (popularity %d)\n", s.Item, s.Similarity, pop[s.Item])
	}
	return nil
}
