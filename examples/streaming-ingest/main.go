// Streaming ingest: build a corpus from an event stream, persist it, and
// serve it live — the data-pipeline half of a deployment.
//
// A rating stream replays out of order and with re-ratings; the Builder
// resolves duplicates by policy (KeepLast here, event-stream semantics).
// The materialized dataset is snapshotted to a binary container, reloaded,
// and served: top-k for a user plus "people who liked X also liked".
//
// The second half drives the LIVE path (see README.md): the serving system
// keeps a result cache keyed by graph epoch, new ratings stream in through
// System.ApplyRating (the programmatic twin of POST /v1/ratings), each
// write bumps the epoch and invalidates cached results, and the delta
// overlay compacts back into the CSR on a threshold.
//
// Run with: go run ./examples/streaming-ingest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"longtailrec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Simulate an event stream from the synthetic world: every rating
	// arrives as an event, 5% of users later revise their score.
	world, err := longtail.GenerateMovieLensLike(33)
	if err != nil {
		return err
	}
	events := world.Data.Ratings()
	rng := rand.New(rand.NewSource(33))
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	b := longtail.NewBuilder(longtail.KeepLast)
	revisions := 0
	for k, e := range events {
		if err := b.Add(e.User, e.Item, e.Score); err != nil {
			return err
		}
		// Occasional re-rating: the newest score must win.
		if k%20 == 0 {
			revised := e.Score/2 + 1
			if err := b.Add(e.User, e.Item, revised); err != nil {
				return err
			}
			revisions++
		}
	}
	data, err := b.Build(world.Data.NumUsers(), world.Data.NumItems())
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d events (%d re-ratings) -> %d distinct ratings\n",
		len(events)+revisions, revisions, data.NumRatings())

	// Snapshot and reload — the persistence boundary.
	dir, err := os.MkdirTemp("", "ltr-stream")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "snapshot.ltrz")
	if err := longtail.SaveDatasetFile(snap, data); err != nil {
		return err
	}
	reloaded, err := longtail.LoadDatasetFile(snap)
	if err != nil {
		return err
	}
	stats := reloaded.Summarize()
	fmt.Printf("snapshot %s: %d users / %d items / %d ratings (%.0f%% of items in the 20%% tail)\n",
		filepath.Base(snap), stats.NumUsers, stats.NumItems, stats.NumRatings, 100*stats.TailItemFraction)

	// Serve from the reloaded snapshot, production-shaped: result cache on
	// (ServingConfig), delta overlay compacting every 64 live writes.
	sys, err := longtail.NewSystem(reloaded, longtail.ServingConfig(1024, 64))
	if err != nil {
		return err
	}
	const user = 7
	recs, err := sys.AT().Recommend(user, 5)
	if err != nil {
		return err
	}
	pop := reloaded.ItemPopularity()
	fmt.Printf("\ntop-5 for user %d by Absorbing Time:\n", user)
	for rank, r := range recs {
		fmt.Printf("  %d. item %-5d (popularity %d)\n", rank+1, r.Item, pop[r.Item])
	}
	if len(recs) == 0 {
		return fmt.Errorf("no recommendations for user %d", user)
	}

	// Item-to-item: the "customers who liked this" panel for the top pick.
	sims, err := sys.SimilarItems(recs[0].Item, 5)
	if err != nil {
		return err
	}
	fmt.Printf("\npeople who liked item %d also liked:\n", recs[0].Item)
	for _, s := range sims {
		fmt.Printf("  item %-5d cosine %.3f (popularity %d)\n", s.Item, s.Similarity, pop[s.Item])
	}

	// --- The live-update flow ---------------------------------------------
	// 1. Repeat queries against an unchanged graph hit the epoch-keyed
	//    result cache: the walk recomputes nothing.
	at := sys.AT()
	for q := 0; q < 3; q++ { // one miss, then hits
		if _, err := at.Recommend(user, 5); err != nil {
			return err
		}
	}
	st := sys.ServingStats()
	fmt.Printf("\nlive serving: epoch %d, cache %d hits / %d misses\n",
		st.Epoch, st.Cache.Hits, st.Cache.Misses)

	// 2. New ratings stream in. Each accepted write bumps the graph epoch,
	//    so every cached result computed before it stops being served.
	tail := recs[len(recs)-1].Item
	added, epoch, err := sys.ApplyRating(user, tail, 5)
	if err != nil {
		return err
	}
	fmt.Printf("live write: user %d rates item %d (added=%v) -> epoch %d\n", user, tail, added, epoch)

	// 3. The next query recomputes against the live graph: the freshly
	//    rated item disappears from the user's recommendations.
	recs2, err := at.Recommend(user, 5)
	if err != nil {
		return err
	}
	fmt.Printf("top-5 after the write:\n")
	for rank, r := range recs2 {
		fmt.Printf("  %d. item %-5d\n", rank+1, r.Item)
	}
	for _, r := range recs2 {
		if r.Item == tail {
			return fmt.Errorf("stale serving: freshly rated item %d still recommended", tail)
		}
	}

	// 4. A burst of writes crosses the compaction threshold: the delta
	//    overlay folds back into the CSR (epoch untouched), and stale cache
	//    entries can be swept eagerly.
	rng2 := rand.New(rand.NewSource(77))
	for w := 0; w < 100; w++ {
		if _, _, err := sys.ApplyRating(rng2.Intn(reloaded.NumUsers()), rng2.Intn(reloaded.NumItems()), 1+float64(rng2.Intn(5))); err != nil {
			return err
		}
	}
	dropped := sys.EvictStaleCache()
	st = sys.ServingStats()
	fmt.Printf("after 100-write burst: epoch %d, %d pending overlay writes, swept %d stale cache entries\n",
		st.Epoch, st.PendingWrites, dropped)
	fmt.Printf("cache totals: %d hits / %d misses / %d evictions (capacity %d)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Capacity)

	// 5. The open universe: a never-before-seen user arrives live.
	//    ServingConfig turns on AutoGrow, so a rating from a user (and for
	//    an item) outside the snapshot universe is admitted — the graph
	//    grows instead of rejecting the cold-start write.
	newUser := reloaded.NumUsers() // first id past the snapshot
	newItem := reloaded.NumItems()
	taste, _ := sys.AT().Recommend(user, 3) // borrow an existing taste cluster
	if _, _, err := sys.ApplyRating(newUser, newItem, 5); err != nil {
		return err
	}
	for _, r := range taste { // the newcomer rates a few established items
		if _, _, err := sys.ApplyRating(newUser, r.Item, 4); err != nil {
			return err
		}
	}
	gu, gi := sys.Universe()
	fmt.Printf("\nopen universe: user %d and item %d admitted live -> universe %dx%d (snapshot %dx%d), epoch %d\n",
		newUser, newItem, gu, gi, reloaded.NumUsers(), reloaded.NumItems(), sys.Epoch())

	// The newcomer is servable by the walk engine the moment their first
	// ratings land — no retrain, no reload.
	newRecs, err := at.Recommend(newUser, 5)
	if err != nil {
		return err
	}
	fmt.Printf("top-5 for the brand-new user %d:\n", newUser)
	for rank, r := range newRecs {
		fmt.Printf("  %d. item %-5d\n", rank+1, r.Item)
	}
	if len(newRecs) == 0 {
		return fmt.Errorf("no recommendations for grown user %d", newUser)
	}
	return nil
}
