package longtail

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"longtailrec/internal/lda"
	"longtailrec/internal/synth"
)

// smallSystem builds a System over a compact synthetic world with fast
// model settings.
func smallSystem(t testing.TB, seed int64) (*System, *World) {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		NumUsers:           120,
		NumItems:           200,
		NumGenres:          4,
		MeanRatingsPerUser: 18,
		MinRatingsPerUser:  5,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 4, Alpha: 0.5, Iterations: 25, Seed: seed}
	cfg.SVDRank = 8
	cfg.Seed = seed
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, DefaultConfig()); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestAllAlgorithmsProduceRecommendations(t *testing.T) {
	sys, _ := smallSystem(t, 1)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(1)), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AlgorithmNames() {
		rec, err := sys.Algorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Name() != name {
			t.Fatalf("algorithm %q reports name %q", name, rec.Name())
		}
		for _, u := range users {
			recs, err := rec.Recommend(u, 5)
			if err != nil {
				t.Fatalf("%s user %d: %v", name, u, err)
			}
			if len(recs) == 0 {
				t.Fatalf("%s produced no recommendations for user %d", name, u)
			}
			rated := sys.Data().UserItemSet(u)
			for _, r := range recs {
				if _, bad := rated[r.Item]; bad {
					t.Fatalf("%s recommended rated item %d", name, r.Item)
				}
			}
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	sys, _ := smallSystem(t, 2)
	if _, err := sys.Algorithm("Nope"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecommendersAreCached(t *testing.T) {
	sys, _ := smallSystem(t, 3)
	a, err := sys.AC1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.AC1()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("AC1 rebuilt instead of cached")
	}
	if sys.HT() != sys.HT() {
		t.Fatal("HT rebuilt")
	}
}

func TestLDAModelShared(t *testing.T) {
	sys, _ := smallSystem(t, 4)
	m1, err := sys.LDAModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AC2(); err != nil {
		t.Fatal(err)
	}
	m2, err := sys.LDAModel()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("LDA model retrained")
	}
}

func TestPaperSuite(t *testing.T) {
	sys, _ := smallSystem(t, 5)
	suite, err := sys.PaperSuite()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA"}
	if len(suite) != len(want) {
		t.Fatalf("suite size %d", len(suite))
	}
	for k, rec := range suite {
		if rec.Name() != want[k] {
			t.Fatalf("suite[%d] = %s, want %s", k, rec.Name(), want[k])
		}
	}
}

func TestWalkAlgorithmsPreferTail(t *testing.T) {
	// The library's headline property: HT/AT/AC recommend less popular
	// items than the popularity baseline on a skewed corpus.
	sys, _ := smallSystem(t, 6)
	d := sys.Data()
	pop := d.ItemPopularity()
	users, err := d.SampleUsers(rand.New(rand.NewSource(2)), 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	meanTopPop := func(rec Recommender) float64 {
		total, count := 0.0, 0
		for _, u := range users {
			recs, err := rec.Recommend(u, 10)
			if err != nil {
				t.Fatalf("%s: %v", rec.Name(), err)
			}
			for _, r := range recs {
				total += float64(pop[r.Item])
				count++
			}
		}
		if count == 0 {
			t.Fatalf("%s served nobody", rec.Name())
		}
		return total / float64(count)
	}
	popBase := meanTopPop(sys.MostPopular())
	for _, mk := range []func() (Recommender, error){
		func() (Recommender, error) { return sys.AT(), nil },
		func() (Recommender, error) { return sys.HT(), nil },
		sys.AC1,
	} {
		rec, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if got := meanTopPop(rec); got >= popBase {
			t.Fatalf("%s mean rec popularity %.2f not below MostPopular %.2f", rec.Name(), got, popBase)
		}
	}
}

func TestLoadHelpers(t *testing.T) {
	ld, err := LoadCSV(strings.NewReader("a,x,5\nb,x,4\nb,y,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ld.Data.NumUsers() != 2 || ld.Data.NumItems() != 2 {
		t.Fatalf("loaded %d/%d", ld.Data.NumUsers(), ld.Data.NumItems())
	}
	ml, err := LoadMovieLens(strings.NewReader("1::7::5::0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ml.Data.NumRatings() != 1 {
		t.Fatal("MovieLens load failed")
	}
	tsv, err := LoadTSV(strings.NewReader("1\t7\t5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tsv.Data.NumRatings() != 1 {
		t.Fatal("TSV load failed")
	}
	if _, err := LoadMovieLensFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	ml, err := GenerateMovieLensLike(9)
	if err != nil {
		t.Fatal(err)
	}
	db, err := GenerateDoubanLike(9)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Data.Density() <= db.Data.Density() {
		t.Fatalf("MovieLens-like density %v should exceed Douban-like %v",
			ml.Data.Density(), db.Data.Density())
	}
}

func TestNewDatasetHelper(t *testing.T) {
	d, err := NewDataset(2, 2, []Rating{{User: 0, Item: 0, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 1 {
		t.Fatal("helper broken")
	}
	if _, err := NewDataset(0, 0, nil); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestFacadeBuilderAndPersistence(t *testing.T) {
	b := NewBuilder(KeepLast)
	events := []struct {
		u, i int
		s    float64
	}{
		{0, 0, 5}, {0, 1, 4}, {1, 0, 4}, {1, 2, 5}, {2, 1, 3}, {2, 2, 4},
		{0, 0, 3}, // re-rating, KeepLast wins
	}
	for _, e := range events {
		if err := b.Add(e.u, e.i, e.s); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Score(0, 0); got != 3 {
		t.Fatalf("KeepLast score %v", got)
	}

	path := filepath.Join(t.TempDir(), "corpus.ltrz")
	if err := SaveDatasetFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRatings() != d.NumRatings() || got.NumUsers() != d.NumUsers() {
		t.Fatal("file round trip changed the dataset")
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumRatings() != d.NumRatings() {
		t.Fatal("writer round trip changed the dataset")
	}
	if _, err := LoadDatasetFile(filepath.Join(t.TempDir(), "missing.ltrz")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSystemSimilarItems(t *testing.T) {
	sys, _ := smallSystem(t, 13)
	sims, err := sys.SimilarItems(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sims {
		if s.Item == 0 || s.Similarity <= 0 {
			t.Fatalf("bad neighbor %+v", s)
		}
	}
	if _, err := sys.SimilarItems(-1, 5); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, err := sys.SimilarItems(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestAlgorithmRegistryParity holds the registry invariant: every name
// AlgorithmNames lists resolves through Algorithm to a recommender that
// reports that very name, the list has no duplicates, and nothing
// outside the list resolves. Resolution and listing are derived from
// one table, so this test guards against the table itself rotting
// (e.g. a registered builder returning a misnamed recommender).
func TestAlgorithmRegistryParity(t *testing.T) {
	sys, _ := smallSystem(t, 21)
	names := AlgorithmNames()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate registry entry %q", name)
		}
		seen[name] = true
		rec, err := sys.Algorithm(name)
		if err != nil {
			t.Fatalf("listed algorithm %q does not resolve: %v", name, err)
		}
		if rec.Name() != name {
			t.Fatalf("algorithm %q resolves to recommender named %q", name, rec.Name())
		}
		// Every algorithm in the suite speaks the context-aware surface.
		if _, ok := rec.(RecommenderV2); !ok {
			t.Fatalf("algorithm %q does not implement RecommenderV2", name)
		}
	}
	if !reflect.DeepEqual(sys.Algorithms(), names) {
		t.Fatal("System.Algorithms diverged from AlgorithmNames")
	}
	for _, bogus := range []string{"", "ht", "AC", "AT ", "PureSVD2"} {
		if _, err := sys.Algorithm(bogus); err == nil {
			t.Fatalf("unlisted name %q resolved", bogus)
		}
	}
}

// TestSystemRecommendRequest exercises the System-level Request surface:
// metadata envelope, per-request options, fallback policy, context.
func TestSystemRecommendRequest(t *testing.T) {
	sys, _ := smallSystem(t, 22)
	resp, err := sys.Recommend(context.Background(), "AT", Request{User: 0, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algo != "AT" || resp.Fallback || len(resp.Items) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	legacy, err := sys.AT().Recommend(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, resp.Items) {
		t.Fatalf("Request path diverged from legacy Recommend:\n%+v\n%+v", legacy, resp.Items)
	}

	// Options: excluding the whole result forces an empty list.
	excl := make([]int, len(resp.Items))
	for i, it := range resp.Items {
		excl[i] = it.Item
	}
	narrowed, err := sys.Recommend(context.Background(), "AT", Request{User: 0, K: len(excl), ExcludeItems: excl})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range narrowed.Items {
		for _, ex := range excl {
			if it.Item == ex {
				t.Fatalf("excluded item %d served", ex)
			}
		}
	}

	// Cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Recommend(ctx, "AT", Request{User: 0, K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// req.Ctx wins over the argument ctx.
	if _, err := sys.Recommend(context.Background(), "AT", Request{Ctx: ctx, User: 0, K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("req.Ctx not honored: %v", err)
	}

	// Unknown algorithm surfaces the registry error.
	if _, err := sys.Recommend(context.Background(), "Nope", Request{User: 0, K: 5}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestSystemRecommendFallback: a grown (history-less) user degrades to
// the popularity list when the request allows it, with the option
// filters still applied.
func TestSystemRecommendFallback(t *testing.T) {
	sys, _ := smallSystem(t, 23)
	cfg := sys.cfg
	if cfg.AutoGrow {
		t.Fatal("test assumes closed universe default")
	}
	// Admit a brand-new user with no ratings via the graph directly.
	newUser := sys.Graph().AddUser()

	if _, err := sys.Recommend(context.Background(), "AT", Request{User: newUser, K: 4}); !errors.Is(err, ErrColdUser) {
		t.Fatalf("err = %v, want ErrColdUser without fallback", err)
	}
	resp, err := sys.Recommend(context.Background(), "AT", Request{User: newUser, K: 4, AllowFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback || len(resp.Items) != 4 {
		t.Fatalf("fallback resp = %+v", resp)
	}
	// The fallback honors the option filters: exclude its top pick.
	top := resp.Items[0].Item
	filtered, err := sys.Recommend(context.Background(), "AT", Request{
		User: newUser, K: 4, AllowFallback: true, ExcludeItems: []int{top},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !filtered.Fallback {
		t.Fatalf("filtered fallback resp = %+v", filtered)
	}
	for _, it := range filtered.Items {
		if it.Item == top {
			t.Fatalf("fallback served excluded item %d", top)
		}
	}

	// Batch: fallback-allowed requests fill, plain cold entries stay zero.
	resps, err := sys.RecommendRequests(context.Background(), "AT", []Request{
		{User: 0, K: 3},
		{User: newUser, K: 3, AllowFallback: true},
		{User: newUser, K: 3},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Algo != "AT" || len(resps[0].Items) == 0 {
		t.Fatalf("warm batch entry %+v", resps[0])
	}
	if !resps[1].Fallback || len(resps[1].Items) != 3 {
		t.Fatalf("fallback batch entry %+v", resps[1])
	}
	if resps[2].Algo != "" || resps[2].Items != nil {
		t.Fatalf("cold batch entry %+v", resps[2])
	}
}
