package longtail

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"longtailrec/internal/lda"
	"longtailrec/internal/synth"
)

// smallSystem builds a System over a compact synthetic world with fast
// model settings.
func smallSystem(t testing.TB, seed int64) (*System, *World) {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		NumUsers:           120,
		NumItems:           200,
		NumGenres:          4,
		MeanRatingsPerUser: 18,
		MinRatingsPerUser:  5,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 4, Alpha: 0.5, Iterations: 25, Seed: seed}
	cfg.SVDRank = 8
	cfg.Seed = seed
	sys, err := NewSystem(w.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, DefaultConfig()); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestAllAlgorithmsProduceRecommendations(t *testing.T) {
	sys, _ := smallSystem(t, 1)
	users, err := sys.Data().SampleUsers(rand.New(rand.NewSource(1)), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AlgorithmNames() {
		rec, err := sys.Algorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Name() != name {
			t.Fatalf("algorithm %q reports name %q", name, rec.Name())
		}
		for _, u := range users {
			recs, err := rec.Recommend(u, 5)
			if err != nil {
				t.Fatalf("%s user %d: %v", name, u, err)
			}
			if len(recs) == 0 {
				t.Fatalf("%s produced no recommendations for user %d", name, u)
			}
			rated := sys.Data().UserItemSet(u)
			for _, r := range recs {
				if _, bad := rated[r.Item]; bad {
					t.Fatalf("%s recommended rated item %d", name, r.Item)
				}
			}
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	sys, _ := smallSystem(t, 2)
	if _, err := sys.Algorithm("Nope"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecommendersAreCached(t *testing.T) {
	sys, _ := smallSystem(t, 3)
	a, err := sys.AC1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.AC1()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("AC1 rebuilt instead of cached")
	}
	if sys.HT() != sys.HT() {
		t.Fatal("HT rebuilt")
	}
}

func TestLDAModelShared(t *testing.T) {
	sys, _ := smallSystem(t, 4)
	m1, err := sys.LDAModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AC2(); err != nil {
		t.Fatal(err)
	}
	m2, err := sys.LDAModel()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("LDA model retrained")
	}
}

func TestPaperSuite(t *testing.T) {
	sys, _ := smallSystem(t, 5)
	suite, err := sys.PaperSuite()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA"}
	if len(suite) != len(want) {
		t.Fatalf("suite size %d", len(suite))
	}
	for k, rec := range suite {
		if rec.Name() != want[k] {
			t.Fatalf("suite[%d] = %s, want %s", k, rec.Name(), want[k])
		}
	}
}

func TestWalkAlgorithmsPreferTail(t *testing.T) {
	// The library's headline property: HT/AT/AC recommend less popular
	// items than the popularity baseline on a skewed corpus.
	sys, _ := smallSystem(t, 6)
	d := sys.Data()
	pop := d.ItemPopularity()
	users, err := d.SampleUsers(rand.New(rand.NewSource(2)), 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	meanTopPop := func(rec Recommender) float64 {
		total, count := 0.0, 0
		for _, u := range users {
			recs, err := rec.Recommend(u, 10)
			if err != nil {
				t.Fatalf("%s: %v", rec.Name(), err)
			}
			for _, r := range recs {
				total += float64(pop[r.Item])
				count++
			}
		}
		if count == 0 {
			t.Fatalf("%s served nobody", rec.Name())
		}
		return total / float64(count)
	}
	popBase := meanTopPop(sys.MostPopular())
	for _, mk := range []func() (Recommender, error){
		func() (Recommender, error) { return sys.AT(), nil },
		func() (Recommender, error) { return sys.HT(), nil },
		sys.AC1,
	} {
		rec, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if got := meanTopPop(rec); got >= popBase {
			t.Fatalf("%s mean rec popularity %.2f not below MostPopular %.2f", rec.Name(), got, popBase)
		}
	}
}

func TestLoadHelpers(t *testing.T) {
	ld, err := LoadCSV(strings.NewReader("a,x,5\nb,x,4\nb,y,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ld.Data.NumUsers() != 2 || ld.Data.NumItems() != 2 {
		t.Fatalf("loaded %d/%d", ld.Data.NumUsers(), ld.Data.NumItems())
	}
	ml, err := LoadMovieLens(strings.NewReader("1::7::5::0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ml.Data.NumRatings() != 1 {
		t.Fatal("MovieLens load failed")
	}
	tsv, err := LoadTSV(strings.NewReader("1\t7\t5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tsv.Data.NumRatings() != 1 {
		t.Fatal("TSV load failed")
	}
	if _, err := LoadMovieLensFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	ml, err := GenerateMovieLensLike(9)
	if err != nil {
		t.Fatal(err)
	}
	db, err := GenerateDoubanLike(9)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Data.Density() <= db.Data.Density() {
		t.Fatalf("MovieLens-like density %v should exceed Douban-like %v",
			ml.Data.Density(), db.Data.Density())
	}
}

func TestNewDatasetHelper(t *testing.T) {
	d, err := NewDataset(2, 2, []Rating{{User: 0, Item: 0, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 1 {
		t.Fatal("helper broken")
	}
	if _, err := NewDataset(0, 0, nil); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestFacadeBuilderAndPersistence(t *testing.T) {
	b := NewBuilder(KeepLast)
	events := []struct {
		u, i int
		s    float64
	}{
		{0, 0, 5}, {0, 1, 4}, {1, 0, 4}, {1, 2, 5}, {2, 1, 3}, {2, 2, 4},
		{0, 0, 3}, // re-rating, KeepLast wins
	}
	for _, e := range events {
		if err := b.Add(e.u, e.i, e.s); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Score(0, 0); got != 3 {
		t.Fatalf("KeepLast score %v", got)
	}

	path := filepath.Join(t.TempDir(), "corpus.ltrz")
	if err := SaveDatasetFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRatings() != d.NumRatings() || got.NumUsers() != d.NumUsers() {
		t.Fatal("file round trip changed the dataset")
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumRatings() != d.NumRatings() {
		t.Fatal("writer round trip changed the dataset")
	}
	if _, err := LoadDatasetFile(filepath.Join(t.TempDir(), "missing.ltrz")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSystemSimilarItems(t *testing.T) {
	sys, _ := smallSystem(t, 13)
	sims, err := sys.SimilarItems(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sims {
		if s.Item == 0 || s.Similarity <= 0 {
			t.Fatalf("bad neighbor %+v", s)
		}
	}
	if _, err := sys.SimilarItems(-1, 5); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, err := sys.SimilarItems(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
