// Ablation benchmarks for the design choices DESIGN.md calls out:
// truncation depth τ, the entropy-cost signal itself, the user→item cost
// constant C, subgraph-vs-whole-graph ranking agreement, the four factor
// models on the long-tail recall protocol, and the spread (variance) of
// the absorbing-time ranking signal. Run with
// `go test -bench=Ablation -benchmem`.
package longtail_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"longtailrec"
	"longtailrec/internal/core"
	"longtailrec/internal/entropy"
	"longtailrec/internal/eval"
	"longtailrec/internal/markov"
)

// BenchmarkAblationTau measures how the truncated ranking converges to the
// exact solution as τ grows (the paper claims τ = 15 suffices).
func BenchmarkAblationTau(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	g := train.Graph()
	users := env.Panel[:10]
	exact := core.NewAbsorbingTime(g, core.WalkOptions{Exact: true})
	exactTop := make(map[int][]core.Scored)
	for _, u := range users {
		recs, err := exact.Recommend(u, 10)
		if err != nil {
			b.Fatal(err)
		}
		exactTop[u] = recs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tau := range []int{2, 5, 10, 15, 30} {
			trunc := core.NewAbsorbingTime(g, core.WalkOptions{Iterations: tau})
			agree, total := 0, 0
			for _, u := range users {
				recs, err := trunc.Recommend(u, 10)
				if err != nil {
					b.Fatal(err)
				}
				want := map[int]struct{}{}
				for _, r := range exactTop[u] {
					want[r.Item] = struct{}{}
				}
				for _, r := range recs {
					total++
					if _, ok := want[r.Item]; ok {
						agree++
					}
				}
			}
			if i == 0 {
				fmt.Printf("tau=%2d: top-10 overlap with exact solve %.0f%%\n",
					tau, 100*float64(agree)/float64(total))
			}
		}
	}
}

// BenchmarkAblationEntropySignal compares AC1 with real item-based
// entropies against AC1 with the same entropies randomly shuffled across
// users — isolating whether the entropy signal itself (not just having
// non-uniform costs) drives the accuracy gain.
func BenchmarkAblationEntropySignal(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	g := train.Graph()
	ents := entropy.AllItemBased(train)
	shuffled := append([]float64(nil), ents...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	real1, err := core.NewAbsorbingCost(g, "AC1-real", ents, core.CostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sham, err := core.NewAbsorbingCost(g, "AC1-shuffled", shuffled, core.CostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pop := train.ItemPopularity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range []longtail.Recommender{real1, sham} {
			meanPop, slots := 0.0, 0
			for _, u := range env.Panel[:15] {
				recs, err := rec.Recommend(u, 10)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					meanPop += float64(pop[r.Item])
					slots++
				}
			}
			if i == 0 && slots > 0 {
				fmt.Printf("%s: mean recommended popularity %.1f\n", rec.Name(), meanPop/float64(slots))
			}
		}
	}
}

// BenchmarkAblationUserCost sweeps the C constant of Eq. 9 (the cost of a
// user→item transition) and reports how the recommended popularity moves.
func BenchmarkAblationUserCost(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	g := train.Graph()
	ents := entropy.AllItemBased(train)
	pop := train.ItemPopularity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{0.25, 0.5, 1, 2, 4} {
			rec, err := core.NewAbsorbingCost(g, fmt.Sprintf("AC1-C%.2g", c), ents,
				core.CostOptions{UserCost: c})
			if err != nil {
				b.Fatal(err)
			}
			meanPop, slots := 0.0, 0
			for _, u := range env.Panel[:10] {
				recs, err := rec.Recommend(u, 10)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					meanPop += float64(pop[r.Item])
					slots++
				}
			}
			if i == 0 && slots > 0 {
				fmt.Printf("C=%.2f: mean recommended popularity %.1f\n", c, meanPop/float64(slots))
			}
		}
	}
}

// BenchmarkAblationFactorModels runs the long-tail Recall@N protocol over
// the four factorization baselines (PureSVD, BiasedMF, SVD++, AsySVD) —
// probing the Cremonesi et al. claim §5.1.1 relies on when it picks
// PureSVD as the representative matrix-factorization competitor. (On the
// small synthetic corpus the SGD models can out-recall PureSVD; the paper's
// point — that none of them reach the tail the way the walk methods do —
// is what Figure 5 tests.)
func BenchmarkAblationFactorModels(b *testing.B) {
	env := benchEnv(b, "movielens")
	var recs []longtail.Recommender
	for _, name := range []string{"PureSVD", "BiasedMF", "SVDPP", "AsySVD"} {
		r, err := env.Sys.Algorithm(name)
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.Recall(recs, env.Split.Train, env.Split.Test,
			eval.RecallOptions{NumNegatives: scale.Negatives, MaxN: scale.MaxN, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, res := range results {
				fmt.Printf("%-9s recall@10=%.3f recall@50=%.3f\n",
					res.Name, res.Recall[9], res.Recall[scale.MaxN-1])
			}
		}
	}
}

// BenchmarkAblationTimeVariance measures the spread of the absorbing-time
// ranking signal: for a panel of users, the standard deviation of the
// first-passage time at the top-10 recommended items versus at the 10 most
// popular items. Tail items are reached through fewer paths, so their
// times are intrinsically noisier — this quantifies how much.
func BenchmarkAblationTimeVariance(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	g := train.Graph()
	chain, err := markov.NewChain(g.Adjacency())
	if err != nil {
		b.Fatal(err)
	}
	at := core.NewAbsorbingTime(g, core.WalkOptions{MaxSubgraphItems: train.NumItems() + 1})
	pop := train.ItemPopularity()
	top := make([]int, 0, 10)
	for _, s := range core.TopK(popScores(pop), 10, nil) {
		top = append(top, s.Item)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var recSD, headSD float64
		var recN, headN int
		for _, u := range env.Panel[:5] {
			absorb := make([]int, 0, 8)
			for item := range train.UserItemSet(u) {
				absorb = append(absorb, g.ItemNode(item))
			}
			sd, err := chain.AbsorbingTimeStdDev(absorb)
			if err != nil {
				b.Fatal(err)
			}
			recs, err := at.Recommend(u, 10)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range recs {
				if v := sd[g.ItemNode(r.Item)]; !math.IsInf(v, 1) {
					recSD += v
					recN++
				}
			}
			for _, item := range top {
				if v := sd[g.ItemNode(item)]; !math.IsInf(v, 1) {
					headSD += v
					headN++
				}
			}
		}
		if i == 0 && recN > 0 && headN > 0 {
			fmt.Printf("mean absorbing-time stddev: recommended tail items %.1f, head items %.1f\n",
				recSD/float64(recN), headSD/float64(headN))
		}
	}
}

// popScores views popularity counts as a float score vector for TopK.
func popScores(pop []int) []float64 {
	out := make([]float64, len(pop))
	for i, p := range pop {
		out[i] = float64(p)
	}
	return out
}

// BenchmarkAblationSubgraph measures how much the µ-bounded subgraph
// ranking agrees with the whole-graph ranking, and its speedup — the
// Algorithm 1 trade-off.
func BenchmarkAblationSubgraph(b *testing.B) {
	env := benchEnv(b, "movielens")
	train := env.Split.Train
	g := train.Graph()
	users := env.Panel[:10]
	whole := core.NewAbsorbingTime(g, core.WalkOptions{MaxSubgraphItems: train.NumItems() + 1})
	wholeTop := map[int]map[int]struct{}{}
	for _, u := range users {
		recs, err := whole.Recommend(u, 10)
		if err != nil {
			b.Fatal(err)
		}
		set := map[int]struct{}{}
		for _, r := range recs {
			set[r.Item] = struct{}{}
		}
		wholeTop[u] = set
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mu := range []int{100, 300, 600, 1200} {
			sub := core.NewAbsorbingTime(g, core.WalkOptions{MaxSubgraphItems: mu})
			agree, total := 0, 0
			for _, u := range users {
				recs, err := sub.Recommend(u, 10)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					total++
					if _, ok := wholeTop[u][r.Item]; ok {
						agree++
					}
				}
			}
			if i == 0 && total > 0 {
				fmt.Printf("mu=%4d: top-10 overlap with whole graph %.0f%%\n",
					mu, 100*float64(agree)/float64(total))
			}
		}
	}
}
