// Command ltr-lab runs the declarative experiment harness: a grid spec
// (grids/*.json) names scenarios crossed over axes, every cell drives the
// real serving stack with deterministic seeds, and the run emits a
// machine-readable BENCH_<n>.json trajectory point plus a flat CSV and a
// human summary table.
//
//	ltr-lab -grid grids/baseline.json            # record a baseline
//	ltr-lab -grid grids/smoke.json -out /tmp/s.json -csv /tmp/s.csv
//	ltr-lab -check BENCH_9.json                  # validate a report
//	ltr-lab -list                                # show scenarios
//
// Exit status is 1 when any cell's assertions fail (the report is still
// written — a red cell is data), on harness errors, or when -check finds
// an invalid report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"longtailrec/internal/lab"
)

func main() {
	var (
		gridFlag  = flag.String("grid", "", "grid spec file to run (e.g. grids/smoke.json)")
		outFlag   = flag.String("out", "", "report output path (default BENCH_<bench_id>.json)")
		csvFlag   = flag.String("csv", "", "CSV output path (default: report path with .csv)")
		checkFlag = flag.String("check", "", "validate an existing report file and exit")
		listFlag  = flag.Bool("list", false, "list registered scenarios and exit")
		quietFlag = flag.Bool("quiet", false, "suppress per-cell progress lines")
	)
	flag.Parse()
	if err := run(*gridFlag, *outFlag, *csvFlag, *checkFlag, *listFlag, *quietFlag); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-lab: %v\n", err)
		os.Exit(1)
	}
}

func run(grid, out, csvPath, check string, list, quiet bool) error {
	if list {
		for _, name := range lab.Scenarios() {
			fmt.Printf("%-28s %s\n", name, lab.ScenarioDoc(name))
		}
		return nil
	}
	if check != "" {
		r, err := lab.ValidateFile(check)
		if err != nil {
			return err
		}
		if fails := r.FailedCells(); len(fails) > 0 {
			return fmt.Errorf("%s: valid schema but %d cell(s) carry failing assertions", check, len(fails))
		}
		fmt.Printf("%s: valid (%s, bench_id %d, %d cells, all assertions pass)\n", check, r.Name, r.BenchID, len(r.Cells))
		return nil
	}
	if grid == "" {
		return fmt.Errorf("one of -grid, -check or -list is required")
	}

	spec, err := lab.LoadSpec(grid)
	if err != nil {
		return err
	}
	var progress io.Writer = os.Stderr
	if quiet {
		progress = io.Discard
	}
	report, err := lab.Run(spec, progress)
	if err != nil {
		return err
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%d.json", report.BenchID)
	}
	if csvPath == "" {
		csvPath = strings.TrimSuffix(out, ".json") + ".csv"
	}
	if err := lab.WriteJSON(report, out); err != nil {
		return err
	}
	if err := lab.WriteCSV(report, csvPath); err != nil {
		return err
	}
	fmt.Print(lab.Summary(report))
	fmt.Printf("wrote %s and %s\n", out, csvPath)
	if fails := report.FailedCells(); len(fails) > 0 {
		var lines []string
		for _, c := range fails {
			for _, a := range c.Failed() {
				lines = append(lines, fmt.Sprintf("  %s [%s]: %s — %s", c.Experiment, axes(c.Axes), a.Name, a.Detail))
			}
		}
		return fmt.Errorf("%d cell(s) failed assertions:\n%s", len(fails), strings.Join(lines, "\n"))
	}
	return nil
}

func axes(m map[string]any) string {
	if len(m) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	return strings.Join(parts, " ")
}
