// Command ltr-vet runs the repo's custom go/analysis suite — the
// machine-checked concurrency, pooling, and hot-path invariants — over
// the given package patterns (default: the whole module).
//
//	go run ./cmd/ltr-vet ./...
//
// Exit status is 0 when every invariant holds, 1 when any analyzer
// reports a finding, 2 on a loading or internal error.
package main

import (
	"fmt"
	"os"

	ltranalysis "longtailrec/internal/analysis"
	"longtailrec/internal/analysis/driver"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := driver.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := prog.Analyze(ltranalysis.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ltr-vet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ltr-vet:", err)
	os.Exit(2)
}
