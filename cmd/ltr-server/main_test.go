package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"longtailrec/internal/persist"
)

func writeCorpus(t *testing.T) (tsvPath, ltrzPath string) {
	t.Helper()
	dir := t.TempDir()
	tsvPath = filepath.Join(dir, "ratings.tsv")
	lines := []string{
		"u1\ti1\t5", "u1\ti2\t4",
		"u2\ti1\t4", "u2\ti3\t5",
		"u3\ti2\t2", "u3\ti3\t5",
	}
	if err := os.WriteFile(tsvPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadData(tsvPath, "tsv", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	ltrzPath = filepath.Join(dir, "corpus.ltrz")
	if err := persist.SaveFile(ltrzPath, func(w io.Writer) error {
		return persist.SaveDataset(w, d)
	}); err != nil {
		t.Fatal(err)
	}
	return tsvPath, ltrzPath
}

func TestLoadDataFormats(t *testing.T) {
	tsvPath, ltrzPath := writeCorpus(t)
	for _, c := range []struct{ path, format string }{
		{tsvPath, "tsv"},
		{ltrzPath, "ltrz"},
	} {
		d, err := loadData(c.path, c.format, "", 1)
		if err != nil {
			t.Fatalf("%s: %v", c.format, err)
		}
		if d.NumRatings() != 6 {
			t.Fatalf("%s: ratings %d", c.format, d.NumRatings())
		}
	}
}

func TestLoadDataErrors(t *testing.T) {
	tsvPath, _ := writeCorpus(t)
	if _, err := loadData("", "tsv", "", 1); err == nil {
		t.Fatal("missing -in accepted")
	}
	if _, err := loadData(tsvPath, "nope", "", 1); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := loadData("", "tsv", "neither", 1); err == nil {
		t.Fatal("unknown synthetic corpus accepted")
	}
	if _, err := loadData("/does/not/exist", "tsv", "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
	// A TSV fed to the ltrz loader must be rejected by the magic check.
	if _, err := loadData(tsvPath, "ltrz", "", 1); err == nil {
		t.Fatal("TSV accepted as ltrz")
	}
}
