// Command ltr-server serves long-tail recommendations over HTTP/JSON.
//
//	ltr-server -addr :8080 -in ratings.tsv -format tsv
//	ltr-server -in snapshot.ltrz -format ltrz          # persist container
//	ltr-server -synthetic movielens                    # demo corpus
//	ltr-server -synthetic movielens -cache-size 16384  # bigger result cache
//
// Endpoints: /v1/health, /v1/stats, /v1/algorithms,
// /v1/recommend?user=&algo=&k=, POST /v1/ratings (live rating ingest),
// /v1/explain?user=&item=, /v1/users/{id}, /v1/items/{id},
// /v1/items/{id}/similar?k=.
//
// Serving is live: POST /v1/ratings writes land in the graph's delta
// overlay immediately and invalidate the recommendation result cache via
// the graph epoch. -cache-size sizes that cache (0 disables it);
// -compact-threshold controls how many overlay writes accumulate before
// they are folded back into the CSR. With -auto-grow (the default) the
// universe is open: ratings from users and items the corpus has never
// seen are admitted and grow the serving graph, and brand-new users get
// the deterministic popularity fallback from /v1/recommend until their
// first ratings land; -auto-grow=false restores the closed universe
// (unseen ids 404).
//
// The process shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"longtailrec"
	"longtailrec/internal/dataset"
	"longtailrec/internal/persist"
	"longtailrec/internal/server"
)

func main() {
	var (
		addr             = flag.String("addr", ":8080", "listen address")
		in               = flag.String("in", "", "ratings file path (required unless -synthetic)")
		format           = flag.String("format", "tsv", "input format: tsv, csv, movielens or ltrz")
		synthetic        = flag.String("synthetic", "", "serve a synthetic corpus instead: movielens or douban")
		algo             = flag.String("algo", "AC2", "default algorithm: "+strings.Join(longtail.AlgorithmNames(), ", "))
		topics           = flag.Int("topics", 20, "LDA topics (AC2/LDA)")
		seed             = flag.Int64("seed", 42, "seed for the synthetic corpus")
		cacheSize        = flag.Int("cache-size", 4096, "recommendation result cache entries (0 disables caching)")
		compactThreshold = flag.Int("compact-threshold", 1024, "live writes buffered in the graph delta overlay before auto-compaction")
		autoGrow         = flag.Bool("auto-grow", true, "admit ratings from unseen users/items, growing the serving universe live")
		requestTimeout   = flag.Duration("request-timeout", 0, "per-request deadline for the recommendation endpoints (0 disables); an expired deadline cancels the walk mid-sweep")
	)
	flag.Parse()
	if err := run(*addr, *in, *format, *synthetic, *algo, *topics, *seed, *cacheSize, *compactThreshold, *autoGrow, *requestTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-server: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, in, format, synthetic, algo string, topics int, seed int64, cacheSize, compactThreshold int, autoGrow bool, requestTimeout time.Duration) error {
	data, err := loadData(in, format, synthetic, seed)
	if err != nil {
		return err
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = topics
	cfg.Seed = seed
	cfg.CacheSize = cacheSize
	cfg.CompactThreshold = compactThreshold
	cfg.AutoGrow = autoGrow
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "ltr-server ", log.LstdFlags)
	srv, err := server.New(sys, server.Options{
		Addr:             addr,
		DefaultAlgorithm: algo,
		Logger:           logger,
		RequestTimeout:   requestTimeout,
	})
	if err != nil {
		return err
	}
	st := data.Summarize()
	logger.Printf("serving %d users / %d items / %d ratings on %s (default algorithm %s, cache %d entries, compact every %d writes, auto-grow %v)",
		st.NumUsers, st.NumItems, st.NumRatings, addr, algo, cacheSize, compactThreshold, autoGrow)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		return srv.Shutdown(context.Background())
	}
}

func loadData(in, format, synthetic string, seed int64) (*longtail.Dataset, error) {
	if synthetic != "" {
		var w *longtail.World
		var err error
		switch synthetic {
		case "movielens":
			w, err = longtail.GenerateMovieLensLike(seed)
		case "douban":
			w, err = longtail.GenerateDoubanLike(seed)
		default:
			return nil, fmt.Errorf("unknown synthetic corpus %q (want movielens or douban)", synthetic)
		}
		if err != nil {
			return nil, err
		}
		return w.Data, nil
	}
	if in == "" {
		return nil, fmt.Errorf("-in is required (or pass -synthetic movielens)")
	}
	if format == "ltrz" {
		var d *longtail.Dataset
		err := persist.LoadFile(in, func(r io.Reader) error {
			var lerr error
			d, lerr = persist.LoadDataset(r)
			return lerr
		})
		return d, err
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, err
	}
	return loaded.Data, nil
}
