// Command ltr-server serves long-tail recommendations over HTTP/JSON.
//
//	ltr-server -addr :8080 -in ratings.tsv -format tsv
//	ltr-server -in snapshot.ltrz -format ltrz          # persist container
//	ltr-server -synthetic movielens                    # demo corpus
//	ltr-server -synthetic movielens -cache-size 16384  # bigger result cache
//
// Endpoints: /v1/health, /v1/stats, /v1/algorithms,
// /v1/recommend?user=&algo=&k=, POST /v1/ratings (live rating ingest),
// /v1/explain?user=&item=, /v1/users/{id}, /v1/items/{id},
// /v1/items/{id}/similar?k=.
//
// Serving is live: POST /v1/ratings writes land in the graph's delta
// overlay immediately and invalidate the recommendation result cache via
// the graph epoch. -cache-size sizes that cache (0 disables it);
// -compact-threshold controls how many overlay writes accumulate before
// they are folded back into the CSR. With -shards N > 1 serving is
// partitioned across N user-sharded replicas, each with its own graph,
// cache and epoch, so a write invalidates only its own shard's cached
// results (the default, 1, is the single-replica stack); -evict-interval
// runs a background janitor that periodically reclaims the memory of
// cache entries stranded by epoch bumps. With -auto-grow (the default)
// the universe is open: ratings from users and items the corpus has
// never seen are admitted and grow the serving graph, and brand-new
// users get the deterministic popularity fallback from /v1/recommend
// until their first ratings land; -auto-grow=false restores the closed
// universe (unseen ids 404).
//
// With -wal-dir set, live writes are durable: each accepted rating is
// group-committed to an append-only, checksummed, fsync'd write-ahead
// log before it is acknowledged, a background loop periodically writes
// an atomic checkpoint and truncates the log (-checkpoint-interval),
// and startup recovers checkpoint + log tail — a crash or restart loses
// no acknowledged write. -wal-sync-interval widens the group-commit
// window (more writes per fsync, more latency per write); -wal-max-batch
// caps it.
//
// The process shuts down gracefully on SIGINT/SIGTERM; with -wal-dir the
// shutdown flushes the pending commit batch and writes a final
// checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"longtailrec"
	"longtailrec/internal/dataset"
	"longtailrec/internal/persist"
	"longtailrec/internal/server"
)

// options collects the flag values run needs.
type options struct {
	addr, in, format, synthetic, algo string
	topics                            int
	seed                              int64
	cacheSize, compactThreshold       int
	shards                            int
	autoGrow                          bool
	requestTimeout                    time.Duration
	evictInterval                     time.Duration
	walDir                            string
	walSyncInterval                   time.Duration
	walMaxBatch                       int
	checkpointInterval                time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.in, "in", "", "ratings file path (required unless -synthetic)")
	flag.StringVar(&o.format, "format", "tsv", "input format: tsv, csv, movielens or ltrz")
	flag.StringVar(&o.synthetic, "synthetic", "", "serve a synthetic corpus instead: "+strings.Join(longtail.WorldKinds(), ", "))
	flag.StringVar(&o.algo, "algo", "AC2", "default algorithm: "+strings.Join(longtail.AlgorithmNames(), ", "))
	flag.IntVar(&o.topics, "topics", 20, "LDA topics (AC2/LDA)")
	flag.Int64Var(&o.seed, "seed", 42, "seed for the synthetic corpus")
	flag.IntVar(&o.cacheSize, "cache-size", 4096, "recommendation result cache entries across all shards (0 disables caching)")
	flag.IntVar(&o.compactThreshold, "compact-threshold", 1024, "live writes buffered in a graph delta overlay before auto-compaction")
	flag.IntVar(&o.shards, "shards", 1, "user-partitioned serving replicas, each with its own graph, cache and epoch (1 = single-replica serving)")
	flag.BoolVar(&o.autoGrow, "auto-grow", true, "admit ratings from unseen users/items, growing the serving universe live")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 0, "per-request deadline for the recommendation endpoints (0 disables); an expired deadline cancels the walk mid-sweep")
	flag.DurationVar(&o.evictInterval, "evict-interval", time.Minute, "how often the background janitor sweeps stale (epoch-invalidated) cache entries (0 disables the janitor)")
	flag.StringVar(&o.walDir, "wal-dir", "", "directory for the write-ahead log and checkpoint; enables durable live writes with crash recovery on startup (empty = in-memory serving)")
	flag.DurationVar(&o.walSyncInterval, "wal-sync-interval", 0, "group-commit window: how long the first writer of a batch waits for company before its fsync (0 = commit immediately, batching only under concurrency)")
	flag.IntVar(&o.walMaxBatch, "wal-max-batch", 64, "max live writes per group-commit batch (one fsync per batch)")
	flag.DurationVar(&o.checkpointInterval, "checkpoint-interval", 5*time.Minute, "how often to converge shard replicas, write an atomic checkpoint and truncate the WAL behind it (0 disables; needs -wal-dir)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-server: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	data, err := loadData(o.in, o.format, o.synthetic, o.seed)
	if err != nil {
		return err
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = o.topics
	cfg.Seed = o.seed
	cfg.CacheSize = o.cacheSize
	cfg.CompactThreshold = o.compactThreshold
	cfg.AutoGrow = o.autoGrow
	cfg.ShardCount = o.shards
	cfg.WALDir = o.walDir
	cfg.WALMaxBatch = o.walMaxBatch
	cfg.WALMaxDelay = o.walSyncInterval
	sys, err := longtail.NewSystem(data, cfg)
	if err != nil {
		return err
	}
	// Close flushes the pending group-commit batch and writes the final
	// checkpoint — a graceful shutdown loses no acknowledged write and
	// restarts from the checkpoint alone. No-op without -wal-dir.
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			log.Printf("ltr-server: close: %v", cerr)
		}
	}()
	logger := log.New(os.Stderr, "ltr-server ", log.LstdFlags)
	srv, err := server.New(sys, server.Options{
		Addr:             o.addr,
		DefaultAlgorithm: o.algo,
		Logger:           logger,
		RequestTimeout:   o.requestTimeout,
	})
	if err != nil {
		return err
	}
	st := data.Summarize()
	durability := "off"
	if o.walDir != "" {
		durability = o.walDir
	}
	logger.Printf("serving %d users / %d items / %d ratings on %s (default algorithm %s, %d shards, cache %d entries, compact every %d writes, auto-grow %v, wal %s)",
		st.NumUsers, st.NumItems, st.NumRatings, o.addr, o.algo, sys.ShardCount(), o.cacheSize, o.compactThreshold, o.autoGrow, durability)

	// Background cache janitor: epoch bumps make stale entries
	// unreachable but not free — the ticker reclaims their memory so a
	// write-heavy stream cannot pin dead results until LRU pressure gets
	// to them. Stopped cleanly (goroutine joined) on shutdown.
	if o.evictInterval > 0 && o.cacheSize > 0 {
		janitorStop := make(chan struct{})
		var janitorWG sync.WaitGroup
		janitorWG.Add(1)
		go func() {
			defer janitorWG.Done()
			ticker := time.NewTicker(o.evictInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if n := sys.EvictStaleCache(); n > 0 {
						logger.Printf("cache janitor: evicted %d stale entries", n)
					}
				case <-janitorStop:
					return
				}
			}
		}()
		defer func() {
			close(janitorStop)
			janitorWG.Wait()
		}()
	}

	// Background snapshot refresher: periodically converges the shard
	// replicas (replaying the WAL tail into the shards that did not
	// originally receive each write), writes an atomic checkpoint and
	// truncates the log behind it — bounding both replay time after a
	// crash and the cross-shard consistency gap. Joined before sys.Close
	// runs so the final checkpoint never races a periodic one.
	if o.walDir != "" && o.checkpointInterval > 0 {
		refreshStop := make(chan struct{})
		var refreshWG sync.WaitGroup
		refreshWG.Add(1)
		go func() {
			defer refreshWG.Done()
			ticker := time.NewTicker(o.checkpointInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := sys.SnapshotRefresh(); err != nil {
						logger.Printf("snapshot refresh: %v", err)
					}
				case <-refreshStop:
					return
				}
			}
		}()
		defer func() {
			close(refreshStop)
			refreshWG.Wait()
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		return srv.Shutdown(context.Background())
	}
}

func loadData(in, format, synthetic string, seed int64) (*longtail.Dataset, error) {
	if synthetic != "" {
		w, err := longtail.GenerateWorld(synthetic, seed)
		if err != nil {
			return nil, err
		}
		return w.Data, nil
	}
	if in == "" {
		return nil, fmt.Errorf("-in is required (or pass -synthetic movielens)")
	}
	if format == "ltrz" {
		var d *longtail.Dataset
		err := persist.LoadFile(in, func(r io.Reader) error {
			var lerr error
			d, lerr = persist.LoadDataset(r)
			return lerr
		})
		return d, err
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, err
	}
	return loaded.Data, nil
}
