// Command ltr-stats summarizes a rating corpus the way §5.1.2 describes
// the paper's datasets: universe sizes, density, degree ranges, the Pareto
// (hits-vs-niche) curve of Figure 1, and the long-tail split at a chosen
// rating share. Optionally applies k-core preprocessing first.
//
//	ltr-stats -in ratings.tsv
//	ltr-stats -in ml-1m/ratings.dat -format movielens -kcore 20,1 -tail 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"longtailrec/internal/dataset"
)

func main() {
	var (
		in     = flag.String("in", "", "ratings file path (required)")
		format = flag.String("format", "tsv", "input format: tsv, csv or movielens")
		tail   = flag.Float64("tail", 0.2, "rating share defining the long tail")
		kcore  = flag.String("kcore", "", "optional 'minUserDeg,minItemDeg' k-core filter")
	)
	flag.Parse()
	if err := run(*in, *format, *tail, *kcore); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-stats: %v\n", err)
		os.Exit(1)
	}
}

func run(in, format string, tailShare float64, kcore string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	d := loaded.Data
	if kcore != "" {
		parts := strings.SplitN(kcore, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-kcore wants 'minUserDeg,minItemDeg'")
		}
		mu, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("-kcore user threshold: %v", err)
		}
		mi, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("-kcore item threshold: %v", err)
		}
		before := d.NumRatings()
		d, err = d.KCore(mu, mi)
		if err != nil {
			return err
		}
		fmt.Printf("k-core(%d,%d): %d -> %d ratings\n\n", mu, mi, before, d.NumRatings())
	}

	s := d.Summarize()
	fmt.Printf("users    %d\n", s.NumUsers)
	fmt.Printf("items    %d\n", s.NumItems)
	fmt.Printf("ratings  %d\n", s.NumRatings)
	fmt.Printf("density  %.4f%%\n", 100*s.Density)
	fmt.Printf("user degree  [%d, %d]\n", s.MinUserDegree, s.MaxUserDegree)
	fmt.Printf("item degree  [%d, %d]\n", s.MinItemDegree, s.MaxItemDegree)
	fmt.Printf("mean score   %.2f\n\n", s.MeanScore)

	// Pareto curve.
	pop := d.ItemPopularity()
	sorted := append([]int(nil), pop...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, p := range sorted {
		total += p
	}
	fmt.Println("Pareto curve:")
	acc, next := 0, 0.1
	for i, p := range sorted {
		acc += p
		share := float64(i+1) / float64(len(sorted))
		for share >= next-1e-9 && next <= 1.0 {
			fmt.Printf("  top %3.0f%% of items -> %5.1f%% of ratings\n",
				next*100, 100*float64(acc)/float64(total))
			next += 0.1
		}
	}
	tailItems := d.LongTailItems(tailShare)
	fmt.Printf("\nlong tail at %.0f%% of ratings: %d items (%.1f%% of catalog)\n",
		100*tailShare, len(tailItems), 100*float64(len(tailItems))/float64(d.NumItems()))
	return nil
}
