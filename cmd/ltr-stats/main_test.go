package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRatings(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	lines := []string{
		"u1\ti1\t5", "u1\ti2\t4", "u1\ti3\t3",
		"u2\ti1\t4", "u2\ti2\t5",
		"u3\ti1\t3", "u3\ti4\t5",
		"u4\ti1\t2", "u4\ti2\t4", "u4\ti5\t5",
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsStats(t *testing.T) {
	path := writeRatings(t)
	if err := run(path, "tsv", 0.2, ""); err != nil {
		t.Fatal(err)
	}
	// With a k-core filter.
	if err := run(path, "tsv", 0.2, "2,2"); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeRatings(t)
	if err := run("", "tsv", 0.2, ""); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(path, "nope", 0.2, ""); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(path, "tsv", 0.2, "notanumber"); err == nil {
		t.Fatal("bad k-core spec accepted")
	}
	if err := run(path, "tsv", 0.2, "5"); err == nil {
		t.Fatal("single-field k-core spec accepted")
	}
	if err := run("/does/not/exist", "tsv", 0.2, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
