package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRatings(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	var lines []string
	// Two taste communities for interpretable topics.
	for u := 0; u < 5; u++ {
		for i := 0; i < 5; i++ {
			lines = append(lines, strings.Join([]string{
				"a" + string(rune('0'+u)), "x" + string(rune('0'+i)), "5",
			}, "\t"))
		}
	}
	for u := 0; u < 5; u++ {
		for i := 0; i < 5; i++ {
			lines = append(lines, strings.Join([]string{
				"b" + string(rune('0'+u)), "y" + string(rune('0'+i)), "4",
			}, "\t"))
		}
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainsAndReports(t *testing.T) {
	path := writeRatings(t)
	if err := run(path, "tsv", 2, 15, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
	// With an LL trace enabled.
	if err := run(path, "tsv", 2, 12, 3, 1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeRatings(t)
	if err := run("", "tsv", 2, 5, 3, 1, 0); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(path, "nope", 2, 5, 3, 1, 0); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(path, "tsv", 0, 5, 3, 1, 0); err == nil {
		t.Fatal("zero topics accepted")
	}
}
