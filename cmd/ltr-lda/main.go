// Command ltr-lda trains the paper's rating-LDA (Algorithm 2) on a ratings
// file and prints the top items per topic — the Table 1 readout — plus the
// topic-based user-entropy distribution that powers the AC2 recommender:
//
//	ltr-lda -in ratings.tsv -format tsv -topics 8 -iters 50 -top 5
//
// It also reports model-quality diagnostics: training perplexity, UMass
// topic coherence, and (with -trace N) the log-likelihood trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"longtailrec/internal/dataset"
	"longtailrec/internal/entropy"
	"longtailrec/internal/lda"
)

func main() {
	var (
		in     = flag.String("in", "", "ratings file path (required)")
		format = flag.String("format", "tsv", "input format: tsv, csv or movielens")
		topics = flag.Int("topics", 8, "number of latent topics K")
		iters  = flag.Int("iters", 50, "Gibbs sweeps")
		top    = flag.Int("top", 5, "items to print per topic")
		seed   = flag.Int64("seed", 1, "sampler seed")
		trace  = flag.Int("trace", 0, "record log-likelihood every N sweeps (0 = off)")
	)
	flag.Parse()
	if err := run(*in, *format, *topics, *iters, *top, *seed, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-lda: %v\n", err)
		os.Exit(1)
	}
}

func run(in, format string, topics, iters, top int, seed int64, trace int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	model, err := lda.Train(loaded.Data, lda.Config{NumTopics: topics, Iterations: iters, Seed: seed, TraceEvery: trace})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d-topic LDA on %d users / %d items / %d ratings\n\n",
		topics, loaded.Data.NumUsers(), loaded.Data.NumItems(), loaded.Data.NumRatings())
	if trace > 0 {
		fmt.Println("convergence (training log-likelihood):")
		for _, p := range model.Trace() {
			fmt.Printf("  sweep %3d  LL %.1f\n", p.Iteration, p.LogLikelihood)
		}
		fmt.Println()
	}
	for z := 0; z < topics; z++ {
		fmt.Printf("Topic %d:\n", z+1)
		for _, ti := range model.TopItems(z, top) {
			fmt.Printf("  item %-12s p=%.4f\n", loaded.Items.Name(ti.Item), ti.Prob)
		}
	}
	// Entropy distribution summary (what AC2 consumes).
	ents := entropy.AllTopicBased(model)
	sort.Float64s(ents)
	q := func(p float64) float64 { return ents[int(p*float64(len(ents)-1))] }
	fmt.Printf("\ntopic-based user entropy: min %.3f  p25 %.3f  median %.3f  p75 %.3f  max %.3f\n",
		q(0), q(0.25), q(0.5), q(0.75), q(1))
	// Model-quality diagnostics.
	coherence, err := model.MeanCoherence(loaded.Data, max(2, top))
	if err != nil {
		return err
	}
	fmt.Printf("training perplexity %.1f (uniform would be %d)  mean UMass coherence %.2f\n",
		model.Perplexity(loaded.Data), loaded.Data.NumItems(), coherence)
	return nil
}
