// Command ltr-export converts ratings into the binary .ltrz container and
// optionally trains and persists model artifacts next to it, so that
// ltr-server (and any embedder of internal/persist) can skip the offline
// phase at startup:
//
//	ltr-export -in ratings.tsv -format tsv -out corpus.ltrz
//	ltr-export -in ratings.tsv -out corpus.ltrz -models lda,biasedmf,puresvd
//	ltr-export -synthetic movielens -out demo.ltrz
//
// Model artifacts are written as <out base>.<model>.ltrz.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"longtailrec"
	"longtailrec/internal/dataset"
	"longtailrec/internal/lda"
	"longtailrec/internal/mf"
	"longtailrec/internal/persist"
	"longtailrec/internal/svd"
)

func main() {
	var (
		in        = flag.String("in", "", "ratings file path (required unless -synthetic)")
		format    = flag.String("format", "tsv", "input format: tsv, csv or movielens")
		out       = flag.String("out", "", "output .ltrz path (required)")
		synthetic = flag.String("synthetic", "", "export a synthetic corpus instead: movielens or douban")
		models    = flag.String("models", "", "comma-separated models to train and persist: lda, biasedmf, puresvd")
		topics    = flag.Int("topics", 20, "LDA topics")
		rank      = flag.Int("rank", 50, "PureSVD rank")
		seed      = flag.Int64("seed", 42, "training / synthesis seed")
	)
	flag.Parse()
	if err := run(*in, *format, *out, *synthetic, *models, *topics, *rank, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-export: %v\n", err)
		os.Exit(1)
	}
}

func run(in, format, out, synthetic, models string, topics, rank int, seed int64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	data, err := loadData(in, format, synthetic, seed)
	if err != nil {
		return err
	}
	if err := persist.SaveFile(out, func(w io.Writer) error {
		return persist.SaveDataset(w, data)
	}); err != nil {
		return err
	}
	st := data.Summarize()
	fmt.Printf("wrote %s: %d users / %d items / %d ratings\n", out, st.NumUsers, st.NumItems, st.NumRatings)

	base := strings.TrimSuffix(out, ".ltrz")
	for _, model := range strings.Split(models, ",") {
		model = strings.TrimSpace(model)
		if model == "" {
			continue
		}
		path := fmt.Sprintf("%s.%s.ltrz", base, model)
		start := time.Now()
		var saveErr error
		switch model {
		case "lda":
			m, err := lda.Train(data, lda.Config{NumTopics: topics, Seed: seed})
			if err != nil {
				return fmt.Errorf("train lda: %w", err)
			}
			saveErr = persist.SaveFile(path, func(w io.Writer) error { return persist.SaveLDA(w, m) })
		case "biasedmf":
			opts := mf.DefaultOptions()
			opts.Seed = seed
			m, err := mf.TrainBiasedMF(data, opts)
			if err != nil {
				return fmt.Errorf("train biasedmf: %w", err)
			}
			saveErr = persist.SaveFile(path, func(w io.Writer) error { return persist.SaveBiasedMF(w, m) })
		case "puresvd":
			effRank := rank
			if maxRank := min(data.NumUsers(), data.NumItems()); effRank > maxRank {
				effRank = maxRank
			}
			m, err := svd.NewPureSVD(data, svd.Options{Rank: effRank, Seed: seed})
			if err != nil {
				return fmt.Errorf("train puresvd: %w", err)
			}
			saveErr = persist.SaveFile(path, func(w io.Writer) error { return persist.SavePureSVD(w, m) })
		default:
			return fmt.Errorf("unknown model %q (want lda, biasedmf or puresvd)", model)
		}
		if saveErr != nil {
			return saveErr
		}
		fmt.Printf("wrote %s (trained in %s)\n", path, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func loadData(in, format, synthetic string, seed int64) (*longtail.Dataset, error) {
	if synthetic != "" {
		var w *longtail.World
		var err error
		switch synthetic {
		case "movielens":
			w, err = longtail.GenerateMovieLensLike(seed)
		case "douban":
			w, err = longtail.GenerateDoubanLike(seed)
		default:
			return nil, fmt.Errorf("unknown synthetic corpus %q", synthetic)
		}
		if err != nil {
			return nil, err
		}
		return w.Data, nil
	}
	if in == "" {
		return nil, fmt.Errorf("-in is required (or pass -synthetic movielens)")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, err
	}
	return loaded.Data, nil
}
