package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"longtailrec/internal/persist"
)

func writeTSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	lines := []string{
		"u1\ti1\t5", "u1\ti2\t4", "u1\ti3\t3",
		"u2\ti1\t4", "u2\ti3\t5",
		"u3\ti2\t2", "u3\ti4\t5",
		"u4\ti4\t4", "u4\ti1\t3",
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExportsDatasetAndModels(t *testing.T) {
	in := writeTSV(t)
	out := filepath.Join(t.TempDir(), "corpus.ltrz")
	if err := run(in, "tsv", out, "", "lda,biasedmf,puresvd", 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	// The dataset container must reload into the same corpus.
	if err := persist.LoadFile(out, func(r io.Reader) error {
		d, err := persist.LoadDataset(r)
		if err != nil {
			return err
		}
		if d.NumRatings() != 9 {
			t.Fatalf("ratings %d", d.NumRatings())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Every model artifact exists and loads.
	base := strings.TrimSuffix(out, ".ltrz")
	if err := persist.LoadFile(base+".lda.ltrz", func(r io.Reader) error {
		_, err := persist.LoadLDA(r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := persist.LoadFile(base+".biasedmf.ltrz", func(r io.Reader) error {
		_, err := persist.LoadBiasedMF(r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base + ".puresvd.ltrz"); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	in := writeTSV(t)
	out := filepath.Join(t.TempDir(), "c.ltrz")
	if err := run(in, "tsv", "", "", "", 2, 2, 1); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run("", "tsv", out, "", "", 2, 2, 1); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(in, "nope", out, "", "", 2, 2, 1); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(in, "tsv", out, "", "notamodel", 2, 2, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run("", "tsv", out, "neither", "", 2, 2, 1); err == nil {
		t.Fatal("unknown synthetic corpus accepted")
	}
	if err := run("/does/not/exist.tsv", "tsv", out, "", "", 2, 2, 1); err == nil {
		t.Fatal("missing input file accepted")
	}
}
