package main

import (
	"strings"
	"testing"

	"longtailrec/internal/experiments"
)

func quickRunner() *runner {
	return &runner{
		scale:  experiments.Scale{TestRatings: 10, Negatives: 40, PanelUsers: 8, Evaluators: 4, MaxN: 10, ListSize: 5},
		seed:   3,
		envs:   map[string]*experiments.Env{},
		panels: map[string]*experiments.ListPanel{},
	}
}

func TestExperimentFig2(t *testing.T) {
	// fig2 needs no environment: the fastest end-to-end dispatch check.
	text, err := quickRunner().experiment("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "M4") {
		t.Fatalf("fig2 output missing the niche movie: %s", text)
	}
}

func TestExperimentUnknownID(t *testing.T) {
	if _, err := quickRunner().experiment("nope"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run("fig2", "gigantic", 1); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run(" , ,", "quick", 1); err == nil {
		t.Fatal("empty experiment list accepted")
	}
}
