// Command ltr-bench regenerates every table and figure of the paper's
// evaluation section on the synthetic substitute corpora:
//
//	ltr-bench -exp all -scale quick
//	ltr-bench -exp fig5a,table2 -scale full -seed 7
//
// Experiment ids follow the paper: fig2 (worked example), table1 (LDA
// topics), fig5a/fig5b (Recall@N on MovieLens-like/Douban-like),
// fig6a/fig6b (Popularity@N on Douban-like/MovieLens-like), table2
// (diversity), table3 (similarity), table4 (µ sweep), table5 (timing),
// table6 (simulated user study); plus the extensions gini (sales-diversity
// aggregates), ranking (MRR/NDCG on the Figure 5 protocol), beyond
// (novelty / serendipity / intra-list-similarity / coverage) and
// throughput (RecommendBatch scaling across cores).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"longtailrec/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (choices: "+strings.Join(experiments.Names(), ", ")+")")
		scaleFlag = flag.String("scale", "quick", "protocol scale: quick or full")
		seedFlag  = flag.Int64("seed", 42, "random seed for corpus generation and protocols")
	)
	flag.Parse()
	if err := run(*expFlag, *scaleFlag, *seedFlag); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-bench: %v\n", err)
		os.Exit(1)
	}
}

// runner caches environments and panel measurements shared across
// experiments (fig6a, table2, table3 and table5 all come from one Lists
// pass per dataset).
type runner struct {
	scale  experiments.Scale
	seed   int64
	envs   map[string]*experiments.Env
	panels map[string]*experiments.ListPanel
}

func run(expFlag, scaleFlag string, seed int64) error {
	var scale experiments.Scale
	switch scaleFlag {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleFlag)
	}
	var ids []string
	if expFlag == "all" {
		ids = []string{"fig2", "table1", "fig5a", "fig5b", "fig6a", "fig6b", "table2", "table3", "table4", "table5", "table6", "gini", "ranking", "beyond", "strata", "throughput"}
	} else {
		for _, id := range strings.Split(expFlag, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	r := &runner{
		scale:  scale,
		seed:   seed,
		envs:   make(map[string]*experiments.Env),
		panels: make(map[string]*experiments.ListPanel),
	}
	for _, id := range ids {
		start := time.Now()
		text, err := r.experiment(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(text)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return nil
}

func (r *runner) env(kind string) (*experiments.Env, error) {
	if e, ok := r.envs[kind]; ok {
		return e, nil
	}
	fmt.Printf("... preparing %s environment\n", kind)
	e, err := experiments.NewEnv(kind, r.scale, r.seed)
	if err != nil {
		return nil, err
	}
	r.envs[kind] = e
	return e, nil
}

func (r *runner) panel(kind string) (*experiments.ListPanel, error) {
	if p, ok := r.panels[kind]; ok {
		return p, nil
	}
	e, err := r.env(kind)
	if err != nil {
		return nil, err
	}
	p, err := experiments.ListExperiments(e)
	if err != nil {
		return nil, err
	}
	r.panels[kind] = p
	return p, nil
}

func (r *runner) experiment(id string) (string, error) {
	switch id {
	case "fig2":
		res, err := experiments.Figure2()
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "table1":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.Table1(e, 2, 5)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "fig5a", "fig5b":
		kind := "movielens"
		if id == "fig5b" {
			kind = "douban"
		}
		e, err := r.env(kind)
		if err != nil {
			return "", err
		}
		res, err := experiments.Figure5(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "fig6a", "fig6b":
		kind := "douban"
		if id == "fig6b" {
			kind = "movielens"
		}
		p, err := r.panel(kind)
		if err != nil {
			return "", err
		}
		return experiments.Figure6Text(p), nil
	case "table2", "table3", "table5":
		// The paper reports these on Douban; the panel text covers all
		// three columns.
		p, err := r.panel("douban")
		if err != nil {
			return "", err
		}
		return p.Text, nil
	case "table4":
		e, err := r.env("douban")
		if err != nil {
			return "", err
		}
		res, err := experiments.Table4(e, nil)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "table6":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.Table6(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "gini":
		e, err := r.env("douban")
		if err != nil {
			return "", err
		}
		res, err := experiments.SalesDiversityExperiment(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "ranking":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.RankingExperiment(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "beyond":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.BeyondAccuracyExperiment(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "strata":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.StratifiedExperiment(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "throughput":
		e, err := r.env("movielens")
		if err != nil {
			return "", err
		}
		res, err := experiments.ThroughputExperiment(e)
		if err != nil {
			return "", err
		}
		return res.Text, nil
	default:
		return "", fmt.Errorf("unknown experiment (choices: %s)", strings.Join(experiments.Names(), ", "))
	}
}
