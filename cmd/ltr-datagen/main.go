// Command ltr-datagen generates a synthetic rating corpus shaped like the
// paper's MovieLens or Douban datasets and writes it as TSV
// (user \t item \t score), with optional ground-truth sidecars:
//
//	ltr-datagen -kind movielens -out ratings.tsv
//	ltr-datagen -kind douban -seed 7 -out douban.tsv -genres genres.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"longtailrec/internal/dataset"
	"longtailrec/internal/synth"
)

func main() {
	var (
		kind   = flag.String("kind", "movielens", "corpus shape: movielens or douban")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "-", "output path for ratings TSV ('-' = stdout)")
		genres = flag.String("genres", "", "optional path for the item→genre ground-truth TSV")
		users  = flag.Int("users", 0, "override user count")
		items  = flag.Int("items", 0, "override item count")
	)
	flag.Parse()
	if err := run(*kind, *seed, *out, *genres, *users, *items); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, out, genres string, users, items int) error {
	var cfg synth.Config
	switch kind {
	case "movielens":
		cfg = synth.MovieLensLike()
	case "douban":
		cfg = synth.DoubanLike()
	default:
		return fmt.Errorf("unknown kind %q (want movielens or douban)", kind)
	}
	cfg.Seed = seed
	if users > 0 {
		cfg.NumUsers = users
	}
	if items > 0 {
		cfg.NumItems = items
	}
	world, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	s := world.Data.Summarize()
	fmt.Fprintf(os.Stderr, "generated %d users x %d items, %d ratings (density %.3f%%, tail fraction %.2f)\n",
		s.NumUsers, s.NumItems, s.NumRatings, 100*s.Density, s.TailItemFraction)

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteTSV(w, world.Data); err != nil {
		return err
	}
	if genres != "" {
		f, err := os.Create(genres)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for item, g := range world.ItemGenre {
			fmt.Fprintf(bw, "%d\t%d\t%d\n", item, g, world.ItemSubgenre[item])
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
