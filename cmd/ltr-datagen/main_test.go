package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesRatingsAndGenres(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ratings.tsv")
	genres := filepath.Join(dir, "genres.tsv")
	if err := run("movielens", 3, out, genres, 60, 80); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d rating lines", len(lines))
	}
	for _, line := range lines[:5] {
		if len(strings.Split(line, "\t")) != 3 {
			t.Fatalf("bad TSV line %q", line)
		}
	}
	graw, err := os.ReadFile(genres)
	if err != nil {
		t.Fatal(err)
	}
	glines := strings.Split(strings.TrimSpace(string(graw)), "\n")
	if len(glines) != 80 {
		t.Fatalf("genre sidecar has %d lines, want 80", len(glines))
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("neither", 1, filepath.Join(t.TempDir(), "x.tsv"), "", 0, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run("movielens", 1, filepath.Join(t.TempDir(), "no", "such", "dir", "x.tsv"), "", 50, 60); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
