// Command ltr-recommend produces top-k recommendations for a user from a
// ratings file using any algorithm in the suite:
//
//	ltr-recommend -in ratings.tsv -format tsv -user 42 -algo AC2 -k 10
//	ltr-recommend -in ml-1m/ratings.dat -format movielens -user 1 -algo HT
//
// Output columns: rank, item id (original), score, item popularity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"longtailrec"
	"longtailrec/internal/dataset"
)

func main() {
	var (
		in     = flag.String("in", "", "ratings file path (required)")
		format = flag.String("format", "tsv", "input format: tsv, csv or movielens")
		user   = flag.String("user", "", "user id as it appears in the file (required)")
		algo   = flag.String("algo", "AC2", "algorithm: "+strings.Join(longtail.AlgorithmNames(), ", "))
		k      = flag.Int("k", 10, "number of recommendations")
		topics = flag.Int("topics", 20, "LDA topics (AC2/LDA)")
	)
	flag.Parse()
	if err := run(*in, *format, *user, *algo, *k, *topics); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-recommend: %v\n", err)
		os.Exit(1)
	}
}

func run(in, format, user, algo string, k, topics int) error {
	if in == "" || user == "" {
		return fmt.Errorf("-in and -user are required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	u, ok := loaded.Users.Lookup(user)
	if !ok {
		return fmt.Errorf("user %q not found in %s", user, in)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = topics
	sys, err := longtail.NewSystem(loaded.Data, cfg)
	if err != nil {
		return err
	}
	rec, err := sys.Algorithm(algo)
	if err != nil {
		return err
	}
	recs, err := rec.Recommend(u, k)
	if err != nil {
		return err
	}
	pop := loaded.Data.ItemPopularity()
	fmt.Printf("top-%d recommendations for user %s by %s over %d users / %d items / %d ratings:\n",
		k, user, rec.Name(), loaded.Data.NumUsers(), loaded.Data.NumItems(), loaded.Data.NumRatings())
	for rank, r := range recs {
		fmt.Printf("%2d. item %-12s score %12.4f  popularity %d\n",
			rank+1, loaded.Items.Name(r.Item), r.Score, pop[r.Item])
	}
	if len(recs) == 0 {
		fmt.Println("(no recommendations: user may be disconnected from the catalog)")
	}
	return nil
}
