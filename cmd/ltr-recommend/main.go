// Command ltr-recommend produces top-k recommendations for a user from a
// ratings file using any algorithm in the suite:
//
//	ltr-recommend -in ratings.tsv -format tsv -user 42 -algo AC2 -k 10
//	ltr-recommend -in ml-1m/ratings.dat -format movielens -user 1 -algo HT
//
// Per-request serving options mirror the HTTP API:
//
//	-exclude i1,i2        exclude these items (beyond the user's rated set)
//	-candidates i1,i2     restrict the result to this item slate
//	-long-tail-only 0.2   keep only the least-popular 20% of the catalog
//	-timeout 500ms        deadline the whole query (cancels mid-walk)
//	-fallback             serve the popularity list when the user is cold
//
// Output columns: rank, item id (original), score, item popularity. A
// degraded (fallback) response is flagged in the header.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"longtailrec"
	"longtailrec/internal/dataset"
)

func main() {
	var (
		in         = flag.String("in", "", "ratings file path (required)")
		format     = flag.String("format", "tsv", "input format: tsv, csv or movielens")
		user       = flag.String("user", "", "user id as it appears in the file (required)")
		algo       = flag.String("algo", "AC2", "algorithm: "+strings.Join(longtail.AlgorithmNames(), ", "))
		k          = flag.Int("k", 10, "number of recommendations")
		topics     = flag.Int("topics", 20, "LDA topics (AC2/LDA)")
		exclude    = flag.String("exclude", "", "comma-separated item ids to exclude beyond the user's rated items")
		candidates = flag.String("candidates", "", "comma-separated item ids to restrict the result to")
		longTail   = flag.Float64("long-tail-only", 0, "popularity-percentile cutoff in (0,1]: only items at or below it are served (0 disables)")
		timeout    = flag.Duration("timeout", 0, "query deadline (0 means none); an expired deadline aborts the walk mid-sweep")
		fallback   = flag.Bool("fallback", false, "serve the deterministic popularity list when the user has no usable history")
	)
	flag.Parse()
	if err := run(*in, *format, *user, *algo, *exclude, *candidates, *k, *topics, *longTail, *timeout, *fallback); err != nil {
		fmt.Fprintf(os.Stderr, "ltr-recommend: %v\n", err)
		os.Exit(1)
	}
}

// parseItems resolves a comma-separated list of original item ids
// against the loaded corpus.
func parseItems(raw, flagName string, items *dataset.Interner) ([]int, error) {
	if raw == "" {
		return nil, nil
	}
	fields := strings.Split(raw, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		i, ok := items.Lookup(f)
		if !ok {
			return nil, fmt.Errorf("-%s: item %q not found in the corpus", flagName, f)
		}
		out = append(out, i)
	}
	return out, nil
}

func run(in, format, user, algo, exclude, candidates string, k, topics int, longTail float64, timeout time.Duration, fallback bool) error {
	if in == "" || user == "" {
		return fmt.Errorf("-in and -user are required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var loaded *dataset.Loaded
	switch format {
	case "tsv":
		loaded, err = dataset.LoadTSV(f)
	case "csv":
		loaded, err = dataset.LoadCSV(f)
	case "movielens":
		loaded, err = dataset.LoadMovieLens(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	u, ok := loaded.Users.Lookup(user)
	if !ok {
		return fmt.Errorf("user %q not found in %s", user, in)
	}
	excludeIdx, err := parseItems(exclude, "exclude", loaded.Items)
	if err != nil {
		return err
	}
	candidateIdx, err := parseItems(candidates, "candidates", loaded.Items)
	if err != nil {
		return err
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = topics
	sys, err := longtail.NewSystem(loaded.Data, cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := sys.Recommend(ctx, algo, longtail.Request{
		User:           u,
		K:              k,
		ExcludeItems:   excludeIdx,
		CandidateItems: candidateIdx,
		LongTailOnly:   longTail,
		AllowFallback:  fallback,
	})
	if err != nil {
		return err
	}
	pop := loaded.Data.ItemPopularity()
	note := ""
	if resp.Fallback {
		note = " [fallback: popularity list]"
	}
	fmt.Printf("top-%d recommendations for user %s by %s over %d users / %d items / %d ratings%s:\n",
		k, user, resp.Algo, loaded.Data.NumUsers(), loaded.Data.NumItems(), loaded.Data.NumRatings(), note)
	for rank, r := range resp.Items {
		fmt.Printf("%2d. item %-12s score %12.4f  popularity %d\n",
			rank+1, loaded.Items.Name(r.Item), r.Score, pop[r.Item])
	}
	if len(resp.Items) == 0 {
		fmt.Println("(no recommendations: user may be disconnected from the catalog, or the filters left nothing)")
	}
	return nil
}
