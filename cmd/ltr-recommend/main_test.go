package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRatings(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	lines := []string{
		"alice\tmatrix\t5", "alice\tinception\t4", "alice\tmemento\t5",
		"bob\tmatrix\t4", "bob\tmemento\t5", "bob\theat\t3",
		"carol\tinception\t5", "carol\theat\t4",
		"dave\tmatrix\t3", "dave\theat\t5",
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRecommends(t *testing.T) {
	path := writeRatings(t)
	for _, algo := range []string{"HT", "AT", "MostPopular"} {
		if err := run(path, "tsv", "alice", algo, 3, 2); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	path := writeRatings(t)
	if err := run("", "tsv", "alice", "AT", 3, 2); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(path, "tsv", "", "AT", 3, 2); err == nil {
		t.Fatal("missing -user accepted")
	}
	if err := run(path, "nope", "alice", "AT", 3, 2); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(path, "tsv", "nobody", "AT", 3, 2); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := run(path, "tsv", "alice", "Nope", 3, 2); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
