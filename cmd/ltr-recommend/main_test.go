package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeRatings(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	lines := []string{
		"alice\tmatrix\t5", "alice\tinception\t4", "alice\tmemento\t5",
		"bob\tmatrix\t4", "bob\tmemento\t5", "bob\theat\t3",
		"carol\tinception\t5", "carol\theat\t4",
		"dave\tmatrix\t3", "dave\theat\t5",
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runPlain is the option-free legacy invocation shape.
func runPlain(path, format, user, algo string, k, topics int) error {
	return run(path, format, user, algo, "", "", k, topics, 0, 0, false)
}

func TestRunRecommends(t *testing.T) {
	path := writeRatings(t)
	for _, algo := range []string{"HT", "AT", "MostPopular"} {
		if err := runPlain(path, "tsv", "alice", algo, 3, 2); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	path := writeRatings(t)
	if err := runPlain("", "tsv", "alice", "AT", 3, 2); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := runPlain(path, "tsv", "", "AT", 3, 2); err == nil {
		t.Fatal("missing -user accepted")
	}
	if err := runPlain(path, "nope", "alice", "AT", 3, 2); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := runPlain(path, "tsv", "nobody", "AT", 3, 2); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := runPlain(path, "tsv", "alice", "Nope", 3, 2); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunRequestOptions(t *testing.T) {
	path := writeRatings(t)
	// Candidate slate + exclusion + long-tail mode, all resolved by
	// original item names; a deadline generous enough to finish.
	if err := run(path, "tsv", "alice", "AT", "heat", "heat,matrix", 3, 2, 0.9, time.Minute, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "tsv", "alice", "AT", "ghost", "", 3, 2, 0, 0, false); err == nil {
		t.Fatal("unknown -exclude item accepted")
	}
	if err := run(path, "tsv", "alice", "AT", "", "ghost", 3, 2, 0, 0, false); err == nil {
		t.Fatal("unknown -candidates item accepted")
	}
	if err := run(path, "tsv", "alice", "AT", "", "", 3, 2, 7, 0, false); err == nil {
		t.Fatal("out-of-range -long-tail-only accepted")
	}
}
