// Package cf implements the classic neighborhood collaborative-filtering
// baselines the paper discusses in Sections 1–2: user-based kNN with
// Pearson or cosine similarity, item-based kNN, and the MostPopular
// non-personalized ranking. These recommenders exhibit exactly the
// popularity bias the paper's graph algorithms are designed to beat, which
// makes them useful comparators in the evaluation harness.
package cf

import (
	"fmt"
	"math"
	"sort"

	"longtailrec/internal/dataset"
)

// Similarity selects the user/item similarity measure.
type Similarity int

const (
	// Cosine similarity over the co-rated profile vectors.
	Cosine Similarity = iota
	// Pearson correlation over co-rated items (mean-centered per user).
	Pearson
)

func (s Similarity) String() string {
	switch s {
	case Cosine:
		return "cosine"
	case Pearson:
		return "pearson"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// profile is a sparse rating vector keyed by item (or user).
type profile map[int]float64

// UserKNN is a user-based k-nearest-neighbor recommender.
type UserKNN struct {
	data     *dataset.Dataset
	k        int
	sim      Similarity
	profiles []profile // per user: item -> score
	means    []float64 // per user mean rating (for Pearson)
}

// NewUserKNN builds the index. k is the neighborhood size.
func NewUserKNN(d *dataset.Dataset, k int, sim Similarity) (*UserKNN, error) {
	if k < 1 {
		return nil, fmt.Errorf("cf: k %d, need >= 1", k)
	}
	u := &UserKNN{data: d, k: k, sim: sim,
		profiles: make([]profile, d.NumUsers()),
		means:    make([]float64, d.NumUsers())}
	for user := 0; user < d.NumUsers(); user++ {
		rs := d.UserRatings(user)
		p := make(profile, len(rs))
		total := 0.0
		for _, r := range rs {
			p[r.Item] = r.Score
			total += r.Score
		}
		u.profiles[user] = p
		if len(rs) > 0 {
			u.means[user] = total / float64(len(rs))
		}
	}
	return u, nil
}

// similarity computes the configured similarity between users a and b.
func (u *UserKNN) similarity(a, b int) float64 {
	pa, pb := u.profiles[a], u.profiles[b]
	if len(pa) > len(pb) {
		pa, pb = pb, pa
		a, b = b, a
	}
	switch u.sim {
	case Cosine:
		dot := 0.0
		for item, wa := range pa {
			if wb, ok := pb[item]; ok {
				dot += wa * wb
			}
		}
		if dot == 0 {
			return 0
		}
		na, nb := 0.0, 0.0
		for _, w := range pa {
			na += w * w
		}
		for _, w := range pb {
			nb += w * w
		}
		return dot / math.Sqrt(na*nb)
	case Pearson:
		ma, mb := u.means[a], u.means[b]
		var num, da, db float64
		for item, wa := range pa {
			wb, ok := pb[item]
			if !ok {
				continue
			}
			xa, xb := wa-ma, wb-mb
			num += xa * xb
			da += xa * xa
			db += xb * xb
		}
		if da == 0 || db == 0 {
			return 0
		}
		return num / math.Sqrt(da*db)
	default:
		panic(fmt.Sprintf("cf: unknown similarity %d", int(u.sim)))
	}
}

// neighbor couples a candidate with its similarity.
type neighbor struct {
	id  int
	sim float64
}

// Neighbors returns the k most similar users to u (positive similarity
// only), sorted by descending similarity.
func (u *UserKNN) Neighbors(user int) []neighbor {
	// Candidate users: anyone sharing at least one item.
	cands := make(map[int]struct{})
	for item := range u.profiles[user] {
		for _, r := range u.data.ItemRatings(item) {
			if r.User != user {
				cands[r.User] = struct{}{}
			}
		}
	}
	nbrs := make([]neighbor, 0, len(cands))
	for c := range cands {
		if s := u.similarity(user, c); s > 0 {
			nbrs = append(nbrs, neighbor{id: c, sim: s})
		}
	}
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].sim != nbrs[b].sim {
			return nbrs[a].sim > nbrs[b].sim
		}
		return nbrs[a].id < nbrs[b].id
	})
	if len(nbrs) > u.k {
		nbrs = nbrs[:u.k]
	}
	return nbrs
}

// ScoreAll fills out[i] with the similarity-weighted neighborhood score of
// item i for the user: Σ_{v∈N(u)} sim(u,v)·w(v,i). Items rated by the user
// are still scored; callers exclude them when ranking.
func (u *UserKNN) ScoreAll(user int, out []float64) []float64 {
	ni := u.data.NumItems()
	if len(out) != ni {
		out = make([]float64, ni)
	}
	for i := range out {
		out[i] = 0
	}
	for _, nb := range u.Neighbors(user) {
		for item, w := range u.profiles[nb.id] {
			out[item] += nb.sim * w
		}
	}
	return out
}

// ItemKNN is an item-based kNN recommender: score(u,i) is the
// similarity-weighted sum over the user's rated items.
type ItemKNN struct {
	data     *dataset.Dataset
	k        int
	profiles []profile // per item: user -> score
}

// NewItemKNN builds the index.
func NewItemKNN(d *dataset.Dataset, k int) (*ItemKNN, error) {
	if k < 1 {
		return nil, fmt.Errorf("cf: k %d, need >= 1", k)
	}
	m := &ItemKNN{data: d, k: k, profiles: make([]profile, d.NumItems())}
	for item := 0; item < d.NumItems(); item++ {
		rs := d.ItemRatings(item)
		p := make(profile, len(rs))
		for _, r := range rs {
			p[r.User] = r.Score
		}
		m.profiles[item] = p
	}
	return m, nil
}

// similarity is cosine over the item-user vectors.
func (m *ItemKNN) similarity(a, b int) float64 {
	pa, pb := m.profiles[a], m.profiles[b]
	if len(pa) > len(pb) {
		pa, pb = pb, pa
	}
	dot := 0.0
	for user, wa := range pa {
		if wb, ok := pb[user]; ok {
			dot += wa * wb
		}
	}
	if dot == 0 {
		return 0
	}
	na, nb := 0.0, 0.0
	for _, w := range pa {
		na += w * w
	}
	for _, w := range pb {
		nb += w * w
	}
	return dot / math.Sqrt(na*nb)
}

// ScoreAll fills out[i] = Σ_{j∈S_u} sim(i,j)·w(u,j), restricting each rated
// item's influence to its k most similar items.
func (m *ItemKNN) ScoreAll(user int, out []float64) []float64 {
	ni := m.data.NumItems()
	if len(out) != ni {
		out = make([]float64, ni)
	}
	for i := range out {
		out[i] = 0
	}
	for _, r := range m.data.UserRatings(user) {
		sims := m.topSimilar(r.Item)
		for _, nb := range sims {
			out[nb.id] += nb.sim * r.Score
		}
	}
	return out
}

// SimilarItem pairs an item with its cosine similarity to a query item.
type SimilarItem struct {
	Item       int
	Similarity float64
}

// SimilarItems returns up to k items most similar to item (cosine over
// the item-user rating vectors), in descending similarity. Only items
// sharing at least one rater can have positive similarity, and the index
// keeps its top NewItemKNN-k neighbors per item, so the list may be
// shorter than k.
func (m *ItemKNN) SimilarItems(item, k int) ([]SimilarItem, error) {
	if item < 0 || item >= m.data.NumItems() {
		return nil, fmt.Errorf("cf: item %d out of range [0,%d)", item, m.data.NumItems())
	}
	if k < 1 {
		return nil, fmt.Errorf("cf: k %d, need >= 1", k)
	}
	nbrs := m.topSimilar(item)
	if len(nbrs) > k {
		nbrs = nbrs[:k]
	}
	out := make([]SimilarItem, len(nbrs))
	for i, nb := range nbrs {
		out[i] = SimilarItem{Item: nb.id, Similarity: nb.sim}
	}
	return out, nil
}

// topSimilar finds the k items most similar to item j among co-rated
// candidates.
func (m *ItemKNN) topSimilar(j int) []neighbor {
	cands := make(map[int]struct{})
	for user := range m.profiles[j] {
		for _, r := range m.data.UserRatings(user) {
			if r.Item != j {
				cands[r.Item] = struct{}{}
			}
		}
	}
	nbrs := make([]neighbor, 0, len(cands))
	for c := range cands {
		if s := m.similarity(j, c); s > 0 {
			nbrs = append(nbrs, neighbor{id: c, sim: s})
		}
	}
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].sim != nbrs[b].sim {
			return nbrs[a].sim > nbrs[b].sim
		}
		return nbrs[a].id < nbrs[b].id
	})
	if len(nbrs) > m.k {
		nbrs = nbrs[:m.k]
	}
	return nbrs
}

// MostPopular scores every item by its rating frequency — the fully
// non-personalized baseline that any long-tail recommender must beat on
// novelty.
type MostPopular struct {
	pop []int
}

// NewMostPopular indexes item popularity.
func NewMostPopular(d *dataset.Dataset) *MostPopular {
	return &MostPopular{pop: d.ItemPopularity()}
}

// ScoreAll fills out[i] with the popularity of item i (identical for every
// user).
func (m *MostPopular) ScoreAll(_ int, out []float64) []float64 {
	if len(out) != len(m.pop) {
		out = make([]float64, len(m.pop))
	}
	for i, p := range m.pop {
		out[i] = float64(p)
	}
	return out
}
