package cf

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/dataset"
)

func smallDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	// Users 0,1 agree on items 0-2; user 2 is anti-correlated; user 3
	// rates a disjoint set.
	d, err := dataset.New(4, 6, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4}, {User: 0, Item: 2, Score: 1},
		{User: 1, Item: 0, Score: 5}, {User: 1, Item: 1, Score: 5}, {User: 1, Item: 2, Score: 1}, {User: 1, Item: 3, Score: 5},
		{User: 2, Item: 0, Score: 1}, {User: 2, Item: 1, Score: 1}, {User: 2, Item: 2, Score: 5}, {User: 2, Item: 4, Score: 5},
		{User: 3, Item: 5, Score: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestUserKNNValidation(t *testing.T) {
	d := smallDataset(t)
	if _, err := NewUserKNN(d, 0, Cosine); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSimilarityStrings(t *testing.T) {
	if Cosine.String() != "cosine" || Pearson.String() != "pearson" {
		t.Fatal("similarity names wrong")
	}
	if Similarity(9).String() == "" {
		t.Fatal("unknown similarity has empty name")
	}
}

func TestUserKNNNeighborsOrdering(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewUserKNN(d, 3, Pearson)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := knn.Neighbors(0)
	// User 1 agrees with user 0; user 2 is anti-correlated (negative
	// Pearson, filtered); user 3 shares nothing.
	if len(nbrs) != 1 || nbrs[0].id != 1 {
		t.Fatalf("neighbors of 0 = %+v, want just user 1", nbrs)
	}
	if nbrs[0].sim <= 0 {
		t.Fatalf("similarity %v", nbrs[0].sim)
	}
}

func TestUserKNNCosineNeighbors(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewUserKNN(d, 10, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := knn.Neighbors(0)
	// Cosine over raw scores is positive for both co-raters.
	if len(nbrs) != 2 {
		t.Fatalf("neighbors = %+v", nbrs)
	}
	if nbrs[0].id != 1 {
		t.Fatalf("most similar should be user 1, got %d", nbrs[0].id)
	}
	for k := 1; k < len(nbrs); k++ {
		if nbrs[k].sim > nbrs[k-1].sim {
			t.Fatal("neighbors not sorted")
		}
	}
}

func TestUserKNNRecommendsNeighborItem(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewUserKNN(d, 2, Pearson)
	if err != nil {
		t.Fatal(err)
	}
	scores := knn.ScoreAll(0, nil)
	// User 1 (the only positive neighbor) rated item 3 with 5: item 3 must
	// outscore items 4 and 5, which no neighbor rated.
	if !(scores[3] > scores[4] && scores[3] > scores[5]) {
		t.Fatalf("scores = %v", scores)
	}
}

func TestUserKNNRespectsK(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewUserKNN(d, 1, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if nbrs := knn.Neighbors(0); len(nbrs) != 1 {
		t.Fatalf("k=1 returned %d neighbors", len(nbrs))
	}
}

func TestIdenticalUsersPerfectSimilarity(t *testing.T) {
	d, err := dataset.New(2, 3, []dataset.Rating{
		{User: 0, Item: 0, Score: 2}, {User: 0, Item: 1, Score: 4},
		{User: 1, Item: 0, Score: 2}, {User: 1, Item: 1, Score: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	knn, err := NewUserKNN(d, 5, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := knn.Neighbors(0)
	if len(nbrs) != 1 || math.Abs(nbrs[0].sim-1) > 1e-12 {
		t.Fatalf("identical users similarity %+v", nbrs)
	}
}

func TestItemKNNScores(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewItemKNN(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	scores := knn.ScoreAll(0, nil)
	// Item 3 is rated by user 1 who also rated 0,1,2 like user 0; item 5
	// is only rated by the disjoint user 3 and must score 0.
	if scores[3] <= 0 {
		t.Fatalf("item 3 score %v", scores[3])
	}
	if scores[5] != 0 {
		t.Fatalf("item 5 score %v, want 0", scores[5])
	}
}

func TestItemKNNValidation(t *testing.T) {
	d := smallDataset(t)
	if _, err := NewItemKNN(d, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMostPopular(t *testing.T) {
	d := smallDataset(t)
	mp := NewMostPopular(d)
	s0 := mp.ScoreAll(0, nil)
	s1 := mp.ScoreAll(1, nil)
	for i := range s0 {
		if s0[i] != s1[i] {
			t.Fatal("MostPopular is user-dependent")
		}
	}
	// Item 0 rated 3 times, item 5 once, item 3 once.
	if s0[0] != 3 || s0[5] != 1 {
		t.Fatalf("popularity scores %v", s0)
	}
}

func TestScoreAllBufferReuse(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewUserKNN(d, 2, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	buf := knn.ScoreAll(0, nil)
	buf2 := knn.ScoreAll(1, buf)
	if &buf2[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
}

func TestPopularityBiasOnSkewedData(t *testing.T) {
	// On a popularity-skewed corpus, user-kNN must put head items at the
	// top — the very failure mode the paper attacks. This guards the
	// baseline's fidelity.
	rng := rand.New(rand.NewSource(1))
	var ratings []dataset.Rating
	const nu, ni = 50, 30
	for u := 0; u < nu; u++ {
		seen := map[int]bool{}
		for n := 0; n < 8; n++ {
			// Zipf-ish: item index squared-biased toward 0.
			i := int(math.Floor(float64(ni) * math.Pow(rng.Float64(), 2)))
			if i >= ni {
				i = ni - 1
			}
			if seen[i] {
				continue
			}
			seen[i] = true
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: float64(3 + rng.Intn(3))})
		}
	}
	d, err := dataset.New(nu, ni, ratings)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := NewUserKNN(d, 10, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	pop := d.ItemPopularity()
	// Average popularity of each user's top unrated item must exceed the
	// catalog mean popularity.
	meanPop := 0.0
	for _, p := range pop {
		meanPop += float64(p)
	}
	meanPop /= float64(ni)
	topPop, count := 0.0, 0
	scores := make([]float64, ni)
	for u := 0; u < nu; u++ {
		scores = knn.ScoreAll(u, scores)
		rated := d.UserItemSet(u)
		best, bestScore := -1, math.Inf(-1)
		for i, s := range scores {
			if _, ok := rated[i]; ok {
				continue
			}
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		if best >= 0 && bestScore > 0 {
			topPop += float64(pop[best])
			count++
		}
	}
	if count == 0 {
		t.Skip("no recommendations produced")
	}
	if topPop/float64(count) <= meanPop {
		t.Fatalf("user-kNN top recs popularity %.2f not above catalog mean %.2f — baseline lost its popularity bias",
			topPop/float64(count), meanPop)
	}
}

func TestSimilarItems(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewItemKNN(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Items 0 and 1 are co-rated by users 0, 1, 2 with agreeing scores.
	sims, err := knn.SimilarItems(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) == 0 {
		t.Fatal("no neighbors")
	}
	for i, s := range sims {
		if s.Item == 0 {
			t.Fatal("self neighbor")
		}
		if s.Similarity <= 0 || s.Similarity > 1+1e-12 {
			t.Fatalf("similarity %v", s.Similarity)
		}
		if i > 0 && s.Similarity > sims[i-1].Similarity {
			t.Fatal("not sorted")
		}
	}
	if sims[0].Item != 1 {
		t.Fatalf("closest to item 0 is %d, want 1", sims[0].Item)
	}
	// Item 5 has a single rater who rated nothing else: no neighbors.
	lonely, err := knn.SimilarItems(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lonely) != 0 {
		t.Fatalf("isolated item has neighbors %+v", lonely)
	}
}

func TestSimilarItemsValidation(t *testing.T) {
	d := smallDataset(t)
	knn, err := NewItemKNN(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := knn.SimilarItems(-1, 3); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, err := knn.SimilarItems(99, 3); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if _, err := knn.SimilarItems(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
