package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 4)
	m.Add(0, 1, 1)
	if m.At(0, 1) != 5 {
		t.Fatalf("At = %v, want 5", m.At(0, 1))
	}
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	row := m.Row(0)
	if len(row) != 3 || row[1] != 5 {
		t.Fatalf("Row = %v", row)
	}
}

func TestDenseFromAndClone(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestMulVecDense(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := make([]float64, 3)
	m.MulVec([]float64{1, 10}, y)
	want := []float64{21, 43, 65}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v", y)
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransposeDense(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims %dx%d", r, c)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatal("T values wrong")
	}
}

func TestColSetCol(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	col := m.Col(1, nil)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("Col = %v", col)
	}
	m.SetCol(0, []float64{9, 8})
	if m.At(0, 0) != 9 || m.At(1, 0) != 8 {
		t.Fatal("SetCol failed")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Solve must not mutate its inputs.
	if a.At(0, 0) != 2 {
		t.Fatal("Solve mutated A")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := NewDenseFrom([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant => nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := make([]float64, n)
		a.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v at %d", trial, r[i]-b[i], i)
			}
		}
	}
}

func TestQROrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rows := 3 + rng.Intn(20)
		cols := 1 + rng.Intn(rows)
		m := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		q, r := QR(m)
		// QᵀQ = I
		qtq := q.T().Mul(q)
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-9 {
					t.Fatalf("trial %d: QᵀQ(%d,%d) = %v", trial, i, j, qtq.At(i, j))
				}
			}
		}
		// Q·R = M
		qr := q.Mul(r)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(qr.At(i, j)-m.At(i, j)) > 1e-9 {
					t.Fatalf("trial %d: QR(%d,%d) = %v, want %v", trial, i, j, qr.At(i, j), m.At(i, j))
				}
			}
		}
		// R upper triangular
		for i := 1; i < cols; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is a multiple of the first.
	m := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	q, r := QR(m)
	if math.Abs(r.At(1, 1)) > 1e-10 {
		t.Fatalf("rank-deficient R(1,1) = %v, want 0", r.At(1, 1))
	}
	// Q·R still reconstructs M.
	qr := q.Mul(r)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(qr.At(i, j)-m.At(i, j)) > 1e-9 {
				t.Fatalf("QR(%d,%d) = %v, want %v", i, j, qr.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := NormInf([]float64{-7, 4}); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 41 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 10.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	x := []float64{4, 5, 6}
	y := make([]float64, 3)
	id.MulVec(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Identity MulVec = %v", y)
		}
	}
}

func TestQuickSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, 10)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(x, res)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
