package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	for j := 0; j < 3; j++ {
		col := vecs.Col(j, nil)
		if math.Abs(Norm2(col)-1) > 1e-10 {
			t.Fatalf("eigenvector %d not unit: %v", j, col)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymEigen(NewDenseFrom([][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// First eigenvector proportional to (1,1)/√2.
	v0 := vecs.Col(0, nil)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("v0 = %v", v0)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// V·diag(vals)·Vᵀ == A.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		rec := vecs.Mul(d).Mul(vecs.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-8 {
					t.Fatalf("trial %d: reconstruction error at (%d,%d): %v vs %v",
						trial, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
		// VᵀV == I.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-8 {
					t.Fatalf("trial %d: VᵀV(%d,%d) = %v", trial, i, j, vtv.At(i, j))
				}
			}
		}
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := NewDense(n, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			trace += a.At(i, i)
		}
		vals, _, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-trace) > 1e-8 {
			t.Fatalf("trace %v vs eigenvalue sum %v", trace, sum)
		}
	}
}

func TestSymEigenRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := SymEigen(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := SymEigen(NewDenseFrom([][]float64{{1, 2}, {9, 1}})); err == nil {
		t.Fatal("asymmetric accepted")
	}
}
