// Package linalg provides the small dense linear-algebra kernels the
// library needs: a row-major dense matrix, Gaussian elimination with
// partial pivoting (for exact absorbing-time solves on subgraphs), QR
// factorization via modified Gram–Schmidt (for the randomized SVD), and
// basic vector operations.
//
// These are deliberately simple, allocation-transparent implementations;
// the systems solved here are small (subgraphs, k-dimensional factor
// spaces), so clarity beats blocked BLAS tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear solve meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewDense(%d, %d)", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a Dense from a [][]float64 (copied).
func NewDenseFrom(d [][]float64) *Dense {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	m := NewDense(rows, cols)
	for i, row := range d {
		if len(row) != cols {
			panic("linalg: ragged input")
		}
		copy(m.data[i*cols:(i+1)*cols], row)
	}
	return m
}

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i; the slice aliases internal storage.
func (m *Dense) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes y = M·x.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic("linalg: MulVec shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
}

// Mul returns M·B as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Col copies column j into dst (allocating if dst is nil) and returns it.
func (m *Dense) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	if len(dst) != m.rows {
		panic("linalg: Col dst length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
	return dst
}

// SetCol overwrites column j from src.
func (m *Dense) SetCol(j int, src []float64) {
	if len(src) != m.rows {
		panic("linalg: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = src[i]
	}
}

// SolveInPlace solves A·x = b by Gaussian elimination with partial
// pivoting, overwriting both A and b; on success b holds x. A must be
// square. Returns ErrSingular if a pivot is (effectively) zero.
func SolveInPlace(a *Dense, b []float64) error {
	n := a.rows
	if a.cols != n {
		return fmt.Errorf("linalg: Solve on non-square %dx%d matrix", a.rows, a.cols)
	}
	if len(b) != n {
		return fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), n)
	}
	const eps = 1e-13
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < eps {
			return ErrSingular
		}
		if pivot != col {
			rp, rc := a.Row(pivot), a.Row(col)
			for j := range rp {
				rp[j], rc[j] = rc[j], rp[j]
			}
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, rc := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * rc[j]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := a.Row(i)
		acc := b[i]
		for j := i + 1; j < n; j++ {
			acc -= row[j] * b[j]
		}
		b[i] = acc / row[i]
	}
	return nil
}

// Solve solves A·x = b without mutating its inputs.
func Solve(a *Dense, b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	copy(x, b)
	if err := SolveInPlace(a.Clone(), x); err != nil {
		return nil, err
	}
	return x, nil
}

// QR computes a thin QR factorization of m (rows >= cols) by modified
// Gram–Schmidt with re-orthogonalization ("twice is enough"): m = Q·R where
// Q is rows×cols with orthonormal columns and R is cols×cols upper
// triangular. A column that is (numerically) linearly dependent on its
// predecessors yields a zero column in Q and a zero diagonal entry in R —
// plain MGS would instead normalize round-off noise into a badly
// non-orthogonal direction, which breaks downstream randomized SVD on
// rank-deficient inputs.
func QR(m *Dense) (q, r *Dense) {
	rows, cols := m.Dims()
	if rows < cols {
		panic(fmt.Sprintf("linalg: QR needs rows >= cols, got %dx%d", rows, cols))
	}
	q = NewDense(rows, cols)
	r = NewDense(cols, cols)
	v := make([]float64, rows)
	qi := make([]float64, rows)
	for j := 0; j < cols; j++ {
		m.Col(j, v)
		norm0 := Norm2(v)
		// Two orthogonalization passes against all previous columns.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				q.Col(i, qi)
				dot := Dot(qi, v)
				if dot == 0 {
					continue
				}
				r.Add(i, j, dot)
				AXPY(-dot, qi, v)
			}
		}
		norm := Norm2(v)
		// Column effectively in the span of its predecessors: drop it.
		if norm <= 1e-12*norm0 || norm0 == 0 {
			r.Set(j, j, 0)
			for i := range v {
				v[i] = 0
			}
			q.SetCol(j, v)
			continue
		}
		r.Set(j, j, norm)
		Scale(1/norm, v)
		q.SetCol(j, v)
	}
	return q, r
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
