package linalg

import (
	"fmt"
	"math"
)

// SymEigen computes the full eigendecomposition of a symmetric matrix by
// the cyclic Jacobi rotation method: A = V·diag(vals)·Vᵀ with V's columns
// the eigenvectors. Eigenvalues are returned in descending order. The input
// is not modified. Intended for the small (k×k) systems arising inside the
// randomized SVD; complexity is O(n³) per sweep.
func SymEigen(a *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, fmt.Errorf("linalg: SymEigen on %dx%d non-square matrix", n, c)
	}
	// Verify symmetry up to round-off; being handed a wildly asymmetric
	// matrix is a programmer error worth surfacing.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-8*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: SymEigen input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cs := 1 / math.Sqrt(t*t+1)
				sn := t * cs
				// Apply the rotation to rows/cols p and q.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, cs*wkp-sn*wkq)
					w.Set(k, q, sn*wkp+cs*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, cs*wpk-sn*wqk)
					w.Set(q, k, sn*wpk+cs*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, cs*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+cs*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, n)
	vecs = NewDense(n, n)
	for newJ, oldJ := range order {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			vecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, vecs, nil
}
