package worlds

import (
	"reflect"
	"testing"

	"longtailrec/internal/synth"
)

func TestKindsResolve(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 2 {
		t.Fatalf("expected at least movielens and douban, got %v", kinds)
	}
	for _, k := range kinds {
		cfg, err := Config(k, 7)
		if err != nil {
			t.Fatalf("Config(%q): %v", k, err)
		}
		if cfg.Seed != 7 {
			t.Fatalf("Config(%q) seed = %d, want 7", k, cfg.Seed)
		}
		if cfg.NumUsers <= 0 || cfg.NumItems <= 0 {
			t.Fatalf("Config(%q) has empty universe: %+v", k, cfg)
		}
	}
}

func TestConfigMatchesSynthCalibrations(t *testing.T) {
	// The registry must keep pointing at the synth calibrations, not
	// carry its own copies.
	ml := synth.MovieLensLike()
	ml.Seed = 42
	got, err := Config("movielens", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ml) {
		t.Fatalf("movielens config drifted:\n got %+v\nwant %+v", got, ml)
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Config("netflix", 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := Generate("netflix", 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("movielens", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("movielens", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRatings() != b.Data.NumRatings() {
		t.Fatalf("rating counts differ: %d vs %d", a.Data.NumRatings(), b.Data.NumRatings())
	}
	if !reflect.DeepEqual(a.Data.Ratings(), b.Data.Ratings()) {
		t.Fatal("same (kind, seed) produced different ratings")
	}
}
