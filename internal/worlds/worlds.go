// Package worlds is the single source of the named synthetic corpora the
// tooling measures against. The kind→synth.Config mapping used to live
// inside internal/experiments (behind cmd/ltr-bench); the lab harness
// (internal/lab, cmd/ltr-lab) needs the exact same worlds, and two
// hand-kept copies of the calibration would silently drift — a BENCH
// trajectory point is only comparable to its predecessors if "movielens"
// still means the same corpus. Both tools now resolve kinds here.
package worlds

import (
	"fmt"
	"sort"
	"strings"

	"longtailrec/internal/synth"
)

// Kinds returns the named corpus kinds, sorted.
func Kinds() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// registry maps a corpus kind to its calibrated generator configuration.
// The synth package owns the calibrations; this table only names them.
var registry = map[string]func() synth.Config{
	"movielens": synth.MovieLensLike,
	"douban":    synth.DoubanLike,
	"clustered": synth.ClusteredLike,
}

// Config resolves a corpus kind to its synth configuration with the seed
// applied. Deterministic: equal (kind, seed) pairs yield equal configs.
func Config(kind string, seed int64) (synth.Config, error) {
	mk, ok := registry[kind]
	if !ok {
		return synth.Config{}, fmt.Errorf("worlds: unknown corpus kind %q (choices: %s)", kind, strings.Join(Kinds(), ", "))
	}
	cfg := mk()
	cfg.Seed = seed
	return cfg, nil
}

// Generate builds the named world at the given seed — the one-call path
// shared by the experiment runner and the lab harness.
func Generate(kind string, seed int64) (*synth.World, error) {
	cfg, err := Config(kind, seed)
	if err != nil {
		return nil, err
	}
	return synth.Generate(cfg)
}
