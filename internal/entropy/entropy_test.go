package entropy

import (
	"math"
	"testing"
	"testing/quick"

	"longtailrec/internal/dataset"
	"longtailrec/internal/lda"
)

func TestItemBasedUniform(t *testing.T) {
	// Equal weights over n items → entropy log n.
	d, err := dataset.New(1, 4, []dataset.Rating{
		{User: 0, Item: 0, Score: 2}, {User: 0, Item: 1, Score: 2},
		{User: 0, Item: 2, Score: 2}, {User: 0, Item: 3, Score: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ItemBased(d, 0); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy %v, want %v", got, math.Log(4))
	}
}

func TestItemBasedSingleItemIsZero(t *testing.T) {
	d, err := dataset.New(1, 3, []dataset.Rating{{User: 0, Item: 1, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ItemBased(d, 0); got != 0 {
		t.Fatalf("single-item entropy %v", got)
	}
}

func TestItemBasedNoRatingsIsZero(t *testing.T) {
	d, err := dataset.New(2, 2, []dataset.Rating{{User: 0, Item: 0, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ItemBased(d, 1); got != 0 {
		t.Fatalf("empty user entropy %v", got)
	}
}

func TestItemBasedSkewBelowUniform(t *testing.T) {
	d, err := dataset.New(2, 3, []dataset.Rating{
		{User: 0, Item: 0, Score: 1}, {User: 0, Item: 1, Score: 1}, {User: 0, Item: 2, Score: 1},
		{User: 1, Item: 0, Score: 10}, {User: 1, Item: 1, Score: 1}, {User: 1, Item: 2, Score: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(ItemBased(d, 1) < ItemBased(d, 0)) {
		t.Fatal("skewed user should have lower entropy than uniform user")
	}
}

func TestGeneralistAboveSpecialist(t *testing.T) {
	// The §4.2.2 assumption: rating more items (evenly) raises entropy.
	var rts []dataset.Rating
	for i := 0; i < 12; i++ {
		rts = append(rts, dataset.Rating{User: 0, Item: i, Score: 3})
	}
	for i := 0; i < 2; i++ {
		rts = append(rts, dataset.Rating{User: 1, Item: i, Score: 3})
	}
	d, err := dataset.New(2, 12, rts)
	if err != nil {
		t.Fatal(err)
	}
	if !(ItemBased(d, 0) > ItemBased(d, 1)) {
		t.Fatal("generalist not above specialist")
	}
}

func TestAllItemBased(t *testing.T) {
	d, err := dataset.New(3, 3, []dataset.Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 1, Item: 0, Score: 2}, {User: 1, Item: 1, Score: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := AllItemBased(d)
	if len(all) != 3 {
		t.Fatalf("length %d", len(all))
	}
	if all[0] != 0 || all[2] != 0 {
		t.Fatal("degenerate users should be zero")
	}
	if math.Abs(all[1]-math.Log(2)) > 1e-12 {
		t.Fatalf("user 1 entropy %v", all[1])
	}
}

func TestTopicBasedDelegatesToModel(t *testing.T) {
	d, err := dataset.New(4, 6, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 5},
		{User: 1, Item: 4, Score: 5}, {User: 1, Item: 5, Score: 5},
		{User: 2, Item: 0, Score: 5}, {User: 2, Item: 5, Score: 5},
		{User: 3, Item: 1, Score: 4}, {User: 3, Item: 4, Score: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lda.Train(d, lda.Config{NumTopics: 2, Alpha: 0.5, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := AllTopicBased(m)
	for u := 0; u < 4; u++ {
		if all[u] != TopicBased(m, u) {
			t.Fatal("AllTopicBased disagrees with TopicBased")
		}
		if all[u] < 0 || all[u] > math.Log(2)+1e-9 {
			t.Fatalf("topic entropy %v out of range", all[u])
		}
	}
}

func TestItemEntropy(t *testing.T) {
	d, err := dataset.New(4, 2, []dataset.Rating{
		{User: 0, Item: 0, Score: 3}, {User: 1, Item: 0, Score: 3},
		{User: 2, Item: 0, Score: 3}, {User: 3, Item: 0, Score: 3},
		{User: 0, Item: 1, Score: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Item 0: uniform over 4 raters → log 4. Item 1: single rater → 0.
	if got := ItemEntropy(d, 0); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("item 0 entropy %v", got)
	}
	if got := ItemEntropy(d, 1); got != 0 {
		t.Fatalf("item 1 entropy %v", got)
	}
	all := AllItemEntropy(d)
	if all[0] != ItemEntropy(d, 0) || all[1] != 0 {
		t.Fatalf("AllItemEntropy %v", all)
	}
}

func TestItemEntropyTracksPopularity(t *testing.T) {
	// With roughly even scores, more raters → higher item entropy: the
	// property the AC3 extension exploits to make blockbusters expensive.
	var rts []dataset.Rating
	for u := 0; u < 20; u++ {
		rts = append(rts, dataset.Rating{User: u, Item: 0, Score: 4})
	}
	for u := 0; u < 2; u++ {
		rts = append(rts, dataset.Rating{User: u, Item: 1, Score: 4})
	}
	d, err := dataset.New(20, 2, rts)
	if err != nil {
		t.Fatal(err)
	}
	if !(ItemEntropy(d, 0) > ItemEntropy(d, 1)) {
		t.Fatal("blockbuster entropy not above niche entropy")
	}
}

func TestFloor(t *testing.T) {
	in := []float64{0, 0.5, 2}
	out := Floor(in, 0.1)
	if out[0] != 0.1 || out[1] != 0.5 || out[2] != 2 {
		t.Fatalf("Floor = %v", out)
	}
	if in[0] != 0 {
		t.Fatal("Floor mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive floor accepted")
		}
	}()
	Floor(in, 0)
}

func TestDistribution(t *testing.T) {
	if got := Distribution([]float64{1, 1}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("Distribution = %v", got)
	}
	if got := Distribution([]float64{0, 0}); got != 0 {
		t.Fatalf("zero vector entropy %v", got)
	}
	if got := Distribution([]float64{7}); got != 0 {
		t.Fatalf("point mass entropy %v", got)
	}
}

func TestQuickDistributionBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, r := range raw {
			w[i] = float64(r)
		}
		e := Distribution(w)
		return e >= 0 && e <= math.Log(float64(len(w)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistributionScaleInvariant(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scale := float64(scaleRaw)/16 + 0.5
		w := make([]float64, len(raw))
		w2 := make([]float64, len(raw))
		for i, r := range raw {
			w[i] = float64(r)
			w2[i] = float64(r) * scale
		}
		return math.Abs(Distribution(w)-Distribution(w2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
