// Package entropy implements the user-entropy feature of Section 4.2: a
// measure of how wide a user's interests are, used by the Absorbing Cost
// recommenders to make taste-specific users cheap to traverse and
// generalists expensive.
//
// Two estimators are provided, matching §4.2.2 and §4.2.3:
//
//   - Item-based (Eq. 10): entropy of the user's rating-weight distribution
//     over the items they rated.
//   - Topic-based (Eq. 11): entropy of the user's latent topic distribution
//     θ_u from the LDA model of §4.2.3.
package entropy

import (
	"fmt"
	"math"

	"longtailrec/internal/dataset"
	"longtailrec/internal/lda"
)

// ItemBased computes Eq. 10 for one user:
// E(u) = -Σ_{i∈S_u} p(i|u)·log p(i|u) with p(i|u) = w(u,i)/Σ w(u,·).
// A user with no ratings has zero entropy. Natural logarithm.
func ItemBased(d *dataset.Dataset, u int) float64 {
	ratings := d.UserRatings(u)
	total := 0.0
	for _, r := range ratings {
		total += r.Score
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, r := range ratings {
		p := r.Score / total
		if p > 0 {
			e -= p * math.Log(p)
		}
	}
	return e
}

// AllItemBased computes item-based entropy for every user.
func AllItemBased(d *dataset.Dataset) []float64 {
	out := make([]float64, d.NumUsers())
	for u := range out {
		out[u] = ItemBased(d, u)
	}
	return out
}

// TopicBased computes Eq. 11 for one user from a trained LDA model.
func TopicBased(m *lda.Model, u int) float64 {
	return m.UserEntropy(u)
}

// AllTopicBased computes topic-based entropy for every user.
func AllTopicBased(m *lda.Model) []float64 {
	out := make([]float64, m.NumUsers())
	for u := range out {
		out[u] = m.UserEntropy(u)
	}
	return out
}

// ItemEntropy computes the mirror image of Eq. 10 for an item: the
// entropy of the item's rating-weight distribution over the users who
// rated it, E(i) = -Σ_{u} p(u|i)·log p(u|i). A blockbuster rated evenly by
// thousands of users has high entropy (a generic hub); a niche item rated
// by a couple of fans has low entropy. This powers the symmetric
// Absorbing Cost extension (AC3): the paper's §4.2.1 keeps the user→item
// cost at a constant C "in our current model", and this is the natural
// completion it gestures at.
func ItemEntropy(d *dataset.Dataset, i int) float64 {
	ratings := d.ItemRatings(i)
	total := 0.0
	for _, r := range ratings {
		total += r.Score
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, r := range ratings {
		p := r.Score / total
		if p > 0 {
			e -= p * math.Log(p)
		}
	}
	return e
}

// AllItemEntropy computes ItemEntropy for every item.
func AllItemEntropy(d *dataset.Dataset) []float64 {
	out := make([]float64, d.NumItems())
	for i := range out {
		out[i] = ItemEntropy(d, i)
	}
	return out
}

// Floor returns a copy of entropies with every value raised to at least
// min. The Absorbing Cost recurrence needs strictly positive step costs:
// a user with a single rated item has zero item-based entropy, which would
// make walks through them free and the cost ranking degenerate.
func Floor(entropies []float64, min float64) []float64 {
	if min <= 0 {
		panic(fmt.Sprintf("entropy: Floor min %v must be positive", min))
	}
	out := make([]float64, len(entropies))
	for i, e := range entropies {
		if e < min {
			out[i] = min
		} else {
			out[i] = e
		}
	}
	return out
}

// Distribution computes Shannon entropy (natural log) of an arbitrary
// non-negative weight vector after normalization. Zero vector → 0.
func Distribution(w []float64) float64 {
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic("entropy: negative weight")
		}
		total += x
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, x := range w {
		if x > 0 {
			p := x / total
			e -= p * math.Log(p)
		}
	}
	return e
}
