// Package topk provides a bounded top-k selector over scored items using a
// size-k min-heap: O(n log k) instead of the O(n log n) full sort, which
// matters when ranking 90k-item catalogs for thousands of panel users.
// Ties break toward the smaller item index, matching the deterministic
// ordering the evaluation protocols assume.
package topk

import "container/heap"

// Item is a scored candidate.
type Item struct {
	ID    int
	Score float64
}

// less orders a *below* b when a has a lower score, or an equal score and
// a higher ID — so the heap root is always the weakest member and ties
// evict larger IDs first.
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// minHeap implements heap.Interface keeping the weakest item at the root.
type minHeap []Item

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Selector accumulates candidates and yields the k best.
type Selector struct {
	k int
	h minHeap
}

// NewSelector creates a selector for the k highest-scoring items. k <= 0
// yields an empty result.
func NewSelector(k int) *Selector {
	if k < 0 {
		k = 0
	}
	return &Selector{k: k, h: make(minHeap, 0, k)}
}

// Offer considers one candidate.
//
//ltr:allocfree
func (s *Selector) Offer(id int, score float64) {
	if s.k == 0 {
		return
	}
	it := Item{ID: id, Score: score}
	if len(s.h) < s.k {
		//ltr:ignore allocfree heap.Push boxes at most k items while the heap fills; the steady state takes the in-place replace path below
		heap.Push(&s.h, it)
		return
	}
	if less(s.h[0], it) {
		s.h[0] = it
		heap.Fix(&s.h, 0)
	}
}

// Len returns how many items are currently held (≤ k).
func (s *Selector) Len() int { return len(s.h) }

// Take drains the selector, returning items in best-first order (highest
// score first; ties by ascending ID). The selector is empty afterwards.
func (s *Selector) Take() []Item {
	out := make([]Item, len(s.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&s.h).(Item)
	}
	return out
}

// Select is a convenience one-shot: the top k of (id, score) pairs fed by
// the visit callback. The callback receives an Offer function.
func Select(k int, visit func(offer func(id int, score float64))) []Item {
	s := NewSelector(k)
	visit(s.Offer)
	return s.Take()
}
