package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectorBasics(t *testing.T) {
	s := NewSelector(3)
	for id, score := range []float64{1, 9, 3, 7, 5} {
		s.Offer(id, score)
	}
	got := s.Take()
	want := []Item{{ID: 1, Score: 9}, {ID: 3, Score: 7}, {ID: 4, Score: 5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectorFewerThanK(t *testing.T) {
	s := NewSelector(10)
	s.Offer(0, 2)
	s.Offer(1, 1)
	got := s.Take()
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectorZeroK(t *testing.T) {
	s := NewSelector(0)
	s.Offer(0, 5)
	if s.Len() != 0 || len(s.Take()) != 0 {
		t.Fatal("k=0 retained items")
	}
	s2 := NewSelector(-3)
	s2.Offer(1, 1)
	if len(s2.Take()) != 0 {
		t.Fatal("negative k retained items")
	}
}

func TestTieBreaksTowardSmallerID(t *testing.T) {
	s := NewSelector(2)
	s.Offer(5, 1)
	s.Offer(2, 1)
	s.Offer(9, 1)
	got := s.Take()
	if got[0].ID != 2 || got[1].ID != 5 {
		t.Fatalf("tie break wrong: %v", got)
	}
}

func TestSelectConvenience(t *testing.T) {
	got := Select(2, func(offer func(int, float64)) {
		offer(0, 1)
		offer(1, 3)
		offer(2, 2)
	})
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTakeDrains(t *testing.T) {
	s := NewSelector(2)
	s.Offer(0, 1)
	s.Take()
	if s.Len() != 0 {
		t.Fatal("Take did not drain")
	}
	if len(s.Take()) != 0 {
		t.Fatal("second Take returned items")
	}
}

// referenceTopK is the obviously-correct O(n log n) implementation.
func referenceTopK(items []Item, k int) []Item {
	cp := append([]Item(nil), items...)
	sort.Slice(cp, func(a, b int) bool {
		if cp[a].Score != cp[b].Score {
			return cp[a].Score > cp[b].Score
		}
		return cp[a].ID < cp[b].ID
	})
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		k := rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Score: float64(rng.Intn(10))} // force ties
		}
		s := NewSelector(k)
		for _, it := range items {
			s.Offer(it.ID, it.Score)
		}
		got := s.Take()
		want := referenceTopK(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestQuickOrderedOutput(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw)%10 + 1
		s := NewSelector(k)
		for id, sc := range scores {
			s.Offer(id, sc)
		}
		out := s.Take()
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				return false
			}
			if out[i].Score == out[i-1].Score && out[i].ID < out[i-1].ID {
				return false
			}
		}
		return len(out) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelector(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSelector(10)
		for id, sc := range scores {
			s.Offer(id, sc)
		}
		s.Take()
	}
}
