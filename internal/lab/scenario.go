package lab

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"longtailrec"
	"longtailrec/internal/cache"
	"longtailrec/internal/dataset"
	"longtailrec/internal/lab/workload"
	"longtailrec/internal/synth"
	"longtailrec/internal/worlds"
)

// Scenario is one registered experiment kind: a function that builds the
// system under test from a Cell's parameters, runs warmup, drives one
// measured repeat, and records metrics plus pass/fail assertions. Run
// returns an error only for harness failures (bad parameters, setup
// errors); workload-level failures are recorded as failing assertions so
// the grid completes and the report shows every red cell at once.
type Scenario struct {
	Name string
	Doc  string
	Run  func(c *Cell, rep int, rec *Recorder) error
}

var scenarioRegistry = map[string]*Scenario{}

func register(s *Scenario) {
	if _, dup := scenarioRegistry[s.Name]; dup {
		panic("lab: duplicate scenario " + s.Name)
	}
	scenarioRegistry[s.Name] = s
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarioRegistry))
	for n := range scenarioRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScenarioDoc returns a scenario's one-line description ("" if unknown).
func ScenarioDoc(name string) string {
	if s, ok := scenarioRegistry[name]; ok {
		return s.Doc
	}
	return ""
}

func init() {
	register(&Scenario{Name: "recommend_request", Doc: "single-query Request-path latency over a panel of warm users (BenchmarkRecommendRequest equivalent)", Run: runRecommendRequest})
	register(&Scenario{Name: "sharded_write_invalidation", Doc: "mixed 1-write-per-N-reads cache hit rate across the shards axis (BenchmarkShardedWriteInvalidation equivalent)", Run: runShardedWriteInvalidation})
	register(&Scenario{Name: "cache_precision", Doc: "fingerprint invalidation precision: mixed 1-write/8-read hit rate on the community-structured clustered corpus, writes confined to the writer's own cluster", Run: runCachePrecision})
	register(&Scenario{Name: "wal_append", Doc: "group-commit WAL write throughput at the writers axis (BenchmarkWALAppend equivalent, through System.ApplyRating)", Run: runWALAppend})
	register(&Scenario{Name: "fleet_graph_memory", Doc: "fleet construction heap vs a single replica across the shards axis (BenchmarkFleetGraphMemory equivalent)", Run: runFleetGraphMemory})
	register(&Scenario{Name: "coldstart_storm", Doc: "hostile: brand-new users flooding in through the auto-grow write path, then immediately servable", Run: runColdStartStorm})
	register(&Scenario{Name: "flash_crowd", Doc: "hostile: concurrent readers hammering a tiny hot user set — singleflight and cache hit-rate under a thundering herd", Run: runFlashCrowd})
	register(&Scenario{Name: "write_flood", Doc: "hostile: adversarial write sweep spraying every shard's epoch while reads must keep serving", Run: runWriteFlood})
	register(&Scenario{Name: "zipf_soak", Doc: "hostile: zipf-distributed mixed read/write soak over a bootstrap corpus (users axis scales to millions)", Run: runZipfSoak})
}

// ---------------------------------------------------------------------------
// Shared world construction. Worlds and bootstrap corpora are cached
// across cells and repeats (keyed by their full parameterization), so a
// grid pays corpus generation once — like bench_test.go's benchEnvs.

var (
	worldMu    sync.Mutex
	worldCache = map[string]*synth.World{}
	bootCache  = map[string]*dataset.Dataset{}
)

func labWorld(kind string, seed int64) (*synth.World, error) {
	key := fmt.Sprintf("%s/%d", kind, seed)
	worldMu.Lock()
	defer worldMu.Unlock()
	if w, ok := worldCache[key]; ok {
		return w, nil
	}
	w, err := worlds.Generate(kind, seed)
	if err != nil {
		return nil, err
	}
	worldCache[key] = w
	return w, nil
}

// bootstrapData builds (and caches) the zipf-skewed bootstrap corpus for
// the large-scale scenarios.
func bootstrapData(users, items, perUser int, s float64, seed int64) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%d/%d/%d/%g/%d", users, items, perUser, s, seed)
	worldMu.Lock()
	defer worldMu.Unlock()
	if d, ok := bootCache[key]; ok {
		return d, nil
	}
	ratings, err := workload.SeedRatings(users, items, perUser, s, seed)
	if err != nil {
		return nil, err
	}
	d, err := dataset.New(users, items, ratings)
	if err != nil {
		return nil, err
	}
	bootCache[key] = d
	return d, nil
}

// panel samples n query users with at least minDeg ratings,
// deterministically from the cell seed.
func panel(d *dataset.Dataset, seed int64, n, minDeg int) ([]int, error) {
	rng := rand.New(rand.NewSource(seed + 17))
	return d.SampleUsers(rng, n, minDeg)
}

// servingSystem builds the system under test from the cell's common
// knobs: cache (entries, default per scenario), shards, autogrow.
func servingSystem(c *Cell, d *dataset.Dataset, cacheDef int, autoGrow bool) (*longtail.System, error) {
	cfg := longtail.DefaultConfig()
	cfg.CacheSize = c.Int("cache", cacheDef)
	cfg.ShardCount = c.Int("shards", 1)
	cfg.AutoGrow = autoGrow
	return longtail.NewSystem(d, cfg)
}

// hitRate reads the cache hit rate of the counter delta b−a: hits and
// singleflight-shared lookups over all lookups.
func hitRate(a, b cache.Stats) (float64, bool) {
	lookups := (b.Hits + b.Misses + b.Shared) - (a.Hits + a.Misses + a.Shared)
	if lookups == 0 {
		return 0, false
	}
	hits := (b.Hits + b.Shared) - (a.Hits + a.Shared)
	return float64(hits) / float64(lookups), true
}

// ---------------------------------------------------------------------------
// Benchmark-equivalent scenarios: the committed PERFORMANCE.md numbers as
// grid cells.

// runRecommendRequest measures single-query Request-path latency — the
// primary serving surface. Axes/params: dataset, algo, k, ops,
// warmup_ops, cache (default off: measures the engine), shards.
func runRecommendRequest(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	algo := c.Str("algo", "AT")
	k := c.Int("k", 10)
	ops := c.Int("ops", 256)
	warmup := c.Int("warmup_ops", 16)
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, w.Data, 0, false)
	if err != nil {
		return err
	}
	users, err := panel(w.Data, c.Seed, c.Int("panel_users", 30), 3)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for i := 0; i < warmup; i++ {
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: users[i%len(users)], K: k}); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	errs, short := 0, 0
	rec.StartTimer()
	for i := 0; i < ops; i++ {
		u := users[(i+rep)%len(users)]
		t0 := time.Now()
		resp, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: k})
		rec.Observe(time.Since(t0))
		if err != nil {
			errs++
			continue
		}
		if len(resp.Items) == 0 {
			short++
		}
	}
	rec.StopTimer()
	rec.Assertf("no_errors", errs == 0, "%d of %d queries failed", errs, ops)
	rec.Assertf("lists_nonempty", short == 0, "%d of %d queries returned empty lists", short, ops)
	return nil
}

// runShardedWriteInvalidation is the mixed-workload blast-radius
// measurement: 1 write per reads_per_write reads, hit rate reported over
// the timed phase only. Axes/params: dataset, shards, cache, algo, ops,
// reads_per_write.
func runShardedWriteInvalidation(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	algo := c.Str("algo", "AT")
	ops := c.Int("ops", 400)
	rpw := c.Int("reads_per_write", 8)
	if rpw < 1 {
		return fmt.Errorf("reads_per_write must be >= 1")
	}
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, w.Data, 8192, false)
	if err != nil {
		return err
	}
	users, err := panel(w.Data, c.Seed, c.Int("panel_users", 30), 3)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, u := range users { // warm: one guaranteed miss per panel user
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10}); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	warm := sys.ServingStats().Cache
	epoch0 := sys.Epoch()
	numItems := w.Data.NumItems()
	writes, errs := 0, 0
	rec.StartTimer()
	for i := 0; i < ops; i++ {
		if i%(rpw+1) == rpw {
			u := users[i%len(users)]
			if _, _, err := sys.ApplyRating(u, i%numItems, 1+float64(i%5)); err != nil {
				errs++
			} else {
				writes++
			}
			continue
		}
		u := users[(i*7+1)%len(users)]
		t0 := time.Now()
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10}); err != nil {
			errs++
		}
		rec.Observe(time.Since(t0))
	}
	rec.StopTimer()
	rec.SetMetric("writes", float64(writes))
	if hr, ok := hitRate(warm, sys.ServingStats().Cache); ok {
		rec.SetMetric("hit_rate", hr)
	}
	rec.Assertf("no_errors", errs == 0, "%d operations failed", errs)
	moved := sys.Epoch() - epoch0
	// Re-rating an edge with its current score is a no-op that bumps no
	// epoch, so the bound is one-sided: every epoch tick needs a write.
	rec.Assertf("epoch_tracks_writes", writes == 0 || (moved > 0 && moved <= uint64(writes)),
		"fleet epoch moved %d for %d accepted writes", moved, writes)
	return nil
}

// runCachePrecision measures what fingerprint invalidation buys on a
// corpus with real community structure: the same 1-write-per-N-reads mix
// as sharded_write_invalidation, but on the clustered world and with
// every write confined to the writer's OWN cluster — the regime where a
// write provably cannot touch most cached subgraphs, so precision
// tracking (not shard count) is what keeps entries alive. Under the old
// epoch-keyed cache this workload measured ~0.005 hit rate at shards=1;
// the fingerprint path must clear hit_rate_min (default 0.60) there.
// Axes/params: dataset, shards, cache, algo, ops, reads_per_write,
// panel_users, hit_rate_min.
func runCachePrecision(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "clustered")
	algo := c.Str("algo", "AT")
	ops := c.Int("ops", 400)
	rpw := c.Int("reads_per_write", 8)
	minHit := c.Float("hit_rate_min", 0.60)
	if rpw < 1 {
		return fmt.Errorf("reads_per_write must be >= 1")
	}
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	// Cluster geometry for in-cluster write targeting; an unclustered
	// dataset degenerates to whole-universe writes (still sound, just
	// nothing for the fingerprints to retain).
	uPer, iPer := w.Config.UsersPerCluster(), w.Config.ItemsPerCluster()
	sys, err := servingSystem(c, w.Data, 8192, false)
	if err != nil {
		return err
	}
	// A small panel keeps each user's read-revisit interval short relative
	// to the write rate, so retention (not re-invalidation) dominates.
	users, err := panel(w.Data, c.Seed, c.Int("panel_users", 16), 3)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, u := range users { // warm: one guaranteed miss per panel user
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10}); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	warm := sys.ServingStats().Cache
	epoch0 := sys.Epoch()
	writes, errs := 0, 0
	rec.StartTimer()
	for i := 0; i < ops; i++ {
		if i%(rpw+1) == rpw {
			u := users[i%len(users)]
			item := (u/uPer)*iPer + i%iPer // writer's own cluster
			if _, _, err := sys.ApplyRating(u, item, 1+float64(i%5)); err != nil {
				errs++
			} else {
				writes++
			}
			continue
		}
		u := users[(i*7+1)%len(users)]
		t0 := time.Now()
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10}); err != nil {
			errs++
		}
		rec.Observe(time.Since(t0))
	}
	rec.StopTimer()
	after := sys.ServingStats().Cache
	rec.SetMetric("writes", float64(writes))
	rec.SetMetric("fingerprint_hits", float64(after.FingerprintHits-warm.FingerprintHits))
	rec.SetMetric("fingerprint_rejects", float64(after.FingerprintRejects-warm.FingerprintRejects))
	rec.SetMetric("journal_overflows", float64(after.JournalOverflows-warm.JournalOverflows))
	if hr, ok := hitRate(warm, after); ok {
		rec.SetMetric("hit_rate", hr)
		rec.Assertf("hit_rate_floor", hr >= minHit,
			"mixed hit rate %.3f under the %.3f floor — fingerprints are not retaining cross-cluster entries", hr, minHit)
	} else {
		rec.Assert("hit_rate_floor", false, "no cache lookups recorded")
	}
	if c.Int("shards", 1) == 1 {
		// At one shard every write bumps the only epoch, so any retention
		// at all must come from fingerprint validation.
		rec.Assertf("fingerprint_path_exercised", after.FingerprintHits > warm.FingerprintHits,
			"no fingerprint-validated hits at shards=1 — the precision path never ran")
	}
	rec.Assertf("no_errors", errs == 0, "%d operations failed", errs)
	moved := sys.Epoch() - epoch0
	rec.Assertf("epoch_tracks_writes", writes == 0 || (moved > 0 && moved <= uint64(writes)),
		"fleet epoch moved %d for %d accepted writes", moved, writes)
	return nil
}

// runWALAppend measures durable write throughput: writers concurrent
// goroutines ApplyRating through the group-commit WAL, acks_per_sec is
// the headline. Axes/params: writers, ops, users, items, per_user,
// shards.
func runWALAppend(c *Cell, rep int, rec *Recorder) error {
	writers := c.Int("writers", 16)
	ops := c.Int("ops", 2048)
	if writers < 1 {
		return fmt.Errorf("writers must be >= 1")
	}
	d, err := bootstrapData(c.Int("users", 2000), c.Int("items", 400), c.Int("per_user", 4), 1.2, c.Seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ltr-lab-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := longtail.DefaultConfig()
	cfg.CacheSize = 0
	cfg.ShardCount = c.Int("shards", 1)
	cfg.WALDir = dir
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		return err
	}
	if !sys.ServingStats().Durability.Enabled {
		rec.Assert("wal_enabled", false, "durability not enabled despite WALDir")
		return nil
	}
	perWorker := ops / writers
	if perWorker == 0 {
		perWorker = 1
	}
	total := perWorker * writers
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	lats := make([][]time.Duration, writers)
	rec.StartTimer()
	for wk := 0; wk < writers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			gen := workload.NewWriteFlood(d.NumUsers(), d.NumItems(), c.RepSeed(rep)+int64(wk)*1000)
			local := make([]time.Duration, 0, perWorker)
			fails := 0
			var op workload.Op
			for i := 0; i < perWorker; i++ {
				gen.Next(&op)
				t0 := time.Now()
				if _, _, err := sys.ApplyRating(op.User, op.Item, op.Score); err != nil {
					fails++
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats[wk] = local
			errs += fails
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	rec.StopTimer()
	for _, l := range lats {
		rec.ObserveAll(l)
	}
	secs := rec.elapsed.Seconds()
	if secs > 0 {
		rec.SetMetric("acks_per_sec", float64(total-errs)/secs)
	}
	rec.Assertf("no_errors", errs == 0, "%d durable writes failed", errs)
	rec.Assertf("epoch_tracks_writes", sys.Epoch() > 0 && sys.Epoch() <= uint64(total-errs),
		"fleet epoch %d after %d acknowledged writes (same-score re-rates are epoch no-ops)", sys.Epoch(), total-errs)
	closeErr := sys.Close()
	rec.Assertf("clean_shutdown", closeErr == nil, "Close: %v", closeErr)
	return nil
}

// runFleetGraphMemory measures shared-base fleet memory: construction
// heap at the cell's shard count against a single-replica build of the
// same corpus. Axes/params: dataset, shards.
func runFleetGraphMemory(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	shards := c.Int("shards", 16)
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	single, err := measureFleetHeap(w.Data, 1)
	if err != nil {
		return err
	}
	fleet, err := measureFleetHeap(w.Data, shards)
	if err != nil {
		return err
	}
	rec.SetMetric("fleet_bytes", fleet)
	rec.SetMetric("bytes_per_shard", fleet/float64(shards))
	rec.SetMetric("single_replica_bytes", single)
	ratio := 0.0
	if single > 0 {
		ratio = fleet / single
	}
	rec.SetMetric("ratio_vs_single", ratio)
	rec.Assertf("shared_base_flat", shards == 1 || (ratio > 0 && ratio < 1.5),
		"%d-shard fleet heap is %.3f× the single replica — replicas are carrying graph copies again", shards, ratio)
	return nil
}

// measureFleetHeap builds one fleet (no caches) and reports the
// construction heap delta, GC-quiesced on both sides. A surrounding test
// process can leave floating garbage that a mid-measurement collection
// frees, driving the delta to zero or negative — those attempts are
// discarded and the build remeasured (the first GC of a retry starts
// from a quiesced heap, so retries converge fast).
func measureFleetHeap(d *dataset.Dataset, shards int) (float64, error) {
	cfg := longtail.DefaultConfig()
	cfg.CacheSize = 0
	cfg.ShardCount = shards
	var ms runtime.MemStats
	for attempt := 0; attempt < 4; attempt++ {
		// Two collections: sync.Pool contents survive one GC in the victim
		// cache, so scratch left by earlier grid scenarios would otherwise
		// be freed by the post-build GC and deflate the measured delta
		// (observed as a ~15× "ratio" from a baseline measured 15× small).
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.HeapAlloc
		sys, err := longtail.NewSystem(d, cfg)
		if err != nil {
			return 0, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		heap := float64(int64(ms.HeapAlloc) - int64(before))
		runtime.KeepAlive(sys)
		if heap > 0 {
			return heap, nil
		}
	}
	return 0, fmt.Errorf("lab: fleet heap measurement never stabilized at shards=%d", shards)
}

// ---------------------------------------------------------------------------
// Hostile workload scenarios (internal/lab/workload generators).

// runColdStartStorm floods the auto-grow write path with brand-new
// users — writers concurrent goroutines consuming one dense-ascending
// arrival stream — then checks the universe grew exactly, and newcomers
// are immediately servable. Axes/params: dataset, new_users, per_user,
// writers, cache, shards.
func runColdStartStorm(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	newUsers := c.Int("new_users", 1000)
	perUser := c.Int("per_user", 3)
	writers := c.Int("writers", 4)
	if newUsers < 1 || perUser < 1 || writers < 1 {
		return fmt.Errorf("new_users, per_user and writers must be >= 1")
	}
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, w.Data, 4096, true)
	if err != nil {
		return err
	}
	baseUsers, numItems := w.Data.NumUsers(), w.Data.NumItems()
	totalOps := newUsers * perUser
	// One generator feeds a small channel; in-flight ops stay ≤
	// writers+buffer, so user ids never jump the universe edge by more
	// than graph.MaxDenseAdmissions no matter how workers interleave.
	gen := workload.NewColdStart(baseUsers, numItems, perUser, c.RepSeed(rep))
	feed := make(chan workload.Op, 32)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	lats := make([][]time.Duration, writers)
	rec.StartTimer()
	go func() {
		var op workload.Op
		for i := 0; i < totalOps; i++ {
			gen.Next(&op)
			feed <- op
		}
		close(feed)
	}()
	for wk := 0; wk < writers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var local []time.Duration
			fails := 0
			for op := range feed {
				t0 := time.Now()
				if _, _, err := sys.ApplyRating(op.User, op.Item, op.Score); err != nil {
					fails++
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats[wk] = local
			errs += fails
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	rec.StopTimer()
	for _, l := range lats {
		rec.ObserveAll(l)
	}
	if secs := rec.elapsed.Seconds(); secs > 0 {
		rec.SetMetric("users_per_sec", float64(newUsers)/secs)
	}
	liveUsers, _ := sys.Universe()
	rec.SetMetric("grown_users", float64(liveUsers-baseUsers))
	rec.Assertf("no_rejected_writes", errs == 0, "%d storm writes rejected", errs)
	rec.Assertf("universe_grew_exactly", liveUsers == baseUsers+newUsers,
		"live universe holds %d users, want %d (base %d + %d new)", liveUsers, baseUsers+newUsers, baseUsers, newUsers)
	// Newcomers must be first-class citizens immediately: walk queries
	// anchor on their fresh ratings without fallback.
	ctx := context.Background()
	unservable := 0
	for i := 0; i < 32 && i < newUsers; i++ {
		u := baseUsers + (i*(newUsers/32+1))%newUsers
		resp, err := sys.Recommend(ctx, c.Str("algo", "AT"), longtail.Request{User: u, K: 10})
		if err != nil || len(resp.Items) == 0 {
			unservable++
		}
	}
	rec.Assertf("newcomers_servable", unservable == 0, "%d of 32 sampled new users not servable", unservable)
	return nil
}

// runFlashCrowd pounds a tiny hot user set with concurrent readers over
// a cached fleet: the thundering herd must coalesce (misses bounded by
// the hot-set size), the hit rate must clear its floor, and every reader
// must see identical results for the same user. Axes/params: dataset,
// hot_users, readers, ops, cache, shards, algo, hit_rate_min.
func runFlashCrowd(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	hotUsers := c.Int("hot_users", 16)
	readers := c.Int("readers", 8)
	ops := c.Int("ops", 2048)
	algo := c.Str("algo", "AT")
	minHit := c.Float("hit_rate_min", 0.9)
	if hotUsers < 1 || readers < 1 || ops < 1 {
		return fmt.Errorf("hot_users, readers and ops must be >= 1")
	}
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, w.Data, 4096, false)
	if err != nil {
		return err
	}
	pool, err := panel(w.Data, c.Seed, hotUsers, 3)
	if err != nil {
		return err
	}
	perWorker := ops / readers
	if perWorker == 0 {
		perWorker = 1
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	first := map[int][]longtail.Scored{}
	errs, mismatches := 0, 0
	lats := make([][]time.Duration, readers)
	rec.StartTimer()
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			gen := workload.NewFlashCrowd(pool, c.RepSeed(rep)+int64(rd)*1000)
			local := make([]time.Duration, 0, perWorker)
			fails, diffs := 0, 0
			var op workload.Op
			for i := 0; i < perWorker; i++ {
				gen.Next(&op)
				t0 := time.Now()
				resp, err := sys.Recommend(ctx, algo, longtail.Request{User: op.User, K: 10})
				local = append(local, time.Since(t0))
				if err != nil {
					fails++
					continue
				}
				mu.Lock()
				if prev, ok := first[op.User]; !ok {
					first[op.User] = resp.Items
				} else if !sameScored(prev, resp.Items) {
					diffs++
				}
				mu.Unlock()
			}
			mu.Lock()
			lats[rd] = local
			errs += fails
			mismatches += diffs
			mu.Unlock()
		}(rd)
	}
	wg.Wait()
	rec.StopTimer()
	for _, l := range lats {
		rec.ObserveAll(l)
	}
	st := sys.ServingStats().Cache
	if hr, ok := hitRate(cache.Stats{}, st); ok {
		rec.SetMetric("hit_rate", hr)
		rec.Assertf("hit_rate_floor", hr >= minHit, "hit rate %.3f under the %.3f floor", hr, minHit)
	} else {
		rec.Assert("hit_rate_floor", false, "no cache lookups recorded")
	}
	rec.SetMetric("cache_misses", float64(st.Misses))
	rec.Assertf("herd_coalesced", st.Misses <= uint64(hotUsers),
		"%d cache misses for a %d-user hot set — singleflight failed to coalesce the herd", st.Misses, hotUsers)
	rec.Assertf("no_errors", errs == 0, "%d reads failed", errs)
	rec.Assertf("consistent_responses", mismatches == 0,
		"%d reads saw a different list than the first read of the same user on an unchanged graph", mismatches)
	return nil
}

func sameScored(a, b []longtail.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Item != b[i].Item || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// runWriteFlood drives the adversarial invalidation sweep: write-heavy
// traffic walking the whole user space (every write a different user, so
// every shard's epoch keeps bumping) with reads interleaved — the cache's
// worst case. The fleet must stay correct and available; the recorded
// hit_rate documents the blast radius the shards axis buys back.
// Axes/params: dataset, shards, cache, ops, writes_per_read, algo.
func runWriteFlood(c *Cell, rep int, rec *Recorder) error {
	kind := c.Str("dataset", "movielens")
	ops := c.Int("ops", 500)
	wpr := c.Int("writes_per_read", 4)
	algo := c.Str("algo", "AT")
	if ops < 1 || wpr < 1 {
		return fmt.Errorf("ops and writes_per_read must be >= 1")
	}
	w, err := labWorld(kind, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, w.Data, 8192, false)
	if err != nil {
		return err
	}
	users, err := panel(w.Data, c.Seed, c.Int("panel_users", 30), 3)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, u := range users { // warm the cache the flood will then attack
		if _, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10}); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	warm := sys.ServingStats().Cache
	epoch0 := sys.Epoch()
	gen := workload.NewWriteFlood(w.Data.NumUsers(), w.Data.NumItems(), c.RepSeed(rep))
	var op workload.Op
	writes, writeErrs, readErrs, emptyReads := 0, 0, 0, 0
	rec.StartTimer()
	for i := 0; i < ops; i++ {
		if i%(wpr+1) != wpr {
			gen.Next(&op)
			if _, _, err := sys.ApplyRating(op.User, op.Item, op.Score); err != nil {
				writeErrs++
			} else {
				writes++
			}
			continue
		}
		u := users[(i*7+1)%len(users)]
		t0 := time.Now()
		resp, err := sys.Recommend(ctx, algo, longtail.Request{User: u, K: 10})
		rec.Observe(time.Since(t0))
		if err != nil {
			readErrs++
		} else if len(resp.Items) == 0 {
			emptyReads++
		}
	}
	rec.StopTimer()
	rec.SetMetric("writes", float64(writes))
	if secs := rec.elapsed.Seconds(); secs > 0 {
		rec.SetMetric("writes_per_sec", float64(writes)/secs)
	}
	if hr, ok := hitRate(warm, sys.ServingStats().Cache); ok {
		rec.SetMetric("hit_rate", hr)
	}
	st := sys.ServingStats()
	touched := 0
	for _, sh := range st.Shards {
		if sh.Epoch > 0 {
			touched++
		}
	}
	rec.SetMetric("shards_touched", float64(touched))
	rec.Assertf("no_write_errors", writeErrs == 0, "%d flood writes rejected", writeErrs)
	rec.Assertf("reads_survive", readErrs == 0 && emptyReads == 0,
		"%d read errors, %d empty lists under the flood", readErrs, emptyReads)
	moved := sys.Epoch() - epoch0
	rec.Assertf("epoch_tracks_writes", writes == 0 || (moved > 0 && moved <= uint64(writes)),
		"fleet epoch moved %d for %d accepted writes", moved, writes)
	rec.Assertf("flood_sprays_all_shards", writes < 4*len(st.Shards) || touched == len(st.Shards),
		"only %d of %d shards saw a write — the sweep is not adversarial", touched, len(st.Shards))
	return nil
}

// runZipfSoak is the steady-state soak: a bootstrap corpus at the users
// axis (scales to millions), workers concurrent goroutines driving a
// zipf-distributed read/write mix. Axes/params: users, items, per_user,
// zipf_s, write_ratio, workers, ops, cache, shards, algo.
func runZipfSoak(c *Cell, rep int, rec *Recorder) error {
	users := c.Int("users", 10000)
	items := c.Int("items", 2000)
	perUser := c.Int("per_user", 6)
	zs := c.Float("zipf_s", 1.1)
	writeRatio := c.Float("write_ratio", 0.1)
	workers := c.Int("workers", 8)
	ops := c.Int("ops", 800)
	algo := c.Str("algo", "AT")
	if workers < 1 || ops < 1 {
		return fmt.Errorf("workers and ops must be >= 1")
	}
	d, err := bootstrapData(users, items, perUser, 1.15, c.Seed)
	if err != nil {
		return err
	}
	sys, err := servingSystem(c, d, 8192, false)
	if err != nil {
		return err
	}
	warm0 := sys.ServingStats().Cache
	epoch0 := sys.Epoch()
	perWorker := ops / workers
	if perWorker == 0 {
		perWorker = 1
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var writes, readErrs, writeErrs int
	lats := make([][]time.Duration, workers)
	rec.StartTimer()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			gen, genErr := workload.NewZipfMixed(users, items, writeRatio, zs, c.RepSeed(rep)+int64(wk)*1000)
			if genErr != nil {
				mu.Lock()
				readErrs++ // surfaces through the assertion with the real count
				mu.Unlock()
				return
			}
			var local []time.Duration
			wr, rerr, werr := 0, 0, 0
			var op workload.Op
			for i := 0; i < perWorker; i++ {
				gen.Next(&op)
				if op.Kind == workload.Write {
					if _, _, err := sys.ApplyRating(op.User, op.Item, op.Score); err != nil {
						werr++
					} else {
						wr++
					}
					continue
				}
				t0 := time.Now()
				if _, err := sys.Recommend(ctx, algo, longtail.Request{User: op.User, K: 10}); err != nil {
					rerr++
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats[wk] = local
			writes += wr
			readErrs += rerr
			writeErrs += werr
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	rec.StopTimer()
	for _, l := range lats {
		rec.ObserveAll(l)
	}
	rec.AddOps(writes)
	rec.SetMetric("writes", float64(writes))
	if hr, ok := hitRate(warm0, sys.ServingStats().Cache); ok {
		rec.SetMetric("hit_rate", hr)
	}
	rec.SetMetric("soak_users", float64(users))
	rec.Assertf("no_read_errors", readErrs == 0, "%d soak reads failed", readErrs)
	rec.Assertf("no_write_errors", writeErrs == 0, "%d soak writes failed", writeErrs)
	soakMoved := sys.Epoch() - epoch0
	rec.Assertf("epoch_tracks_writes", writes == 0 || (soakMoved > 0 && soakMoved <= uint64(writes)),
		"fleet epoch moved %d for %d accepted writes", soakMoved, writes)
	return nil
}
