package lab

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// CellResult is one grid point's aggregated outcome.
type CellResult struct {
	// Experiment is the owning experiment's id.
	Experiment string `json:"experiment"`
	// Scenario is the registered scenario that ran.
	Scenario string `json:"scenario"`
	// Axes is the cell's axis assignment (empty object for axis-free
	// experiments).
	Axes map[string]any `json:"axes"`
	// Repeats is how many times the cell ran.
	Repeats int `json:"repeats"`
	// Seconds is total wall time across the cell's repeats, setup and
	// warmup included — the grid-budget number, not a metric.
	Seconds float64 `json:"seconds"`
	// Metrics maps metric name → cross-repeat aggregate.
	Metrics map[string]Metric `json:"metrics"`
	// MetricOrder preserves the scenario's emission order for rendering.
	MetricOrder []string `json:"metric_order"`
	// Assertions are the scenario's pass/fail checks (failed in any
	// repeat = failed).
	Assertions []Assertion `json:"assertions"`
}

// Failed lists the cell's failing assertions.
func (c *CellResult) Failed() []Assertion {
	var out []Assertion
	for _, a := range c.Assertions {
		if !a.Pass {
			out = append(out, a)
		}
	}
	return out
}

// Report is the machine-readable outcome of one grid run — the
// BENCH_<n>.json trajectory point.
type Report struct {
	// Schema identifies the report format for later readers.
	Schema string `json:"schema"`
	// Name and BenchID come from the spec.
	Name    string `json:"name"`
	BenchID int    `json:"bench_id"`
	// CreatedUnix stamps the run (seconds since epoch).
	CreatedUnix int64 `json:"created_unix"`
	// Environment provenance: numbers are only comparable against the
	// same universe.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Seed and Repeats echo the spec for reproduction.
	Seed    int64 `json:"seed"`
	Repeats int   `json:"repeats"`
	// Cells are the grid points in run order.
	Cells []CellResult `json:"cells"`
}

// SchemaID is the report format identifier every valid report carries.
const SchemaID = "longtailrec/bench/v1"

// FailedCells lists cells with at least one failing assertion.
func (r *Report) FailedCells() []CellResult {
	var out []CellResult
	for _, c := range r.Cells {
		if len(c.Failed()) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Run executes every cell of the spec's grid and assembles the report.
// Progress lines go to w (io.Discard silences them). Run fails fast on
// harness errors — bad parameters, setup failures, unread spec knobs —
// but workload-level failures land as failing assertions in the report,
// so one bad cell never hides another's numbers.
func Run(spec *Spec, w io.Writer) (*Report, error) {
	if w == nil {
		w = io.Discard
	}
	rep := &Report{
		Schema:      SchemaID,
		Name:        spec.Name,
		BenchID:     spec.BenchID,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        spec.Seed,
		Repeats:     spec.Repeats,
	}
	for i := range spec.Experiments {
		e := &spec.Experiments[i]
		sc := scenarioRegistry[e.Scenario] // validated at parse time
		repeats := spec.repeats(e)
		cells := expand(spec, e)
		fmt.Fprintf(w, "# %s (%s): %d cell(s) × %d repeat(s)\n", e.ID, e.Scenario, len(cells), repeats)
		for _, c := range cells {
			t0 := time.Now()
			recs := make([]*Recorder, 0, repeats)
			for r := 0; r < repeats; r++ {
				rec := NewRecorder()
				if err := sc.Run(c, r, rec); err != nil {
					return nil, fmt.Errorf("lab: %s [%s] repeat %d: %w", e.ID, c.label(), r, err)
				}
				rec.finalize()
				if r == 0 {
					if bad := c.unused(); len(bad) > 0 {
						return nil, fmt.Errorf("lab: %s [%s]: parameters not understood by scenario %s: %s",
							e.ID, c.label(), e.Scenario, strings.Join(bad, ", "))
					}
				}
				recs = append(recs, rec)
			}
			metrics, order, asserts := aggregate(recs)
			res := CellResult{
				Experiment:  e.ID,
				Scenario:    e.Scenario,
				Axes:        c.Axes,
				Repeats:     repeats,
				Seconds:     time.Since(t0).Seconds(),
				Metrics:     metrics,
				MetricOrder: order,
				Assertions:  asserts,
			}
			status := "ok"
			if f := res.Failed(); len(f) > 0 {
				names := make([]string, len(f))
				for i, a := range f {
					names[i] = a.Name
				}
				status = "FAIL " + strings.Join(names, ",")
			}
			fmt.Fprintf(w, "  %-28s %6.2fs  %s\n", c.label(), res.Seconds, status)
			rep.Cells = append(rep.Cells, res)
		}
	}
	return rep, nil
}

// Summary renders the human table: one row per cell with the headline
// metrics and the assertion verdict.
func Summary(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (bench_id %d, seed %d, %s %s/%s, GOMAXPROCS %d)\n",
		r.Name, r.BenchID, r.Seed, r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS)
	const rowFmt = "%-28s %-24s %12s %12s %12s %10s %s\n"
	fmt.Fprintf(&b, rowFmt, "experiment", "cell", "p50", "p99", "ops/s", "hit-rate", "asserts")
	for _, c := range r.Cells {
		label := axesLabel(c.Axes)
		verdict := "pass"
		if f := c.Failed(); len(f) > 0 {
			names := make([]string, len(f))
			for i, a := range f {
				names[i] = a.Name
			}
			verdict = "FAIL:" + strings.Join(names, ",")
		} else if len(c.Assertions) == 0 {
			verdict = "-"
		}
		fmt.Fprintf(&b, rowFmt, c.Experiment, label,
			nsCell(c.Metrics, "p50_ns"), nsCell(c.Metrics, "p99_ns"),
			rateCell(c.Metrics, "ops_per_sec"), ratioCell(c.Metrics, "hit_rate"), verdict)
	}
	return b.String()
}

func axesLabel(axes map[string]any) string {
	if len(axes) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(axes))
	for k := range axes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, axes[k]))
	}
	return strings.Join(parts, " ")
}

func nsCell(m map[string]Metric, name string) string {
	v, ok := m[name]
	if !ok {
		return "-"
	}
	return time.Duration(v.Mean).Round(time.Microsecond).String()
}

func rateCell(m map[string]Metric, name string) string {
	v, ok := m[name]
	if !ok {
		return "-"
	}
	switch {
	case v.Mean >= 1e6:
		return fmt.Sprintf("%.2fM", v.Mean/1e6)
	case v.Mean >= 1e3:
		return fmt.Sprintf("%.1fk", v.Mean/1e3)
	default:
		return fmt.Sprintf("%.1f", v.Mean)
	}
}

func ratioCell(m map[string]Metric, name string) string {
	v, ok := m[name]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v.Mean)
}
