package lab

import (
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","bench_id":3,"experiments":[{"scenario":"recommend_request"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Repeats != 1 || s.Seed != 42 {
		t.Fatalf("defaults not applied: repeats=%d seed=%d", s.Repeats, s.Seed)
	}
	if s.Experiments[0].ID != "recommend_request" {
		t.Fatalf("experiment id not defaulted to scenario, got %q", s.Experiments[0].ID)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":        `{"name":"t","bench_id":1,"experimnts":[]}`,
		"unknown scenario":     `{"name":"t","bench_id":1,"experiments":[{"scenario":"nope"}]}`,
		"missing name":         `{"bench_id":1,"experiments":[{"scenario":"recommend_request"}]}`,
		"no experiments":       `{"name":"t","bench_id":1,"experiments":[]}`,
		"duplicate ids":        `{"name":"t","bench_id":1,"experiments":[{"scenario":"recommend_request"},{"scenario":"recommend_request"}]}`,
		"empty axis":           `{"name":"t","bench_id":1,"experiments":[{"scenario":"recommend_request","axes":{"shards":[]}}]}`,
		"unknown cell knob":    `{"name":"t","bench_id":1,"experiments":[{"scenario":"recommend_request","axs":{"shards":[1]}}]}`,
		"negative exp repeats": `{"name":"t","bench_id":1,"experiments":[{"scenario":"recommend_request","repeats":-1}]}`,
	}
	for name, raw := range cases {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpandCartesian(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","bench_id":1,"experiments":[
		{"scenario":"recommend_request","axes":{"shards":[1,4],"algo":["AT","AC2"]},"params":{"ops":8}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := expand(s, &s.Experiments[0])
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4", len(cells))
	}
	// Axis names sort ("algo" < "shards"), values keep spec order: the
	// outer loop is algo, the inner shards.
	wantLabels := []string{"algo=AT shards=1", "algo=AT shards=4", "algo=AC2 shards=1", "algo=AC2 shards=4"}
	for i, c := range cells {
		if c.label() != wantLabels[i] {
			t.Errorf("cell %d label %q, want %q", i, c.label(), wantLabels[i])
		}
		if got := c.Int("ops", 0); got != 8 {
			t.Errorf("cell %d: params did not merge, ops=%d", i, got)
		}
	}
}

func TestCellAccessorsAndUnused(t *testing.T) {
	c := &Cell{
		params: map[string]any{"shards": float64(4), "algo": "AC2", "warm": true, "ratio": 0.5, "typo_knob": 1.0},
		used:   map[string]bool{},
		Seed:   42,
	}
	if got := c.Int("shards", 1); got != 4 {
		t.Fatalf("Int = %d", got)
	}
	if got := c.Str("algo", "AT"); got != "AC2" {
		t.Fatalf("Str = %q", got)
	}
	if !c.Bool("warm", false) {
		t.Fatal("Bool lost the value")
	}
	if got := c.Float("ratio", 0); got != 0.5 {
		t.Fatalf("Float = %v", got)
	}
	if got := c.Int("missing", 7); got != 7 {
		t.Fatalf("missing default = %d", got)
	}
	unused := c.unused()
	if len(unused) != 1 || unused[0] != "typo_knob" {
		t.Fatalf("unused = %v, want [typo_knob]", unused)
	}
}

func TestRepSeedDistinctAndStable(t *testing.T) {
	c := &Cell{Seed: 42}
	if c.RepSeed(0) == c.RepSeed(1) {
		t.Fatal("repeat seeds collide")
	}
	if c.RepSeed(0) == c.Seed {
		t.Fatal("repeat 0 reuses the world seed")
	}
	again := &Cell{Seed: 42}
	if c.RepSeed(3) != again.RepSeed(3) {
		t.Fatal("repeat seeds not stable")
	}
}

func TestExperimentRepeatOverride(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","bench_id":1,"repeats":3,"experiments":[
		{"scenario":"recommend_request"},
		{"id":"soak","scenario":"zipf_soak","repeats":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.repeats(&s.Experiments[0]); got != 3 {
		t.Fatalf("inherit: %d", got)
	}
	if got := s.repeats(&s.Experiments[1]); got != 1 {
		t.Fatalf("override: %d", got)
	}
}

func TestScenariosListed(t *testing.T) {
	names := Scenarios()
	want := []string{
		"cache_precision", "coldstart_storm", "flash_crowd", "fleet_graph_memory", "recommend_request",
		"sharded_write_invalidation", "wal_append", "write_flood", "zipf_soak",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Scenarios() = %v, want %v", names, want)
	}
	for _, n := range names {
		if ScenarioDoc(n) == "" {
			t.Errorf("scenario %s has no doc line", n)
		}
	}
}
