package lab

import (
	"fmt"
	"sort"
	"time"
)

// Recorder collects one repeat's measurements: per-op latencies (from
// which the within-run quantiles derive), named scalar metrics, and
// pass/fail assertions.
type Recorder struct {
	lat     []time.Duration
	metrics map[string]float64
	order   []string // metric insertion order, for stable rendering
	asserts []Assertion
	ops     int

	t0      time.Time
	elapsed time.Duration
}

// StartTimer marks the beginning of the measured phase — scenarios call
// it after setup and warmup, so throughput metrics never charge world
// generation or model training to the workload.
func (r *Recorder) StartTimer() { r.t0 = time.Now() }

// StopTimer closes the measured phase (accumulates, so a scenario may
// time disjoint segments).
func (r *Recorder) StopTimer() {
	if !r.t0.IsZero() {
		r.elapsed += time.Since(r.t0)
		r.t0 = time.Time{}
	}
}

// NewRecorder builds an empty recorder for one repeat.
func NewRecorder() *Recorder {
	return &Recorder{metrics: map[string]float64{}}
}

// Observe records one operation's latency.
func (r *Recorder) Observe(d time.Duration) {
	r.lat = append(r.lat, d)
	r.ops++
}

// ObserveAll merges a worker's local latency slice — concurrent
// scenarios keep per-goroutine slices and merge after joining, so the
// measured loop never contends on the recorder.
func (r *Recorder) ObserveAll(ds []time.Duration) {
	r.lat = append(r.lat, ds...)
	r.ops += len(ds)
}

// AddOps counts operations that contribute to throughput but carry no
// individual latency sample (e.g. group-committed writes acknowledged in
// batches).
func (r *Recorder) AddOps(n int) { r.ops += n }

// SetMetric records a named scalar for this repeat (overwrites).
func (r *Recorder) SetMetric(name string, v float64) {
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = v
}

// Assert records one named pass/fail check with a human detail line.
func (r *Recorder) Assert(name string, pass bool, detail string) {
	r.asserts = append(r.asserts, Assertion{Name: name, Pass: pass, Detail: detail})
}

// Assertf is Assert with a formatted detail.
func (r *Recorder) Assertf(name string, pass bool, format string, args ...any) {
	r.Assert(name, pass, fmt.Sprintf(format, args...))
}

// finalize derives the standard metrics from the observations: ops,
// wall_seconds, ops_per_sec, and — when per-op latencies were recorded —
// mean_ns, p50_ns, p99_ns and max_ns.
func (r *Recorder) finalize() {
	r.StopTimer()
	r.SetMetric("ops", float64(r.ops))
	secs := r.elapsed.Seconds()
	r.SetMetric("wall_seconds", secs)
	if secs > 0 && r.ops > 0 {
		r.SetMetric("ops_per_sec", float64(r.ops)/secs)
	}
	if len(r.lat) == 0 {
		return
	}
	sorted := make([]time.Duration, len(r.lat))
	copy(sorted, r.lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	r.SetMetric("mean_ns", float64(sum.Nanoseconds())/float64(len(sorted)))
	r.SetMetric("p50_ns", float64(quantile(sorted, 0.50).Nanoseconds()))
	r.SetMetric("p99_ns", float64(quantile(sorted, 0.99).Nanoseconds()))
	r.SetMetric("max_ns", float64(sorted[len(sorted)-1].Nanoseconds()))
}

// quantile reads the q-quantile (nearest-rank on the sorted sample).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Metric is one named measurement aggregated across a cell's repeats.
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Repeats holds the per-repeat values in repeat order — the raw
	// series, so a later reader can recompute any aggregate.
	Repeats []float64 `json:"repeats"`
}

// Assertion is one named pass/fail robustness check.
type Assertion struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// aggregate folds the repeats' recorders into the cell's metric map and
// assertion list. A metric missing from some repeat aggregates over the
// repeats that recorded it; an assertion fails if it failed in any
// repeat (first failing detail wins).
func aggregate(recs []*Recorder) (map[string]Metric, []string, []Assertion) {
	metrics := map[string]Metric{}
	var order []string
	seen := map[string]bool{}
	for _, r := range recs {
		for _, name := range r.order {
			if !seen[name] {
				seen[name] = true
				order = append(order, name)
			}
		}
	}
	for _, name := range order {
		var vals []float64
		for _, r := range recs {
			if v, ok := r.metrics[name]; ok {
				vals = append(vals, v)
			}
		}
		m := Metric{Min: vals[0], Max: vals[0], Repeats: vals}
		sum := 0.0
		for _, v := range vals {
			sum += v
			if v < m.Min {
				m.Min = v
			}
			if v > m.Max {
				m.Max = v
			}
		}
		m.Mean = sum / float64(len(vals))
		metrics[name] = m
	}
	// Assertions: union by name in first-seen order, all repeats must pass.
	var anames []string
	byName := map[string]*Assertion{}
	for _, r := range recs {
		for _, a := range r.asserts {
			cur, ok := byName[a.Name]
			if !ok {
				cp := a
				byName[a.Name] = &cp
				anames = append(anames, a.Name)
				continue
			}
			if cur.Pass && !a.Pass {
				cur.Pass = false
				cur.Detail = a.Detail
			}
		}
	}
	asserts := make([]Assertion, 0, len(anames))
	for _, n := range anames {
		asserts = append(asserts, *byName[n])
	}
	return metrics, order, asserts
}
