package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// WriteJSON writes the report as stable, indented JSON.
func WriteJSON(r *Report, path string) error {
	if err := Validate(r); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("lab: encode report: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// WriteCSV writes the flat companion table: one row per (cell, metric),
// axes rendered as a stable "k=v k=v" string, repeats joined with "|".
// The spreadsheet-side view of the same numbers as the JSON.
func WriteCSV(r *Report, path string) error {
	var b strings.Builder
	b.WriteString("experiment,scenario,axes,metric,mean,min,max,repeats\n")
	for _, c := range r.Cells {
		label := axesLabel(c.Axes)
		for _, name := range c.MetricOrder {
			m, ok := c.Metrics[name]
			if !ok {
				continue
			}
			reps := make([]string, len(m.Repeats))
			for i, v := range m.Repeats {
				reps[i] = formatFloat(v)
			}
			fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s,%s,%s\n",
				csvField(c.Experiment), csvField(c.Scenario), csvField(label), csvField(name),
				formatFloat(m.Mean), formatFloat(m.Min), formatFloat(m.Max), strings.Join(reps, "|"))
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Validate checks a report's structural invariants — the schema the
// committed BENCH_*.json baselines promise to later readers. make
// lab-smoke runs this over both the freshly emitted report and the
// committed baseline, so a drifting writer or a hand-edited baseline
// fails CI.
func Validate(r *Report) error {
	if r == nil {
		return fmt.Errorf("lab: validate: nil report")
	}
	if r.Schema != SchemaID {
		return fmt.Errorf("lab: validate: schema %q, want %q", r.Schema, SchemaID)
	}
	if r.Name == "" {
		return fmt.Errorf("lab: validate: empty name")
	}
	if r.BenchID < 0 {
		return fmt.Errorf("lab: validate: bench_id %d < 0", r.BenchID)
	}
	if r.CreatedUnix <= 0 {
		return fmt.Errorf("lab: validate: created_unix %d not positive", r.CreatedUnix)
	}
	if r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("lab: validate: incomplete environment provenance")
	}
	if r.GOMAXPROCS < 1 {
		return fmt.Errorf("lab: validate: gomaxprocs %d < 1", r.GOMAXPROCS)
	}
	if r.Repeats < 1 {
		return fmt.Errorf("lab: validate: repeats %d < 1", r.Repeats)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("lab: validate: no cells")
	}
	for i := range r.Cells {
		if err := validateCell(&r.Cells[i]); err != nil {
			return fmt.Errorf("lab: validate: cell %d: %w", i, err)
		}
	}
	return nil
}

func validateCell(c *CellResult) error {
	if c.Experiment == "" || c.Scenario == "" {
		return fmt.Errorf("empty experiment or scenario")
	}
	if c.Repeats < 1 {
		return fmt.Errorf("repeats %d < 1", c.Repeats)
	}
	if c.Seconds < 0 {
		return fmt.Errorf("negative wall seconds")
	}
	if len(c.Metrics) == 0 {
		return fmt.Errorf("no metrics")
	}
	if len(c.MetricOrder) != len(c.Metrics) {
		return fmt.Errorf("metric_order lists %d names for %d metrics", len(c.MetricOrder), len(c.Metrics))
	}
	ordered := map[string]bool{}
	for _, name := range c.MetricOrder {
		if _, ok := c.Metrics[name]; !ok {
			return fmt.Errorf("metric_order names %q which is not in metrics", name)
		}
		if ordered[name] {
			return fmt.Errorf("metric_order repeats %q", name)
		}
		ordered[name] = true
	}
	names := make([]string, 0, len(c.Metrics))
	for name := range c.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := c.Metrics[name]
		for _, v := range append([]float64{m.Mean, m.Min, m.Max}, m.Repeats...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("metric %q holds a non-finite value", name)
			}
		}
		if len(m.Repeats) == 0 {
			return fmt.Errorf("metric %q has no per-repeat values", name)
		}
		if len(m.Repeats) > c.Repeats {
			return fmt.Errorf("metric %q records %d repeats for a %d-repeat cell", name, len(m.Repeats), c.Repeats)
		}
		const eps = 1e-9
		if m.Min > m.Mean+eps || m.Mean > m.Max+eps {
			return fmt.Errorf("metric %q violates min <= mean <= max (%g, %g, %g)", name, m.Min, m.Mean, m.Max)
		}
	}
	for _, a := range c.Assertions {
		if a.Name == "" {
			return fmt.Errorf("assertion with empty name")
		}
	}
	return nil
}

// ValidateFile parses and validates a report file — the `ltr-lab -check`
// path. Unknown fields are rejected so schema drift is loud.
func ValidateFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("lab: %s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
