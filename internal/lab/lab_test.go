package lab

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCell executes one scenario over an ad-hoc cell and fails the test on
// harness errors or failing assertions.
func runCell(t *testing.T, scenario string, params map[string]any) *Recorder {
	t.Helper()
	rec := mustRunCell(t, scenario, params)
	for _, a := range rec.asserts {
		if !a.Pass {
			t.Errorf("%s: assertion %s failed: %s", scenario, a.Name, a.Detail)
		}
	}
	return rec
}

func mustRunCell(t *testing.T, scenario string, params map[string]any) *Recorder {
	t.Helper()
	sc, ok := scenarioRegistry[scenario]
	if !ok {
		t.Fatalf("scenario %s not registered", scenario)
	}
	c := &Cell{
		Experiment: scenario,
		Scenario:   scenario,
		Axes:       map[string]any{},
		Seed:       42,
		params:     params,
		used:       map[string]bool{},
	}
	rec := NewRecorder()
	if err := sc.Run(c, 0, rec); err != nil {
		t.Fatalf("%s: %v", scenario, err)
	}
	rec.finalize()
	if bad := c.unused(); len(bad) > 0 {
		t.Fatalf("%s: test cell passed unknown params: %v", scenario, bad)
	}
	return rec
}

func TestRecommendRequestScenario(t *testing.T) {
	rec := runCell(t, "recommend_request", map[string]any{
		"ops": 24.0, "warmup_ops": 4.0, "panel_users": 6.0, "k": 5.0,
	})
	if rec.metrics["ops"] != 24 {
		t.Fatalf("ops metric %v, want 24", rec.metrics["ops"])
	}
	for _, m := range []string{"p50_ns", "p99_ns", "mean_ns"} {
		if rec.metrics[m] <= 0 {
			t.Errorf("metric %s not recorded", m)
		}
	}
}

func TestShardedWriteInvalidationScenario(t *testing.T) {
	rec := runCell(t, "sharded_write_invalidation", map[string]any{
		"shards": 2.0, "ops": 72.0, "reads_per_write": 8.0, "panel_users": 6.0,
	})
	if rec.metrics["writes"] <= 0 {
		t.Fatal("no writes recorded")
	}
	hr, ok := rec.metrics["hit_rate"]
	if !ok || hr < 0 || hr > 1 {
		t.Fatalf("hit_rate %v out of range", hr)
	}
}

func TestWALAppendScenario(t *testing.T) {
	rec := runCell(t, "wal_append", map[string]any{
		"writers": 4.0, "ops": 96.0, "users": 200.0, "items": 60.0, "per_user": 3.0,
	})
	if rec.metrics["acks_per_sec"] <= 0 {
		t.Fatal("no durable throughput recorded")
	}
}

func TestFleetGraphMemoryScenario(t *testing.T) {
	rec := runCell(t, "fleet_graph_memory", map[string]any{"shards": 4.0})
	ratio := rec.metrics["ratio_vs_single"]
	if ratio <= 0 || ratio >= 1.5 {
		t.Fatalf("shared-base ratio %v outside (0, 1.5)", ratio)
	}
}

func TestColdStartStormScenario(t *testing.T) {
	rec := runCell(t, "coldstart_storm", map[string]any{
		"new_users": 48.0, "per_user": 2.0, "writers": 4.0,
	})
	if rec.metrics["grown_users"] != 48 {
		t.Fatalf("grown_users %v, want 48", rec.metrics["grown_users"])
	}
}

// TestConcurrentFlashCrowd is the harness's race-cut test: 8 readers
// hammer an 8-user hot set through the cache + singleflight path, and the
// scenario's own assertions (coalesced herd, hit-rate floor, identical
// responses) must all pass under -race.
func TestConcurrentFlashCrowd(t *testing.T) {
	rec := runCell(t, "flash_crowd", map[string]any{
		"hot_users": 8.0, "readers": 8.0, "ops": 512.0,
	})
	if hr := rec.metrics["hit_rate"]; hr < 0.9 {
		t.Fatalf("flash crowd hit rate %v under 0.9", hr)
	}
}

func TestWriteFloodScenario(t *testing.T) {
	rec := runCell(t, "write_flood", map[string]any{
		"shards": 4.0, "ops": 150.0, "writes_per_read": 4.0, "panel_users": 6.0,
	})
	if rec.metrics["shards_touched"] != 4 {
		t.Fatalf("flood touched %v shards, want 4", rec.metrics["shards_touched"])
	}
}

func TestZipfSoakScenario(t *testing.T) {
	rec := runCell(t, "zipf_soak", map[string]any{
		"users": 600.0, "items": 150.0, "per_user": 4.0, "workers": 4.0, "ops": 240.0,
		"write_ratio": 0.2,
	})
	if rec.metrics["writes"] <= 0 {
		t.Fatal("soak recorded no writes")
	}
}

const gridJSON = `{
	"name": "test-grid",
	"bench_id": 99,
	"repeats": 2,
	"experiments": [
		{"scenario": "recommend_request", "params": {"ops": 16, "warmup_ops": 2, "panel_users": 4, "k": 5}},
		{"scenario": "write_flood", "axes": {"shards": [1, 2]}, "params": {"ops": 60, "panel_users": 4}}
	]
}`

func TestRunGridEndToEnd(t *testing.T) {
	spec, err := ParseSpec([]byte(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("%d cells, want 3 (1 + 2-shard axis)", len(rep.Cells))
	}
	if fails := rep.FailedCells(); len(fails) > 0 {
		t.Fatalf("failed cells: %+v", fails)
	}
	if err := Validate(rep); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if len(c.Metrics["ops"].Repeats) != 2 {
			t.Fatalf("cell %s/%s: ops has %d repeat values, want 2", c.Experiment, axesLabel(c.Axes), len(c.Metrics["ops"].Repeats))
		}
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_99.json")
	csvPath := filepath.Join(dir, "BENCH_99.csv")
	if err := WriteJSON(rep, jsonPath); err != nil {
		t.Fatal(err)
	}
	back, err := ValidateFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.BenchID != 99 || len(back.Cells) != 3 {
		t.Fatalf("round-trip lost data: bench_id=%d cells=%d", back.BenchID, len(back.Cells))
	}
	if err := WriteCSV(rep, csvPath); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "experiment,scenario,axes,metric,mean,min,max,repeats" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.Contains(string(csv), "write_flood,write_flood,shards=2,") {
		t.Fatal("csv is missing the shards=2 write_flood rows")
	}

	sum := Summary(rep)
	for _, want := range []string{"test-grid", "recommend_request", "shards=2", "pass"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestRunDeterministicMetrics pins the fixed-seed reproducibility claim
// at the report level: two runs of the same spec agree exactly on every
// count metric (latency and wall-clock metrics legitimately vary).
func TestRunDeterministicMetrics(t *testing.T) {
	run := func() *Report {
		spec, err := ParseSpec([]byte(gridJSON))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	deterministic := map[string]bool{"ops": true, "writes": true, "hit_rate": true, "shards_touched": true}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		for name := range deterministic {
			ma, oka := ca.Metrics[name]
			mb, okb := cb.Metrics[name]
			if oka != okb {
				t.Fatalf("cell %d metric %s present in one run only", i, name)
			}
			if oka && ma.Mean != mb.Mean {
				t.Errorf("cell %d (%s): metric %s differs across identical runs: %v vs %v",
					i, ca.Experiment, name, ma.Mean, mb.Mean)
			}
		}
	}
}

func TestRunRejectsUnknownParam(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"name":"t","bench_id":1,"experiments":[
		{"scenario":"recommend_request","params":{"ops":8,"warmup_ops":1,"panel_users":4,"bogus_knob":3}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(spec, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "bogus_knob") {
		t.Fatalf("unread knob not reported, err=%v", err)
	}
}

func validReport() *Report {
	return &Report{
		Schema: SchemaID, Name: "t", BenchID: 1, CreatedUnix: 1700000000,
		GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4,
		Seed: 42, Repeats: 1,
		Cells: []CellResult{{
			Experiment: "e", Scenario: "recommend_request", Axes: map[string]any{},
			Repeats: 1, Seconds: 0.5,
			Metrics:     map[string]Metric{"ops": {Mean: 8, Min: 8, Max: 8, Repeats: []float64{8}}},
			MetricOrder: []string{"ops"},
			Assertions:  []Assertion{{Name: "no_errors", Pass: true}},
		}},
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	if err := Validate(validReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := map[string]func(*Report){
		"wrong schema":       func(r *Report) { r.Schema = "nope/v2" },
		"no cells":           func(r *Report) { r.Cells = nil },
		"nan metric":         func(r *Report) { r.Cells[0].Metrics["ops"] = Metric{Mean: math.NaN(), Repeats: []float64{1}} },
		"min above mean":     func(r *Report) { r.Cells[0].Metrics["ops"] = Metric{Mean: 1, Min: 2, Max: 3, Repeats: []float64{1}} },
		"empty repeats":      func(r *Report) { r.Cells[0].Metrics["ops"] = Metric{Mean: 1, Min: 1, Max: 1} },
		"order mismatch":     func(r *Report) { r.Cells[0].MetricOrder = []string{"ops", "ghost"} },
		"unnamed assertion":  func(r *Report) { r.Cells[0].Assertions = []Assertion{{Pass: true}} },
		"zero cell repeats":  func(r *Report) { r.Cells[0].Repeats = 0 },
		"missing provenance": func(r *Report) { r.GoVersion = "" },
	}
	for name, corrupt := range cases {
		r := validReport()
		corrupt(r)
		if err := Validate(r); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "r.json")
	if err := os.WriteFile(p, []byte(`{"schema":"longtailrec/bench/v1","surprise":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(p); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}
