// Package lab is the reproducible experiment harness: a declarative grid
// runner that drives the real serving stack (longtail.System) through
// registered scenarios — the committed benchmark equivalents and the
// hostile workloads of internal/lab/workload — and emits one
// machine-readable BENCH_<n>.json (plus a CSV and a human summary) per
// run, so every performance claim in PERFORMANCE.md has a trajectory
// point a later PR can re-run and compare against.
//
// A grid spec (grids/*.json) names experiments; each experiment is one
// scenario crossed over its axes (shards × cache size × algorithm × …),
// every resulting cell runs `repeats` times with deterministically
// derived seeds and a scenario-owned warmup phase, and per-cell stats
// report the mean/min/max across repeats of every metric, with p50/p99
// latency quantiles computed within each repeat. Scenarios also carry
// pass/fail assertions, so a grid run doubles as a robustness suite: a
// failed assertion fails the run (and `make lab-smoke`), not just a
// number in a file.
package lab

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Spec is one parsed grid file.
type Spec struct {
	// Name labels the run ("baseline", "smoke", ...).
	Name string `json:"name"`
	// BenchID numbers the emitted trajectory point: the default output
	// file is BENCH_<BenchID>.json.
	BenchID int `json:"bench_id"`
	// Repeats is how many times each cell runs (default 1). Every repeat
	// r derives its seed as Seed + 7919*r, so reruns reproduce exactly.
	Repeats int `json:"repeats,omitempty"`
	// Seed is the base seed for worlds and workload streams (default 42).
	Seed int64 `json:"seed,omitempty"`
	// Experiments are the grid's rows.
	Experiments []ExperimentSpec `json:"experiments"`
}

// ExperimentSpec is one scenario crossed over its axes.
type ExperimentSpec struct {
	// ID labels the experiment in the report; defaults to Scenario. Two
	// experiments may share a scenario under different ids/params.
	ID string `json:"id,omitempty"`
	// Scenario names a registered scenario (see Scenarios()).
	Scenario string `json:"scenario"`
	// Axes maps an axis name to the values to sweep; the experiment
	// expands to the cartesian product of all axes (axis names sorted,
	// values in spec order). Empty means one cell.
	Axes map[string][]any `json:"axes,omitempty"`
	// Params are fixed parameters shared by every cell; an axis value
	// with the same name wins.
	Params map[string]any `json:"params,omitempty"`
	// Repeats overrides Spec.Repeats for this experiment (0 = inherit) —
	// the knob that lets one expensive soak cell run once while the rest
	// of the grid repeats.
	Repeats int `json:"repeats,omitempty"`
}

// LoadSpec reads and validates a grid file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	return ParseSpec(raw)
}

// ParseSpec decodes and validates grid JSON. Unknown fields are errors:
// a typo'd knob silently ignored would record a baseline under the wrong
// conditions.
func ParseSpec(raw []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("lab: spec: %w", err)
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("lab: spec: name is required")
	}
	if s.BenchID < 0 {
		return fmt.Errorf("lab: spec: bench_id %d must be >= 0", s.BenchID)
	}
	if s.Repeats < 1 {
		return fmt.Errorf("lab: spec: repeats %d must be >= 1", s.Repeats)
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("lab: spec: no experiments")
	}
	seen := map[string]bool{}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		if e.Scenario == "" {
			return fmt.Errorf("lab: spec: experiment %d: scenario is required", i)
		}
		if _, ok := scenarioRegistry[e.Scenario]; !ok {
			return fmt.Errorf("lab: spec: experiment %d: unknown scenario %q (choices: %s)",
				i, e.Scenario, strings.Join(Scenarios(), ", "))
		}
		if e.ID == "" {
			e.ID = e.Scenario
		}
		if seen[e.ID] {
			return fmt.Errorf("lab: spec: duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Repeats < 0 {
			return fmt.Errorf("lab: spec: experiment %q: repeats %d must be >= 0", e.ID, e.Repeats)
		}
		for axis, vals := range e.Axes {
			if len(vals) == 0 {
				return fmt.Errorf("lab: spec: experiment %q: axis %q has no values", e.ID, axis)
			}
		}
	}
	return nil
}

// repeats resolves the effective repeat count for an experiment.
func (s *Spec) repeats(e *ExperimentSpec) int {
	if e.Repeats > 0 {
		return e.Repeats
	}
	return s.Repeats
}

// Cell is one point of an experiment's grid: the scenario plus the
// merged (params ∪ axis-assignment) parameter map. Scenarios read their
// knobs through the typed accessors, which also record which parameters
// the scenario actually consumed (unused spec keys are reported as
// errors — a misspelled knob must not silently run defaults).
type Cell struct {
	Experiment string
	Scenario   string
	// Axes is this cell's axis assignment, for the report.
	Axes map[string]any
	// Seed is the spec's base seed; worlds are built from it directly so
	// every repeat measures the same corpus.
	Seed int64

	params map[string]any
	used   map[string]bool
}

// RepSeed derives the deterministic seed of one repeat's workload
// streams. Distinct from the world seed so repeats draw independent
// traffic over the identical corpus.
func (c *Cell) RepSeed(rep int) int64 { return c.Seed + 7919*int64(rep+1) }

// expand builds the experiment's cells: the cartesian product of its
// axes (axis names sorted for a stable cell order, values in spec
// order), each merged over the experiment params.
func expand(spec *Spec, e *ExperimentSpec) []*Cell {
	axes := make([]string, 0, len(e.Axes))
	for a := range e.Axes {
		axes = append(axes, a)
	}
	sort.Strings(axes)
	cells := []*Cell{}
	assign := make([]any, len(axes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(axes) {
			c := &Cell{
				Experiment: e.ID,
				Scenario:   e.Scenario,
				Axes:       map[string]any{},
				Seed:       spec.Seed,
				params:     map[string]any{},
				used:       map[string]bool{},
			}
			for k, v := range e.Params {
				c.params[k] = v
			}
			for j, a := range axes {
				c.Axes[a] = assign[j]
				c.params[a] = assign[j]
			}
			cells = append(cells, c)
			return
		}
		for _, v := range e.Axes[axes[i]] {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return cells
}

// unused lists parameter keys no accessor ever read — typos, or knobs
// the scenario does not understand.
func (c *Cell) unused() []string {
	var out []string
	for k := range c.params {
		if !c.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Int reads an integer parameter (JSON numbers arrive as float64).
func (c *Cell) Int(name string, def int) int {
	v, ok := c.params[name]
	if !ok {
		return def
	}
	c.used[name] = true
	switch n := v.(type) {
	case float64:
		return int(n)
	case int:
		return n
	}
	return def
}

// Float reads a float parameter.
func (c *Cell) Float(name string, def float64) float64 {
	v, ok := c.params[name]
	if !ok {
		return def
	}
	c.used[name] = true
	if n, ok := v.(float64); ok && !math.IsNaN(n) {
		return n
	}
	if n, ok := v.(int); ok {
		return float64(n)
	}
	return def
}

// Str reads a string parameter.
func (c *Cell) Str(name string, def string) string {
	v, ok := c.params[name]
	if !ok {
		return def
	}
	c.used[name] = true
	if s, ok := v.(string); ok {
		return s
	}
	return def
}

// Bool reads a boolean parameter.
func (c *Cell) Bool(name string, def bool) bool {
	v, ok := c.params[name]
	if !ok {
		return def
	}
	c.used[name] = true
	if b, ok := v.(bool); ok {
		return b
	}
	return def
}

// label renders the cell's axis assignment ("shards=4 algo=AT") for
// progress lines and the summary table.
func (c *Cell) label() string {
	if len(c.Axes) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(c.Axes))
	for k := range c.Axes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, c.Axes[k]))
	}
	return strings.Join(parts, " ")
}
