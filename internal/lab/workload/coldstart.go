package workload

import "math/rand"

// ColdStart emits a cold-start storm: brand-new users arriving one after
// another, each writing RatingsPerUser ratings to existing catalog items
// before the next user appears. User ids ascend densely from StartUser —
// consecutive ops never jump the user space by more than one — so the
// stream always satisfies the auto-grow admission cap
// (graph.MaxDenseAdmissions) no matter where the system's universe edge
// stands, and a fleet sees the arrivals spread across every shard
// (shard.Assign hashes the id). Items are drawn zipf-distributed, so
// newcomers look like real newcomers: mostly head items with a tail.
type ColdStart struct {
	user      int // current arriving user
	remaining int // ratings this user has yet to write
	perUser   int
	r         *rand.Rand
	zipf      *rand.Zipf
}

// NewColdStart builds the storm: users startUser, startUser+1, ... each
// writing perUser ratings into the [0, catalogItems) catalog. perUser
// and catalogItems must be positive.
func NewColdStart(startUser, catalogItems, perUser int, seed int64) *ColdStart {
	if perUser < 1 {
		panic("workload: ColdStart needs perUser >= 1")
	}
	r := rng(seed)
	return &ColdStart{
		user:    startUser - 1,
		perUser: perUser,
		r:       r,
		zipf:    zipfFor(r, 1.3, catalogItems),
	}
}

// Name implements Generator.
func (c *ColdStart) Name() string { return "coldstart" }

// Next implements Generator: always a Write, for the storm's current
// newcomer.
//
//ltr:allocfree
func (c *ColdStart) Next(op *Op) {
	if c.remaining <= 0 {
		c.user++
		c.remaining = c.perUser
	}
	c.remaining--
	op.Kind = Write
	op.User = c.user
	op.Item = int(c.zipf.Uint64())
	op.Score = score(c.r)
}

// UsersEmitted reports how many distinct new users the stream has
// started so far.
func (c *ColdStart) UsersEmitted(startUser int) int { return c.user - startUser + 1 }
