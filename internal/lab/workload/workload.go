// Package workload generates the hostile op streams the lab harness
// (internal/lab) drives through the real serving stack: cold-start storms
// of brand-new users, flash-crowd reads concentrated on a tiny hot set,
// adversarial write floods engineered to maximize cache-invalidation
// blast radius, and zipf-distributed mixed read/write soak traffic.
//
// Every generator is deterministic given its seed — two generators
// constructed with equal parameters emit byte-identical op streams — so
// any recorded BENCH_*.json number can be reproduced exactly, and the
// same streams double as fixtures for the robustness tests. Next fills a
// caller-owned Op in place; the generator hot loops are annotated
// //ltr:allocfree and covered by the ltr-vet static gate, so a soak run
// measures the serving stack, not the harness's garbage.
package workload

import (
	"fmt"
	"math/rand"

	"longtailrec/internal/dataset"
)

// Kind says what a workload op does to the system under test.
type Kind uint8

const (
	// Read is one recommendation query for Op.User.
	Read Kind = iota
	// Write is one live rating write (Op.User, Op.Item, Op.Score).
	Write
)

// Op is one operation of a workload stream. The zero value is a Read for
// user 0; generators overwrite every field on each Next call.
type Op struct {
	Kind  Kind
	User  int
	Item  int
	Score float64
}

// Generator is a deterministic, unbounded op stream. Next overwrites op
// in place and never allocates in steady state. Generators are NOT safe
// for concurrent use: concurrent drivers give each worker its own
// generator (seeded per worker), which also keeps the per-worker streams
// reproducible regardless of scheduling.
type Generator interface {
	// Name identifies the generator family in reports and test output.
	Name() string
	// Next fills op with the stream's next operation.
	Next(op *Op)
}

// rng returns the seeded source behind every generator. math/rand's
// algorithm is frozen by the Go 1 compatibility promise, so streams are
// stable across runs, platforms and toolchain updates.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// zipfFor builds the rank sampler shared by the generators: ranks in
// [0, n) drawn with P(k) ∝ (v+k)^-s. s must be > 1 (the math/rand
// sampler's domain); v = 1 puts the mode at rank 0.
func zipfFor(r *rand.Rand, s float64, n int) *rand.Zipf {
	if n < 1 {
		panic("workload: zipf over empty domain")
	}
	if s <= 1 {
		panic(fmt.Sprintf("workload: zipf exponent must be > 1, got %v", s))
	}
	return rand.NewZipf(r, s, 1, uint64(n-1))
}

// score maps a seeded draw onto the 1–5 star scale.
func score(r *rand.Rand) float64 {
	return 1 + float64(r.Intn(5))
}

// SeedRatings deterministically builds the bootstrap corpus for
// large-scale soak scenarios: numUsers users each rating perUser items
// drawn zipf-distributed (exponent s) over a numItems catalog, so the
// corpus has the long-tail popularity skew the serving stack is built
// for, at million-user scale, without the (much slower) latent-genre
// machinery of internal/synth. Duplicate (user, item) draws keep the
// last score, matching live upsert semantics.
func SeedRatings(numUsers, numItems, perUser int, s float64, seed int64) ([]dataset.Rating, error) {
	if numUsers < 1 || numItems < 1 || perUser < 1 {
		return nil, fmt.Errorf("workload: SeedRatings needs positive sizes, got users=%d items=%d perUser=%d", numUsers, numItems, perUser)
	}
	r := rng(seed)
	zipf := zipfFor(r, s, numItems)
	ratings := make([]dataset.Rating, 0, numUsers*perUser)
	seen := make(map[int]int, perUser) // item → index into this user's slice
	for u := 0; u < numUsers; u++ {
		base := len(ratings)
		for k := 0; k < perUser; k++ {
			item := int(zipf.Uint64())
			sc := score(r)
			if at, dup := seen[item]; dup {
				ratings[at].Score = sc
				continue
			}
			seen[item] = len(ratings)
			ratings = append(ratings, dataset.Rating{User: u, Item: item, Score: sc})
		}
		for k := base; k < len(ratings); k++ {
			delete(seen, ratings[k].Item)
		}
	}
	return ratings, nil
}
