package workload

import "math/rand"

// FlashCrowd emits the read side of a flash crowd: every op is a
// recommendation query for one of a tiny hot user set, drawn uniformly.
// Against a cached serving stack the stream is the singleflight /
// hit-rate stress: the first touch of each hot user is the only walk the
// fleet should ever pay — concurrent first touches must coalesce, and
// every later read must be a cache hit until a write moves the epoch.
type FlashCrowd struct {
	hot []int
	r   *rand.Rand
}

// NewFlashCrowd builds the crowd over the given hot user set (copied;
// must be non-empty).
func NewFlashCrowd(hotUsers []int, seed int64) *FlashCrowd {
	if len(hotUsers) == 0 {
		panic("workload: FlashCrowd needs a non-empty hot set")
	}
	hot := make([]int, len(hotUsers))
	copy(hot, hotUsers)
	return &FlashCrowd{hot: hot, r: rng(seed)}
}

// Name implements Generator.
func (f *FlashCrowd) Name() string { return "flashcrowd" }

// Next implements Generator: always a Read on a hot user.
//
//ltr:allocfree
func (f *FlashCrowd) Next(op *Op) {
	op.Kind = Read
	op.User = f.hot[f.r.Intn(len(f.hot))]
	op.Item = 0
	op.Score = 0
}
