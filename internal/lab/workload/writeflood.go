package workload

import "math/rand"

// WriteFlood emits an adversarial pure-write stream engineered to
// maximize the cache-invalidation blast radius: consecutive writes walk
// the user space with a fixed stride coprime to its size, so every write
// lands on a different user — and, under a sharded fleet, the epoch of
// every shard keeps moving (shard.Assign hashes the id, so a user-space
// sweep sprays all shards) — while items concentrate zipf-style on the
// head of the catalog, exactly the items cached read results depend on.
// With one replica this stream kills the whole cache every op; the
// sharded stack's job is to keep the damage at 1/N per write.
type WriteFlood struct {
	numUsers int
	user     int
	stride   int
	r        *rand.Rand
	zipf     *rand.Zipf
}

// floodStride picks a stride coprime to n so the user sweep visits every
// user before repeating. 7919 (the 1000th prime) unless n divides it.
func floodStride(n int) int {
	s := 7919 % n
	if s == 0 {
		s = 1
	}
	for gcd(s, n) != 1 {
		s++
		if s >= n {
			s = 1
		}
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewWriteFlood builds the flood over an existing [0, numUsers) ×
// [0, numItems) universe (both must be positive; the flood never grows
// the universe — admission storms are ColdStart's job).
func NewWriteFlood(numUsers, numItems int, seed int64) *WriteFlood {
	if numUsers < 1 || numItems < 1 {
		panic("workload: WriteFlood needs a non-empty universe")
	}
	r := rng(seed)
	return &WriteFlood{
		numUsers: numUsers,
		user:     r.Intn(numUsers),
		stride:   floodStride(numUsers),
		r:        r,
		zipf:     zipfFor(r, 1.2, numItems),
	}
}

// Name implements Generator.
func (w *WriteFlood) Name() string { return "writeflood" }

// Next implements Generator: always a Write, on the sweep's next user.
//
//ltr:allocfree
func (w *WriteFlood) Next(op *Op) {
	op.Kind = Write
	op.User = w.user
	op.Item = int(w.zipf.Uint64())
	op.Score = score(w.r)
	w.user += w.stride
	if w.user >= w.numUsers {
		w.user -= w.numUsers
	}
}
