package workload

import (
	"fmt"
	"math/rand"
)

// ZipfMixed emits the soak mix: a Bernoulli(WriteRatio) coin decides
// write vs read, read users and write targets are both zipf-distributed
// (hot users ask again and again, hot items get re-rated), and the long
// tail of both distributions trickles through — the realistic
// million-user steady state where caches must earn their hit rate with
// writes continuously chipping at them.
type ZipfMixed struct {
	writeRatio float64
	r          *rand.Rand
	users      *rand.Zipf
	items      *rand.Zipf
}

// NewZipfMixed builds the soak stream over a [0, numUsers) ×
// [0, numItems) universe. writeRatio is the probability an op is a
// write (in [0, 1]); s is the zipf exponent shared by the user and item
// draws (> 1; 1.1 is a realistic web skew).
func NewZipfMixed(numUsers, numItems int, writeRatio, s float64, seed int64) (*ZipfMixed, error) {
	if numUsers < 1 || numItems < 1 {
		return nil, fmt.Errorf("workload: ZipfMixed needs a non-empty universe, got %d users, %d items", numUsers, numItems)
	}
	if writeRatio < 0 || writeRatio > 1 {
		return nil, fmt.Errorf("workload: ZipfMixed write ratio %v outside [0, 1]", writeRatio)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: ZipfMixed zipf exponent must be > 1, got %v", s)
	}
	r := rng(seed)
	return &ZipfMixed{
		writeRatio: writeRatio,
		r:          r,
		users:      zipfFor(r, s, numUsers),
		items:      zipfFor(r, s, numItems),
	}, nil
}

// Name implements Generator.
func (z *ZipfMixed) Name() string { return "zipfmixed" }

// Next implements Generator.
//
//ltr:allocfree
func (z *ZipfMixed) Next(op *Op) {
	if z.r.Float64() < z.writeRatio {
		op.Kind = Write
		op.User = int(z.users.Uint64())
		op.Item = int(z.items.Uint64())
		op.Score = score(z.r)
		return
	}
	op.Kind = Read
	op.User = int(z.users.Uint64())
	op.Item = 0
	op.Score = 0
}
