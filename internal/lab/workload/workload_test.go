package workload

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"longtailrec/internal/dataset"
	"longtailrec/internal/graph"
)

// encodeStream renders n ops of a generator as bytes, the determinism
// fixture: two generators with equal parameters must agree to the byte.
func encodeStream(g Generator, n int) []byte {
	var buf bytes.Buffer
	var op Op
	for i := 0; i < n; i++ {
		g.Next(&op)
		binary.Write(&buf, binary.LittleEndian, uint8(op.Kind))
		binary.Write(&buf, binary.LittleEndian, int64(op.User))
		binary.Write(&buf, binary.LittleEndian, int64(op.Item))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(op.Score))
	}
	return buf.Bytes()
}

func TestGeneratorsDeterministic(t *testing.T) {
	mixed := func(seed int64) Generator {
		z, err := NewZipfMixed(5000, 800, 0.2, 1.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	cases := []struct {
		name string
		mk   func(seed int64) Generator
	}{
		{"coldstart", func(seed int64) Generator { return NewColdStart(1000, 400, 3, seed) }},
		{"flashcrowd", func(seed int64) Generator { return NewFlashCrowd([]int{3, 1, 4, 1, 5, 9, 2, 6}, seed) }},
		{"writeflood", func(seed int64) Generator { return NewWriteFlood(5000, 800, seed) }},
		{"zipfmixed", mixed},
	}
	const n = 4096
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := encodeStream(tc.mk(7), n)
			b := encodeStream(tc.mk(7), n)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: two runs with the same seed are not byte-identical", tc.name)
			}
			c := encodeStream(tc.mk(8), n)
			if bytes.Equal(a, c) {
				t.Fatalf("%s: different seeds produced identical streams", tc.name)
			}
		})
	}
}

// TestZipfShapeGolden pins the zipf sampler's empirical shape: exact head
// counts for a fixed seed (math/rand is frozen by the Go 1 compatibility
// promise, so these are reproducible anywhere), plus shape constraints
// that state the intent — monotone non-increasing rank frequencies with a
// heavy head and a populated tail.
func TestZipfShapeGolden(t *testing.T) {
	const (
		n     = 1000
		draws = 200000
		seed  = 1
	)
	z := zipfFor(rng(seed), 1.1, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Uint64()]++
	}
	// Golden head counts observed at seed 1. A toolchain or sampler change
	// that shifts the distribution must be a conscious decision: every
	// recorded BENCH_*.json depends on this stream.
	golden := map[int]int{0: 35448, 1: 16684, 2: 10810, 3: 7836}
	for rank, want := range golden {
		if counts[rank] != want {
			t.Errorf("rank %d drawn %d times, golden %d", rank, counts[rank], want)
		}
	}
	// Shape: head rank strictly dominates, top-10 frequencies non-increasing.
	for r := 1; r < 10; r++ {
		if counts[r] > counts[r-1] {
			t.Errorf("rank %d (%d draws) more frequent than rank %d (%d draws)", r, counts[r], r-1, counts[r-1])
		}
	}
	headShare := float64(counts[0]) / draws
	if headShare < 0.05 || headShare > 0.25 {
		t.Errorf("head rank share %.3f outside the heavy-head band [0.05, 0.25]", headShare)
	}
	tailHit := 0
	for _, c := range counts[n/2:] {
		if c > 0 {
			tailHit++
		}
	}
	if tailHit < n/20 {
		t.Errorf("only %d of the bottom half's %d ranks were ever drawn — tail not populated", tailHit, n/2)
	}
}

// TestColdStartRespectsAdmissionCap drives the storm into a real live
// graph: user ids must ascend densely (per-op jump <= 1, far under
// graph.MaxDenseAdmissions), so UpsertRatingAutoGrow accepts every write
// no matter where the universe edge stands.
func TestColdStartRespectsAdmissionCap(t *testing.T) {
	const (
		baseUsers = 50
		baseItems = 40
		newUsers  = 200
		perUser   = 3
	)
	ratings := make([]dataset.Rating, 0, baseUsers)
	for u := 0; u < baseUsers; u++ {
		ratings = append(ratings, dataset.Rating{User: u, Item: u % baseItems, Score: 3})
	}
	d, err := dataset.New(baseUsers, baseItems, ratings)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	gen := NewColdStart(baseUsers, baseItems, perUser, 11)
	var op Op
	prevUser := baseUsers - 1
	for i := 0; i < newUsers*perUser; i++ {
		gen.Next(&op)
		if op.Kind != Write {
			t.Fatalf("op %d: cold-start emitted a non-write", i)
		}
		if jump := op.User - prevUser; jump < 0 || jump > 1 {
			t.Fatalf("op %d: user jumped by %d (from %d to %d); dense ascent (<= 1, cap %d) violated",
				i, jump, prevUser, op.User, graph.MaxDenseAdmissions)
		}
		prevUser = op.User
		if op.Item < 0 || op.Item >= baseItems {
			t.Fatalf("op %d: item %d outside the catalog [0, %d)", i, op.Item, baseItems)
		}
		if _, err := g.UpsertRatingAutoGrow(op.User, op.Item, op.Score); err != nil {
			t.Fatalf("op %d: auto-grow rejected the storm write (%d, %d): %v", i, op.User, op.Item, err)
		}
	}
	if got, want := g.NumUsers(), baseUsers+newUsers; got != want {
		t.Fatalf("after the storm the graph holds %d users, want %d", got, want)
	}
	if got := gen.UsersEmitted(baseUsers); got != newUsers {
		t.Fatalf("UsersEmitted = %d, want %d", got, newUsers)
	}
}

// TestWriteFloodSweepsAllUsers checks the blast-radius construction: the
// stride sweep must visit every user before repeating any.
func TestWriteFloodSweepsAllUsers(t *testing.T) {
	for _, n := range []int{1, 2, 97, 1000, 7919} {
		w := NewWriteFlood(n, 10, 5)
		seen := make([]bool, n)
		var op Op
		for i := 0; i < n; i++ {
			w.Next(&op)
			if op.User < 0 || op.User >= n {
				t.Fatalf("numUsers=%d: user %d out of range", n, op.User)
			}
			if seen[op.User] {
				t.Fatalf("numUsers=%d: user %d repeated after %d ops — sweep is not a full cycle", n, op.User, i)
			}
			seen[op.User] = true
		}
	}
}

// TestZipfMixedRatio checks the op mix converges to the configured write
// ratio and all ids stay in range.
func TestZipfMixedRatio(t *testing.T) {
	z, err := NewZipfMixed(300, 200, 0.25, 1.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	writes := 0
	var op Op
	for i := 0; i < n; i++ {
		z.Next(&op)
		if op.User < 0 || op.User >= 300 || op.Item < 0 || op.Item >= 200 {
			t.Fatalf("op %d out of range: %+v", i, op)
		}
		if op.Kind == Write {
			writes++
			if op.Score < 1 || op.Score > 5 {
				t.Fatalf("write score %v outside [1, 5]", op.Score)
			}
		}
	}
	ratio := float64(writes) / n
	if math.Abs(ratio-0.25) > 0.02 {
		t.Fatalf("write ratio %.3f, want 0.25 ± 0.02", ratio)
	}
}

// TestZipfMixedValidation covers the constructor's error paths.
func TestZipfMixedValidation(t *testing.T) {
	if _, err := NewZipfMixed(0, 10, 0.1, 1.1, 1); err == nil {
		t.Error("empty user universe accepted")
	}
	if _, err := NewZipfMixed(10, 10, 1.5, 1.1, 1); err == nil {
		t.Error("write ratio > 1 accepted")
	}
	if _, err := NewZipfMixed(10, 10, 0.1, 1.0, 1); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
}

// TestSeedRatingsBootstrap checks the large-scale corpus builder:
// deterministic, duplicate-free per user, and long-tail skewed.
func TestSeedRatingsBootstrap(t *testing.T) {
	a, err := SeedRatings(2000, 300, 6, 1.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeedRatings(2000, 300, 6, 1.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("two builds sized %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rating %d differs between identical builds: %+v vs %+v", i, a[i], b[i])
		}
	}
	d, err := dataset.New(2000, 300, a)
	if err != nil {
		t.Fatalf("bootstrap corpus rejected by dataset.New (duplicates?): %v", err)
	}
	pop := d.ItemPopularity()
	head, total := 0, 0
	for item, p := range pop {
		total += p
		if item < 30 { // top 10% of the catalog by construction
			head += p
		}
	}
	if share := float64(head) / float64(total); share < 0.3 {
		t.Fatalf("head 10%% of the catalog carries only %.2f of ratings — no long-tail skew", share)
	}
}
