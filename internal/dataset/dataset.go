// Package dataset holds rating data and the split/stat operations the
// paper's evaluation protocol needs: dense user/item indexing, long-tail vs
// short-head catalog splits (§5.1.2), leave-out test splits for the
// Recall@N protocol (§5.2.1), and basic corpus statistics.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"longtailrec/internal/graph"
)

// Rating is a single (user, item, score) observation with dense indices.
type Rating struct {
	User, Item int
	Score      float64
}

// Dataset is an immutable collection of ratings over dense user/item
// universes. Build one with New or a loader; mutate by deriving new
// datasets (e.g. RemoveRatings).
type Dataset struct {
	numUsers, numItems int
	ratings            []Rating
	byUser             [][]int // rating indices per user
	byItem             [][]int // rating indices per item
}

// New validates and indexes a rating slice. Scores must be positive
// (the bipartite graph requires positive edge weights). Duplicate
// (user, item) pairs are rejected: a rating is a single edge.
func New(numUsers, numItems int, ratings []Rating) (*Dataset, error) {
	if numUsers <= 0 || numItems <= 0 {
		return nil, fmt.Errorf("dataset: need positive universe sizes, got %d users, %d items", numUsers, numItems)
	}
	d := &Dataset{
		numUsers: numUsers,
		numItems: numItems,
		ratings:  make([]Rating, len(ratings)),
		byUser:   make([][]int, numUsers),
		byItem:   make([][]int, numItems),
	}
	copy(d.ratings, ratings)
	seen := make(map[[2]int]struct{}, len(ratings))
	for k, r := range d.ratings {
		if r.User < 0 || r.User >= numUsers {
			return nil, fmt.Errorf("dataset: rating %d user %d out of range [0,%d)", k, r.User, numUsers)
		}
		if r.Item < 0 || r.Item >= numItems {
			return nil, fmt.Errorf("dataset: rating %d item %d out of range [0,%d)", k, r.Item, numItems)
		}
		if r.Score <= 0 {
			return nil, fmt.Errorf("dataset: rating %d score %v must be positive", k, r.Score)
		}
		key := [2]int{r.User, r.Item}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("dataset: duplicate rating (user %d, item %d)", r.User, r.Item)
		}
		seen[key] = struct{}{}
		d.byUser[r.User] = append(d.byUser[r.User], k)
		d.byItem[r.Item] = append(d.byItem[r.Item], k)
	}
	return d, nil
}

// NumUsers returns the user-universe size.
func (d *Dataset) NumUsers() int { return d.numUsers }

// NumItems returns the item-universe size.
func (d *Dataset) NumItems() int { return d.numItems }

// NumRatings returns the rating count.
func (d *Dataset) NumRatings() int { return len(d.ratings) }

// Rating returns the k-th rating.
func (d *Dataset) Rating(k int) Rating { return d.ratings[k] }

// Ratings returns a copy of all ratings.
func (d *Dataset) Ratings() []Rating {
	out := make([]Rating, len(d.ratings))
	copy(out, d.ratings)
	return out
}

// Density returns nnz / (users × items).
func (d *Dataset) Density() float64 {
	return float64(len(d.ratings)) / (float64(d.numUsers) * float64(d.numItems))
}

// UserRatings returns user u's ratings (freshly allocated).
func (d *Dataset) UserRatings(u int) []Rating {
	idx := d.byUser[u]
	out := make([]Rating, len(idx))
	for k, i := range idx {
		out[k] = d.ratings[i]
	}
	return out
}

// UserItemSet returns the set of items rated by u (the paper's S_u).
func (d *Dataset) UserItemSet(u int) map[int]struct{} {
	idx := d.byUser[u]
	out := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		out[d.ratings[i].Item] = struct{}{}
	}
	return out
}

// UserDegree returns how many items user u rated.
func (d *Dataset) UserDegree(u int) int { return len(d.byUser[u]) }

// ItemRatings returns item i's ratings (freshly allocated).
func (d *Dataset) ItemRatings(i int) []Rating {
	idx := d.byItem[i]
	out := make([]Rating, len(idx))
	for k, j := range idx {
		out[k] = d.ratings[j]
	}
	return out
}

// ItemPopularity returns, per item, its rating frequency — the paper's
// popularity measure (§5.2.2).
func (d *Dataset) ItemPopularity() []int {
	out := make([]int, d.numItems)
	for i := range out {
		out[i] = len(d.byItem[i])
	}
	return out
}

// HasRating reports whether (u, i) is present.
func (d *Dataset) HasRating(u, i int) bool {
	for _, k := range d.byUser[u] {
		if d.ratings[k].Item == i {
			return true
		}
	}
	return false
}

// Score returns the rating score of (u, i) and whether it exists.
func (d *Dataset) Score(u, i int) (float64, bool) {
	for _, k := range d.byUser[u] {
		if d.ratings[k].Item == i {
			return d.ratings[k].Score, true
		}
	}
	return 0, false
}

// Graph converts the dataset into the paper's edge-weighted bipartite
// graph, with rating scores as edge weights (§3.1).
func (d *Dataset) Graph() *graph.Bipartite {
	b := graph.NewBuilder(d.numUsers, d.numItems)
	for _, r := range d.ratings {
		// Ratings were validated at construction, so AddRating cannot fail.
		if err := b.AddRating(r.User, r.Item, r.Score); err != nil {
			panic(fmt.Sprintf("dataset: invariant violated: %v", err))
		}
	}
	return b.Build()
}

// LongTailItems returns the set of long-tail ("niche") items per §5.1.2:
// the least-popular items that in aggregate generate tailShare of all
// ratings (the paper uses tailShare = 0.20, the 80/20 rule). Ties in
// popularity are broken by item index for determinism. Items with zero
// ratings are part of the tail.
func (d *Dataset) LongTailItems(tailShare float64) map[int]struct{} {
	if tailShare < 0 || tailShare > 1 {
		panic(fmt.Sprintf("dataset: tailShare %v out of [0,1]", tailShare))
	}
	pop := d.ItemPopularity()
	order := make([]int, d.numItems)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if pop[order[a]] != pop[order[b]] {
			return pop[order[a]] < pop[order[b]]
		}
		return order[a] < order[b]
	})
	budget := tailShare * float64(len(d.ratings))
	tail := make(map[int]struct{})
	acc := 0.0
	for _, i := range order {
		if acc >= budget {
			break
		}
		tail[i] = struct{}{}
		acc += float64(pop[i])
	}
	return tail
}

// Stats summarizes a dataset the way §5.1.2 describes the corpora.
type Stats struct {
	NumUsers, NumItems, NumRatings int
	Density                        float64
	MinUserDegree, MaxUserDegree   int
	MinItemDegree, MaxItemDegree   int
	MeanScore                      float64
	TailItemFraction               float64 // fraction of items in the 20% tail
}

// Summarize computes corpus statistics, including the fraction of items
// that fall in the 20%-of-ratings long tail (the paper reports ~66% for
// MovieLens and ~73% for Douban).
func (d *Dataset) Summarize() Stats {
	s := Stats{
		NumUsers:      d.numUsers,
		NumItems:      d.numItems,
		NumRatings:    len(d.ratings),
		Density:       d.Density(),
		MinUserDegree: int(^uint(0) >> 1),
		MinItemDegree: int(^uint(0) >> 1),
	}
	for u := 0; u < d.numUsers; u++ {
		deg := len(d.byUser[u])
		if deg < s.MinUserDegree {
			s.MinUserDegree = deg
		}
		if deg > s.MaxUserDegree {
			s.MaxUserDegree = deg
		}
	}
	for i := 0; i < d.numItems; i++ {
		deg := len(d.byItem[i])
		if deg < s.MinItemDegree {
			s.MinItemDegree = deg
		}
		if deg > s.MaxItemDegree {
			s.MaxItemDegree = deg
		}
	}
	total := 0.0
	for _, r := range d.ratings {
		total += r.Score
	}
	if len(d.ratings) > 0 {
		s.MeanScore = total / float64(len(d.ratings))
	}
	s.TailItemFraction = float64(len(d.LongTailItems(0.2))) / float64(d.numItems)
	return s
}

// RemoveRatings derives a new dataset without the ratings at the given
// indices (indices into the original rating order).
func (d *Dataset) RemoveRatings(drop map[int]struct{}) (*Dataset, error) {
	kept := make([]Rating, 0, len(d.ratings)-len(drop))
	for k, r := range d.ratings {
		if _, gone := drop[k]; !gone {
			kept = append(kept, r)
		}
	}
	return New(d.numUsers, d.numItems, kept)
}

// HeldOutSplit carries a train/test split for the Recall@N protocol.
type HeldOutSplit struct {
	Train *Dataset
	Test  []Rating // the held-out long-tail, high-score ratings
}

// SplitLongTailTest implements the §5.2.1 protocol: randomly select
// numTest ratings whose score is at least minScore and whose item lies in
// the tailShare long tail, hold them out as the test set, and train on the
// rest. Users are kept in the training set even if the held-out rating was
// their only one only when they have other ratings; otherwise the candidate
// is skipped (a user with no training ratings cannot be queried).
func (d *Dataset) SplitLongTailTest(rng *rand.Rand, numTest int, minScore, tailShare float64) (*HeldOutSplit, error) {
	if numTest <= 0 {
		return nil, fmt.Errorf("dataset: numTest must be positive, got %d", numTest)
	}
	tail := d.LongTailItems(tailShare)
	cands := make([]int, 0, len(d.ratings))
	for k, r := range d.ratings {
		if r.Score < minScore {
			continue
		}
		if _, niche := tail[r.Item]; !niche {
			continue
		}
		if len(d.byUser[r.User]) < 2 {
			continue // would leave the user with no training signal
		}
		cands = append(cands, k)
	}
	if len(cands) < numTest {
		return nil, fmt.Errorf("dataset: only %d eligible long-tail test ratings, need %d", len(cands), numTest)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	drop := make(map[int]struct{}, numTest)
	test := make([]Rating, 0, numTest)
	perUserDrops := make(map[int]int)
	for _, k := range cands {
		if len(test) == numTest {
			break
		}
		r := d.ratings[k]
		// Keep at least one training rating per user.
		if perUserDrops[r.User]+1 >= len(d.byUser[r.User]) {
			continue
		}
		drop[k] = struct{}{}
		perUserDrops[r.User]++
		test = append(test, r)
	}
	if len(test) < numTest {
		return nil, fmt.Errorf("dataset: could only hold out %d ratings, need %d", len(test), numTest)
	}
	train, err := d.RemoveRatings(drop)
	if err != nil {
		return nil, err
	}
	return &HeldOutSplit{Train: train, Test: test}, nil
}

// KCore iteratively removes users with fewer than minUserDegree ratings
// and items with fewer than minItemDegree ratings until both constraints
// hold simultaneously — the standard preprocessing behind corpora like
// MovieLens 1M ("users rated 20+ movies"). User and item indices are
// preserved (the universe does not shrink); only ratings are dropped.
// Returns an error if nothing survives.
func (d *Dataset) KCore(minUserDegree, minItemDegree int) (*Dataset, error) {
	if minUserDegree < 0 || minItemDegree < 0 {
		return nil, fmt.Errorf("dataset: negative k-core thresholds (%d, %d)", minUserDegree, minItemDegree)
	}
	alive := make([]bool, len(d.ratings))
	for i := range alive {
		alive[i] = true
	}
	userDeg := make([]int, d.numUsers)
	itemDeg := make([]int, d.numItems)
	for _, r := range d.ratings {
		userDeg[r.User]++
		itemDeg[r.Item]++
	}
	for changed := true; changed; {
		changed = false
		for k, r := range d.ratings {
			if !alive[k] {
				continue
			}
			// A rating dies when either endpoint is below threshold (a
			// zero-degree endpoint trivially satisfies "below" only if the
			// threshold is positive).
			if (userDeg[r.User] < minUserDegree && minUserDegree > 0) ||
				(itemDeg[r.Item] < minItemDegree && minItemDegree > 0) {
				alive[k] = false
				userDeg[r.User]--
				itemDeg[r.Item]--
				changed = true
			}
		}
	}
	kept := make([]Rating, 0, len(d.ratings))
	for k, r := range d.ratings {
		if alive[k] {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("dataset: k-core (%d, %d) removed every rating", minUserDegree, minItemDegree)
	}
	return New(d.numUsers, d.numItems, kept)
}

// SampleUsers picks n distinct users that have at least minDegree training
// ratings, for the §5.2.2–§5.2.4 test-user panels.
func (d *Dataset) SampleUsers(rng *rand.Rand, n, minDegree int) ([]int, error) {
	elig := make([]int, 0, d.numUsers)
	for u := 0; u < d.numUsers; u++ {
		if len(d.byUser[u]) >= minDegree {
			elig = append(elig, u)
		}
	}
	if len(elig) < n {
		return nil, fmt.Errorf("dataset: only %d users with degree >= %d, need %d", len(elig), minDegree, n)
	}
	rng.Shuffle(len(elig), func(i, j int) { elig[i], elig[j] = elig[j], elig[i] })
	out := make([]int, n)
	copy(out, elig[:n])
	sort.Ints(out)
	return out, nil
}
