package dataset

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(KeepLast)
	if err := b.Add(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
	d, err := b.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 2 || d.NumItems() != 3 || d.NumRatings() != 2 {
		t.Fatalf("dims %d/%d/%d", d.NumUsers(), d.NumItems(), d.NumRatings())
	}
}

func TestBuilderUniverseExpansion(t *testing.T) {
	b := NewBuilder(KeepLast)
	if err := b.Add(2, 4, 1); err != nil {
		t.Fatal(err)
	}
	// Requested universe larger than observed indices wins.
	d, err := b.Build(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 10 || d.NumItems() != 20 {
		t.Fatalf("dims %d/%d", d.NumUsers(), d.NumItems())
	}
	// Requested universe smaller than observed is expanded, not an error.
	d, err = b.Build(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 3 || d.NumItems() != 5 {
		t.Fatalf("dims %d/%d", d.NumUsers(), d.NumItems())
	}
}

func TestBuilderDupPolicies(t *testing.T) {
	cases := []struct {
		policy DupPolicy
		want   float64
	}{
		{KeepLast, 2},
		{KeepFirst, 4},
		{KeepMax, 4},
	}
	for _, c := range cases {
		b := NewBuilder(c.policy)
		if err := b.Add(0, 0, 4); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(0, 0, 2); err != nil {
			t.Fatalf("%v: %v", c.policy, err)
		}
		if b.Len() != 1 {
			t.Fatalf("%v: len %d", c.policy, b.Len())
		}
		d, err := b.Build(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := d.Score(0, 0); got != c.want {
			t.Fatalf("%v: score %v, want %v", c.policy, got, c.want)
		}
	}
}

func TestBuilderKeepMaxLowerThenHigher(t *testing.T) {
	b := NewBuilder(KeepMax)
	b.Add(0, 0, 2)
	b.Add(0, 0, 5)
	d, err := b.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Score(0, 0); got != 5 {
		t.Fatalf("score %v, want 5", got)
	}
}

func TestBuilderRejectPolicy(t *testing.T) {
	b := NewBuilder(Reject)
	if err := b.Add(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0, 0, 2); err == nil {
		t.Fatal("duplicate accepted under Reject")
	}
	// The builder is poisoned: Build must fail too.
	if _, err := b.Build(0, 0); err == nil {
		t.Fatal("poisoned builder built")
	}
}

func TestBuilderValidation(t *testing.T) {
	for _, c := range []struct {
		u, i int
		s    float64
	}{
		{-1, 0, 1},
		{0, -1, 1},
		{0, 0, 0},
		{0, 0, -2},
	} {
		b := NewBuilder(KeepLast)
		if err := b.Add(c.u, c.i, c.s); err == nil {
			t.Fatalf("accepted (%d, %d, %v)", c.u, c.i, c.s)
		}
	}
	if _, err := NewBuilder(KeepLast).Build(0, 0); err == nil {
		t.Fatal("empty builder built")
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder(KeepLast)
	if err := b.Add(0, 0, -1); err == nil {
		t.Fatal("bad score accepted")
	}
	// Subsequent valid Adds report the original error.
	if err := b.Add(1, 1, 3); err == nil || !strings.Contains(err.Error(), "score") {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestBuilderDeterministicOrder(t *testing.T) {
	mk := func() *Dataset {
		b := NewBuilder(KeepLast)
		b.Add(3, 1, 2)
		b.Add(0, 0, 5)
		b.Add(1, 2, 4)
		d, err := b.Build(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, bb := mk().Ratings(), mk().Ratings()
	for k := range a {
		if a[k] != bb[k] {
			t.Fatalf("rating %d differs: %+v vs %+v", k, a[k], bb[k])
		}
	}
	// First-seen order is preserved.
	if a[0].User != 3 || a[1].User != 0 || a[2].User != 1 {
		t.Fatalf("order %+v", a)
	}
}

func TestBuilderPolicyString(t *testing.T) {
	for p, want := range map[DupPolicy]string{
		KeepLast:     "keep-last",
		KeepFirst:    "keep-first",
		KeepMax:      "keep-max",
		Reject:       "reject",
		DupPolicy(9): "policy(9)",
	} {
		if got := p.String(); got != want {
			t.Fatalf("%d: %q, want %q", p, got, want)
		}
	}
}

func TestBuilderEquivalentToNew(t *testing.T) {
	// Property: for duplicate-free input, Builder(any policy) == New.
	f := func(raw []struct{ U, I uint8 }) bool {
		b := NewBuilder(Reject)
		seen := make(map[[2]int]bool)
		var ratings []Rating
		for _, r := range raw {
			u, i := int(r.U%16), int(r.I%16)
			if seen[[2]int{u, i}] {
				continue
			}
			seen[[2]int{u, i}] = true
			score := float64(u%5) + 1
			if err := b.Add(u, i, score); err != nil {
				return false
			}
			ratings = append(ratings, Rating{User: u, Item: i, Score: score})
		}
		if len(ratings) == 0 {
			return true
		}
		got, err := b.Build(16, 16)
		if err != nil {
			return false
		}
		want, err := New(16, 16, ratings)
		if err != nil {
			return false
		}
		if got.NumRatings() != want.NumRatings() {
			return false
		}
		for _, r := range ratings {
			gs, gok := got.Score(r.User, r.Item)
			ws, wok := want.Score(r.User, r.Item)
			if gok != wok || gs != ws {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToImplicit(t *testing.T) {
	d, err := New(3, 3, []Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 0, Item: 1, Score: 2},
		{User: 1, Item: 1, Score: 4},
		{User: 2, Item: 2, Score: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := d.ToImplicit(4)
	if err != nil {
		t.Fatal(err)
	}
	if imp.NumRatings() != 2 {
		t.Fatalf("kept %d ratings, want 2", imp.NumRatings())
	}
	for _, r := range imp.Ratings() {
		if r.Score != 1 {
			t.Fatalf("implicit score %v", r.Score)
		}
	}
	if imp.NumUsers() != 3 || imp.NumItems() != 3 {
		t.Fatal("universe changed")
	}
	if _, err := d.ToImplicit(100); err == nil {
		t.Fatal("empty implicit dataset accepted")
	}
}

func TestClampScores(t *testing.T) {
	d, err := New(2, 2, []Rating{
		{User: 0, Item: 0, Score: 10},
		{User: 1, Item: 1, Score: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.ClampScores(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := c.Score(0, 0); s != 5 {
		t.Fatalf("clamped high %v", s)
	}
	if s, _ := c.Score(1, 1); s != 1 {
		t.Fatalf("clamped low %v", s)
	}
	if _, err := d.ClampScores(0, 5); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := d.ClampScores(5, 1); err == nil {
		t.Fatal("hi<lo accepted")
	}
}
