// Builder: incremental dataset construction for streaming ingest paths,
// plus rating-matrix transforms (implicit binarization, score clamping)
// used when adapting corpora to the graph algorithms' positive-weight
// requirement.

package dataset

import (
	"fmt"
)

// Builder accumulates ratings one at a time and materializes an immutable
// Dataset. Unlike New, which rejects duplicate (user, item) pairs, the
// Builder resolves them by policy — the common situation when replaying an
// event stream where users re-rate items.
type Builder struct {
	policy  DupPolicy
	ratings map[[2]int]float64
	order   [][2]int // first-seen order, for deterministic output
	maxUser int
	maxItem int
	err     error
}

// DupPolicy says how a Builder resolves repeated (user, item) ratings.
type DupPolicy int

const (
	// KeepLast overwrites with the newest score (event-stream semantics).
	KeepLast DupPolicy = iota
	// KeepFirst ignores later scores.
	KeepFirst
	// KeepMax keeps the highest score.
	KeepMax
	// Reject makes the Builder error on any duplicate, matching New.
	Reject
)

// String names the policy.
func (p DupPolicy) String() string {
	switch p {
	case KeepLast:
		return "keep-last"
	case KeepFirst:
		return "keep-first"
	case KeepMax:
		return "keep-max"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// NewBuilder returns an empty Builder with the given duplicate policy.
func NewBuilder(policy DupPolicy) *Builder {
	return &Builder{
		policy:  policy,
		ratings: make(map[[2]int]float64),
	}
}

// Add ingests one rating. Invalid input (negative indices, non-positive
// score) or a duplicate under the Reject policy poisons the Builder; the
// error surfaces from Build. Add reports the sticky error early so
// streaming loops can abort.
func (b *Builder) Add(user, item int, score float64) error {
	if b.err != nil {
		return b.err
	}
	switch {
	case user < 0:
		b.err = fmt.Errorf("dataset: builder: negative user %d", user)
	case item < 0:
		b.err = fmt.Errorf("dataset: builder: negative item %d", item)
	case score <= 0:
		b.err = fmt.Errorf("dataset: builder: score %v must be positive (user %d, item %d)", score, user, item)
	}
	if b.err != nil {
		return b.err
	}
	key := [2]int{user, item}
	old, dup := b.ratings[key]
	if dup {
		switch b.policy {
		case KeepLast:
			b.ratings[key] = score
		case KeepFirst:
			// keep old
		case KeepMax:
			if score > old {
				b.ratings[key] = score
			}
		case Reject:
			b.err = fmt.Errorf("dataset: builder: duplicate rating (user %d, item %d)", user, item)
			return b.err
		}
		return nil
	}
	b.ratings[key] = score
	b.order = append(b.order, key)
	if user > b.maxUser {
		b.maxUser = user
	}
	if item > b.maxItem {
		b.maxItem = item
	}
	return nil
}

// Len returns the number of distinct (user, item) pairs ingested so far.
func (b *Builder) Len() int { return len(b.ratings) }

// Build materializes the dataset. The universe is sized to the largest
// indices seen unless numUsers/numItems demand more room (pass 0, 0 to
// size automatically). Build leaves the Builder reusable for further Adds.
func (b *Builder) Build(numUsers, numItems int) (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.order) == 0 {
		return nil, fmt.Errorf("dataset: builder: no ratings")
	}
	if numUsers <= b.maxUser {
		numUsers = b.maxUser + 1
	}
	if numItems <= b.maxItem {
		numItems = b.maxItem + 1
	}
	ratings := make([]Rating, 0, len(b.order))
	for _, key := range b.order {
		ratings = append(ratings, Rating{User: key[0], Item: key[1], Score: b.ratings[key]})
	}
	return New(numUsers, numItems, ratings)
}

// ToImplicit derives an implicit-feedback dataset: every rating at or
// above threshold becomes weight 1 and the rest are dropped — the standard
// reduction when only "consumed / not consumed" signals are trusted.
// Universe sizes are preserved.
func (d *Dataset) ToImplicit(threshold float64) (*Dataset, error) {
	kept := make([]Rating, 0, len(d.ratings))
	for _, r := range d.ratings {
		if r.Score >= threshold {
			kept = append(kept, Rating{User: r.User, Item: r.Item, Score: 1})
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("dataset: implicit threshold %v drops every rating", threshold)
	}
	return New(d.numUsers, d.numItems, kept)
}

// ClampScores derives a dataset with every score clamped into [lo, hi] —
// defensive normalization for crawled corpora with out-of-scale values.
func (d *Dataset) ClampScores(lo, hi float64) (*Dataset, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("dataset: clamp bounds (%v, %v) need 0 < lo <= hi", lo, hi)
	}
	out := make([]Rating, len(d.ratings))
	for k, r := range d.ratings {
		s := r.Score
		if s < lo {
			s = lo
		}
		if s > hi {
			s = hi
		}
		out[k] = Rating{User: r.User, Item: r.Item, Score: s}
	}
	return New(d.numUsers, d.numItems, out)
}
