package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func tinyRatings() []Rating {
	return []Rating{
		{0, 0, 5}, {0, 1, 3},
		{1, 0, 4}, {1, 2, 5},
		{2, 0, 5}, {2, 1, 2}, {2, 3, 5},
	}
}

func tinyDataset(t testing.TB) *Dataset {
	t.Helper()
	d, err := New(3, 5, tinyRatings())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		nu, ni  int
		ratings []Rating
	}{
		{"zero users", 0, 5, nil},
		{"neg items", 3, -1, nil},
		{"user oob", 2, 2, []Rating{{2, 0, 5}}},
		{"item oob", 2, 2, []Rating{{0, 2, 5}}},
		{"zero score", 2, 2, []Rating{{0, 0, 0}}},
		{"negative score", 2, 2, []Rating{{0, 0, -1}}},
		{"duplicate", 2, 2, []Rating{{0, 0, 5}, {0, 0, 4}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.nu, tc.ni, tc.ratings); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestBasicAccessors(t *testing.T) {
	d := tinyDataset(t)
	if d.NumUsers() != 3 || d.NumItems() != 5 || d.NumRatings() != 7 {
		t.Fatalf("sizes %d/%d/%d", d.NumUsers(), d.NumItems(), d.NumRatings())
	}
	if math.Abs(d.Density()-7.0/15) > 1e-12 {
		t.Fatalf("density %v", d.Density())
	}
	ur := d.UserRatings(2)
	if len(ur) != 3 {
		t.Fatalf("user 2 ratings %d", len(ur))
	}
	set := d.UserItemSet(0)
	if len(set) != 2 {
		t.Fatalf("user 0 item set %v", set)
	}
	if _, ok := set[1]; !ok {
		t.Fatal("item 1 missing from user 0 set")
	}
	if d.UserDegree(1) != 2 {
		t.Fatalf("degree %d", d.UserDegree(1))
	}
	ir := d.ItemRatings(0)
	if len(ir) != 3 {
		t.Fatalf("item 0 ratings %d", len(ir))
	}
	if !d.HasRating(0, 1) || d.HasRating(0, 4) {
		t.Fatal("HasRating wrong")
	}
	if s, ok := d.Score(2, 3); !ok || s != 5 {
		t.Fatalf("Score(2,3) = %v,%v", s, ok)
	}
	if _, ok := d.Score(0, 4); ok {
		t.Fatal("phantom score")
	}
}

func TestItemPopularity(t *testing.T) {
	d := tinyDataset(t)
	want := []int{3, 2, 1, 1, 0}
	for i, p := range d.ItemPopularity() {
		if p != want[i] {
			t.Fatalf("pop[%d] = %d, want %d", i, p, want[i])
		}
	}
}

func TestGraphConversion(t *testing.T) {
	d := tinyDataset(t)
	g := d.Graph()
	if g.NumUsers() != 3 || g.NumItems() != 5 {
		t.Fatal("graph sizes wrong")
	}
	if g.NumEdges() != 7 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	if g.Weight(g.UserNode(2), g.ItemNode(3)) != 5 {
		t.Fatal("edge weight wrong")
	}
}

func TestLongTailItems(t *testing.T) {
	// Popularities: item0=3, item1=2, item2=1, item3=1, item4=0.
	// Total ratings 7; 20% budget = 1.4. Ascending popularity order:
	// item4 (0), then item2 (1) [acc 0 < 1.4 -> add, acc 1], then
	// item3 (1) [acc 1 < 1.4 -> add, acc 2 >= 1.4 stop].
	d := tinyDataset(t)
	tail := d.LongTailItems(0.2)
	for _, want := range []int{4, 2, 3} {
		if _, ok := tail[want]; !ok {
			t.Fatalf("item %d missing from tail %v", want, tail)
		}
	}
	if _, ok := tail[0]; ok {
		t.Fatal("head item 0 in tail")
	}
	if len(tail) != 3 {
		t.Fatalf("tail size %d", len(tail))
	}
}

func TestLongTailShareZeroAndOne(t *testing.T) {
	d := tinyDataset(t)
	// Budget 0: the loop exits immediately, so the tail is empty even for
	// zero-popularity items.
	if tail := d.LongTailItems(0); len(tail) != 0 {
		t.Fatalf("tailShare=0 gave %v", tail)
	}
	if tail := d.LongTailItems(1); len(tail) != d.NumItems() {
		t.Fatalf("tailShare=1 kept only %d items", len(tail))
	}
}

func TestSummarize(t *testing.T) {
	d := tinyDataset(t)
	s := d.Summarize()
	if s.NumRatings != 7 || s.MaxUserDegree != 3 || s.MinUserDegree != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxItemDegree != 3 || s.MinItemDegree != 0 {
		t.Fatalf("item degrees %+v", s)
	}
	wantMean := (5.0 + 3 + 4 + 5 + 5 + 2 + 5) / 7
	if math.Abs(s.MeanScore-wantMean) > 1e-12 {
		t.Fatalf("mean %v", s.MeanScore)
	}
	if s.TailItemFraction <= 0 || s.TailItemFraction > 1 {
		t.Fatalf("tail fraction %v", s.TailItemFraction)
	}
}

func TestRemoveRatings(t *testing.T) {
	d := tinyDataset(t)
	d2, err := d.RemoveRatings(map[int]struct{}{0: {}, 6: {}})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRatings() != 5 {
		t.Fatalf("ratings after removal %d", d2.NumRatings())
	}
	if d2.HasRating(0, 0) {
		t.Fatal("removed rating still present")
	}
	if !d2.HasRating(0, 1) {
		t.Fatal("kept rating lost")
	}
	// Original untouched.
	if d.NumRatings() != 7 {
		t.Fatal("original dataset mutated")
	}
}

func TestSplitLongTailTest(t *testing.T) {
	// Build a corpus with clear head/tail structure and plenty of 5-star
	// tail ratings to hold out.
	rng := rand.New(rand.NewSource(1))
	var ratings []Rating
	const nu, ni = 60, 80
	for u := 0; u < nu; u++ {
		// Everyone rates head items 0..9.
		for i := 0; i < 10; i++ {
			ratings = append(ratings, Rating{u, i, 4})
		}
		// Each user rates two distinct tail items with 5 stars.
		a := 10 + (u*2)%70
		b := 10 + (u*2+1)%70
		ratings = append(ratings, Rating{u, a, 5}, Rating{u, b, 5})
	}
	d, err := New(nu, ni, ratings)
	if err != nil {
		t.Fatal(err)
	}
	split, err := d.SplitLongTailTest(rng, 30, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Test) != 30 {
		t.Fatalf("test size %d", len(split.Test))
	}
	if split.Train.NumRatings() != d.NumRatings()-30 {
		t.Fatalf("train size %d", split.Train.NumRatings())
	}
	tail := d.LongTailItems(0.2)
	for _, r := range split.Test {
		if r.Score < 5 {
			t.Fatalf("held-out rating has score %v", r.Score)
		}
		if _, niche := tail[r.Item]; !niche {
			t.Fatalf("held-out item %d not in long tail", r.Item)
		}
		if split.Train.HasRating(r.User, r.Item) {
			t.Fatal("held-out rating leaked into training set")
		}
		if split.Train.UserDegree(r.User) == 0 {
			t.Fatal("user left with no training ratings")
		}
	}
}

func TestSplitLongTailTestInsufficient(t *testing.T) {
	d := tinyDataset(t)
	if _, err := d.SplitLongTailTest(rand.New(rand.NewSource(1)), 100, 5, 0.2); err == nil {
		t.Fatal("impossible split accepted")
	}
}

func TestSampleUsers(t *testing.T) {
	d := tinyDataset(t)
	users, err := d.SampleUsers(rand.New(rand.NewSource(2)), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Fatalf("sampled %d", len(users))
	}
	seen := map[int]bool{}
	for _, u := range users {
		if seen[u] {
			t.Fatal("duplicate user")
		}
		seen[u] = true
		if d.UserDegree(u) < 2 {
			t.Fatal("under-degree user sampled")
		}
	}
	if _, err := d.SampleUsers(rand.New(rand.NewSource(3)), 5, 2); err == nil {
		t.Fatal("oversized sample accepted")
	}
}

func TestKCoreBasic(t *testing.T) {
	// User 2 has a single rating on item 3; item 3 has a single rater.
	// A (2,2)-core must drop that rating and keep the dense block.
	d, err := New(3, 4, []Rating{
		{0, 0, 5}, {0, 1, 4},
		{1, 0, 4}, {1, 1, 3},
		{2, 3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	core, err := d.KCore(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if core.NumRatings() != 4 {
		t.Fatalf("core ratings %d, want 4", core.NumRatings())
	}
	if core.HasRating(2, 3) {
		t.Fatal("weak rating survived")
	}
	// Universe sizes preserved.
	if core.NumUsers() != 3 || core.NumItems() != 4 {
		t.Fatal("k-core shrank the universe")
	}
}

func TestKCoreCascades(t *testing.T) {
	// Chain: removing the weak user drops an item below threshold, which
	// must cascade and drop a second user's rating.
	d, err := New(3, 3, []Rating{
		{0, 0, 5},            // user 0: degree 1 (weak)
		{1, 0, 4}, {1, 1, 3}, // user 1 relies on item 0 staying alive
		{2, 1, 4}, {2, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// user0-item0 dies (user degree 1) → item 0 degree drops to 1 → the
	// user1-item0 rating dies → user 1 degree 1 → user1-item1 dies →
	// item 1 degree 1 → user2-item1 dies → user 2 degree 1 → everything
	// unravels, which KCore reports as an error.
	if _, err := d.KCore(2, 2); err == nil {
		t.Fatal("expected full unravel error")
	}
}

func TestKCoreZeroThresholdIsIdentity(t *testing.T) {
	d := tinyDataset(t)
	core, err := d.KCore(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if core.NumRatings() != d.NumRatings() {
		t.Fatal("0-core dropped ratings")
	}
}

func TestKCoreInvariantHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ratings []Rating
	for u := 0; u < 40; u++ {
		for _, i := range rng.Perm(30)[:1+rng.Intn(8)] {
			ratings = append(ratings, Rating{u, i, float64(1 + rng.Intn(5))})
		}
	}
	d, err := New(40, 30, ratings)
	if err != nil {
		t.Fatal(err)
	}
	core, err := d.KCore(3, 3)
	if err != nil {
		t.Skip("corpus fully unraveled")
	}
	for u := 0; u < core.NumUsers(); u++ {
		if deg := core.UserDegree(u); deg != 0 && deg < 3 {
			t.Fatalf("user %d degree %d violates 3-core", u, deg)
		}
	}
	for i, p := range core.ItemPopularity() {
		if p != 0 && p < 3 {
			t.Fatalf("item %d popularity %d violates 3-core", i, p)
		}
	}
}

func TestKCoreValidation(t *testing.T) {
	d := tinyDataset(t)
	if _, err := d.KCore(-1, 0); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := d.KCore(100, 100); err == nil {
		t.Fatal("impossible core accepted")
	}
}

func TestLoadDelimitedAndMovieLens(t *testing.T) {
	in := strings.NewReader("# comment\n1::10::5::978300760\n1::20::3::978302109\n2::10::4::978301968\n\n")
	ld, err := LoadMovieLens(in)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Data.NumUsers() != 2 || ld.Data.NumItems() != 2 || ld.Data.NumRatings() != 3 {
		t.Fatalf("loaded %d/%d/%d", ld.Data.NumUsers(), ld.Data.NumItems(), ld.Data.NumRatings())
	}
	u1, ok := ld.Users.Lookup("1")
	if !ok {
		t.Fatal("user 1 not interned")
	}
	i20, ok := ld.Items.Lookup("20")
	if !ok {
		t.Fatal("item 20 not interned")
	}
	if s, ok := ld.Data.Score(u1, i20); !ok || s != 3 {
		t.Fatalf("score(1,20) = %v,%v", s, ok)
	}
	if ld.Users.Name(u1) != "1" {
		t.Fatal("reverse mapping broken")
	}
}

func TestLoadDuplicateKeepsLast(t *testing.T) {
	in := strings.NewReader("a,x,3\na,x,5\n")
	ld, err := LoadCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Data.NumRatings() != 1 {
		t.Fatalf("ratings %d", ld.Data.NumRatings())
	}
	if s, _ := ld.Data.Score(0, 0); s != 5 {
		t.Fatalf("duplicate did not keep last score: %v", s)
	}
}

func TestLoadErrors(t *testing.T) {
	for name, input := range map[string]string{
		"too few fields": "a,b\n",
		"bad score":      "a,b,xyz\n",
		"zero score":     "a,b,0\n",
		"empty":          "",
	} {
		if _, err := LoadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := tinyDataset(t)
	var sb strings.Builder
	if err := WriteTSV(&sb, d); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ld.Data.NumRatings() != d.NumRatings() {
		t.Fatalf("round trip ratings %d vs %d", ld.Data.NumRatings(), d.NumRatings())
	}
	// Same scores under identity interning (dense ids serialize as strings).
	for _, r := range d.Ratings() {
		u, _ := ld.Users.Lookup(itoa(r.User))
		i, _ := ld.Items.Lookup(itoa(r.Item))
		if s, ok := ld.Data.Score(u, i); !ok || s != r.Score {
			t.Fatalf("round trip lost rating %+v", r)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestQuickTailGrowsWithShare(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nu, ni := 3+r.Intn(10), 3+r.Intn(20)
		var ratings []Rating
		for u := 0; u < nu; u++ {
			for _, i := range r.Perm(ni)[:1+r.Intn(ni)] {
				ratings = append(ratings, Rating{u, i, float64(1 + r.Intn(5))})
			}
		}
		d, err := New(nu, ni, ratings)
		if err != nil {
			return false
		}
		small := d.LongTailItems(0.1)
		large := d.LongTailItems(0.5)
		if len(small) > len(large) {
			return false
		}
		for i := range small {
			if _, ok := large[i]; !ok {
				return false // tail must be nested
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
