package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Interner maps arbitrary external IDs to dense indices, remembering the
// reverse mapping so results can be reported in the original ID space.
type Interner struct {
	index map[string]int
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{index: make(map[string]int)}
}

// Intern returns the dense index for id, assigning the next free one on
// first sight.
func (in *Interner) Intern(id string) int {
	if i, ok := in.index[id]; ok {
		return i
	}
	i := len(in.names)
	in.index[id] = i
	in.names = append(in.names, id)
	return i
}

// Len returns the number of distinct IDs seen.
func (in *Interner) Len() int { return len(in.names) }

// Name returns the original ID for a dense index.
func (in *Interner) Name(i int) string { return in.names[i] }

// Lookup returns the dense index for id without interning.
func (in *Interner) Lookup(id string) (int, bool) {
	i, ok := in.index[id]
	return i, ok
}

// Loaded bundles a parsed dataset with its ID interners.
type Loaded struct {
	Data  *Dataset
	Users *Interner
	Items *Interner
}

// LoadDelimited parses "user<sep>item<sep>score[<sep>extra...]" lines,
// interning user and item IDs in order of first appearance. Blank lines and
// lines starting with '#' are skipped. Duplicate (user, item) pairs keep
// the last score seen (real logs often contain re-ratings).
func LoadDelimited(r io.Reader, sep string) (*Loaded, error) {
	if sep == "" {
		return nil, fmt.Errorf("dataset: empty separator")
	}
	users := NewInterner()
	items := NewInterner()
	type key struct{ u, i int }
	scores := make(map[key]float64)
	order := make([]key, 0, 1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, sep)
		if len(parts) < 3 {
			return nil, fmt.Errorf("dataset: line %d: want at least 3 fields separated by %q, got %d", lineNo, sep, len(parts))
		}
		score, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad score %q: %v", lineNo, parts[2], err)
		}
		if score <= 0 {
			return nil, fmt.Errorf("dataset: line %d: score %v must be positive", lineNo, score)
		}
		k := key{users.Intern(strings.TrimSpace(parts[0])), items.Intern(strings.TrimSpace(parts[1]))}
		if _, seen := scores[k]; !seen {
			order = append(order, k)
		}
		scores[k] = score
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("dataset: no ratings found")
	}
	ratings := make([]Rating, len(order))
	for n, k := range order {
		ratings[n] = Rating{User: k.u, Item: k.i, Score: scores[k]}
	}
	d, err := New(users.Len(), items.Len(), ratings)
	if err != nil {
		return nil, err
	}
	return &Loaded{Data: d, Users: users, Items: items}, nil
}

// LoadMovieLens parses the MovieLens 1M "UserID::MovieID::Rating::Timestamp"
// format.
func LoadMovieLens(r io.Reader) (*Loaded, error) {
	return LoadDelimited(r, "::")
}

// LoadTSV parses tab-separated "user item score" lines.
func LoadTSV(r io.Reader) (*Loaded, error) {
	return LoadDelimited(r, "\t")
}

// LoadCSV parses comma-separated "user,item,score" lines.
func LoadCSV(r io.Reader) (*Loaded, error) {
	return LoadDelimited(r, ",")
}

// WriteTSV serializes a dataset as "user\titem\tscore" lines using dense
// indices, sorted by (user, item) for reproducible output.
func WriteTSV(w io.Writer, d *Dataset) error {
	ratings := d.Ratings()
	sort.Slice(ratings, func(a, b int) bool {
		if ratings[a].User != ratings[b].User {
			return ratings[a].User < ratings[b].User
		}
		return ratings[a].Item < ratings[b].Item
	})
	bw := bufio.NewWriter(w)
	for _, r := range ratings {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", r.User, r.Item, r.Score); err != nil {
			return fmt.Errorf("dataset: write: %w", err)
		}
	}
	return bw.Flush()
}
