// Package svd implements a hand-rolled truncated singular value
// decomposition for sparse matrices (randomized subspace iteration, no
// external linear-algebra dependency) and the PureSVD recommender of
// Cremonesi, Koren & Turrin (RecSys 2010) that the paper uses as its
// strongest matrix-factorization baseline (§5.1.1).
//
// PureSVD treats unobserved ratings as zeros, factorizes R ≈ U·Σ·Qᵀ, and
// scores item i for user u as r̂_ui = r_u·Q·q_iᵀ, where r_u is u's raw
// rating row — so the model needs only the right singular vectors Q.
package svd

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/dataset"
	"longtailrec/internal/linalg"
	"longtailrec/internal/sparse"
)

// Options configure the truncated SVD.
type Options struct {
	Rank       int   // number of singular triplets to keep; required
	Oversample int   // extra subspace dimensions; <= 0 means 8
	PowerIters int   // subspace (power) iterations; <= 0 means 4
	Seed       int64 // RNG seed for the random test matrix
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if o.PowerIters <= 0 {
		o.PowerIters = 4
	}
	return o
}

// Decomposition holds a rank-k truncated SVD: A ≈ U·diag(S)·Vᵀ.
type Decomposition struct {
	U *linalg.Dense // rows × k, orthonormal columns (left singular vectors)
	S []float64     // k singular values, descending
	V *linalg.Dense // cols × k, orthonormal columns (right singular vectors)
}

// Truncated computes a rank-opts.Rank SVD of the sparse matrix a using
// randomized subspace iteration (Halko–Martinsson–Tropp): sample
// Y = (A·Aᵀ)^q·A·Ω, orthonormalize, project, and solve the small
// eigenproblem of B·Bᵀ exactly.
func Truncated(a *sparse.CSR, opts Options) (*Decomposition, error) {
	rows, cols := a.Dims()
	if opts.Rank < 1 {
		return nil, fmt.Errorf("svd: rank %d, need >= 1", opts.Rank)
	}
	maxRank := rows
	if cols < maxRank {
		maxRank = cols
	}
	if opts.Rank > maxRank {
		return nil, fmt.Errorf("svd: rank %d exceeds min dimension %d", opts.Rank, maxRank)
	}
	opts = opts.withDefaults()
	k := opts.Rank
	p := k + opts.Oversample
	if p > maxRank {
		p = maxRank
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Y = A·Ω, Ω ~ N(0,1)^{cols×p}.
	y := linalg.NewDense(rows, p)
	omega := make([]float64, cols)
	col := make([]float64, rows)
	for j := 0; j < p; j++ {
		for i := range omega {
			omega[i] = rng.NormFloat64()
		}
		a.MulVec(omega, col)
		y.SetCol(j, col)
	}
	// Subspace iterations with re-orthonormalization for stability.
	tmp := make([]float64, cols)
	for it := 0; it < opts.PowerIters; it++ {
		q, _ := linalg.QR(y)
		for j := 0; j < p; j++ {
			q.Col(j, col)
			a.MulVecT(col, tmp) // tmp = Aᵀ·q_j
			a.MulVec(tmp, col)  // col = A·Aᵀ·q_j
			y.SetCol(j, col)
		}
	}
	q, _ := linalg.QR(y) // rows × p orthonormal basis of the range of A

	// B = Qᵀ·A  (p × cols), small and dense.
	b := linalg.NewDense(p, cols)
	qcol := make([]float64, rows)
	for j := 0; j < p; j++ {
		q.Col(j, qcol)
		a.MulVecT(qcol, tmp) // row j of B
		for c := 0; c < cols; c++ {
			b.Set(j, c, tmp[c])
		}
	}
	// Eigendecomposition of the small Gram matrix B·Bᵀ = W·diag(λ)·Wᵀ
	// gives singular values σ = √λ and left factors; right factors follow
	// as v_j = Bᵀ·w_j/σ_j.
	gram := b.Mul(b.T())
	lams, w, err := linalg.SymEigen(gram)
	if err != nil {
		return nil, fmt.Errorf("svd: eigen solve: %w", err)
	}
	dec := &Decomposition{
		U: linalg.NewDense(rows, k),
		S: make([]float64, k),
		V: linalg.NewDense(cols, k),
	}
	wcol := make([]float64, p)
	vcol := make([]float64, cols)
	ucol := make([]float64, rows)
	for j := 0; j < k; j++ {
		lam := lams[j]
		if lam < 0 {
			lam = 0
		}
		sigma := math.Sqrt(lam)
		dec.S[j] = sigma
		w.Col(j, wcol)
		// u_j = Q·w_j.
		for i := 0; i < rows; i++ {
			acc := 0.0
			for l := 0; l < p; l++ {
				acc += q.At(i, l) * wcol[l]
			}
			ucol[i] = acc
		}
		dec.U.SetCol(j, ucol)
		// v_j = Bᵀ·w_j / σ_j.
		for c := 0; c < cols; c++ {
			acc := 0.0
			for l := 0; l < p; l++ {
				acc += b.At(l, c) * wcol[l]
			}
			vcol[c] = acc
		}
		if sigma > 1e-12 {
			inv := 1 / sigma
			for c := range vcol {
				vcol[c] *= inv
			}
		} else {
			for c := range vcol {
				vcol[c] = 0
			}
		}
		dec.V.SetCol(j, vcol)
	}
	return dec, nil
}

// PureSVD is the Cremonesi et al. top-N recommender built on the right
// singular vectors of the zero-filled rating matrix.
type PureSVD struct {
	data *dataset.Dataset
	v    *linalg.Dense // items × k
	rank int
}

// NewPureSVD factorizes the dataset's rating matrix at the given rank.
func NewPureSVD(d *dataset.Dataset, opts Options) (*PureSVD, error) {
	coo := sparse.NewCOO(d.NumUsers(), d.NumItems())
	for _, r := range d.Ratings() {
		coo.Add(r.User, r.Item, r.Score)
	}
	dec, err := Truncated(coo.ToCSR(), opts)
	if err != nil {
		return nil, err
	}
	return &PureSVD{data: d, v: dec.V, rank: opts.Rank}, nil
}

// Rank returns the factorization rank.
func (p *PureSVD) Rank() int { return p.rank }

// V returns the right-singular-vector matrix Q (items × rank), aliasing
// internal storage. Exposed for persistence.
func (p *PureSVD) V() *linalg.Dense { return p.v }

// FromFactors rebuilds a PureSVD recommender from persisted right factors.
// The dataset supplies the rating rows scoring projects; v must be
// d.NumItems() × rank.
func FromFactors(d *dataset.Dataset, v *linalg.Dense, rank int) (*PureSVD, error) {
	if d == nil {
		return nil, fmt.Errorf("svd: nil dataset")
	}
	if v == nil {
		return nil, fmt.Errorf("svd: nil factor matrix")
	}
	rows, cols := v.Dims()
	if rows != d.NumItems() || cols != rank || rank < 1 {
		return nil, fmt.Errorf("svd: factor matrix %d×%d does not match %d items × rank %d",
			rows, cols, d.NumItems(), rank)
	}
	return &PureSVD{data: d, v: v, rank: rank}, nil
}

// ScoreAll fills out[i] = r̂_ui for every item: project u's rating row into
// the latent space (z = Qᵀ·r_u) and expand back (scores = Q·z). out is
// reused when correctly sized.
func (p *PureSVD) ScoreAll(u int, out []float64) []float64 {
	ni := p.data.NumItems()
	if len(out) != ni {
		out = make([]float64, ni)
	}
	z := make([]float64, p.rank)
	for _, r := range p.data.UserRatings(u) {
		for j := 0; j < p.rank; j++ {
			z[j] += r.Score * p.v.At(r.Item, j)
		}
	}
	for i := 0; i < ni; i++ {
		acc := 0.0
		for j := 0; j < p.rank; j++ {
			acc += p.v.At(i, j) * z[j]
		}
		out[i] = acc
	}
	return out
}

// Score returns r̂_ui for a single item.
func (p *PureSVD) Score(u, i int) float64 {
	z := make([]float64, p.rank)
	for _, r := range p.data.UserRatings(u) {
		for j := 0; j < p.rank; j++ {
			z[j] += r.Score * p.v.At(r.Item, j)
		}
	}
	acc := 0.0
	for j := 0; j < p.rank; j++ {
		acc += p.v.At(i, j) * z[j]
	}
	return acc
}
