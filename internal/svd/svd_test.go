package svd

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/dataset"
	"longtailrec/internal/sparse"
)

func TestTruncatedValidation(t *testing.T) {
	m := sparse.NewCSRFromDense([][]float64{{1, 2}, {3, 4}})
	if _, err := Truncated(m, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Truncated(m, Options{Rank: 3}); err == nil {
		t.Fatal("rank above min dimension accepted")
	}
}

func TestTruncatedExactRankOne(t *testing.T) {
	// A = σ·u·vᵀ with u = (3,4)/5, v = (1,0), σ = 10.
	m := sparse.NewCSRFromDense([][]float64{
		{6, 0},
		{8, 0},
	})
	dec, err := Truncated(m, Options{Rank: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.S[0]-10) > 1e-8 {
		t.Fatalf("σ = %v, want 10", dec.S[0])
	}
	u := dec.U.Col(0, nil)
	v := dec.V.Col(0, nil)
	// Signs may flip jointly.
	sign := 1.0
	if u[0] < 0 {
		sign = -1
	}
	if math.Abs(sign*u[0]-0.6) > 1e-8 || math.Abs(sign*u[1]-0.8) > 1e-8 {
		t.Fatalf("u = %v", u)
	}
	if math.Abs(sign*v[0]-1) > 1e-8 || math.Abs(v[1]) > 1e-8 {
		t.Fatalf("v = %v", v)
	}
}

func TestTruncatedDiagonalSingularValues(t *testing.T) {
	m := sparse.NewCSRFromDense([][]float64{
		{5, 0, 0},
		{0, 3, 0},
		{0, 0, 1},
	})
	dec, err := Truncated(m, Options{Rank: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.S[0]-5) > 1e-8 || math.Abs(dec.S[1]-3) > 1e-8 {
		t.Fatalf("S = %v, want [5 3]", dec.S)
	}
}

func TestTruncatedReconstructsLowRankMatrix(t *testing.T) {
	// Build an exactly rank-3 matrix and verify rank-3 truncation recovers
	// it to numerical precision.
	rng := rand.New(rand.NewSource(3))
	const rows, cols, rank = 30, 20, 3
	u := make([][]float64, rows)
	v := make([][]float64, cols)
	for i := range u {
		u[i] = make([]float64, rank)
		for j := range u[i] {
			u[i][j] = rng.NormFloat64()
		}
	}
	for i := range v {
		v[i] = make([]float64, rank)
		for j := range v[i] {
			v[i][j] = rng.NormFloat64()
		}
	}
	dense := make([][]float64, rows)
	for i := range dense {
		dense[i] = make([]float64, cols)
		for j := range dense[i] {
			for l := 0; l < rank; l++ {
				dense[i][j] += u[i][l] * v[j][l]
			}
		}
	}
	m := sparse.NewCSRFromDense(dense)
	dec, err := Truncated(m, Options{Rank: rank, PowerIters: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct and compare.
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			acc := 0.0
			for l := 0; l < rank; l++ {
				acc += dec.U.At(i, l) * dec.S[l] * dec.V.At(j, l)
			}
			if math.Abs(acc-dense[i][j]) > 1e-6 {
				t.Fatalf("reconstruction error at (%d,%d): %v vs %v", i, j, acc, dense[i][j])
			}
		}
	}
}

func TestSingularVectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coo := sparse.NewCOO(40, 25)
	for k := 0; k < 300; k++ {
		coo.Add(rng.Intn(40), rng.Intn(25), 1+4*rng.Float64())
	}
	dec, err := Truncated(coo.ToCSR(), Options{Rank: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			du, dv := 0.0, 0.0
			for i := 0; i < 40; i++ {
				du += dec.U.At(i, a) * dec.U.At(i, b)
			}
			for i := 0; i < 25; i++ {
				dv += dec.V.At(i, a) * dec.V.At(i, b)
			}
			if math.Abs(du-want) > 1e-6 {
				t.Fatalf("UᵀU(%d,%d) = %v", a, b, du)
			}
			if math.Abs(dv-want) > 1e-6 {
				t.Fatalf("VᵀV(%d,%d) = %v", a, b, dv)
			}
		}
	}
	// Descending singular values.
	for j := 1; j < 5; j++ {
		if dec.S[j] > dec.S[j-1]+1e-10 {
			t.Fatalf("singular values not descending: %v", dec.S)
		}
	}
}

func TestSVDMatchesAv(t *testing.T) {
	// A·v_j must equal σ_j·u_j for the leading triplets.
	rng := rand.New(rand.NewSource(7))
	coo := sparse.NewCOO(30, 30)
	for k := 0; k < 200; k++ {
		coo.Add(rng.Intn(30), rng.Intn(30), rng.NormFloat64())
	}
	m := coo.ToCSR()
	dec, err := Truncated(m, Options{Rank: 3, PowerIters: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		v := dec.V.Col(j, nil)
		av := make([]float64, 30)
		m.MulVec(v, av)
		for i := 0; i < 30; i++ {
			if math.Abs(av[i]-dec.S[j]*dec.U.At(i, j)) > 1e-4 {
				t.Fatalf("A·v != σ·u at (%d, %d): %v vs %v", i, j, av[i], dec.S[j]*dec.U.At(i, j))
			}
		}
	}
}

func clusteredDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ratings []dataset.Rating
	// Two user clusters with disjoint item preferences.
	for u := 0; u < 20; u++ {
		for _, i := range rng.Perm(10)[:6] {
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: 4 + float64(rng.Intn(2))})
		}
	}
	for u := 20; u < 40; u++ {
		for _, i := range rng.Perm(10)[:6] {
			ratings = append(ratings, dataset.Rating{User: u, Item: 10 + i, Score: 4 + float64(rng.Intn(2))})
		}
	}
	d, err := dataset.New(40, 20, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPureSVDPrefersInClusterItems(t *testing.T) {
	d := clusteredDataset(t, 9)
	rec, err := NewPureSVD(d, Options{Rank: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rank() != 2 {
		t.Fatalf("rank %d", rec.Rank())
	}
	scores := rec.ScoreAll(0, nil)
	rated := d.UserItemSet(0)
	var inMean, outMean float64
	var nIn, nOut int
	for i := 0; i < 20; i++ {
		if _, ok := rated[i]; ok {
			continue
		}
		if i < 10 {
			inMean += scores[i]
			nIn++
		} else {
			outMean += scores[i]
			nOut++
		}
	}
	if nIn == 0 || nOut == 0 {
		t.Skip("degenerate draw")
	}
	if inMean/float64(nIn) <= outMean/float64(nOut) {
		t.Fatalf("in-cluster %v not above out-cluster %v", inMean/float64(nIn), outMean/float64(nOut))
	}
}

func TestPureSVDScoreConsistency(t *testing.T) {
	d := clusteredDataset(t, 11)
	rec, err := NewPureSVD(d, Options{Rank: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	all := rec.ScoreAll(5, nil)
	for i := 0; i < d.NumItems(); i += 3 {
		if math.Abs(all[i]-rec.Score(5, i)) > 1e-12 {
			t.Fatalf("ScoreAll[%d] = %v vs Score %v", i, all[i], rec.Score(5, i))
		}
	}
	// Buffer reuse.
	buf := rec.ScoreAll(6, all)
	if &buf[0] != &all[0] {
		t.Fatal("buffer not reused")
	}
}

func TestPureSVDRankValidation(t *testing.T) {
	d := clusteredDataset(t, 13)
	if _, err := NewPureSVD(d, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}
