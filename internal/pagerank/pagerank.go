// Package pagerank implements Personalized PageRank on the user–item
// bipartite graph and the paper's Discounted Personalized PageRank (DPPR)
// baseline (§5.1.1, Eq. 15): DPPR(i|S) = PPR(i|S) / Popularity(i),
// a popularity-discounted variant designed to surface long-tail items.
package pagerank

import (
	"fmt"
	"math"

	"longtailrec/internal/graph"
)

// Options configure the PPR power iteration.
type Options struct {
	Damping   float64 // restart probability complement λ; <= 0 means 0.5 (paper default)
	MaxIters  int     // <= 0 means 100
	Tolerance float64 // L1 convergence threshold; <= 0 means 1e-10
}

func (o Options) withDefaults() Options {
	if o.Damping <= 0 {
		o.Damping = 0.5
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// Personalized computes the personalized PageRank vector with restart set
// S (uniform restart over S): p = (1-λ)·e_S + λ·Pᵀ·p, iterated to
// convergence. Nodes with zero degree dump their mass back into the
// restart set so the result stays a distribution.
func Personalized(g *graph.Bipartite, restart []int, opts Options) ([]float64, error) {
	if len(restart) == 0 {
		return nil, fmt.Errorf("pagerank: empty restart set")
	}
	n := g.NumNodes()
	for _, s := range restart {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("pagerank: restart node %d out of range [0,%d)", s, n)
		}
	}
	opts = opts.withDefaults()
	seed := make([]float64, n)
	w := 1 / float64(len(restart))
	for _, s := range restart {
		seed[s] += w
	}
	cur := make([]float64, n)
	copy(cur, seed)
	nxt := make([]float64, n)
	for iter := 0; iter < opts.MaxIters; iter++ {
		// nxt = λ·Pᵀ·cur + (1-λ)·seed, with dangling mass re-seeded.
		for i := range nxt {
			nxt[i] = 0
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			mass := cur[v]
			if mass == 0 {
				continue
			}
			// Derive the degree from the same row snapshot instead of a
			// separate Degree(v) call: the graph is live-writable, and two
			// lock acquisitions could straddle a write, leaving ws and d
			// inconsistent (an unnormalized transition row). Degree == row
			// sum by the symmetric-weight invariant.
			nbrs, ws := g.Neighbors(v)
			d := 0.0
			for _, w := range ws {
				d += w
			}
			if d == 0 {
				dangling += mass
				continue
			}
			inv := mass / d
			for k, u := range nbrs {
				// The graph is live: a row read mid-iteration can point at a
				// node admitted after n was read. Its mass stays with the
				// snapshot-sized vector (it will be seen next query).
				if u < len(nxt) {
					nxt[u] += ws[k] * inv
				}
			}
		}
		diff := 0.0
		for i := range nxt {
			val := opts.Damping*(nxt[i]+dangling*seed[i]) + (1-opts.Damping)*seed[i]
			diff += math.Abs(val - cur[i])
			nxt[i] = val
		}
		cur, nxt = nxt, cur
		if diff < opts.Tolerance {
			break
		}
	}
	return cur, nil
}

// ItemScores extracts the per-item slice of a node-indexed PPR vector.
// Items admitted after the vector was computed score 0.
func ItemScores(g *graph.Bipartite, ppr []float64) []float64 {
	out := make([]float64, g.NumItems())
	for i := range out {
		if v := g.ItemNode(i); v < len(ppr) {
			out[i] = ppr[v]
		}
	}
	return out
}

// Discounted computes DPPR item scores (Eq. 15): the personalized PageRank
// of each item divided by its popularity (rating frequency). Items never
// rated keep score 0 — the walk cannot reach them anyway.
func Discounted(g *graph.Bipartite, restart []int, opts Options) ([]float64, error) {
	ppr, err := Personalized(g, restart, opts)
	if err != nil {
		return nil, err
	}
	pop := g.ItemPopularity()
	out := make([]float64, len(pop))
	for i := range out {
		v := g.ItemNode(i)
		if pop[i] == 0 || v >= len(ppr) {
			continue // never rated, or admitted after the PPR solve
		}
		out[i] = ppr[v] / float64(pop[i])
	}
	return out, nil
}

// ForUser computes DPPR scores restarting from the user's rated item set
// S_q (falling back to the user node itself when the user has no ratings),
// which is how the baseline is queried in the experiments.
func ForUser(g *graph.Bipartite, u int, opts Options) ([]float64, error) {
	items, _ := g.UserItems(u)
	restart := make([]int, 0, len(items)+1)
	for _, i := range items {
		restart = append(restart, g.ItemNode(i))
	}
	if len(restart) == 0 {
		restart = append(restart, g.UserNode(u))
	}
	return Discounted(g, restart, opts)
}
