package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/graph"
)

func figure2Graph(t testing.TB) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromRatings(5, 6, []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3}, {User: 0, Item: 4, Weight: 3}, {User: 0, Item: 5, Weight: 5},
		{User: 1, Item: 0, Weight: 5}, {User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 5}, {User: 1, Item: 4, Weight: 4}, {User: 1, Item: 5, Weight: 5},
		{User: 2, Item: 0, Weight: 4}, {User: 2, Item: 1, Weight: 5}, {User: 2, Item: 2, Weight: 4},
		{User: 3, Item: 2, Weight: 5}, {User: 3, Item: 3, Weight: 5},
		{User: 4, Item: 1, Weight: 4}, {User: 4, Item: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPersonalizedIsDistribution(t *testing.T) {
	g := figure2Graph(t)
	ppr, err := Personalized(g, []int{g.UserNode(0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, p := range ppr {
		if p < 0 {
			t.Fatalf("negative PPR at %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("PPR sums to %v", sum)
	}
}

func TestPersonalizedSatisfiesFixedPoint(t *testing.T) {
	g := figure2Graph(t)
	restart := []int{g.UserNode(2)}
	opts := Options{Damping: 0.5, MaxIters: 2000, Tolerance: 1e-14}
	ppr, err := Personalized(g, restart, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Check p = λ·Pᵀ·p + (1-λ)·e_S componentwise.
	n := g.NumNodes()
	want := make([]float64, n)
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		nbrs, ws := g.Neighbors(v)
		for k, u := range nbrs {
			want[u] += 0.5 * ppr[v] * ws[k] / g.Degree(v)
		}
	}
	want[restart[0]] += 0.5
	for i := range want {
		if math.Abs(want[i]-ppr[i]) > 1e-9 {
			t.Fatalf("fixed point violated at %d: %v vs %v", i, want[i], ppr[i])
		}
	}
}

func TestRestartNodeDominates(t *testing.T) {
	g := figure2Graph(t)
	q := g.UserNode(4)
	ppr, err := Personalized(g, []int{q}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ppr {
		if i != q && p > ppr[q] {
			t.Fatalf("node %d (%v) outranks the restart node (%v)", i, p, ppr[q])
		}
	}
}

func TestPPRFavorsPopularDPPRFavorsNiche(t *testing.T) {
	// The paper's motivation for DPPR: raw PPR ranks the popular M1 above
	// the niche M4 for U4 even though U4 rated M4's neighbor; dividing by
	// popularity flips the preference toward the tail.
	g := figure2Graph(t)
	u := 4 // U5 rated M2, M3
	restart := []int{g.ItemNode(1), g.ItemNode(2)}
	ppr, err := Personalized(g, restart, Options{})
	if err != nil {
		t.Fatal(err)
	}
	items := ItemScores(g, ppr)
	dppr, err := Discounted(g, restart, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = u
	// M1 (item 0, popularity 3) vs M4 (item 3, popularity 1).
	if items[0] <= items[3] {
		t.Fatalf("premise: PPR should favor popular M1 (%v) over niche M4 (%v)", items[0], items[3])
	}
	if dppr[3] <= dppr[0] {
		t.Fatalf("DPPR should favor niche M4 (%v) over popular M1 (%v)", dppr[3], dppr[0])
	}
}

func TestDiscountedZeroPopularity(t *testing.T) {
	// An item with no ratings must score 0, not NaN/Inf.
	g, err := graph.FromRatings(2, 3, []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 1, Item: 1, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	dppr, err := Discounted(g, []int{g.UserNode(0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dppr[2] != 0 {
		t.Fatalf("unrated item score %v", dppr[2])
	}
	for _, s := range dppr {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite DPPR %v", s)
		}
	}
}

func TestForUserRestartsFromItems(t *testing.T) {
	g := figure2Graph(t)
	scores, err := ForUser(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != g.NumItems() {
		t.Fatalf("scores length %d", len(scores))
	}
	// Must match Discounted with S_q = {M2, M3} explicitly.
	want, err := Discounted(g, []int{g.ItemNode(1), g.ItemNode(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-12 {
			t.Fatalf("ForUser[%d] = %v, want %v", i, scores[i], want[i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	g := figure2Graph(t)
	if _, err := Personalized(g, nil, Options{}); err == nil {
		t.Fatal("empty restart accepted")
	}
	if _, err := Personalized(g, []int{-1}, Options{}); err == nil {
		t.Fatal("negative restart accepted")
	}
	if _, err := Personalized(g, []int{99}, Options{}); err == nil {
		t.Fatal("out-of-range restart accepted")
	}
}

func TestDanglingMassReseeded(t *testing.T) {
	// Graph with an isolated user: restarting from it keeps all mass there.
	g, err := graph.FromRatings(2, 1, []graph.Rating{{User: 0, Item: 0, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	ppr, err := Personalized(g, []int{g.UserNode(1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ppr[g.UserNode(1)]-1) > 1e-9 {
		t.Fatalf("isolated restart mass %v, want 1", ppr[g.UserNode(1)])
	}
}

func TestHigherDampingSpreadsMass(t *testing.T) {
	g := figure2Graph(t)
	q := g.UserNode(0)
	low, err := Personalized(g, []int{q}, Options{Damping: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Personalized(g, []int{q}, Options{Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if high[q] >= low[q] {
		t.Fatalf("restart mass should shrink with damping: %v vs %v", high[q], low[q])
	}
}

func TestSymmetryOfEquivalentUsers(t *testing.T) {
	// Two users with identical rating profiles must get identical PPR
	// item scores.
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(3, 6)
	for _, i := range []int{0, 2, 4} {
		_ = b.AddRating(0, i, 4)
		_ = b.AddRating(1, i, 4)
	}
	for i := 0; i < 6; i++ {
		if rng.Float64() < 0.5 {
			_ = b.AddRating(2, i, 3)
		}
	}
	g := b.Build()
	a, err := ForUser(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ForUser(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-c[i]) > 1e-12 {
			t.Fatalf("equivalent users diverge at item %d: %v vs %v", i, a[i], c[i])
		}
	}
}
