package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(u int) Key {
	return Key{User: u, Algo: "AT", K: 10}
}

// epochVal pairs a value with the epoch it was computed at — the test
// double for how the serving layer validates entries now that freshness
// is a verdict, not part of the key.
type epochVal struct {
	epoch uint64
	v     int
}

// atEpoch is the plain epoch-exact validator: fresh iff the entry was
// built at the current epoch.
func atEpoch(cur uint64) func(*epochVal) Verdict {
	return func(e *epochVal) Verdict {
		if e.epoch == cur {
			return VerdictFresh
		}
		return VerdictStale
	}
}

func TestGetPut(t *testing.T) {
	c := New[string](64)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put(key(1), "a")
	if v, ok := c.Get(key(1)); !ok || v != "a" {
		t.Fatalf("Get = (%q, %v), want (a, true)", v, ok)
	}
	c.Put(key(1), "b")
	if v, _ := c.Get(key(1)); v != "b" {
		t.Fatalf("overwrite: got %q, want b", v)
	}
	st := c.Stats()
	if st.Size != 1 {
		t.Errorf("Size = %d, want 1", st.Size)
	}
}

// TestGetValidatedVerdicts pins the verdict bookkeeping: a stale verdict
// drops the entry and books a miss, VerdictFreshValidated counts a
// fingerprint hit, and the two stale-with-evidence verdicts feed the
// reject/overflow counters.
func TestGetValidatedVerdicts(t *testing.T) {
	c := New[int](64)
	pass := func(vd Verdict) func(*int) Verdict {
		return func(*int) Verdict { return vd }
	}

	c.Put(key(1), 1)
	if v, ok := c.GetValidated(key(1), pass(VerdictFreshValidated)); !ok || v != 1 {
		t.Fatalf("validated hit = (%d, %v), want (1, true)", v, ok)
	}
	if st := c.Stats(); st.FingerprintHits != 1 || st.Hits != 1 {
		t.Errorf("after validated hit: fpHits=%d hits=%d, want 1 and 1", st.FingerprintHits, st.Hits)
	}

	if _, ok := c.GetValidated(key(1), pass(VerdictStale)); ok {
		t.Fatal("stale entry served")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("stale entry survived its verdict")
	}

	c.Put(key(2), 2)
	if _, ok := c.GetValidated(key(2), pass(VerdictStaleFingerprint)); ok {
		t.Fatal("fingerprint-rejected entry served")
	}
	c.Put(key(3), 3)
	if _, ok := c.GetValidated(key(3), pass(VerdictStaleOverflow)); ok {
		t.Fatal("overflow-rejected entry served")
	}
	st := c.Stats()
	if st.FingerprintRejects != 2 {
		t.Errorf("FingerprintRejects = %d, want 2", st.FingerprintRejects)
	}
	if st.JournalOverflows != 1 {
		t.Errorf("JournalOverflows = %d, want 1", st.JournalOverflows)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity rounds up to numShards entries minimum (one per shard), so
	// per-shard LRU behavior is what we pin: overfill one shard by reusing
	// keys that provably collide (identical key → same shard, so use many
	// users and rely on aggregate bound instead).
	c := New[int](numShards) // 1 entry per shard
	for u := 0; u < 10*numShards; u++ {
		c.Put(key(u), u)
	}
	st := c.Stats()
	if st.Size > numShards {
		t.Errorf("Size = %d exceeds capacity %d", st.Size, numShards)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded after overfill")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](64)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, _, err := c.Do(key(7), nil, func() (int, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = v
		}(w)
	}
	// Let every goroutine reach the cache before releasing the leader.
	for c.Stats().Shared+c.Stats().Misses < waiters {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", got)
	}
	for w, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42", w, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != waiters-1 {
		t.Errorf("stats misses=%d shared=%d, want 1 and %d", st.Misses, st.Shared, waiters-1)
	}
	// Second call: pure hit.
	if v, fromCache, _ := c.Do(key(7), nil, func() (int, error) { return 0, errors.New("must not run") }); !fromCache || v != 42 {
		t.Errorf("warm Do = (%d, %v), want (42, true)", v, fromCache)
	}
}

// TestDoWaiterRevalidates pins the singleflight soundness rule: a waiter
// that piggybacked on a flight whose result went stale while it ran (a
// relevant write landed mid-compute) must NOT serve the shared value — it
// retries the lookup, drops the leader's stored entry, and computes
// fresh.
func TestDoWaiterRevalidates(t *testing.T) {
	c := New[epochVal](64)
	var cur atomic.Uint64
	cur.Store(1)
	validate := func(e *epochVal) Verdict {
		if e.epoch == cur.Load() {
			return VerdictFresh
		}
		return VerdictStale
	}

	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := c.Do(key(1), validate, func() (epochVal, error) {
			close(started)
			<-release
			return epochVal{epoch: 1, v: 10}, nil
		})
		if err != nil || v.v != 10 {
			t.Errorf("leader got (%+v, %v)", v, err)
		}
	}()
	<-started
	waiterDone := make(chan struct{})
	recomputed := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, fromCache, err := c.Do(key(1), validate, func() (epochVal, error) {
			close(recomputed)
			return epochVal{epoch: 2, v: 20}, nil
		})
		if err != nil || fromCache || v.v != 20 {
			t.Errorf("waiter got (%+v, %v, %v), want fresh 20", v, fromCache, err)
		}
	}()
	// Wait for the waiter to join the flight, then move the epoch so the
	// flight's result resolves stale, then let the leader finish.
	for c.Stats().Shared == 0 {
	}
	cur.Store(2)
	close(release)
	select {
	case <-recomputed:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter served the stale shared value instead of recomputing")
	}
	<-leaderDone
	<-waiterDone
	if v, ok := c.Get(key(1)); !ok || v.v != 20 {
		t.Fatalf("final entry = (%+v, %v), want the recomputed value", v, ok)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](64)
	boom := errors.New("boom")
	if _, _, err := c.Do(key(1), nil, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// Next call retries the compute.
	v, fromCache, err := c.Do(key(1), nil, func() (int, error) { return 5, nil })
	if err != nil || fromCache || v != 5 {
		t.Fatalf("retry = (%d, %v, %v), want (5, false, nil)", v, fromCache, err)
	}
}

// TestDoPanicSafe: a panicking compute must propagate, but must not leave
// the flight registered (which would deadlock every later lookup of the
// key) nor hand waiters a zero value as a success.
func TestDoPanicSafe(t *testing.T) {
	c := New[int](64)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do(key(3), nil, func() (int, error) { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatal("panicked compute left a cached entry")
	}
	// The key must be computable again, not deadlocked on a dead flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, fromCache, err := c.Do(key(3), nil, func() (int, error) { return 9, nil })
		if err != nil || fromCache || v != 9 {
			t.Errorf("post-panic Do = (%d, %v, %v), want (9, false, nil)", v, fromCache, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do deadlocked after a panicked compute")
	}
}

func TestRevalidate(t *testing.T) {
	c := New[epochVal](256)
	for u := 0; u < 10; u++ {
		c.Put(key(u), epochVal{epoch: 1, v: u})
	}
	// Users 0..3 recomputed at epoch 2; 4..9 still carry epoch 1.
	for u := 0; u < 4; u++ {
		c.Put(key(u), epochVal{epoch: 2, v: 100 + u})
	}
	if dropped := c.Revalidate(atEpoch(2)); dropped != 6 {
		t.Fatalf("Revalidate dropped %d, want exactly the 6 stale entries", dropped)
	}
	for u := 0; u < 4; u++ {
		if v, ok := c.Get(key(u)); !ok || v.v != 100+u {
			t.Errorf("current-epoch entry %d lost: (%+v, %v)", u, v, ok)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

// TestRevalidateBoundedWork: one Revalidate call examines at most
// evictScanCap entries per shard — the guard against a full O(entries)
// scan holding each shard lock while lookups queue behind it — while
// repeated calls still converge to a fully swept cache.
func TestRevalidateBoundedWork(t *testing.T) {
	const total = 3 * numShards * evictScanCap
	c := New[epochVal](total)
	for u := 0; u < total; u++ {
		c.Put(key(u), epochVal{epoch: 1, v: u})
	}
	perCallCap := numShards * evictScanCap
	dropped := c.Revalidate(atEpoch(2))
	if dropped > perCallCap {
		t.Fatalf("one call dropped %d entries, cap is %d", dropped, perCallCap)
	}
	if dropped == total {
		t.Fatalf("one call swept all %d entries; the per-call bound is not in effect", total)
	}
	swept := dropped
	for calls := 1; swept < total; calls++ {
		if calls > 3*numShards {
			t.Fatalf("Revalidate failed to converge: %d/%d after %d calls", swept, total, calls)
		}
		n := c.Revalidate(atEpoch(2))
		if n > perCallCap {
			t.Fatalf("call %d dropped %d entries, cap is %d", calls, n, perCallCap)
		}
		swept += n
	}
	if c.Len() != 0 {
		t.Fatalf("%d entries left after convergence", c.Len())
	}
}

// BenchmarkRevalidate is the latency guard for the bounded sweep: the
// per-call cost must stay flat as the cache grows, because each call
// examines at most evictScanCap entries per shard regardless of size.
func BenchmarkRevalidate(b *testing.B) {
	const n = 64 << 10
	c := New[epochVal](n)
	for u := 0; u < n; u++ {
		c.Put(key(u), epochVal{epoch: 1, v: u})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Revalidate(atEpoch(2))
		if c.Len() == 0 {
			// Refill off the clock so every iteration measures a sweep over
			// a populated cache.
			b.StopTimer()
			for u := 0; u < n; u++ {
				c.Put(key(u), epochVal{epoch: 1, v: u})
			}
			b.StartTimer()
		}
	}
}

func TestPurgeAndCapacity(t *testing.T) {
	c := New[int](0)
	if c.Capacity() != 4096 {
		t.Errorf("default capacity = %d, want 4096", c.Capacity())
	}
	c.Put(key(1), 1)
	c.Purge()
	if c.Len() != 0 {
		t.Error("Purge left entries behind")
	}
}

// TestConcurrentCacheMixed hammers all operations from many goroutines;
// meaningful under -race.
func TestConcurrentCacheMixed(t *testing.T) {
	c := New[epochVal](128)
	var cur atomic.Uint64
	cur.Store(1)
	validate := func(e *epochVal) Verdict {
		if e.epoch >= cur.Load() {
			return VerdictFresh
		}
		return VerdictStale
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 300; q++ {
				u := (w + q) % 40
				switch q % 4 {
				case 0:
					c.Put(key(u), epochVal{epoch: cur.Load(), v: u})
				case 1:
					if v, ok := c.GetValidated(key(u), validate); ok && v.v != u {
						t.Errorf("got %d want %d", v.v, u)
						return
					}
				case 2:
					if _, _, err := c.Do(key(u), validate, func() (epochVal, error) {
						return epochVal{epoch: cur.Load(), v: u}, nil
					}); err != nil {
						t.Error(err)
						return
					}
				default:
					if q%100 == 99 {
						cur.Add(1)
					}
					c.Revalidate(validate)
				}
			}
		}(w)
	}
	wg.Wait()
	_ = c.Stats()
}

// TestDoCtxWaiterRelease: a piggybacked waiter whose own context dies
// stops waiting immediately with its context error; the flight itself
// completes and is cached for later lookups.
func TestDoCtxWaiterRelease(t *testing.T) {
	c := New[int](8)
	k := Key{User: 1, Algo: "A", K: 3}
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := c.Do(k, nil, func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if v != 7 || err != nil {
			t.Errorf("leader got (%d, %v)", v, err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	begin := time.Now()
	_, shared, err := c.DoCtx(ctx, k, nil, func() (int, error) {
		t.Error("waiter became a second leader for an in-flight key")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	if !shared {
		t.Fatal("waiter did not report piggybacking")
	}
	if time.Since(begin) > time.Second {
		t.Fatal("cancelled waiter blocked on the flight")
	}
	close(release)
	<-leaderDone
	if v, ok := c.Get(k); !ok || v != 7 {
		t.Fatalf("flight result not cached: (%d, %v)", v, ok)
	}
}
