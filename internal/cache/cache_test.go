package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(u int, epoch uint64) Key {
	return Key{User: u, Algo: "AT", K: 10, Epoch: epoch}
}

func TestGetPut(t *testing.T) {
	c := New[string](64)
	if _, ok := c.Get(key(1, 0)); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put(key(1, 0), "a")
	if v, ok := c.Get(key(1, 0)); !ok || v != "a" {
		t.Fatalf("Get = (%q, %v), want (a, true)", v, ok)
	}
	// Same user, different epoch: distinct key.
	if _, ok := c.Get(key(1, 1)); ok {
		t.Fatal("epoch is not part of the key")
	}
	c.Put(key(1, 0), "b")
	if v, _ := c.Get(key(1, 0)); v != "b" {
		t.Fatalf("overwrite: got %q, want b", v)
	}
	st := c.Stats()
	if st.Size != 1 {
		t.Errorf("Size = %d, want 1", st.Size)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity rounds up to numShards entries minimum (one per shard), so
	// per-shard LRU behavior is what we pin: overfill one shard by reusing
	// keys that provably collide (identical key → same shard, so use many
	// users and rely on aggregate bound instead).
	c := New[int](numShards) // 1 entry per shard
	for u := 0; u < 10*numShards; u++ {
		c.Put(key(u, 0), u)
	}
	st := c.Stats()
	if st.Size > numShards {
		t.Errorf("Size = %d exceeds capacity %d", st.Size, numShards)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded after overfill")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](64)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, _, err := c.Do(key(7, 3), func() (int, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = v
		}(w)
	}
	// Let every goroutine reach the cache before releasing the leader.
	for c.Stats().Shared+c.Stats().Misses < waiters {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", got)
	}
	for w, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42", w, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != waiters-1 {
		t.Errorf("stats misses=%d shared=%d, want 1 and %d", st.Misses, st.Shared, waiters-1)
	}
	// Second call: pure hit.
	if v, fromCache, _ := c.Do(key(7, 3), func() (int, error) { return 0, errors.New("must not run") }); !fromCache || v != 42 {
		t.Errorf("warm Do = (%d, %v), want (42, true)", v, fromCache)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](64)
	boom := errors.New("boom")
	if _, _, err := c.Do(key(1, 0), func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// Next call retries the compute.
	v, fromCache, err := c.Do(key(1, 0), func() (int, error) { return 5, nil })
	if err != nil || fromCache || v != 5 {
		t.Fatalf("retry = (%d, %v, %v), want (5, false, nil)", v, fromCache, err)
	}
}

// TestDoPanicSafe: a panicking compute must propagate, but must not leave
// the flight registered (which would deadlock every later lookup of the
// key) nor hand waiters a zero value as a success.
func TestDoPanicSafe(t *testing.T) {
	c := New[int](64)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do(key(3, 0), func() (int, error) { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatal("panicked compute left a cached entry")
	}
	// The key must be computable again, not deadlocked on a dead flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, fromCache, err := c.Do(key(3, 0), func() (int, error) { return 9, nil })
		if err != nil || fromCache || v != 9 {
			t.Errorf("post-panic Do = (%d, %v, %v), want (9, false, nil)", v, fromCache, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do deadlocked after a panicked compute")
	}
}

func TestEvictStale(t *testing.T) {
	c := New[int](256)
	for u := 0; u < 10; u++ {
		c.Put(key(u, 1), u)
	}
	for u := 0; u < 4; u++ {
		c.Put(key(u, 2), 100+u)
	}
	if dropped := c.EvictStale(2); dropped != 10 {
		t.Fatalf("EvictStale dropped %d, want exactly the 10 stale entries", dropped)
	}
	for u := 0; u < 4; u++ {
		if v, ok := c.Get(key(u, 2)); !ok || v != 100+u {
			t.Errorf("current-epoch entry %d lost: (%d, %v)", u, v, ok)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

// TestEvictStaleBoundedWork: one EvictStale call examines at most
// evictScanCap entries per shard — the guard against a full O(entries)
// scan holding each shard lock while lookups queue behind it — while
// repeated calls still converge to a fully swept cache.
func TestEvictStaleBoundedWork(t *testing.T) {
	const total = 3 * numShards * evictScanCap
	c := New[int](total)
	for u := 0; u < total; u++ {
		c.Put(key(u, 1), u)
	}
	perCallCap := numShards * evictScanCap
	dropped := c.EvictStale(2)
	if dropped > perCallCap {
		t.Fatalf("one call dropped %d entries, cap is %d", dropped, perCallCap)
	}
	if dropped == total {
		t.Fatalf("one call swept all %d entries; the per-call bound is not in effect", total)
	}
	swept := dropped
	for calls := 1; swept < total; calls++ {
		if calls > 3*numShards {
			t.Fatalf("EvictStale failed to converge: %d/%d after %d calls", swept, total, calls)
		}
		n := c.EvictStale(2)
		if n > perCallCap {
			t.Fatalf("call %d dropped %d entries, cap is %d", calls, n, perCallCap)
		}
		swept += n
	}
	if c.Len() != 0 {
		t.Fatalf("%d entries left after convergence", c.Len())
	}
}

// BenchmarkEvictStale is the latency guard for the bounded sweep: the
// per-call cost must stay flat as the cache grows, because each call
// examines at most evictScanCap entries per shard regardless of size.
func BenchmarkEvictStale(b *testing.B) {
	const n = 64 << 10
	c := New[int](n)
	for u := 0; u < n; u++ {
		c.Put(key(u, 1), u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EvictStale(2)
		if c.Len() == 0 {
			// Refill off the clock so every iteration measures a sweep over
			// a populated cache.
			b.StopTimer()
			for u := 0; u < n; u++ {
				c.Put(key(u, 1), u)
			}
			b.StartTimer()
		}
	}
}

func TestPurgeAndCapacity(t *testing.T) {
	c := New[int](0)
	if c.Capacity() != 4096 {
		t.Errorf("default capacity = %d, want 4096", c.Capacity())
	}
	c.Put(key(1, 0), 1)
	c.Purge()
	if c.Len() != 0 {
		t.Error("Purge left entries behind")
	}
}

// TestConcurrentCacheMixed hammers all operations from many goroutines;
// meaningful under -race.
func TestConcurrentCacheMixed(t *testing.T) {
	c := New[string](128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 300; q++ {
				u := (w + q) % 40
				epoch := uint64(q / 100)
				switch q % 4 {
				case 0:
					c.Put(key(u, epoch), fmt.Sprintf("%d@%d", u, epoch))
				case 1:
					if v, ok := c.Get(key(u, epoch)); ok {
						if want := fmt.Sprintf("%d@%d", u, epoch); v != want {
							t.Errorf("got %q want %q", v, want)
							return
						}
					}
				case 2:
					if _, _, err := c.Do(key(u, epoch), func() (string, error) {
						return fmt.Sprintf("%d@%d", u, epoch), nil
					}); err != nil {
						t.Error(err)
						return
					}
				default:
					c.EvictStale(epoch)
				}
			}
		}(w)
	}
	wg.Wait()
	_ = c.Stats()
}

// TestDoCtxWaiterRelease: a piggybacked waiter whose own context dies
// stops waiting immediately with its context error; the flight itself
// completes and is cached for later lookups.
func TestDoCtxWaiterRelease(t *testing.T) {
	c := New[int](8)
	k := Key{User: 1, Algo: "A", K: 3}
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := c.Do(k, func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if v != 7 || err != nil {
			t.Errorf("leader got (%d, %v)", v, err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	begin := time.Now()
	_, shared, err := c.DoCtx(ctx, k, func() (int, error) {
		t.Error("waiter became a second leader for an in-flight key")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	if !shared {
		t.Fatal("waiter did not report piggybacking")
	}
	if time.Since(begin) > time.Second {
		t.Fatal("cancelled waiter blocked on the flight")
	}
	close(release)
	<-leaderDone
	if v, ok := c.Get(k); !ok || v != 7 {
		t.Fatalf("flight result not cached: (%d, %v)", v, ok)
	}
}
