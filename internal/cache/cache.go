// Package cache provides the sharded, revalidating result cache behind the
// live serving layer: a fixed-capacity LRU of compact recommendation
// results keyed by (user, algorithm, k, options), with singleflight
// deduplication so a thundering herd of identical queries computes once.
//
// Invalidation is precision-tracked rather than keyed: the graph epoch is
// NOT part of the key. Instead every lookup revalidates the stored entry
// through a caller-supplied validate function — typically "is the graph
// epoch unchanged, or can the entry's subgraph fingerprint prove no
// relevant write happened" (see graph.CheckFingerprint). A stale verdict
// drops the entry and the lookup proceeds as a miss; singleflight waiters
// revalidate shared results too, so a flight that resolved after a
// relevant write is never served stale. EvictStale's role is taken by
// Revalidate, a bounded sweep applying the same verdicts.
//
// The cache is value-generic so it carries compact result slices without
// importing the packages that define them (no dependency cycles with the
// engine layer). Stored values are shared between the cache and every
// caller: treat them as immutable.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// numShards spreads keys over independently locked LRUs so concurrent
// lookups from batch workers do not serialize on one mutex. Must be a
// power of two.
const numShards = 16

// Key identifies one cached recommendation result. Freshness is NOT part
// of the key — entries are revalidated on every lookup (see Verdict) —
// so a result's identity survives graph writes that cannot affect it.
// Opts is the canonical encoding of the request's option set
// (core.Request.OptionsKey) — "" for the plain (user, k) query — so two
// requests that differ only in per-request options can never share an
// entry: Key is compared structurally by the shard maps, and the encoding
// is exact, not a lossy hash.
type Key struct {
	User int
	Algo string
	K    int
	Opts string
}

// hash mixes the key fields FNV-1a style into a shard selector.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 16 {
			h ^= (x >> s) & 0xffff
			h *= prime64
		}
	}
	mix(uint64(k.User))
	mix(uint64(k.K))
	for i := 0; i < len(k.Algo); i++ {
		h ^= uint64(k.Algo[i])
		h *= prime64
	}
	for i := 0; i < len(k.Opts); i++ {
		h ^= uint64(k.Opts[i])
		h *= prime64
	}
	return h
}

// Verdict is a validate function's ruling on one stored entry.
type Verdict int

const (
	// VerdictFresh: the entry is current (typically: the graph epoch has
	// not moved since it was built). Served as a plain hit.
	VerdictFresh Verdict = iota
	// VerdictFreshValidated: the epoch moved but the entry's fingerprint
	// PROVED no write touched its dependency set — a hit the old
	// epoch-keyed design would have missed. Served as a hit and counted
	// in Stats.FingerprintHits.
	VerdictFreshValidated
	// VerdictStale: the entry cannot be proven current (epoch moved and no
	// fingerprint evidence either way). Dropped; the lookup misses.
	VerdictStale
	// VerdictStaleFingerprint: the journal scan found a write plausibly
	// inside the entry's subgraph. Dropped; counted in
	// Stats.FingerprintRejects.
	VerdictStaleFingerprint
	// VerdictStaleOverflow: too many writes since the entry was built for
	// the journal to prove anything — soundly degraded to stale. Dropped;
	// counted in FingerprintRejects and JournalOverflows.
	VerdictStaleOverflow
)

// fresh reports whether the verdict allows serving the entry.
func (v Verdict) fresh() bool { return v == VerdictFresh || v == VerdictFreshValidated }

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 // lookups served from a stored entry
	Misses    uint64 // lookups that ran the compute function
	Shared    uint64 // lookups that piggybacked on an in-flight compute
	Evictions uint64 // entries dropped (capacity pressure, stale verdicts, Revalidate)

	// Precision-invalidation counters (see Verdict).
	FingerprintHits    uint64 // hits proven fresh by fingerprint despite epoch movement
	FingerprintRejects uint64 // entries dropped on fingerprint/overflow evidence
	JournalOverflows   uint64 // rejects caused by journal overflow specifically

	Size     int // entries currently stored
	Capacity int // maximum entries
}

// Cache is a sharded LRU with revalidating lookups and singleflight
// deduplication. The zero value is not usable; construct with New. All
// methods are safe for concurrent use.
type Cache[V any] struct {
	shards   [numShards]shard[V]
	capacity int
}

type shard[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	inflight map[Key]*flight[V]

	hits, misses, shared, evictions uint64
	fpHits, fpRejects, jOverflows   uint64
}

type entry[V any] struct {
	key Key
	val V
}

// flight is one in-progress compute that late arrivals wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache holding up to capacity entries across all shards.
// capacity <= 0 means 4096.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = 4096
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache[V]{capacity: perShard * numShards}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			capacity: perShard,
			entries:  make(map[Key]*list.Element),
			lru:      list.New(),
			inflight: make(map[Key]*flight[V]),
		}
	}
	return c
}

// Capacity returns the maximum number of entries.
func (c *Cache[V]) Capacity() int { return c.capacity }

func (c *Cache[V]) shard(k Key) *shard[V] {
	return &c.shards[k.hash()&(numShards-1)]
}

// verdictOf runs validate against a stored value; a nil validate accepts
// everything (an unvalidated cache behaves like a plain LRU).
func verdictOf[V any](validate func(*V) Verdict, v *V) Verdict {
	if validate == nil {
		return VerdictFresh
	}
	return validate(v)
}

// serveLocked books a fresh verdict as a hit. Caller holds s.mu.
func (s *shard[V]) serveLocked(el *list.Element, vd Verdict) {
	s.lru.MoveToFront(el)
	s.hits++
	if vd == VerdictFreshValidated {
		s.fpHits++
	}
}

// dropLocked removes a stale entry and books its verdict. Caller holds
// s.mu.
func (s *shard[V]) dropLocked(el *list.Element, vd Verdict) {
	e := el.Value.(*entry[V])
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.evictions++
	switch vd {
	case VerdictStaleFingerprint:
		s.fpRejects++
	case VerdictStaleOverflow:
		s.fpRejects++
		s.jOverflows++
	}
}

// Get returns the stored value for k without revalidation, marking it most
// recently used. Callers that can judge freshness should use GetValidated.
func (c *Cache[V]) Get(k Key) (V, bool) {
	return c.GetValidated(k, nil)
}

// GetValidated returns the stored value for k if validate rules it fresh,
// marking it most recently used; a stale entry is dropped and the lookup
// reports a miss. validate runs under the shard lock — it must be cheap
// and must not call back into the cache.
func (c *Cache[V]) GetValidated(k Key, validate func(*V) Verdict) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*entry[V])
		if vd := verdictOf(validate, &e.val); vd.fresh() {
			s.serveLocked(el, vd)
			return e.val, true
		} else {
			s.dropLocked(el, vd)
		}
	}
	s.misses++
	var zero V
	return zero, false
}

// Put stores v under k (unconditionally, marking it most recently used).
func (c *Cache[V]) Put(k Key, v V) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(k, v)
}

func (s *shard[V]) putLocked(k Key, v V) {
	if el, ok := s.entries[k]; ok {
		el.Value.(*entry[V]).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.entries[k] = s.lru.PushFront(&entry[V]{key: k, val: v})
	for s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry[V]).key)
		s.evictions++
	}
}

// Do returns the cached value for k (when validate rules it fresh), or
// computes it exactly once: when several goroutines ask for the same
// absent key concurrently, one runs compute and the rest block until it
// finishes (singleflight). fromCache reports whether the caller avoided
// computing — a stored hit or a shared in-flight result. Errors are
// returned to every waiter and are not cached, so a failed compute is
// retried by the next lookup.
func (c *Cache[V]) Do(k Key, validate func(*V) Verdict, compute func() (V, error)) (v V, fromCache bool, err error) {
	return c.DoCtx(nil, k, validate, compute)
}

// DoCtx is Do with a caller context governing the WAIT, not the
// compute: a piggybacked waiter whose own ctx is cancelled stops
// waiting and gets its ctx error immediately, instead of blocking until
// the leader's flight resolves. The leader itself runs compute to
// completion regardless (compute may observe its own context
// internally); a nil ctx waits unconditionally.
//
// Shared flight results are revalidated before being served: a waiter that
// joined a compute started before a relevant write retries the lookup
// (the leader stored the now-stale entry; the retry's validation drops it
// and starts a fresh flight) instead of returning a result the validate
// function would reject. Waiters therefore never observe staleness the
// stored-entry path would have caught.
func (c *Cache[V]) DoCtx(ctx context.Context, k Key, validate func(*V) Verdict, compute func() (V, error)) (v V, fromCache bool, err error) {
	s := c.shard(k)
	for {
		s.mu.Lock()
		if el, ok := s.entries[k]; ok {
			e := el.Value.(*entry[V])
			if vd := verdictOf(validate, &e.val); vd.fresh() {
				s.serveLocked(el, vd)
				v = e.val
				s.mu.Unlock()
				return v, true, nil
			} else {
				s.dropLocked(el, vd)
			}
		}
		if fl, ok := s.inflight[k]; ok {
			s.shared++
			s.mu.Unlock()
			if ctx != nil {
				select {
				case <-fl.done:
				case <-ctx.Done():
					var zero V
					return zero, true, ctx.Err()
				}
			} else {
				<-fl.done
			}
			if fl.err != nil {
				return fl.val, true, fl.err
			}
			if verdictOf(validate, &fl.val).fresh() {
				return fl.val, true, nil
			}
			// The flight resolved stale (a relevant write landed while it
			// ran). Retry: the next iteration drops the leader's stored
			// entry and computes fresh.
			continue
		}
		fl := &flight[V]{done: make(chan struct{})}
		s.inflight[k] = fl
		s.misses++
		s.mu.Unlock()

		// The deferred cleanup runs even when compute panics (the panic keeps
		// propagating to the caller): the flight must be deregistered and done
		// closed, or every later lookup of this key would block forever.
		completed := false
		defer func() {
			if !completed {
				fl.err = fmt.Errorf("cache: compute for %+v panicked", k)
			}
			s.mu.Lock()
			delete(s.inflight, k)
			if fl.err == nil {
				s.putLocked(k, fl.val)
			}
			s.mu.Unlock()
			close(fl.done)
		}()
		fl.val, fl.err = compute()
		completed = true
		return fl.val, false, fl.err
	}
}

// evictScanCap bounds how many entries one Revalidate call examines per
// shard, so the sweep cannot hold a shard lock for an O(entries) scan
// while serving lookups wait behind it. 1024 covers the whole shard at
// the default capacity (4096/16 = 256 per shard) in a single call.
const evictScanCap = 1024

// Revalidate sweeps stored entries through validate, dropping every entry
// ruled stale, and returns how many were dropped — the eager companion to
// the per-lookup revalidation. Each call scans at most evictScanCap
// entries per shard, from the cold (LRU) end where stale entries
// accumulate: stale keys fail their next lookup anyway, so they only sink
// while fresh entries are re-touched toward the front. On caches larger
// than numShards×1024 one call is therefore a bounded partial sweep;
// periodic callers converge, and anything missed is caught at lookup time
// or ages out of the LRU naturally.
func (c *Cache[V]) Revalidate(validate func(*V) Verdict) int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		scanned := 0
		for el := s.lru.Back(); el != nil && scanned < evictScanCap; scanned++ {
			prev := el.Prev()
			e := el.Value.(*entry[V])
			if vd := verdictOf(validate, &e.val); !vd.fresh() {
				s.dropLocked(el, vd)
				dropped++
			}
			el = prev
		}
		s.mu.Unlock()
	}
	return dropped
}

// Purge removes every entry without touching the hit/miss counters.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[Key]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-shard counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{Capacity: c.capacity}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Shared += s.shared
		st.Evictions += s.evictions
		st.FingerprintHits += s.fpHits
		st.FingerprintRejects += s.fpRejects
		st.JournalOverflows += s.jOverflows
		st.Size += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
