package sparse

import (
	"fmt"
	"sort"
)

// CSC is an immutable compressed-sparse-column matrix — the
// column-oriented twin of CSR, efficient for "who rated this item"
// traversals (per-item rating lists) where CSR favors per-user rows.
type CSC struct {
	rows, cols int
	colPtr     []int // length cols+1
	rowIdx     []int // length nnz, strictly increasing within a column
	vals       []float64
}

// ToCSC compiles a COO builder into CSC form, summing duplicates and
// dropping zero-sum entries, mirroring ToCSR.
func (c *COO) ToCSC() *CSC {
	type key struct{ r, c int }
	agg := make(map[key]float64, len(c.entries))
	for _, e := range c.entries {
		agg[key{e.Row, e.Col}] += e.Val
	}
	compact := make([]Entry, 0, len(agg))
	for k, v := range agg {
		if v != 0 {
			compact = append(compact, Entry{Row: k.r, Col: k.c, Val: v})
		}
	}
	sort.Slice(compact, func(a, b int) bool {
		if compact[a].Col != compact[b].Col {
			return compact[a].Col < compact[b].Col
		}
		return compact[a].Row < compact[b].Row
	})
	m := &CSC{
		rows:   c.rows,
		cols:   c.cols,
		colPtr: make([]int, c.cols+1),
		rowIdx: make([]int, len(compact)),
		vals:   make([]float64, len(compact)),
	}
	for i, e := range compact {
		m.colPtr[e.Col+1]++
		m.rowIdx[i] = e.Row
		m.vals[i] = e.Val
	}
	for j := 0; j < c.cols; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	return m
}

// ToCSC converts a CSR matrix into CSC form (an explicit transpose-layout
// change; values are identical).
func (m *CSR) ToCSC() *CSC {
	out := &CSC{
		rows:   m.rows,
		cols:   m.cols,
		colPtr: make([]int, m.cols+1),
		rowIdx: make([]int, len(m.vals)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, j := range m.colIdx {
		out.colPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		out.colPtr[j+1] += out.colPtr[j]
	}
	next := make([]int, m.cols)
	copy(next, out.colPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.colIdx[k]
			pos := next[j]
			out.rowIdx[pos] = i
			out.vals[pos] = m.vals[k]
			next[j]++
		}
	}
	return out
}

// Dims returns (rows, cols).
func (m *CSC) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the stored nonzero count.
func (m *CSC) NNZ() int { return len(m.vals) }

// Col returns the row indices and values of column j; the slices alias
// internal storage.
func (m *CSC) Col(j int) (rows []int, vals []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: CSC.Col(%d) out of bounds for %d cols", j, m.cols))
	}
	lo, hi := m.colPtr[j], m.colPtr[j+1]
	return m.rowIdx[lo:hi], m.vals[lo:hi]
}

// ColNNZ returns the nonzero count of column j.
func (m *CSC) ColNNZ(j int) int { return m.colPtr[j+1] - m.colPtr[j] }

// ColSum returns the sum of column j's values.
func (m *CSC) ColSum(j int) float64 {
	_, vals := m.Col(j)
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// At returns element (i, j), zero if absent.
func (m *CSC) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: CSC.At(%d, %d) out of bounds for %dx%d", i, j, m.rows, m.cols))
	}
	rows, vals := m.Col(j)
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return vals[k]
	}
	return 0
}

// MulVec computes y = M·x column-wise: y accumulates x[j]·col_j.
func (m *CSC) MulVec(x, y []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("sparse: CSC.MulVec shape mismatch: M is %dx%d, x %d, y %d",
			m.rows, m.cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		lo, hi := m.colPtr[j], m.colPtr[j+1]
		for k := lo; k < hi; k++ {
			y[m.rowIdx[k]] += m.vals[k] * xj
		}
	}
}

// ToCSR converts back to row-compressed form.
func (m *CSC) ToCSR() *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: make([]int, m.rows+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, i := range m.rowIdx {
		out.rowPtr[i+1]++
	}
	for i := 0; i < m.rows; i++ {
		out.rowPtr[i+1] += out.rowPtr[i]
	}
	next := make([]int, m.rows)
	copy(next, out.rowPtr[:m.rows])
	for j := 0; j < m.cols; j++ {
		lo, hi := m.colPtr[j], m.colPtr[j+1]
		for k := lo; k < hi; k++ {
			i := m.rowIdx[k]
			pos := next[i]
			out.colIdx[pos] = j
			out.vals[pos] = m.vals[k]
			next[i]++
		}
	}
	return out
}
