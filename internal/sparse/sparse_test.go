package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func denseEqual(a, b [][]float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestCOOToCSRBasics(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(2, 3, 5)
	coo.Add(0, 1, 3) // duplicate, should sum to 5
	coo.Add(1, 0, 0) // explicit zero, should be dropped
	m := coo.ToCSR()
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("dims %dx%d, want 3x4", r, c)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz %d, want 2", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5 (duplicates summed)", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %v, want 0 (explicit zero dropped)", got)
	}
	if got := m.At(2, 3); got != 5 {
		t.Fatalf("At(2,3) = %v, want 5", got)
	}
}

func TestCOOCancellingDuplicatesDropped(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1.5)
	coo.Add(0, 0, -1.5)
	m := coo.ToCSR()
	if m.NNZ() != 0 {
		t.Fatalf("cancelled entry retained, nnz=%d", m.NNZ())
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Add did not panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestDenseRoundTrip(t *testing.T) {
	d := [][]float64{
		{1, 0, 2},
		{0, 0, 0},
		{3, 4, 0},
	}
	m := NewCSRFromDense(d)
	if !denseEqual(m.ToDense(), d, 0) {
		t.Fatalf("dense round trip mismatch: %v", m.ToDense())
	}
	if m.NNZ() != 4 {
		t.Fatalf("nnz %d, want 4", m.NNZ())
	}
}

func TestRowAccess(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{0, 7, 0, 9},
		{0, 0, 0, 0},
	})
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 7 || vals[1] != 9 {
		t.Fatalf("Row(0) = %v %v", cols, vals)
	}
	if m.RowNNZ(1) != 0 {
		t.Fatalf("RowNNZ(1) = %d, want 0", m.RowNNZ(1))
	}
	if m.RowSum(0) != 16 {
		t.Fatalf("RowSum(0) = %v, want 16", m.RowSum(0))
	}
	if m.Sum() != 16 {
		t.Fatalf("Sum() = %v, want 16", m.Sum())
	}
}

func TestMulVec(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{1, 2},
		{0, 3},
		{4, 0},
	})
	x := []float64{10, 100}
	y := make([]float64, 3)
	m.MulVec(x, y)
	want := []float64{210, 300, 40}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{1, 2},
		{0, 3},
		{4, 0},
	})
	x := []float64{1, 10, 100}
	y := make([]float64, 2)
	m.MulVecT(x, y)
	// Mᵀ·x = [1*1 + 4*100, 2*1 + 3*10] = [401, 32]
	if y[0] != 401 || y[1] != 32 {
		t.Fatalf("MulVecT = %v, want [401 32]", y)
	}
}

func TestTranspose(t *testing.T) {
	d := [][]float64{
		{1, 0, 2, 0},
		{0, 3, 0, 0},
		{4, 0, 5, 6},
	}
	mT := NewCSRFromDense(d).Transpose()
	if r, c := mT.Dims(); r != 4 || c != 3 {
		t.Fatalf("transpose dims %dx%d", r, c)
	}
	want := [][]float64{
		{1, 0, 4},
		{0, 3, 0},
		{2, 0, 5},
		{0, 0, 6},
	}
	if !denseEqual(mT.ToDense(), want, 0) {
		t.Fatalf("transpose = %v", mT.ToDense())
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		coo := NewCOO(rows, cols)
		for k := 0; k < rng.Intn(30); k++ {
			coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := coo.ToCSR()
		if !m.Equal(m.Transpose().Transpose(), 0) {
			t.Fatalf("transpose not an involution on trial %d", trial)
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		coo := NewCOO(rows, cols)
		for k := 0; k < rng.Intn(40); k++ {
			coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := coo.ToCSR()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, cols)
		m.MulVecT(x, y1)
		y2 := make([]float64, cols)
		m.Transpose().MulVec(x, y2)
		for j := range y1 {
			if math.Abs(y1[j]-y2[j]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT[%d]=%v but transpose MulVec=%v", trial, j, y1[j], y2[j])
			}
		}
	}
}

func TestRowNormalized(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{2, 2},
		{0, 0},
		{1, 3},
	}).RowNormalized()
	if got := m.At(0, 0); got != 0.5 {
		t.Fatalf("normalized (0,0) = %v", got)
	}
	if got := m.At(2, 1); got != 0.75 {
		t.Fatalf("normalized (2,1) = %v", got)
	}
	if m.RowSum(1) != 0 {
		t.Fatalf("empty row acquired mass: %v", m.RowSum(1))
	}
	if s := m.RowSum(2); math.Abs(s-1) > 1e-15 {
		t.Fatalf("row 2 sums to %v", s)
	}
}

func TestScale(t *testing.T) {
	m := NewCSRFromDense([][]float64{{1, 2}}).Scale(-3)
	if m.At(0, 0) != -3 || m.At(0, 1) != -6 {
		t.Fatalf("Scale gave %v", m.ToDense())
	}
}

func TestSubmatrixRows(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{1, 0},
		{0, 2},
		{3, 4},
	})
	s := m.SubmatrixRows([]int{2, 0})
	want := [][]float64{
		{3, 4},
		{1, 0},
	}
	if !denseEqual(s.ToDense(), want, 0) {
		t.Fatalf("SubmatrixRows = %v", s.ToDense())
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewCSRFromDense([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	s := m.Submatrix([]int{0, 2}, []int{2, 0})
	want := [][]float64{
		{3, 1},
		{9, 7},
	}
	if !denseEqual(s.ToDense(), want, 0) {
		t.Fatalf("Submatrix = %v", s.ToDense())
	}
}

func TestVec(t *testing.T) {
	v := NewVec(5, []int{1, 3}, []float64{2, -4})
	if v.Len() != 5 || v.NNZ() != 2 {
		t.Fatalf("Len/NNZ = %d/%d", v.Len(), v.NNZ())
	}
	if v.At(1) != 2 || v.At(3) != -4 || v.At(0) != 0 {
		t.Fatalf("At values wrong")
	}
	if got := v.Dot([]float64{1, 1, 1, 1, 1}); got != -2 {
		t.Fatalf("Dot = %v, want -2", got)
	}
	if got := v.Norm2(); math.Abs(got-math.Sqrt(20)) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestVecValidation(t *testing.T) {
	for _, tc := range []struct {
		idx []int
		val []float64
	}{
		{[]int{3, 1}, []float64{1, 1}}, // not increasing
		{[]int{1, 1}, []float64{1, 1}}, // duplicate
		{[]int{5}, []float64{1}},       // out of range
		{[]int{1}, []float64{1, 2}},    // length mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewVec(%v) did not panic", tc.idx)
				}
			}()
			NewVec(5, tc.idx, tc.val)
		}()
	}
}

// quickMatrix builds a reproducible random CSR from fuzz bytes.
func quickMatrix(raw []uint8, rows, cols int) *CSR {
	coo := NewCOO(rows, cols)
	for k := 0; k+2 < len(raw); k += 3 {
		i := int(raw[k]) % rows
		j := int(raw[k+1]) % cols
		v := float64(int(raw[k+2])) - 128
		coo.Add(i, j, v)
	}
	return coo.ToCSR()
}

func TestQuickRowPtrConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		m := quickMatrix(raw, 7, 5)
		total := 0
		for i := 0; i < 7; i++ {
			cols, vals := m.Row(i)
			if len(cols) != len(vals) {
				return false
			}
			for k := 1; k < len(cols); k++ {
				if cols[k] <= cols[k-1] {
					return false // columns must be strictly increasing
				}
			}
			total += len(cols)
		}
		return total == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDenseRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		m := quickMatrix(raw, 6, 6)
		return m.Equal(NewCSRFromDense(m.ToDense()), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposePreservesSum(t *testing.T) {
	f := func(raw []uint8) bool {
		m := quickMatrix(raw, 5, 9)
		return math.Abs(m.Sum()-m.Transpose().Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 5000
	coo := NewCOO(n, n)
	for k := 0; k < 20*n; k++ {
		coo.Add(rng.Intn(n), rng.Intn(n), rng.Float64())
	}
	m := coo.ToCSR()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}
