package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSC(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(2, 1, 3)
	coo.Add(0, 1, 1) // duplicate sums
	coo.Add(1, 3, 4)
	m := coo.ToCSC()
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz %d", m.NNZ())
	}
	rows, vals := m.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 3 || vals[1] != 3 {
		t.Fatalf("col 1 = %v %v", rows, vals)
	}
	if m.ColNNZ(0) != 0 || m.ColNNZ(3) != 1 {
		t.Fatal("ColNNZ wrong")
	}
	if m.ColSum(1) != 6 {
		t.Fatalf("ColSum %v", m.ColSum(1))
	}
	if m.At(1, 3) != 4 || m.At(0, 0) != 0 {
		t.Fatal("At wrong")
	}
}

func TestCSRToCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		coo := NewCOO(rows, cols)
		for k := 0; k < rng.Intn(40); k++ {
			coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		csr := coo.ToCSR()
		back := csr.ToCSC().ToCSR()
		if !csr.Equal(back, 0) {
			t.Fatalf("trial %d: CSR->CSC->CSR not identity", trial)
		}
	}
}

func TestCSCMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		coo := NewCOO(rows, cols)
		for k := 0; k < rng.Intn(60); k++ {
			coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		csr := coo.ToCSR()
		csc := coo.ToCSC()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, rows)
		y2 := make([]float64, rows)
		csr.MulVec(x, y1)
		csc.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				t.Fatalf("trial %d: CSC MulVec[%d] = %v vs CSR %v", trial, i, y2[i], y1[i])
			}
		}
	}
}

func TestCSCBoundsPanics(t *testing.T) {
	m := NewCOO(2, 2).ToCSC()
	for _, fn := range []func(){
		func() { m.Col(-1) },
		func() { m.Col(2) },
		func() { m.At(0, 5) },
		func() { m.MulVec([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuickCSCColumnOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		coo := NewCOO(7, 5)
		for k := 0; k+2 < len(raw); k += 3 {
			coo.Add(int(raw[k])%7, int(raw[k+1])%5, float64(raw[k+2])+1)
		}
		m := coo.ToCSC()
		total := 0
		for j := 0; j < 5; j++ {
			rows, _ := m.Col(j)
			for k := 1; k < len(rows); k++ {
				if rows[k] <= rows[k-1] {
					return false
				}
			}
			total += len(rows)
		}
		return total == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCSCSumsMatchCSR(t *testing.T) {
	f := func(raw []uint8) bool {
		coo := NewCOO(6, 6)
		for k := 0; k+2 < len(raw); k += 3 {
			coo.Add(int(raw[k])%6, int(raw[k+1])%6, float64(int(raw[k+2]))-100)
		}
		csr := coo.ToCSR()
		csc := coo.ToCSC()
		colSums := 0.0
		for j := 0; j < 6; j++ {
			colSums += csc.ColSum(j)
		}
		return math.Abs(colSums-csr.Sum()) < 1e-9 && csc.NNZ() == csr.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
