// Package sparse implements the hand-rolled sparse matrix structures that
// underpin every graph and factor model in this library: coordinate-format
// builders (COO), compressed sparse row/column matrices (CSR/CSC), and the
// vector kernels (matvec, transpose-matvec, row slicing) the random-walk and
// SVD code needs.
//
// The Go ecosystem has no standard sparse package, so these are implemented
// from scratch on plain slices. All matrices are immutable after
// construction; builders are the mutable entry point.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Entry is a single (row, column, value) coordinate.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format builder for sparse matrices. Duplicate
// coordinates are summed when the matrix is compiled to CSR/CSC.
type COO struct {
	rows, cols int
	entries    []Entry
}

// NewCOO creates an empty rows×cols coordinate builder.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewCOO(%d, %d) negative dimension", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Dims returns the (rows, cols) shape.
func (c *COO) Dims() (int, int) { return c.rows, c.cols }

// NNZ returns the number of stored entries (duplicates counted separately).
func (c *COO) NNZ() int { return len(c.entries) }

// Add appends value v at (i, j). Zero values are kept so callers can encode
// explicit zeros; they are dropped during compilation.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO.Add(%d, %d) out of bounds for %dx%d", i, j, c.rows, c.cols))
	}
	c.entries = append(c.entries, Entry{Row: i, Col: j, Val: v})
}

// Entries returns a copy of the raw coordinate list.
func (c *COO) Entries() []Entry {
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// CSR is an immutable compressed-sparse-row matrix. Within each row, column
// indices are strictly increasing and values are the (deduplicated) sums of
// the COO entries. Zero-sum entries are dropped.
type CSR struct {
	rows, cols int
	rowPtr     []int // length rows+1
	colIdx     []int // length nnz
	vals       []float64
}

// ToCSR compiles the builder into a CSR matrix, summing duplicates and
// dropping entries whose summed value is exactly zero.
func (c *COO) ToCSR() *CSR {
	type key struct{ r, c int }
	// Deduplicate with a map first (entry order in COO is arbitrary).
	agg := make(map[key]float64, len(c.entries))
	for _, e := range c.entries {
		agg[key{e.Row, e.Col}] += e.Val
	}
	compact := make([]Entry, 0, len(agg))
	for k, v := range agg {
		if v != 0 {
			compact = append(compact, Entry{Row: k.r, Col: k.c, Val: v})
		}
	}
	sort.Slice(compact, func(a, b int) bool {
		if compact[a].Row != compact[b].Row {
			return compact[a].Row < compact[b].Row
		}
		return compact[a].Col < compact[b].Col
	})
	m := &CSR{
		rows:   c.rows,
		cols:   c.cols,
		rowPtr: make([]int, c.rows+1),
		colIdx: make([]int, len(compact)),
		vals:   make([]float64, len(compact)),
	}
	for i, e := range compact {
		m.rowPtr[e.Row+1]++
		m.colIdx[i] = e.Col
		m.vals[i] = e.Val
	}
	for r := 0; r < c.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewCSRFromDense builds a CSR matrix from a dense row-major [][]float64.
// Intended for tests and small worked examples.
func NewCSRFromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	coo := NewCOO(rows, cols)
	for i, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for j, v := range row {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}

// NewCSRView wraps pre-built CSR storage without copying it. The slices are
// aliased, not owned: the caller promises they already satisfy the CSR
// invariants (rowPtr of length rows+1, non-decreasing, strictly increasing
// column indices within each row) and remain unmodified for the lifetime of
// the returned matrix. This is the zero-copy entry point for scratch-backed
// per-query submatrices (subgraph extraction); everything else should go
// through COO.ToCSR.
func NewCSRView(rows, cols int, rowPtr, colIdx []int, vals []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewCSRView(%d, %d) negative dimension", rows, cols))
	}
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: NewCSRView rowPtr length %d, want %d", len(rowPtr), rows+1))
	}
	if len(colIdx) != len(vals) {
		panic(fmt.Sprintf("sparse: NewCSRView colIdx length %d != vals length %d", len(colIdx), len(vals)))
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// Dims returns the (rows, cols) shape.
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// Row returns the column indices and values of row i. The returned slices
// alias internal storage and must not be modified.
//
//ltr:allocfree
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: CSR.Row(%d) out of bounds for %d rows", i, m.rows))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowNNZ returns the number of nonzeros in row i.
//
//ltr:allocfree
func (m *CSR) RowNNZ(i int) int {
	return m.rowPtr[i+1] - m.rowPtr[i]
}

// At returns the value at (i, j), zero if not stored. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: CSR.At(%d, %d) out of bounds for %dx%d", i, j, m.rows, m.cols))
	}
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// RowSum returns the sum of values in row i (the weighted degree when the
// matrix is a graph adjacency).
func (m *CSR) RowSum(i int) float64 {
	_, vals := m.Row(i)
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// Sum returns the sum of all stored values.
func (m *CSR) Sum() float64 {
	s := 0.0
	for _, v := range m.vals {
		s += v
	}
	return s
}

// MulVec computes y = M·x. y must have length rows; x length cols.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch: M is %dx%d, x %d, y %d",
			m.rows, m.cols, len(x), len(y)))
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		acc := 0.0
		for k := lo; k < hi; k++ {
			acc += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = acc
	}
}

// MulVecT computes y = Mᵀ·x without materializing the transpose.
// x must have length rows; y length cols. y is zeroed first.
func (m *CSR) MulVecT(x, y []float64) {
	if len(x) != m.rows || len(y) != m.cols {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch: M is %dx%d, x %d, y %d",
			m.rows, m.cols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			y[m.colIdx[k]] += m.vals[k] * xi
		}
	}
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, j := range m.colIdx {
		t.rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		t.rowPtr[j+1] += t.rowPtr[j]
	}
	next := make([]int, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.colIdx[k]
			pos := next[j]
			t.colIdx[pos] = i
			t.vals[pos] = m.vals[k]
			next[j]++
		}
	}
	return t
}

// Scale returns a new CSR with every value multiplied by s.
func (m *CSR) Scale(s float64) *CSR {
	out := m.clone()
	for i := range out.vals {
		out.vals[i] *= s
	}
	return out
}

// RowNormalized returns a new CSR whose rows each sum to 1 (rows that sum
// to zero are left empty). This is the random-walk transition matrix P of
// Eq. 1 when applied to a graph adjacency matrix.
func (m *CSR) RowNormalized() *CSR {
	out := m.clone()
	for i := 0; i < m.rows; i++ {
		lo, hi := out.rowPtr[i], out.rowPtr[i+1]
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += out.vals[k]
		}
		if sum == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			out.vals[k] /= sum
		}
	}
	return out
}

func (m *CSR) clone() *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: make([]int, len(m.rowPtr)),
		colIdx: make([]int, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	copy(out.rowPtr, m.rowPtr)
	copy(out.colIdx, m.colIdx)
	copy(out.vals, m.vals)
	return out
}

// ToDense materializes the matrix as dense row-major storage. For tests and
// small systems only.
func (m *CSR) ToDense() [][]float64 {
	d := make([][]float64, m.rows)
	for i := range d {
		d[i] = make([]float64, m.cols)
		cols, vals := m.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

// Equal reports whether two matrices have identical shape and entries
// within tol.
func (m *CSR) Equal(o *CSR, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols || len(m.vals) != len(o.vals) {
		return false
	}
	for i := range m.rowPtr {
		if m.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for k := range m.vals {
		if m.colIdx[k] != o.colIdx[k] || math.Abs(m.vals[k]-o.vals[k]) > tol {
			return false
		}
	}
	return true
}

// SubmatrixRows returns the CSR restricted to the given rows (in the given
// order) with all columns retained. Used by subgraph extraction.
func (m *CSR) SubmatrixRows(rows []int) *CSR {
	nnz := 0
	for _, r := range rows {
		nnz += m.RowNNZ(r)
	}
	out := &CSR{
		rows:   len(rows),
		cols:   m.cols,
		rowPtr: make([]int, len(rows)+1),
		colIdx: make([]int, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for i, r := range rows {
		cols, vals := m.Row(r)
		out.colIdx = append(out.colIdx, cols...)
		out.vals = append(out.vals, vals...)
		out.rowPtr[i+1] = out.rowPtr[i] + len(cols)
	}
	return out
}

// Submatrix extracts the submatrix with the given row and column subsets,
// remapping indices to 0..len-1 in the given orders. This sits on the hot
// path of per-query subgraph extraction (Algorithm 1), so it builds the
// result directly in CSR form with a dense column map instead of going
// through a COO builder.
func (m *CSR) Submatrix(rows, cols []int) *CSR {
	colMap := make([]int, m.cols)
	for j := range colMap {
		colMap[j] = -1
	}
	for newJ, oldJ := range cols {
		colMap[oldJ] = newJ
	}
	out := &CSR{
		rows:   len(rows),
		cols:   len(cols),
		rowPtr: make([]int, len(rows)+1),
	}
	nnz := 0
	for _, oldI := range rows {
		nnz += m.RowNNZ(oldI)
	}
	out.colIdx = make([]int, 0, nnz)
	out.vals = make([]float64, 0, nnz)
	type pair struct {
		j int
		v float64
	}
	var scratch []pair
	for newI, oldI := range rows {
		cs, vs := m.Row(oldI)
		scratch = scratch[:0]
		for k, oldJ := range cs {
			if newJ := colMap[oldJ]; newJ >= 0 && vs[k] != 0 {
				scratch = append(scratch, pair{j: newJ, v: vs[k]})
			}
		}
		// Column order within a row follows the cols permutation, which is
		// arbitrary; restore the CSR invariant of increasing indices.
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].j < scratch[b].j })
		for _, p := range scratch {
			out.colIdx = append(out.colIdx, p.j)
			out.vals = append(out.vals, p.v)
		}
		out.rowPtr[newI+1] = len(out.colIdx)
	}
	return out
}

// Vec is a sparse vector keyed by index.
type Vec struct {
	n   int
	idx []int
	val []float64
}

// NewVec builds a sparse vector of logical length n from parallel
// index/value slices. Indices must be strictly increasing.
func NewVec(n int, idx []int, val []float64) *Vec {
	if len(idx) != len(val) {
		panic("sparse: NewVec index/value length mismatch")
	}
	for k, i := range idx {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("sparse: NewVec index %d out of range [0,%d)", i, n))
		}
		if k > 0 && idx[k-1] >= i {
			panic("sparse: NewVec indices must be strictly increasing")
		}
	}
	v := &Vec{n: n, idx: make([]int, len(idx)), val: make([]float64, len(val))}
	copy(v.idx, idx)
	copy(v.val, val)
	return v
}

// Len returns the logical length.
func (v *Vec) Len() int { return v.n }

// NNZ returns the number of stored entries.
func (v *Vec) NNZ() int { return len(v.idx) }

// Dot computes the dot product with a dense vector.
func (v *Vec) Dot(x []float64) float64 {
	if len(x) != v.n {
		panic("sparse: Vec.Dot length mismatch")
	}
	s := 0.0
	for k, i := range v.idx {
		s += v.val[k] * x[i]
	}
	return s
}

// At returns element i (zero if absent).
func (v *Vec) At(i int) float64 {
	k := sort.SearchInts(v.idx, i)
	if k < len(v.idx) && v.idx[k] == i {
		return v.val[k]
	}
	return 0
}

// Norm2 returns the Euclidean norm.
func (v *Vec) Norm2() float64 {
	s := 0.0
	for _, x := range v.val {
		s += x * x
	}
	return math.Sqrt(s)
}
