package shard

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"longtailrec/internal/persist"
	"longtailrec/internal/wal"
)

// durableFleet arms a test fleet with a WAL in a temp dir, returning the
// fleet, the log path and the checkpoint path.
func durableFleet(t *testing.T, n int, opts wal.BatchOptions) (*Fleet, string, string) {
	t.Helper()
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	ckptPath := filepath.Join(dir, "checkpoint.ltr")
	f := testFleet(t, n, false)
	l, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableDurability(l, opts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.CloseDurability() })
	return f, logPath, ckptPath
}

func TestFleetDurableApplyRating(t *testing.T) {
	f, logPath, _ := durableFleet(t, 2, wal.BatchOptions{})

	added, epoch, shardIdx, err := f.ApplyRating(0, 3, 4.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Error("new edge not reported as added")
	}
	if shardIdx != Assign(0, 2) {
		t.Errorf("written shard %d, want %d", shardIdx, Assign(0, 2))
	}
	if epoch != 1 {
		t.Errorf("written shard epoch = %d, want 1", epoch)
	}

	// Auto-grow admission through the durable path.
	if _, _, _, err := f.ApplyRating(6, 5, 2, true); err != nil {
		t.Fatal(err)
	}

	// Invalid writes are rejected BEFORE logging: the log must hold
	// exactly the two accepted records.
	if _, _, _, err := f.ApplyRating(99, 0, 1, false); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, _, _, err := f.ApplyRating(0, 0, -1, false); err == nil {
		t.Error("negative-weight write accepted")
	}
	f.CloseDurability()
	l, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Seq() - l.BaseSeq(); got != 2 {
		t.Errorf("log holds %d records, want 2 (rejected writes must not be logged)", got)
	}
}

func TestFleetDurableConcurrentWritersConverseEpochs(t *testing.T) {
	f, _, _ := durableFleet(t, 2, wal.BatchOptions{MaxBatch: 16})
	const writers = 24
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user, item := w%4, (w+1)%4
			_, _, _, err := f.ApplyRating(user, item, float64(w+1), false)
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	st := f.DurabilityStats()
	if !st.Enabled {
		t.Fatal("durability not reported enabled")
	}
	if st.DurableSeq != writers {
		t.Errorf("durable seq = %d, want %d (every acked write logged)", st.DurableSeq, writers)
	}
	if st.PendingBatch != 0 {
		t.Errorf("pending batch = %d after quiesce, want 0", st.PendingBatch)
	}
}

func TestFleetSnapshotRefreshConvergesShards(t *testing.T) {
	f, _, ckptPath := durableFleet(t, 2, wal.BatchOptions{})
	// User 0 lives on shard 0, user 1 on shard 1: each write lands on one
	// replica only, so before the refresh the replicas disagree.
	if _, _, _, err := f.ApplyRating(0, 3, 9, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.ApplyRating(1, 0, 8, false); err != nil {
		t.Fatal(err)
	}
	g0, g1 := f.Replica(0).Graph, f.Replica(1).Graph
	if w := g1.Weight(g1.UserNode(0), g1.ItemNode(3)); w == 9 {
		t.Fatal("foreign shard saw the write before any refresh")
	}

	if err := f.SnapshotRefresh(ckptPath); err != nil {
		t.Fatal(err)
	}

	// Converged: every replica holds both writes.
	if w := g1.Weight(g1.UserNode(0), g1.ItemNode(3)); w != 9 {
		t.Errorf("shard 1 weight(0,3) = %v after refresh, want 9", w)
	}
	if w := g0.Weight(g0.UserNode(1), g0.ItemNode(0)); w != 8 {
		t.Errorf("shard 0 weight(1,0) = %v after refresh, want 8", w)
	}

	// The log is truncated behind the checkpoint; the checkpoint names
	// the covered sequence.
	st := f.DurabilityStats()
	if st.LastCheckpointEpoch != f.Epoch() {
		t.Errorf("last checkpoint epoch = %d, want fleet epoch %d", st.LastCheckpointEpoch, f.Epoch())
	}
	var cp *persist.FleetCheckpoint
	if err := persist.LoadFile(ckptPath, func(r io.Reader) error {
		var err error
		cp, err = persist.LoadFleetCheckpoint(r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 2 {
		t.Errorf("checkpoint seq = %d, want 2", cp.Seq)
	}
	if len(cp.Shards) != 2 {
		t.Errorf("checkpoint shards = %d, want 2", len(cp.Shards))
	}
}

func TestFleetSnapshotRefreshAfterFlush(t *testing.T) {
	f, _, ckptPath := durableFleet(t, 2, wal.BatchOptions{})
	if _, _, _, err := f.ApplyRating(0, 3, 9, false); err != nil {
		t.Fatal(err)
	}
	f.FlushDurability()
	// Writes now fail closed...
	if _, _, _, err := f.ApplyRating(1, 0, 8, false); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("write after flush: err = %v, want ErrClosed", err)
	}
	// ...but the final checkpoint still works (graceful shutdown).
	if err := f.SnapshotRefresh(ckptPath); err != nil {
		t.Fatal(err)
	}
	g1 := f.Replica(1).Graph
	if w := g1.Weight(g1.UserNode(0), g1.ItemNode(3)); w != 9 {
		t.Errorf("final refresh did not converge: weight = %v, want 9", w)
	}
}

func TestFleetSnapshotRefreshRequiresDurability(t *testing.T) {
	f := testFleet(t, 2, false)
	err := f.SnapshotRefresh(filepath.Join(t.TempDir(), "ckpt"))
	if err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("refresh without durability: err = %v", err)
	}
	if st := f.DurabilityStats(); st.Enabled {
		t.Error("durability reported enabled on a plain fleet")
	}
	// Close paths are no-ops without durability.
	f.FlushDurability()
	if err := f.CloseDurability(); err != nil {
		t.Error(err)
	}
}

func TestFleetRecoveryViaApplyRecord(t *testing.T) {
	f, logPath, _ := durableFleet(t, 2, wal.BatchOptions{})
	if _, _, _, err := f.ApplyRating(0, 3, 9, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.ApplyRating(5, 4, 2, true); err != nil {
		t.Fatal(err)
	}
	wantEpoch := f.Epoch()
	f.CloseDurability()

	// A fresh fleet replays the log and matches the original exactly.
	f2 := testFleet(t, 2, false)
	l, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Replay(0, func(_ uint64, rec wal.Record) error {
		return f2.ApplyRecord(rec)
	}); err != nil {
		t.Fatal(err)
	}
	if f2.Epoch() != wantEpoch {
		t.Errorf("recovered epoch = %d, want %d", f2.Epoch(), wantEpoch)
	}
	gHome := f2.GraphFor(0)
	if w := gHome.Weight(gHome.UserNode(0), gHome.ItemNode(3)); w != 9 {
		t.Errorf("recovered weight(0,3) = %v, want 9", w)
	}
	gGrow := f2.GraphFor(5)
	if gGrow.NumUsers() != 6 || gGrow.NumItems() != 5 {
		t.Errorf("recovered grown universe = (%d,%d), want (6,5)",
			gGrow.NumUsers(), gGrow.NumItems())
	}
}
