package shard

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"longtailrec/internal/cache"
	"longtailrec/internal/core"
	"longtailrec/internal/graph"
)

func TestAssign(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for u := -5; u < 40; u++ {
			s := Assign(u, n)
			if s < 0 || s >= n {
				t.Fatalf("Assign(%d, %d) = %d out of range", u, n, s)
			}
			// Pure function: the assignment must never change, no matter
			// how many times (or when) it is asked — this is what makes
			// it survive auto-grow admissions.
			if again := Assign(u, n); again != s {
				t.Fatalf("Assign(%d, %d) unstable: %d then %d", u, n, s, again)
			}
		}
	}
	if Assign(5, 0) != 0 || Assign(5, -3) != 0 {
		t.Fatal("non-positive shard counts must map to shard 0")
	}
	// Dense ids spread over every shard.
	hit := make(map[int]bool)
	for u := 0; u < 16; u++ {
		hit[Assign(u, 4)] = true
	}
	if len(hit) != 4 {
		t.Fatalf("dense ids covered %d of 4 shards", len(hit))
	}
}

// testGraph builds one small replica graph: 4 users, 4 items, a ring.
func testGraph(t testing.TB) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromRatings(4, 4, []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3},
		{User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 2},
		{User: 2, Item: 2, Weight: 5}, {User: 2, Item: 3, Weight: 4},
		{User: 3, Item: 3, Weight: 3}, {User: 3, Item: 0, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testFleet(t testing.TB, n int, withCache bool) *Fleet {
	t.Helper()
	replicas := make([]*Replica, n)
	for i := range replicas {
		replicas[i] = &Replica{Graph: testGraph(t)}
		if withCache {
			replicas[i].Cache = cache.New[core.CacheEntry](64)
		}
	}
	f, err := NewFleet(replicas)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet([]*Replica{{Graph: nil}}); err == nil {
		t.Fatal("graphless replica accepted")
	}
}

func TestFleetApplyRatingRoutesOneShard(t *testing.T) {
	f := testFleet(t, 4, false)
	added, epoch, shardIdx, err := f.ApplyRating(2, 0, 4.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("new edge not reported as added")
	}
	if want := Assign(2, 4); shardIdx != want {
		t.Fatalf("write landed on shard %d, want %d", shardIdx, want)
	}
	if epoch != 1 {
		t.Fatalf("written shard epoch = %d, want 1", epoch)
	}
	for i, st := range f.ShardStats() {
		want := uint64(0)
		if i == shardIdx {
			want = 1
		}
		if st.Epoch != want {
			t.Fatalf("shard %d epoch = %d, want %d (blast radius leaked)", i, st.Epoch, want)
		}
	}
	if f.Epoch() != 1 {
		t.Fatalf("fleet epoch = %d, want 1", f.Epoch())
	}
	// The edge is visible on the written shard only: per-user routing
	// keeps read-your-own-writes, the other replicas are untouched.
	if w := f.GraphFor(2).Weight(f.GraphFor(2).UserNode(2), f.GraphFor(2).ItemNode(0)); w != 4.5 {
		t.Fatalf("written shard does not see the write: weight %v", w)
	}
	other := f.Replica((shardIdx + 1) % 4).Graph
	if w := other.Weight(other.UserNode(2), other.ItemNode(0)); w != 0 {
		t.Fatalf("unwritten shard saw the write: weight %v", w)
	}
}

func TestFleetUniverseAndMergedPopularity(t *testing.T) {
	f := testFleet(t, 4, false)
	base := f.Replica(0).Graph.ItemPopularity()

	// Two writes for item 0 land on two different shards; the merged
	// count must see both (max would see only one).
	if _, _, _, err := f.ApplyRating(1, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.ApplyRating(2, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	merged := f.MergedItemPopularity(base)
	if want := base[0] + 2; merged[0] != want {
		t.Fatalf("merged popularity of item 0 = %d, want %d", merged[0], want)
	}

	// Auto-grow on one shard only: the fleet universe is the union.
	if _, _, _, err := f.ApplyRating(5, 5, 3, true); err != nil { // shard 1 grows
		t.Fatal(err)
	}
	users, items := f.Universe()
	if users != 6 || items != 6 {
		t.Fatalf("fleet universe = (%d, %d), want (6, 6)", users, items)
	}
	merged = f.MergedItemPopularity(base)
	if len(merged) != 6 {
		t.Fatalf("merged popularity covers %d items, want 6", len(merged))
	}
	if merged[5] != 1 {
		t.Fatalf("grown item popularity = %d, want 1", merged[5])
	}
}

func TestFleetEvictStaleUsesOwnEpochs(t *testing.T) {
	f := testFleet(t, 2, true)
	rep0, rep1 := f.Replica(0), f.Replica(1)
	// One fingerprint-less entry per shard, built at each shard's current
	// epoch — these revalidate epoch-exactly.
	rep0.Cache.Put(cache.Key{User: 0, Algo: "AT", K: 5},
		core.CacheEntry{BuildEpoch: rep0.Graph.Epoch()})
	rep1.Cache.Put(cache.Key{User: 1, Algo: "AT", K: 5},
		core.CacheEntry{BuildEpoch: rep1.Graph.Epoch()})
	// A third entry on shard 0 whose fingerprint covers only item 1 — the
	// upcoming write (user 0, item 2) provably cannot touch it.
	survivor := core.CacheEntry{BuildEpoch: rep0.Graph.Epoch()}
	survivor.FP.Reset(rep0.Graph.WriteGen())
	survivor.FP.AddNode(rep0.Graph.ItemNode(1))
	rep0.Cache.Put(cache.Key{User: 2, Algo: "AT", K: 5}, survivor)
	// Bump shard 0's epoch only.
	if _, _, _, err := f.ApplyRating(0, 2, 1.5, false); err != nil {
		t.Fatal(err)
	}
	if dropped := f.EvictStale(); dropped != 1 {
		t.Fatalf("EvictStale dropped %d entries, want exactly shard 0's epoch-only 1", dropped)
	}
	if rep1.Cache.Len() != 1 {
		t.Fatal("shard 1's live entry was evicted against another shard's epoch")
	}
	if _, ok := rep0.Cache.Get(cache.Key{User: 2, Algo: "AT", K: 5}); !ok {
		t.Fatal("fingerprint-proven entry was evicted despite the write missing its subgraph")
	}
}

// stubRec is a per-shard RecommenderV2 double that records the users it
// served and answers with a response identifying itself.
type stubRec struct {
	name  string
	id    int
	errOn int // user id that fails; -1 disables

	mu    sync.Mutex
	users []int
}

func (s *stubRec) Name() string { return s.name }

func (s *stubRec) ScoreItems(u int) ([]float64, error) {
	return []float64{float64(s.id)}, nil
}

func (s *stubRec) Recommend(u, k int) ([]core.Scored, error) {
	resp, err := s.RecommendRequest(core.Request{User: u, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

func (s *stubRec) RecommendRequest(req core.Request) (core.Response, error) {
	if req.User == s.errOn {
		return core.Response{}, fmt.Errorf("stub shard %d: boom on user %d", s.id, req.User)
	}
	s.mu.Lock()
	s.users = append(s.users, req.User)
	s.mu.Unlock()
	return core.Response{
		Items: []core.Scored{{Item: req.User, Score: float64(s.id)}},
		Epoch: uint64(s.id),
		Algo:  s.name,
	}, nil
}

func newStubRouter(t testing.TB, n int) (*Router, []*stubRec) {
	t.Helper()
	stubs := make([]*stubRec, n)
	shards := make([]core.RecommenderV2, n)
	for i := range stubs {
		stubs[i] = &stubRec{name: "stub", id: i, errOn: -1}
		shards[i] = stubs[i]
	}
	r, err := NewRouter("stub", shards)
	if err != nil {
		t.Fatal(err)
	}
	return r, stubs
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter("", []core.RecommenderV2{&stubRec{errOn: -1}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewRouter("x", nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRouter("x", []core.RecommenderV2{nil}); err == nil {
		t.Fatal("nil shard accepted")
	}
}

func TestRouterRoutesByUser(t *testing.T) {
	r, stubs := newStubRouter(t, 4)
	for u := 0; u < 20; u++ {
		resp, err := r.RecommendRequest(core.Request{User: u, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int(resp.Epoch), Assign(u, 4); got != want {
			t.Fatalf("user %d served by shard %d, want %d", u, got, want)
		}
	}
	for i, st := range stubs {
		for _, u := range st.users {
			if Assign(u, 4) != i {
				t.Fatalf("shard %d served user %d (belongs to %d)", i, u, Assign(u, 4))
			}
		}
	}
}

func TestRouterBatchMergesInInputOrder(t *testing.T) {
	r, _ := newStubRouter(t, 4)
	// Shuffled, duplicated users across all shards.
	users := []int{7, 0, 3, 3, 10, 1, 6, 2, 9, 5, 4, 8, 0, 11}
	reqs := core.PlainRequests(users, 1)
	out, err := r.RecommendRequestBatch(reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(users) {
		t.Fatalf("got %d responses for %d requests", len(out), len(users))
	}
	for i, u := range users {
		want := core.Response{
			Items: []core.Scored{{Item: u, Score: float64(Assign(u, 4))}},
			Epoch: uint64(Assign(u, 4)),
			Algo:  "stub",
		}
		if !reflect.DeepEqual(out[i], want) {
			t.Fatalf("response %d (user %d) = %+v, want %+v", i, u, out[i], want)
		}
	}
}

func TestRouterBatchShardErrorAborts(t *testing.T) {
	r, stubs := newStubRouter(t, 4)
	stubs[2].errOn = 6 // user 6 lives on shard 2
	_, err := r.RecommendRequestBatch(core.PlainRequests([]int{0, 1, 6, 3}, 1), 0)
	if err == nil {
		t.Fatal("failing shard did not abort the batch")
	}
}

func TestRouterLegacySurfaces(t *testing.T) {
	r, _ := newStubRouter(t, 3)
	if r.Name() != "stub" || r.NumShards() != 3 {
		t.Fatalf("identity: name %q shards %d", r.Name(), r.NumShards())
	}
	scores, err := r.ScoreItems(5) // shard 2
	if err != nil || scores[0] != 2 {
		t.Fatalf("ScoreItems routed wrong: %v %v", scores, err)
	}
	items, err := r.Recommend(4, 1) // shard 1
	if err != nil || items[0].Score != 1 {
		t.Fatalf("Recommend routed wrong: %v %v", items, err)
	}
	lists, err := r.RecommendBatch([]int{0, 1, 2}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lists {
		if l[0].Score != float64(i%3) {
			t.Fatalf("batch entry %d served by shard %v, want %d", i, l[0].Score, i%3)
		}
	}
}
