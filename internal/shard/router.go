// Router: one recommender per replica presented as a single recommender.

package shard

import (
	"fmt"
	"runtime"
	"sync"

	"longtailrec/internal/core"
)

// Router fronts one per-shard recommender per replica (typically each
// shard's cache-wrapped engine over that shard's graph) as a single
// core.RecommenderV2 / BatchRecommenderV2: single-user surfaces route by
// user id through Assign, and the batch surface fans requests out to
// their shards concurrently, merging responses back in input order. The
// router adds nothing to the per-shard hot path — a routed request runs
// on exactly the same code the unsharded stack runs — so the no-options
// fast path keeps its allocation discipline within each shard.
type Router struct {
	algo   string
	shards []core.RecommenderV2
}

// NewRouter builds a router over the per-shard recommenders, indexed by
// shard (shards[i] serves users with Assign(u, len(shards)) == i). At
// least one shard is required and all must be non-nil.
func NewRouter(algo string, shards []core.RecommenderV2) (*Router, error) {
	if algo == "" {
		return nil, fmt.Errorf("shard: router needs an algorithm name")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("shard: router shard %d is nil", i)
		}
	}
	return &Router{algo: algo, shards: shards}, nil
}

// Name implements core.Recommender.
func (r *Router) Name() string { return r.algo }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns shard i's recommender (tests and diagnostics).
func (r *Router) Shard(i int) core.RecommenderV2 { return r.shards[i] }

// forUser returns the replica recommender serving user u.
func (r *Router) forUser(u int) core.RecommenderV2 {
	return r.shards[Assign(u, len(r.shards))]
}

// ScoreItems implements core.Recommender, delegating to the user's shard.
func (r *Router) ScoreItems(u int) ([]float64, error) {
	return r.forUser(u).ScoreItems(u)
}

// ScoreItemsCompact forwards the compact scoring path of the user's
// shard when it has one (the walk recommenders and the caching wrapper
// do).
func (r *Router) ScoreItemsCompact(u int) ([]core.ItemScore, error) {
	if c, ok := r.forUser(u).(interface {
		ScoreItemsCompact(u int) ([]core.ItemScore, error)
	}); ok {
		return c.ScoreItemsCompact(u)
	}
	return nil, fmt.Errorf("core: %s has no compact scoring path", r.algo)
}

// Recommend implements core.Recommender — the legacy surface, routed.
func (r *Router) Recommend(u, k int) ([]core.Scored, error) {
	resp, err := r.RecommendRequest(core.Request{User: u, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// RecommendRequest implements core.RecommenderV2: the request runs on
// its user's shard — same context handling, same options, same cache —
// and the Response's Epoch is that shard's epoch.
func (r *Router) RecommendRequest(req core.Request) (core.Response, error) {
	return r.forUser(req.User).RecommendRequest(req)
}

// RecommendRequestBatch implements core.BatchRecommenderV2: requests are
// grouped by shard (stably, preserving input order within each group),
// every shard with work runs its group concurrently — through the
// shard's own batch path when it has one — and the per-shard responses
// are merged back into input positions. Each request keeps its own
// context. parallelism bounds the TOTAL worker count across the fan-out
// (<= 0 means GOMAXPROCS): the budget is divided among the shards that
// have work, each getting at least one worker, so a caller using
// parallelism to bound load (the HTTP layer caps it at GOMAXPROCS
// because every walk worker pins a graph-sized scratch) is not
// oversubscribed by a factor of the shard count. Cold users yield zero
// Responses, matching the unsharded contract; the first failing shard
// (lowest index) aborts the whole batch, like any other batch error.
func (r *Router) RecommendRequestBatch(reqs []core.Request, parallelism int) ([]core.Response, error) {
	out := make([]core.Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	n := len(r.shards)
	if n == 1 {
		return core.BatchRecommendRequests(r.shards[0], reqs, parallelism)
	}
	groups := make([][]int, n) // input positions per shard, in input order
	active := 0
	for i, req := range reqs {
		s := Assign(req.User, n)
		if len(groups[s]) == 0 {
			active++
		}
		groups[s] = append(groups[s], i)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	perShard := parallelism / active
	if perShard < 1 {
		perShard = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idx []int) {
			defer wg.Done()
			sub := make([]core.Request, len(idx))
			for j, i := range idx {
				sub[j] = reqs[i]
			}
			resps, err := core.BatchRecommendRequests(r.shards[s], sub, perShard)
			if err != nil {
				errs[s] = err
				return
			}
			for j, i := range idx {
				out[i] = resps[j]
			}
		}(s, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RecommendBatch implements core.BatchRecommender — the legacy batch
// surface as a thin wrapper over the fan-out path. Cold users yield nil
// entries.
func (r *Router) RecommendBatch(users []int, k, parallelism int) ([][]core.Scored, error) {
	resps, err := r.RecommendRequestBatch(core.PlainRequests(users, k), parallelism)
	if err != nil {
		return nil, err
	}
	return core.ResponseItems(resps), nil
}
