// Package shard turns the single mutable serving stack (one graph, one
// epoch, one result cache) into a fleet of user-partitioned replicas.
//
// Every replica holds a full copy of the corpus graph plus its own epoch
// counter and result cache; users are assigned to replicas by the pure
// function Assign, so the assignment is consistent across restarts and
// survives auto-grow admissions (a user id always hashes to the same
// shard, no matter when it first appears). Reads for user u are served by
// replica Assign(u, N); a live rating write routes to exactly that
// replica, bumps only that replica's epoch and therefore invalidates only
// that replica's cached results — the other N−1 shards' caches stay warm.
// That confinement is the point: with one global epoch, one write per
// second kills every cached recommendation for every user every second;
// with N shards the blast radius is 1/N of the fleet.
//
// The trade-off is deliberate and standard for replicated serving: a
// write lands on its user's shard only, so another user's replica serves
// walks over a graph that has not seen it (eventual consistency across
// shards; read-your-own-writes holds per user, because reads and writes
// route identically). Fresh fleets built from the same dataset are
// byte-identical, so at N=1 the fleet is exactly the old single-replica
// stack.
//
// The package has two layers: Fleet owns the replicas and the write/stat
// surfaces (routing ApplyRating, aggregating epochs, universes and cache
// counters), while Router wraps one recommender per replica into a single
// core.RecommenderV2/BatchRecommenderV2 whose batch path fans requests
// out per shard and merges responses in input order.
package shard

import (
	"fmt"
	"sync/atomic"

	"longtailrec/internal/cache"
	"longtailrec/internal/core"
	"longtailrec/internal/graph"
	"longtailrec/internal/wal"
)

// Assign maps a user id to its shard: the one consistent user→shard
// assignment the whole serving stack shares (reads, writes, stats and
// tests must never disagree on it). It is a pure function of the id, so
// it survives auto-grow admissions: a user admitted live lands on the
// same shard every later request routes to. Ids are dense (the graph
// layer keeps them so), so a plain modulus balances the fleet; negative
// ids (sentinels like the "raw popularity" -1) wrap into range rather
// than panicking.
//
//ltr:allocfree
func Assign(user, numShards int) int {
	if numShards <= 1 {
		return 0
	}
	s := user % numShards
	if s < 0 {
		s += numShards
	}
	return s
}

// Replica is one shard's serving state: a full graph replica with its own
// epoch (the graph carries it) and its own result cache. Cache is nil
// when result caching is disabled. Cached entries carry their dependency
// fingerprints and revalidate against THIS replica's write journal (each
// view journals only the writes routed to it), so the per-shard
// isolation invariant extends below the epoch: a write can only evict
// entries on its own shard, and there only the entries whose subgraph it
// plausibly touched.
type Replica struct {
	Graph *graph.Bipartite
	Cache *cache.Cache[core.CacheEntry]
}

// Fleet owns N replicas and routes the write/stat surfaces across them.
// All methods are safe for concurrent use (each replica's graph and cache
// are; the replica slice itself is immutable after NewFleet, and the
// durability fields are set once by EnableDurability before serving).
type Fleet struct {
	replicas []*Replica
	// sharedBase marks a fleet whose replicas are views over ONE shared
	// base snapshot (graph.ShareViews) instead of independent full graph
	// copies. It redirects compaction (one group fold instead of N),
	// popularity merging (base once + per-view deltas) and checkpointing
	// (base once + N overlays). Detected at construction.
	sharedBase bool
	// compactThreshold, when positive, makes the fleet fold pending
	// overlay writes once their fleet-wide total reaches it. Fleet-driven
	// because a shared-base view cannot fold from inside its own write
	// path (see graph.SetCompactThreshold); works for independent-replica
	// fleets too.
	compactThreshold atomic.Int64

	// Durability (nil/zero when disabled — the default): see durable.go.
	wlog          *wal.Log
	ing           *wal.Ingester[writeOutcome]
	lastCkptEpoch atomic.Uint64
}

// NewFleet builds a fleet over the given replicas (at least one, each
// with a non-nil graph). Replicas may be independent full graphs (the
// legacy layout) or views over one shared base built by graph.ShareViews;
// mixing, or sharing a base across a different number of views than
// there are replicas, is rejected — a partial share would silently break
// the one-fold-covers-everyone invariants.
func NewFleet(replicas []*Replica) (*Fleet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: fleet needs at least one replica")
	}
	for i, r := range replicas {
		if r == nil || r.Graph == nil {
			return nil, fmt.Errorf("shard: replica %d has no graph", i)
		}
	}
	shared := 0
	for _, r := range replicas[1:] {
		if replicas[0].Graph.SharesBaseWith(r.Graph) {
			shared++
		}
	}
	f := &Fleet{replicas: replicas}
	if len(replicas) > 1 && shared > 0 {
		if shared != len(replicas)-1 {
			return nil, fmt.Errorf("shard: %d of %d replicas share a base with replica 0; all or none must", shared+1, len(replicas))
		}
		if v := replicas[0].Graph.NumViews(); v != len(replicas) {
			return nil, fmt.Errorf("shard: %d replicas over a base shared by %d views", len(replicas), v)
		}
		f.sharedBase = true
	}
	return f, nil
}

// SharedBase reports whether the fleet's replicas are views over one
// shared base snapshot.
func (f *Fleet) SharedBase() bool { return f.sharedBase }

// SetCompactThreshold makes the fleet fold pending overlay writes into
// the base once the fleet-wide pending total reaches n (n <= 0 disables).
// Checked after every applied write batch.
func (f *Fleet) SetCompactThreshold(n int) {
	f.compactThreshold.Store(int64(n))
	f.maybeCompact()
}

// maybeCompact folds when the fleet-wide pending-write total has reached
// the threshold. Concurrent callers may both see the trigger; the second
// fold is then an empty-overlay no-op.
func (f *Fleet) maybeCompact() {
	if t := f.compactThreshold.Load(); t > 0 && int64(f.PendingWrites()) >= t {
		f.Compact()
	}
}

// NumShards returns the replica count.
func (f *Fleet) NumShards() int { return len(f.replicas) }

// ShardFor returns the shard index serving the given user.
func (f *Fleet) ShardFor(user int) int { return Assign(user, len(f.replicas)) }

// Replica returns shard i.
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// GraphFor returns the graph replica serving the given user — the one
// that user's reads and writes both land on.
func (f *Fleet) GraphFor(user int) *graph.Bipartite {
	return f.replicas[f.ShardFor(user)].Graph
}

// ApplyRating routes one live rating write to the user's shard and
// applies it there (upsert; the auto-grow path when autoGrow is set).
// It reports whether a new edge was created, the WRITTEN SHARD's epoch
// after the write, and which shard that was. Only that shard's epoch
// moves, so only that shard's cached results are invalidated.
//
// With durability enabled (EnableDurability), the write is validated
// first, then group-committed: it rides a write-ahead-log batch and is
// acknowledged only after that batch is fsync'd and applied. A non-nil
// error from the durable path means the write took NO effect — invalid
// input, or a durability failure (retryable).
func (f *Fleet) ApplyRating(user, item int, score float64, autoGrow bool) (added bool, epoch uint64, shardIdx int, err error) {
	shardIdx = f.ShardFor(user)
	g := f.replicas[shardIdx].Graph
	if f.ing != nil {
		return f.applyDurable(g, user, item, score, shardIdx, autoGrow)
	}
	if autoGrow {
		added, err = g.UpsertRatingAutoGrow(user, item, score)
	} else {
		added, err = g.UpsertRating(user, item, score)
	}
	epoch = g.Epoch()
	f.maybeCompact()
	return added, epoch, shardIdx, err
}

// Epoch returns the fleet-wide epoch: the sum of every shard's epoch,
// i.e. the total number of accepted live writes since construction —
// the same meaning the single-replica epoch had, preserved at N=1.
func (f *Fleet) Epoch() uint64 {
	var sum uint64
	for _, r := range f.replicas {
		sum += r.Graph.Epoch()
	}
	return sum
}

// PendingWrites returns the total delta-overlay writes awaiting
// compaction across the fleet.
func (f *Fleet) PendingWrites() int {
	n := 0
	for _, r := range f.replicas {
		n += r.Graph.PendingWrites()
	}
	return n
}

// Universe returns the fleet-wide serving universe: the largest user and
// item counts across replicas. Replicas diverge only by auto-grow
// admissions, which append dense ids, so the per-side maximum is exactly
// the union of every shard's universe.
func (f *Fleet) Universe() (numUsers, numItems int) {
	for _, r := range f.replicas {
		if n := r.Graph.NumUsers(); n > numUsers {
			numUsers = n
		}
		if n := r.Graph.NumItems(); n > numItems {
			numItems = n
		}
	}
	return numUsers, numItems
}

// Compact folds every replica's pending overlay writes into its CSR.
// Content-neutral per shard: no epoch moves. On a shared-base fleet one
// group fold covers every view; calling each view's Compact would repeat
// the same (idempotent) fold N times.
func (f *Fleet) Compact() {
	if f.sharedBase {
		f.replicas[0].Graph.Compact()
		return
	}
	for _, r := range f.replicas {
		r.Graph.Compact()
	}
}

// EvictStale sweeps each replica's cache through the entry validator
// bound to that replica's OWN graph (per-shard epochs and write journals
// are independent — validating against another shard's would evict live
// entries) and returns the total number of stale entries dropped.
// Entries a fingerprint proves untouched survive the sweep even though
// their build epoch has passed.
func (f *Fleet) EvictStale() int {
	dropped := 0
	for _, r := range f.replicas {
		if r.Cache != nil {
			dropped += r.Cache.Revalidate(core.EntryValidator(r.Graph))
		}
	}
	return dropped
}

// ShardStats returns the per-shard serving breakdown, indexed by shard.
func (f *Fleet) ShardStats() []core.ShardStats {
	out := make([]core.ShardStats, len(f.replicas))
	for i, r := range f.replicas {
		st := core.ShardStats{
			Shard:         i,
			Epoch:         r.Graph.Epoch(),
			PendingWrites: r.Graph.PendingWrites(),
			NumUsers:      r.Graph.NumUsers(),
			NumItems:      r.Graph.NumItems(),
			CacheEnabled:  r.Cache != nil,
		}
		if r.Cache != nil {
			st.Cache = r.Cache.Stats()
		}
		out[i] = st
	}
	return out
}

// MergedItemPopularity returns the fleet-wide live rater count per item.
//
// On a shared-base fleet the merge is computed at the graph layer as the
// shared base counted ONCE plus every view's overlay delta
// (graph.FleetItemPopularity) — per-replica full scans would count each
// base rating N times, since the views are no longer independent copies.
// The base argument is not needed there: the fold keeps the shared
// snapshot exact.
//
// For independent replicas, base is the popularity vector of the corpus
// every replica was built from; each replica's count differs from it only
// by that replica's own accepted writes, and every write lands on exactly
// one replica, so summing the per-replica deltas over the base
// reconstructs the exact union count (items admitted live have base 0).
// With one replica this is just its live popularity. The output is sized
// from the scans themselves, not a prior Universe() snapshot — an
// auto-grow admission racing this call may extend a replica's vector
// between any two reads, and a stale pre-sized slice would be indexed out
// of range.
func (f *Fleet) MergedItemPopularity(base []int) []int {
	if len(f.replicas) == 1 {
		return f.replicas[0].Graph.ItemPopularity()
	}
	if f.sharedBase {
		return f.replicas[0].Graph.FleetItemPopularity()
	}
	pops := make([][]int, len(f.replicas))
	numItems := len(base)
	for i, r := range f.replicas {
		pops[i] = r.Graph.ItemPopularity()
		if len(pops[i]) > numItems {
			numItems = len(pops[i])
		}
	}
	out := make([]int, numItems)
	copy(out, base)
	for _, pop := range pops {
		for i, p := range pop {
			b := 0
			if i < len(base) {
				b = base[i]
			}
			out[i] += p - b
		}
	}
	return out
}
