// Durable writes for the fleet: write-ahead logging, group commit, and
// the snapshot-refresh cycle.
//
// With durability enabled, ApplyRating validates the write against its
// home replica, then submits one WAL record to a group-commit ingester.
// The ingester batches concurrent writers into ONE log append + fsync,
// ONE overlay application per written shard and ONE epoch bump per shard
// per batch, and acknowledges each writer only after its batch is
// durable — so an acked write survives a crash by construction, and an
// fsync failure fails the ack without applying anything (the client
// retries).
//
// Validation runs BEFORE logging, so invalid operations never occupy log
// space or replay time; the universe only grows, so a verdict reached
// before the submit cannot be invalidated by the time the batch applies.
//
// The snapshot-refresh cycle (SnapshotRefresh) closes the cross-shard
// eventual-consistency gap and bounds the log: under an ingester barrier
// it replays the log's tail into every NON-home replica (converging the
// fleet; one epoch bump per foreign replica per refresh, so cache
// invalidation stays amortized), compacts, writes an atomic checkpoint
// naming the covered sequence, and truncates the log behind it. Recovery
// is the mirror image: restore the checkpoint, replay records above its
// sequence, reopen for appends.

package shard

import (
	"errors"
	"fmt"
	"io"

	"longtailrec/internal/core"
	"longtailrec/internal/graph"
	"longtailrec/internal/persist"
	"longtailrec/internal/wal"
)

// writeOutcome is what one durable write hands back to its waiting
// writer: the apply verdict plus the written shard's post-batch epoch.
type writeOutcome struct {
	added bool
	epoch uint64
	err   error
}

// EnableDurability arms the write-ahead-log path: every later
// ApplyRating group-commits through log. Call once, before serving
// writes; the fleet takes ownership of neither the log's file path nor
// its directory, but CloseDurability closes the log.
func (f *Fleet) EnableDurability(log *wal.Log, opts wal.BatchOptions) error {
	if log == nil {
		return fmt.Errorf("shard: durability needs a log")
	}
	if f.ing != nil {
		return fmt.Errorf("shard: durability already enabled")
	}
	ing, err := wal.NewIngester(log, f.applyRecords, opts)
	if err != nil {
		return err
	}
	f.wlog = log
	f.ing = ing
	return nil
}

// applyDurable is ApplyRating's write path when durability is on.
func (f *Fleet) applyDurable(g *graph.Bipartite, user, item int, score float64, shardIdx int, autoGrow bool) (bool, uint64, int, error) {
	// Reject before logging: garbage must not reach the log.
	if err := g.CheckWrite(user, item, score, autoGrow); err != nil {
		return false, g.Epoch(), shardIdx, err
	}
	op := wal.OpUpsert
	if autoGrow {
		op = wal.OpUpsertAutoGrow
	}
	out, err := f.ing.Submit(wal.Record{Op: op, User: user, Item: item, Score: score})
	if err != nil {
		// Not durable, not applied: the caller may retry.
		return false, g.Epoch(), shardIdx, err
	}
	return out.added, out.epoch, shardIdx, out.err
}

// applyRecords is the ingester's apply hook: it applies one durable
// batch, routing each record to its home shard and applying each shard's
// share as ONE UpsertRatingsBatch — one lock acquisition and one epoch
// bump per written shard per batch, however many writers the batch
// carries. Outcomes align with records by index.
func (f *Fleet) applyRecords(recs []wal.Record) []writeOutcome {
	out := make([]writeOutcome, len(recs))
	perShard := make(map[int][]int) // shard -> record indices, in order
	for k, rec := range recs {
		s := Assign(rec.User, len(f.replicas))
		perShard[s] = append(perShard[s], k)
	}
	for s, idxs := range perShard {
		ops := make([]graph.WriteOp, len(idxs))
		for j, k := range idxs {
			ops[j] = graph.WriteOp{
				User:     recs[k].User,
				Item:     recs[k].Item,
				Score:    recs[k].Score,
				AutoGrow: recs[k].Op == wal.OpUpsertAutoGrow,
			}
		}
		g := f.replicas[s].Graph
		results := g.UpsertRatingsBatch(ops)
		epoch := g.Epoch()
		for j, k := range idxs {
			out[k] = writeOutcome{added: results[j].Added, epoch: epoch, err: results[j].Err}
		}
	}
	f.maybeCompact()
	return out
}

// ApplyRecord replays one WAL record into its home replica directly,
// without logging — the recovery path, where the record is by definition
// already durable. Idempotent over a checkpoint that includes it: an
// upsert that re-writes the same score is a no-op and moves no epoch.
func (f *Fleet) ApplyRecord(rec wal.Record) error {
	g := f.replicas[Assign(rec.User, len(f.replicas))].Graph
	var err error
	switch rec.Op {
	case wal.OpUpsertAutoGrow:
		_, err = g.UpsertRatingAutoGrow(rec.User, rec.Item, rec.Score)
	case wal.OpUpsert:
		_, err = g.UpsertRating(rec.User, rec.Item, rec.Score)
	default:
		err = fmt.Errorf("shard: unknown WAL op %d", rec.Op)
	}
	return err
}

// SnapshotRefresh runs one convergence-and-checkpoint cycle, writing the
// checkpoint container to path (atomically — a crash leaves the old
// checkpoint intact). With the ingester live the cycle runs under its
// barrier, serialized against every group commit; after CloseDurability
// has quiesced the stack it runs directly (the final checkpoint of a
// graceful shutdown). The log is truncated only after the checkpoint is
// durably on disk; a crash between the two leaves a log whose replay
// over the new checkpoint is sequence-gated and idempotent.
func (f *Fleet) SnapshotRefresh(path string) error {
	if f.wlog == nil {
		return fmt.Errorf("shard: durability not enabled")
	}
	var err error
	if berr := f.ing.Barrier(func() { err = f.refresh(path) }); berr != nil {
		if !errors.Is(berr, wal.ErrClosed) {
			return berr
		}
		// Ingester closed: no appends can race; run directly.
		return f.refresh(path)
	}
	return err
}

// refresh is the cycle body. Caller guarantees no concurrent applies.
func (f *Fleet) refresh(path string) error {
	if f.sharedBase {
		return f.refreshShared(path)
	}
	// 1. Converge: replay the log tail into every non-home replica. Home
	// replicas already hold these writes (they were applied at commit
	// time), so they are skipped — replaying into them would be a no-op
	// anyway, upserts being idempotent.
	var tail []wal.Record
	if err := f.wlog.Replay(0, func(_ uint64, rec wal.Record) error {
		tail = append(tail, rec)
		return nil
	}); err != nil {
		return err
	}
	if len(f.replicas) > 1 && len(tail) > 0 {
		for s, r := range f.replicas {
			var ops []graph.WriteOp
			for _, rec := range tail {
				if Assign(rec.User, len(f.replicas)) == s {
					continue
				}
				ops = append(ops, graph.WriteOp{
					User:     rec.User,
					Item:     rec.Item,
					Score:    rec.Score,
					AutoGrow: rec.Op == wal.OpUpsertAutoGrow,
				})
			}
			for _, res := range r.Graph.UpsertRatingsBatch(ops) {
				if res.Err != nil {
					return fmt.Errorf("shard: convergence replay into shard %d: %w", s, res.Err)
				}
			}
		}
	}

	// 2. Compact every replica: the checkpoint serializes folded CSRs and
	// the serving stack restarts with no pending overlay.
	for _, r := range f.replicas {
		r.Graph.Compact()
	}

	// 3. Checkpoint, atomically. Seq is read under the barrier, so it
	// names exactly the records the images include.
	seq := f.wlog.Seq()
	cp := &persist.FleetCheckpoint{Seq: seq, Shards: make([]persist.ShardCheckpoint, len(f.replicas))}
	for i, r := range f.replicas {
		cp.Shards[i] = persist.ShardCheckpoint{
			BaseUsers: r.Graph.BaseNumUsers(),
			BaseItems: r.Graph.BaseNumItems(),
			Snapshot:  r.Graph.Snapshot(),
		}
	}
	if err := persist.SaveFile(path, func(w io.Writer) error {
		return persist.SaveFleetCheckpoint(w, cp)
	}); err != nil {
		return err
	}

	// 4. Truncate the log behind the checkpoint.
	if err := f.wlog.ResetTo(seq); err != nil {
		return err
	}
	f.lastCkptEpoch.Store(f.Epoch())
	return nil
}

// refreshShared is the cycle body for a shared-base fleet. Convergence
// and compaction are ONE move here: the group fold publishes every view's
// overlay into the shared base, making all writes visible fleet-wide —
// no log-tail replay into foreign replicas, and no foreign epoch bumps
// (folding is content-neutral, so foreign caches stay warm; the legacy
// path paid one bump per foreign replica per refresh). The checkpoint
// then stores the base once plus per-shard {epoch, overlay delta}; the
// deltas are empty right after the fold, so checkpoint size no longer
// scales with the shard count. Caller guarantees no concurrent applies.
func (f *Fleet) refreshShared(path string) error {
	g0 := f.replicas[0].Graph
	// 1+2. Converge and compact: one fleet-wide fold.
	g0.Compact()

	// 3. Checkpoint, atomically. Seq is read under the barrier, so it
	// names exactly the records the image includes.
	seq := f.wlog.Seq()
	cp := &persist.SharedFleetCheckpoint{
		Seq:       seq,
		BaseUsers: g0.BaseNumUsers(),
		BaseItems: g0.BaseNumItems(),
		Base:      g0.Snapshot(),
		Shards:    make([]persist.ShardOverlay, len(f.replicas)),
	}
	for i, r := range f.replicas {
		cp.Shards[i] = persist.ShardOverlay{
			Epoch:  r.Graph.Epoch(),
			Deltas: r.Graph.OverlayDelta(),
		}
	}
	if err := persist.SaveFile(path, func(w io.Writer) error {
		return persist.SaveSharedFleetCheckpoint(w, cp)
	}); err != nil {
		return err
	}

	// 4. Truncate the log behind the checkpoint.
	if err := f.wlog.ResetTo(seq); err != nil {
		return err
	}
	f.lastCkptEpoch.Store(f.Epoch())
	return nil
}

// SetLastCheckpointEpoch records the fleet epoch a restored checkpoint
// represents — recovery wiring, so /v1/stats does not report zero until
// the first post-restart refresh.
func (f *Fleet) SetLastCheckpointEpoch(epoch uint64) { f.lastCkptEpoch.Store(epoch) }

// DurabilityStats reports where the write-ahead log stands.
func (f *Fleet) DurabilityStats() core.DurabilityStats {
	if f.wlog == nil {
		return core.DurabilityStats{}
	}
	st := core.DurabilityStats{
		Enabled:             true,
		DurableSeq:          f.wlog.Seq(),
		LastCheckpointEpoch: f.lastCkptEpoch.Load(),
	}
	if f.ing != nil {
		st.PendingBatch = f.ing.Pending()
	}
	return st
}

// FlushDurability commits whatever batch is queued and stops accepting
// durable writes (later ApplyRating calls fail with wal.ErrClosed). The
// log stays open so a final SnapshotRefresh can still checkpoint and
// truncate. Idempotent; a no-op when durability was never enabled.
func (f *Fleet) FlushDurability() {
	if f.ing != nil {
		f.ing.Close()
	}
}

// CloseDurability flushes and closes the log. Idempotent; a no-op when
// durability was never enabled.
func (f *Fleet) CloseDurability() error {
	if f.ing == nil {
		return nil
	}
	f.ing.Close()
	return f.wlog.Close()
}
