// Per-type codecs: Dataset, LDA model, BiasedMF, PureSVD.

package persist

import (
	"fmt"
	"io"

	"longtailrec/internal/dataset"
	"longtailrec/internal/graph"
	"longtailrec/internal/lda"
	"longtailrec/internal/linalg"
	"longtailrec/internal/mf"
	"longtailrec/internal/svd"
)

// SaveDataset writes a dataset container.
func SaveDataset(w io.Writer, d *dataset.Dataset) error {
	if d == nil {
		return fmt.Errorf("persist: nil dataset")
	}
	var e enc
	e.i(d.NumUsers())
	e.i(d.NumItems())
	ratings := d.Ratings()
	e.i(len(ratings))
	for _, r := range ratings {
		e.i(r.User)
		e.i(r.Item)
		e.f64(r.Score)
	}
	return writeContainer(w, KindDataset, e.buf)
}

// LoadDataset reads a dataset container. The result is re-validated
// through dataset.New, so a tampered payload that passes the checksum
// still cannot produce an inconsistent dataset.
func LoadDataset(r io.Reader) (*dataset.Dataset, error) {
	payload, err := readContainer(r, KindDataset)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	nu := d.i()
	ni := d.i()
	n := d.count(24)
	ratings := make([]dataset.Rating, n)
	for k := range ratings {
		ratings[k] = dataset.Rating{User: d.i(), Item: d.i(), Score: d.f64()}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	out, err := dataset.New(nu, ni, ratings)
	if err != nil {
		return nil, fmt.Errorf("persist: decoded dataset invalid: %w", err)
	}
	return out, nil
}

// SaveGraph writes a live-graph container. The graph is serialized through
// Snapshot(), which merges the compacted CSR with the pending delta
// overlay under one read lock — a save taken mid-write-stream loses
// nothing, including users and items admitted live — and records the
// write epoch so a reloaded graph resumes the same cache-invalidation
// counter rather than restarting at zero. The reloaded graph treats the
// saved (grown) universe as its base: models snapshot-trained before the
// growth must be retrained against it (see graph.GraphSnapshot).
func SaveGraph(w io.Writer, g *graph.Bipartite) error {
	if g == nil {
		return fmt.Errorf("persist: nil graph")
	}
	snap := g.Snapshot()
	var e enc
	e.i(snap.NumUsers)
	e.i(snap.NumItems)
	e.u64(snap.Epoch)
	e.i(len(snap.Ratings))
	for _, r := range snap.Ratings {
		e.i(r.User)
		e.i(r.Item)
		e.f64(r.Weight)
	}
	return writeContainer(w, KindGraph, e.buf)
}

// LoadGraph reads a graph container written by SaveGraph. The result is
// rebuilt through the validating graph builder, so a tampered payload that
// passes the checksum still cannot produce an inconsistent graph.
func LoadGraph(r io.Reader) (*graph.Bipartite, error) {
	payload, err := readContainer(r, KindGraph)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	var snap graph.GraphSnapshot
	snap.NumUsers = d.i()
	snap.NumItems = d.i()
	snap.Epoch = d.u64()
	n := d.count(24)
	snap.Ratings = make([]graph.Rating, n)
	for k := range snap.Ratings {
		snap.Ratings[k] = graph.Rating{User: d.i(), Item: d.i(), Weight: d.f64()}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	g, err := graph.FromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("persist: decoded graph invalid: %w", err)
	}
	return g, nil
}

// SaveLDA writes a trained topic model container.
func SaveLDA(w io.Writer, m *lda.Model) error {
	if m == nil {
		return fmt.Errorf("persist: nil LDA model")
	}
	var e enc
	alpha, beta := m.Priors()
	e.f64(alpha)
	e.f64(beta)
	e.i(m.NumTopics())
	e.i(m.NumUsers())
	e.i(m.NumItems())
	for u := 0; u < m.NumUsers(); u++ {
		e.f64s(m.Theta(u))
	}
	for z := 0; z < m.NumTopics(); z++ {
		e.f64s(m.Phi(z))
	}
	return writeContainer(w, KindLDA, e.buf)
}

// LoadLDA reads a trained topic model container.
func LoadLDA(r io.Reader) (*lda.Model, error) {
	payload, err := readContainer(r, KindLDA)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	alpha := d.f64()
	beta := d.f64()
	k := d.count(8)
	nu := d.count(8)
	ni := d.count(8)
	theta := make([][]float64, nu)
	for u := range theta {
		theta[u] = d.f64s()
	}
	phi := make([][]float64, k)
	for z := range phi {
		phi[z] = d.f64s()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	m, err := lda.FromParameters(alpha, beta, theta, phi)
	if err != nil {
		return nil, fmt.Errorf("persist: decoded LDA model invalid: %w", err)
	}
	if m.NumItems() != ni {
		return nil, fmt.Errorf("persist: decoded LDA model has %d items, header says %d", m.NumItems(), ni)
	}
	return m, nil
}

// SaveBiasedMF writes a trained BiasedMF container.
func SaveBiasedMF(w io.Writer, m *mf.BiasedMF) error {
	if m == nil {
		return fmt.Errorf("persist: nil BiasedMF model")
	}
	p := m.Params()
	var e enc
	e.i(p.NumUsers)
	e.i(p.NumItems)
	e.i(p.Factors)
	e.f64(p.Mu)
	e.f64s(p.BU)
	e.f64s(p.BI)
	e.f64s(p.P)
	e.f64s(p.Q)
	return writeContainer(w, KindBiasedMF, e.buf)
}

// LoadBiasedMF reads a trained BiasedMF container.
func LoadBiasedMF(r io.Reader) (*mf.BiasedMF, error) {
	payload, err := readContainer(r, KindBiasedMF)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	var p mf.BiasedMFParams
	p.NumUsers = d.i()
	p.NumItems = d.i()
	p.Factors = d.i()
	p.Mu = d.f64()
	p.BU = d.f64s()
	p.BI = d.f64s()
	p.P = d.f64s()
	p.Q = d.f64s()
	if err := d.finish(); err != nil {
		return nil, err
	}
	m, err := mf.FromBiasedMFParams(p)
	if err != nil {
		return nil, fmt.Errorf("persist: decoded BiasedMF invalid: %w", err)
	}
	return m, nil
}

// SavePureSVD writes the right-factor matrix of a PureSVD model. The
// dataset is not stored (it is large and typically persisted separately);
// LoadPureSVD re-attaches one.
func SavePureSVD(w io.Writer, m *svd.PureSVD) error {
	if m == nil {
		return fmt.Errorf("persist: nil PureSVD model")
	}
	v := m.V()
	rows, cols := v.Dims()
	var e enc
	e.i(rows)
	e.i(cols)
	e.i(m.Rank())
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			e.f64(v.At(i, j))
		}
	}
	return writeContainer(w, KindPureSVD, e.buf)
}

// LoadPureSVD reads a PureSVD container and binds it to the dataset whose
// rating rows the model scores with (normally the same training data,
// reloaded via LoadDataset).
func LoadPureSVD(r io.Reader, d *dataset.Dataset) (*svd.PureSVD, error) {
	payload, err := readContainer(r, KindPureSVD)
	if err != nil {
		return nil, err
	}
	dd := dec{buf: payload}
	rows := dd.count(8)
	cols := dd.count(1)
	rank := dd.i()
	if dd.err == nil && (cols <= 0 || rows <= 0) {
		return nil, fmt.Errorf("persist: PureSVD factor matrix %d×%d invalid", rows, cols)
	}
	if dd.err == nil && rows*cols*8 != len(payload)-dd.off {
		return nil, fmt.Errorf("persist: PureSVD factor matrix %d×%d does not match %d payload bytes",
			rows, cols, len(payload)-dd.off)
	}
	var v *linalg.Dense
	if dd.err == nil {
		v = linalg.NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v.Set(i, j, dd.f64())
			}
		}
	}
	if err := dd.finish(); err != nil {
		return nil, err
	}
	m, err := svd.FromFactors(d, v, rank)
	if err != nil {
		return nil, fmt.Errorf("persist: decoded PureSVD invalid: %w", err)
	}
	return m, nil
}
