package persist

import (
	"bytes"
	"testing"

	"longtailrec/internal/dataset"
	"longtailrec/internal/mf"
)

// trainTinyMF fits a minimal model for fuzz seeds.
func trainTinyMF(f *testing.F, d *dataset.Dataset) *mf.BiasedMF {
	f.Helper()
	m, err := mf.TrainBiasedMF(d, mf.Options{Factors: 2, Epochs: 2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	return m
}

// FuzzLoadDataset asserts the decoder never panics and never returns an
// internally inconsistent dataset, whatever bytes it is fed. Run the seeds
// with `go test`; fuzz with `go test -fuzz FuzzLoadDataset ./internal/persist`.
func FuzzLoadDataset(f *testing.F) {
	// Seed 1: a valid container.
	d, err := dataset.New(3, 4, []dataset.Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 1, Item: 2, Score: 3},
		{User: 2, Item: 3, Score: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Seed 2: valid container with the payload length doubled.
	bad := append([]byte(nil), valid...)
	bad[4+4] *= 2
	f.Add(bad)
	// Seed 3: truncated halfway.
	f.Add(valid[:len(valid)/2])
	// Seed 4: empty and garbage.
	f.Add([]byte{})
	f.Add([]byte("LTRZ and then nonsense that is not a real payload at all"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := LoadDataset(bytes.NewReader(raw))
		if err != nil {
			return // rejection is always acceptable
		}
		// Anything accepted must be a self-consistent dataset.
		if got.NumUsers() <= 0 || got.NumItems() <= 0 {
			t.Fatalf("accepted dataset with dims %d×%d", got.NumUsers(), got.NumItems())
		}
		for _, r := range got.Ratings() {
			if r.User < 0 || r.User >= got.NumUsers() || r.Item < 0 || r.Item >= got.NumItems() || r.Score <= 0 {
				t.Fatalf("accepted inconsistent rating %+v", r)
			}
		}
	})
}

// FuzzLoadBiasedMF does the same for the model decoder, whose payload has
// nested length-prefixed sections.
func FuzzLoadBiasedMF(f *testing.F) {
	d, err := dataset.New(4, 4, []dataset.Rating{
		{User: 0, Item: 0, Score: 5},
		{User: 1, Item: 1, Score: 3},
		{User: 2, Item: 2, Score: 4},
		{User: 3, Item: 3, Score: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	// A real trained model as the primary seed.
	m := trainTinyMF(f, d)
	var buf bytes.Buffer
	if err := SaveBiasedMF(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	mangled := append([]byte(nil), valid...)
	mangled[20] ^= 0xFF
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := LoadBiasedMF(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted models must score without panicking.
		_ = got.Score(0, 0)
	})
}
