package persist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"longtailrec/internal/graph"
)

func sharedCheckpointFixture(t *testing.T) *SharedFleetCheckpoint {
	t.Helper()
	g, err := graph.FromRatings(3, 4, []graph.Rating{
		{User: 0, Item: 0, Weight: 3},
		{User: 1, Item: 1, Weight: 5},
		{User: 2, Item: 2, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRatingAutoGrow(3, 4, 2.5); err != nil {
		t.Fatal(err)
	}
	return &SharedFleetCheckpoint{
		Seq:       17,
		BaseUsers: 3,
		BaseItems: 4,
		Base:      g.Snapshot(),
		Shards: []ShardOverlay{
			{Epoch: 3},
			{Epoch: 5, Deltas: []graph.Rating{{User: 1, Item: 2, Weight: 4}}},
			{Epoch: 0},
		},
	}
}

func TestSharedFleetCheckpointRoundTrip(t *testing.T) {
	cp := sharedCheckpointFixture(t)
	var buf bytes.Buffer
	if err := SaveSharedFleetCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSharedFleetCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip diverged:\n got:  %+v\n want: %+v", got, cp)
	}
	// The base must restore through the validating rebuild with its
	// base/live universe split intact.
	g, err := graph.FromSnapshotWithBase(got.Base, got.BaseUsers, got.BaseItems)
	if err != nil {
		t.Fatal(err)
	}
	if g.BaseNumUsers() != cp.BaseUsers || g.BaseNumItems() != cp.BaseItems {
		t.Fatalf("restored base split = (%d,%d), want (%d,%d)",
			g.BaseNumUsers(), g.BaseNumItems(), cp.BaseUsers, cp.BaseItems)
	}
}

// TestSharedFleetCheckpointSize pins the size fix: a shared-base image
// stores the base once, so growing the fleet from 2 to 16 shards must
// add only per-shard overlay headers — not 8× the payload, as the legacy
// per-replica format does.
func TestSharedFleetCheckpointSize(t *testing.T) {
	encodedLen := func(shards int) int {
		cp := sharedCheckpointFixture(t)
		cp.Shards = make([]ShardOverlay, shards)
		var buf bytes.Buffer
		if err := SaveSharedFleetCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	n2, n16 := encodedLen(2), encodedLen(16)
	// 14 extra empty overlays are 16 bytes each (epoch + count).
	if grew := n16 - n2; grew != 14*16 {
		t.Fatalf("2->16 shards grew the checkpoint by %d bytes, want %d (base serialized more than once?)", grew, 14*16)
	}
}

func TestSharedFleetCheckpointRejectsBadShape(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSharedFleetCheckpoint(&buf, &SharedFleetCheckpoint{}); err == nil {
		t.Error("shardless checkpoint saved")
	}
	if err := SaveSharedFleetCheckpoint(&buf, nil); err == nil {
		t.Error("nil checkpoint saved")
	}
	cp := sharedCheckpointFixture(t)
	cp.BaseUsers = cp.Base.NumUsers + 1
	buf.Reset()
	if err := SaveSharedFleetCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharedFleetCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "base universe") {
		t.Fatalf("bad base accepted: err = %v", err)
	}
}

// TestLoadAnyFleetCheckpointNative: the any-loader reads the new kind
// as-is.
func TestLoadAnyFleetCheckpointNative(t *testing.T) {
	cp := sharedCheckpointFixture(t)
	var buf bytes.Buffer
	if err := SaveSharedFleetCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAnyFleetCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("native any-load diverged:\n got:  %+v\n want: %+v", got, cp)
	}
}

// TestLoadAnyFleetCheckpointLegacy pins recovery compatibility: a legacy
// Kind-6 checkpoint (N full snapshots) loads through the any-loader as a
// shared-base image — shard 0's snapshot becomes the base, converged
// shards contribute empty deltas, per-shard epochs carry over.
func TestLoadAnyFleetCheckpointLegacy(t *testing.T) {
	legacy := checkpointFixture(t)
	legacy.Shards[1].Snapshot.Epoch = 9 // converged content, distinct epoch
	var buf bytes.Buffer
	if err := SaveFleetCheckpoint(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAnyFleetCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != legacy.Seq {
		t.Errorf("Seq = %d, want %d", got.Seq, legacy.Seq)
	}
	if got.BaseUsers != legacy.Shards[0].BaseUsers || got.BaseItems != legacy.Shards[0].BaseItems {
		t.Errorf("base split = (%d,%d), want shard 0's (%d,%d)",
			got.BaseUsers, got.BaseItems, legacy.Shards[0].BaseUsers, legacy.Shards[0].BaseItems)
	}
	if !reflect.DeepEqual(got.Base.Ratings, legacy.Shards[0].Snapshot.Ratings) {
		t.Error("converted base is not shard 0's snapshot")
	}
	if len(got.Shards) != 2 {
		t.Fatalf("%d shards, want 2", len(got.Shards))
	}
	if got.Shards[0].Epoch != legacy.Shards[0].Snapshot.Epoch || got.Shards[1].Epoch != 9 {
		t.Errorf("epochs = (%d,%d), want (%d,9)",
			got.Shards[0].Epoch, got.Shards[1].Epoch, legacy.Shards[0].Snapshot.Epoch)
	}
	for k, s := range got.Shards {
		if len(s.Deltas) != 0 {
			t.Errorf("converged shard %d converted with %d deltas, want none", k, len(s.Deltas))
		}
	}
}

// TestLoadAnyFleetCheckpointLegacyDivergence: a shard that drifted AHEAD
// of shard 0 (extra edge, re-rated edge) converts into overlay deltas; a
// shard MISSING one of shard 0's edges is unrepresentable (the write
// model has no deletes) and must fail loudly.
func TestLoadAnyFleetCheckpointLegacyDivergence(t *testing.T) {
	legacy := checkpointFixture(t)
	s1 := &legacy.Shards[1].Snapshot
	s1.Ratings = append(s1.Ratings, graph.Rating{User: 2, Item: 3, Weight: 4}) // addition
	for j, r := range s1.Ratings {
		if r.User == 1 && r.Item == 1 {
			s1.Ratings[j].Weight = 2 // re-rate
		}
	}
	var buf bytes.Buffer
	if err := SaveFleetCheckpoint(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAnyFleetCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Rating{{User: 1, Item: 1, Weight: 2}, {User: 2, Item: 3, Weight: 4}}
	deltas := got.Shards[1].Deltas
	if len(deltas) != len(want) {
		t.Fatalf("shard 1 deltas = %+v, want %+v", deltas, want)
	}
	for _, w := range want {
		found := false
		for _, d := range deltas {
			if d == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("delta %+v missing from %+v", w, deltas)
		}
	}

	// Deletion: drop one of shard 0's edges from shard 1.
	legacy = checkpointFixture(t)
	s1 = &legacy.Shards[1].Snapshot
	kept := s1.Ratings[:0]
	for _, r := range s1.Ratings {
		if !(r.User == 0 && r.Item == 0) {
			kept = append(kept, r)
		}
	}
	s1.Ratings = kept
	buf.Reset()
	if err := SaveFleetCheckpoint(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAnyFleetCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("deletion silently converted: err = %v", err)
	}
}
