// Fleet checkpoint codec: the durable image the WAL truncates behind.
//
// A checkpoint captures every shard replica of the serving fleet — each
// as a full graph snapshot PLUS its base universe split — together with
// the write-ahead-log sequence number the image covers. Recovery loads
// the checkpoint, rebuilds each replica with graph.FromSnapshotWithBase
// (preserving the base split that offline-trained models validate
// against), and replays only WAL records with seq >= Seq; records below
// Seq are already inside the image, so replay over a checkpoint is
// idempotent by construction.

package persist

import (
	"fmt"
	"io"

	"longtailrec/internal/graph"
)

// ShardCheckpoint is one replica's durable image.
type ShardCheckpoint struct {
	// BaseUsers and BaseItems record the replica's compiled base
	// universe — the split FromSnapshotWithBase restores so that models
	// trained against the dataset universe still validate after a
	// restart, even when users and items were admitted live since.
	BaseUsers, BaseItems int
	Snapshot             graph.GraphSnapshot
}

// FleetCheckpoint is the whole fleet's durable image.
type FleetCheckpoint struct {
	// Seq is the WAL sequence the images cover, exclusive: every record
	// with sequence < Seq is folded into the shard images. Replay after
	// restore starts at Seq.
	Seq    uint64
	Shards []ShardCheckpoint
}

// SaveFleetCheckpoint writes a fleet-checkpoint container.
func SaveFleetCheckpoint(w io.Writer, cp *FleetCheckpoint) error {
	if cp == nil {
		return fmt.Errorf("persist: nil checkpoint")
	}
	if len(cp.Shards) == 0 {
		return fmt.Errorf("persist: checkpoint has no shards")
	}
	var e enc
	e.u64(cp.Seq)
	e.i(len(cp.Shards))
	for _, s := range cp.Shards {
		e.i(s.BaseUsers)
		e.i(s.BaseItems)
		e.i(s.Snapshot.NumUsers)
		e.i(s.Snapshot.NumItems)
		e.u64(s.Snapshot.Epoch)
		e.i(len(s.Snapshot.Ratings))
		for _, r := range s.Snapshot.Ratings {
			e.i(r.User)
			e.i(r.Item)
			e.f64(r.Weight)
		}
	}
	return writeContainer(w, KindCheckpoint, e.buf)
}

// LoadFleetCheckpoint reads a fleet-checkpoint container. Decoded shapes
// are plausibility-checked here; full graph validation happens when the
// caller rebuilds each replica through graph.FromSnapshotWithBase, so a
// tampered payload that passes the checksum still cannot produce an
// inconsistent fleet.
func LoadFleetCheckpoint(r io.Reader) (*FleetCheckpoint, error) {
	payload, err := readContainer(r, KindCheckpoint)
	if err != nil {
		return nil, err
	}
	return decodeFleetCheckpoint(payload)
}

// decodeFleetCheckpoint decodes a verified KindCheckpoint payload.
func decodeFleetCheckpoint(payload []byte) (*FleetCheckpoint, error) {
	d := dec{buf: payload}
	cp := &FleetCheckpoint{Seq: d.u64()}
	nShards := d.count(40)
	if d.err == nil && nShards == 0 {
		return nil, fmt.Errorf("persist: checkpoint has no shards")
	}
	cp.Shards = make([]ShardCheckpoint, nShards)
	for k := range cp.Shards {
		s := &cp.Shards[k]
		s.BaseUsers = d.i()
		s.BaseItems = d.i()
		s.Snapshot.NumUsers = d.i()
		s.Snapshot.NumItems = d.i()
		s.Snapshot.Epoch = d.u64()
		n := d.count(24)
		s.Snapshot.Ratings = make([]graph.Rating, n)
		for j := range s.Snapshot.Ratings {
			s.Snapshot.Ratings[j] = graph.Rating{User: d.i(), Item: d.i(), Weight: d.f64()}
		}
		if d.err == nil {
			if s.BaseUsers < 0 || s.BaseUsers > s.Snapshot.NumUsers ||
				s.BaseItems < 0 || s.BaseItems > s.Snapshot.NumItems {
				return nil, fmt.Errorf("persist: shard %d base universe (%d,%d) outside snapshot universe (%d,%d)",
					k, s.BaseUsers, s.BaseItems, s.Snapshot.NumUsers, s.Snapshot.NumItems)
			}
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return cp, nil
}
