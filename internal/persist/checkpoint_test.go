package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"longtailrec/internal/graph"
)

func checkpointFixture(t *testing.T) *FleetCheckpoint {
	t.Helper()
	g, err := graph.FromRatings(3, 4, []graph.Rating{
		{User: 0, Item: 0, Weight: 3},
		{User: 1, Item: 1, Weight: 5},
		{User: 2, Item: 2, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRatingAutoGrow(3, 4, 2.5); err != nil {
		t.Fatal(err)
	}
	return &FleetCheckpoint{
		Seq: 17,
		Shards: []ShardCheckpoint{
			{BaseUsers: 3, BaseItems: 4, Snapshot: g.Snapshot()},
			{BaseUsers: 3, BaseItems: 4, Snapshot: g.Snapshot()},
		},
	}
}

func TestFleetCheckpointRoundTrip(t *testing.T) {
	cp := checkpointFixture(t)
	var buf bytes.Buffer
	if err := SaveFleetCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleetCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != cp.Seq {
		t.Errorf("Seq = %d, want %d", got.Seq, cp.Seq)
	}
	if len(got.Shards) != len(cp.Shards) {
		t.Fatalf("%d shards, want %d", len(got.Shards), len(cp.Shards))
	}
	for k, s := range got.Shards {
		want := cp.Shards[k]
		if s.BaseUsers != want.BaseUsers || s.BaseItems != want.BaseItems {
			t.Errorf("shard %d base = (%d,%d), want (%d,%d)",
				k, s.BaseUsers, s.BaseItems, want.BaseUsers, want.BaseItems)
		}
		// Restoring through the validating rebuild must succeed and keep
		// the base split.
		g, err := graph.FromSnapshotWithBase(s.Snapshot, s.BaseUsers, s.BaseItems)
		if err != nil {
			t.Fatalf("shard %d restore: %v", k, err)
		}
		if g.BaseNumUsers() != want.BaseUsers || g.BaseNumItems() != want.BaseItems {
			t.Errorf("shard %d restored base = (%d,%d), want (%d,%d)",
				k, g.BaseNumUsers(), g.BaseNumItems(), want.BaseUsers, want.BaseItems)
		}
		if g.Epoch() != want.Snapshot.Epoch {
			t.Errorf("shard %d restored epoch = %d, want %d", k, g.Epoch(), want.Snapshot.Epoch)
		}
	}
}

func TestFleetCheckpointRejectsBadBase(t *testing.T) {
	cp := checkpointFixture(t)
	cp.Shards[1].BaseUsers = cp.Shards[1].Snapshot.NumUsers + 1
	var buf bytes.Buffer
	if err := SaveFleetCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFleetCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "base universe") {
		t.Fatalf("bad base accepted: err = %v", err)
	}
}

func TestFleetCheckpointRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveFleetCheckpoint(&buf, &FleetCheckpoint{}); err == nil {
		t.Error("empty checkpoint saved")
	}
	if err := SaveFleetCheckpoint(&buf, nil); err == nil {
		t.Error("nil checkpoint saved")
	}
}

func TestSaveFileAtomicReplacesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ltr")
	if err := SaveFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("old-contents"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A failing save must leave the old file byte-identical and no temp
	// droppings behind — the crash-mid-save contract.
	boom := errors.New("boom")
	if err := SaveFile(path, func(w io.Writer) error {
		w.Write([]byte("half-written garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failing save returned %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old-contents" {
		t.Errorf("failed save left %q, want old contents intact", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("temp files left behind: %v", names)
	}

	// A succeeding save replaces wholesale.
	if err := SaveFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new-contents"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new-contents" {
		t.Errorf("file = %q, want new contents", got)
	}
}

func TestSaveFileCheckpointOnDisk(t *testing.T) {
	cp := checkpointFixture(t)
	path := filepath.Join(t.TempDir(), "checkpoint.ltr")
	if err := SaveFile(path, func(w io.Writer) error {
		return SaveFleetCheckpoint(w, cp)
	}); err != nil {
		t.Fatal(err)
	}
	var got *FleetCheckpoint
	if err := LoadFile(path, func(r io.Reader) error {
		var err error
		got, err = LoadFleetCheckpoint(r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got.Seq != cp.Seq || len(got.Shards) != len(cp.Shards) {
		t.Errorf("loaded (seq=%d, shards=%d), want (seq=%d, shards=%d)",
			got.Seq, len(got.Shards), cp.Seq, len(cp.Shards))
	}
}
