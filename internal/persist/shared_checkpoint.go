// Shared-base fleet checkpoint codec (KindSharedCheckpoint).
//
// A legacy fleet checkpoint (KindCheckpoint) stores N full graph
// snapshots — one per shard replica — so its size scales with the shard
// count even though the replicas converge to identical content at every
// refresh. A shared-base fleet has exactly one base graph plus one small
// write overlay per shard, and its checkpoint mirrors that: the base
// snapshot ONCE, then per shard only its epoch and pending overlay deltas
// (normally empty, since the refresh cycle folds overlays into the base
// right before checkpointing).
//
// Recovery compatibility runs one way: LoadAnyFleetCheckpoint reads both
// kinds, converting a legacy image on the fly (shard 0 becomes the base;
// every other shard's divergence from it becomes that shard's delta), so
// a server upgraded across the format change restarts from its old
// checkpoint. New checkpoints are always written in the shared format by
// shared-base fleets; single-shard and independent-replica fleets keep
// writing KindCheckpoint.

package persist

import (
	"fmt"
	"io"

	"longtailrec/internal/graph"
)

// ShardOverlay is one shard's durable delta on top of the shared base:
// its write epoch and the user-side ratings not yet folded into the base.
type ShardOverlay struct {
	Epoch  uint64
	Deltas []graph.Rating
}

// SharedFleetCheckpoint is a shared-base fleet's durable image.
type SharedFleetCheckpoint struct {
	// Seq is the WAL sequence the image covers, exclusive: every record
	// with sequence < Seq is folded in. Replay after restore starts at Seq.
	Seq uint64
	// BaseUsers and BaseItems record the fleet's compiled base universe —
	// the split FromSnapshotWithBase restores so that models trained
	// against the dataset universe still validate after a restart. One
	// pair for the whole fleet: shared-base views share one universe.
	BaseUsers, BaseItems int
	// Base is the shared base graph, serialized once regardless of the
	// shard count.
	Base graph.GraphSnapshot
	// Shards holds one overlay per shard, in shard order.
	Shards []ShardOverlay
}

// SaveSharedFleetCheckpoint writes a shared-fleet-checkpoint container.
func SaveSharedFleetCheckpoint(w io.Writer, cp *SharedFleetCheckpoint) error {
	if cp == nil {
		return fmt.Errorf("persist: nil checkpoint")
	}
	if len(cp.Shards) == 0 {
		return fmt.Errorf("persist: checkpoint has no shards")
	}
	var e enc
	e.u64(cp.Seq)
	e.i(cp.BaseUsers)
	e.i(cp.BaseItems)
	e.i(cp.Base.NumUsers)
	e.i(cp.Base.NumItems)
	e.u64(cp.Base.Epoch)
	e.i(len(cp.Base.Ratings))
	for _, r := range cp.Base.Ratings {
		e.i(r.User)
		e.i(r.Item)
		e.f64(r.Weight)
	}
	e.i(len(cp.Shards))
	for _, s := range cp.Shards {
		e.u64(s.Epoch)
		e.i(len(s.Deltas))
		for _, r := range s.Deltas {
			e.i(r.User)
			e.i(r.Item)
			e.f64(r.Weight)
		}
	}
	return writeContainer(w, KindSharedCheckpoint, e.buf)
}

// LoadSharedFleetCheckpoint reads a shared-fleet-checkpoint container.
// Rejects legacy KindCheckpoint files — use LoadAnyFleetCheckpoint for
// format-agnostic recovery.
func LoadSharedFleetCheckpoint(r io.Reader) (*SharedFleetCheckpoint, error) {
	payload, err := readContainer(r, KindSharedCheckpoint)
	if err != nil {
		return nil, err
	}
	return decodeSharedFleetCheckpoint(payload)
}

// decodeSharedFleetCheckpoint decodes a verified KindSharedCheckpoint
// payload. Shapes are plausibility-checked here; full graph validation
// happens when the caller rebuilds the base through
// graph.FromSnapshotWithBase and upserts the deltas.
func decodeSharedFleetCheckpoint(payload []byte) (*SharedFleetCheckpoint, error) {
	d := dec{buf: payload}
	cp := &SharedFleetCheckpoint{Seq: d.u64()}
	cp.BaseUsers = d.i()
	cp.BaseItems = d.i()
	cp.Base.NumUsers = d.i()
	cp.Base.NumItems = d.i()
	cp.Base.Epoch = d.u64()
	n := d.count(24)
	cp.Base.Ratings = make([]graph.Rating, n)
	for j := range cp.Base.Ratings {
		cp.Base.Ratings[j] = graph.Rating{User: d.i(), Item: d.i(), Weight: d.f64()}
	}
	nShards := d.count(16)
	if d.err == nil && nShards == 0 {
		return nil, fmt.Errorf("persist: checkpoint has no shards")
	}
	cp.Shards = make([]ShardOverlay, nShards)
	for k := range cp.Shards {
		s := &cp.Shards[k]
		s.Epoch = d.u64()
		if m := d.count(24); m > 0 {
			s.Deltas = make([]graph.Rating, m)
			for j := range s.Deltas {
				s.Deltas[j] = graph.Rating{User: d.i(), Item: d.i(), Weight: d.f64()}
			}
		}
	}
	if d.err == nil {
		if cp.BaseUsers < 0 || cp.BaseUsers > cp.Base.NumUsers ||
			cp.BaseItems < 0 || cp.BaseItems > cp.Base.NumItems {
			return nil, fmt.Errorf("persist: base universe (%d,%d) outside snapshot universe (%d,%d)",
				cp.BaseUsers, cp.BaseItems, cp.Base.NumUsers, cp.Base.NumItems)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return cp, nil
}

// LoadAnyFleetCheckpoint reads a fleet checkpoint in EITHER format,
// returning the shared-base representation: a KindSharedCheckpoint loads
// natively; a legacy KindCheckpoint (N full snapshots) is converted —
// shard 0's snapshot becomes the base, and each shard's divergence from
// shard 0 becomes its overlay delta. Legacy checkpoints are written after
// fleet convergence, so the shards are normally content-identical and the
// converted deltas empty; a legacy shard that is MISSING an edge shard 0
// has cannot be expressed as a delta (the write model has no deletes) and
// fails loudly rather than restoring a wrong graph.
func LoadAnyFleetCheckpoint(r io.Reader) (*SharedFleetCheckpoint, error) {
	kind, payload, err := readContainerAny(r)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindSharedCheckpoint:
		return decodeSharedFleetCheckpoint(payload)
	case KindCheckpoint:
		legacy, err := decodeFleetCheckpoint(payload)
		if err != nil {
			return nil, err
		}
		return convertLegacyCheckpoint(legacy)
	default:
		return nil, fmt.Errorf("persist: container holds a %v, want a %v or legacy %v",
			kind, KindSharedCheckpoint, KindCheckpoint)
	}
}

type edgeKey struct{ u, i int }

// convertLegacyCheckpoint lifts an N-full-snapshot checkpoint into the
// shared-base representation.
func convertLegacyCheckpoint(legacy *FleetCheckpoint) (*SharedFleetCheckpoint, error) {
	base := legacy.Shards[0]
	cp := &SharedFleetCheckpoint{
		Seq:       legacy.Seq,
		BaseUsers: base.BaseUsers,
		BaseItems: base.BaseItems,
		Base:      base.Snapshot,
		Shards:    make([]ShardOverlay, len(legacy.Shards)),
	}
	// The shared universe must cover every shard's: replicas converge at
	// refresh, but a crash can catch admissions mid-propagation.
	for _, s := range legacy.Shards {
		if s.Snapshot.NumUsers > cp.Base.NumUsers {
			cp.Base.NumUsers = s.Snapshot.NumUsers
		}
		if s.Snapshot.NumItems > cp.Base.NumItems {
			cp.Base.NumItems = s.Snapshot.NumItems
		}
	}
	baseEdges := make(map[edgeKey]float64, len(base.Snapshot.Ratings))
	for _, r := range base.Snapshot.Ratings {
		baseEdges[edgeKey{r.User, r.Item}] = r.Weight
	}
	for k, s := range legacy.Shards {
		cp.Shards[k].Epoch = s.Snapshot.Epoch
		if k == 0 {
			continue // shard 0 IS the base: no delta by construction
		}
		seen := 0
		for _, r := range s.Snapshot.Ratings {
			if w, ok := baseEdges[edgeKey{r.User, r.Item}]; ok {
				seen++
				if w == r.Weight {
					continue
				}
			}
			cp.Shards[k].Deltas = append(cp.Shards[k].Deltas, r)
		}
		if seen < len(baseEdges) {
			return nil, fmt.Errorf("persist: legacy checkpoint shard %d is missing %d edges shard 0 has; "+
				"a deletion cannot be expressed as a shared-base delta", k, len(baseEdges)-seen)
		}
	}
	return cp, nil
}
