// Package persist serializes datasets and trained models to a compact,
// versioned binary container so the expensive offline phase (LDA Gibbs
// sampling, SVD, SGD factorization) runs once and the online phase —
// cmd/ltr-server, batch scoring — loads in milliseconds.
//
// Container layout (all integers little-endian):
//
//	magic   [4]byte  "LTRZ"
//	version uint16   container format version (currently 1)
//	kind    uint16   payload type (KindDataset, KindLDA, ...)
//	length  uint64   payload byte count
//	payload [length]byte
//	crc32   uint32   IEEE checksum of payload
//
// Every Load* function verifies magic, version, kind, and checksum before
// decoding, so truncated or corrupted files fail loudly instead of
// producing a silently wrong model.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Kind identifies the payload type of a container.
type Kind uint16

// Payload kinds. The numeric values are part of the on-disk format:
// never reorder or reuse them.
const (
	KindDataset    Kind = 1
	KindLDA        Kind = 2
	KindBiasedMF   Kind = 3
	KindPureSVD    Kind = 4
	KindGraph      Kind = 5
	KindCheckpoint Kind = 6
	// KindSharedCheckpoint is a fleet checkpoint that stores the shared
	// base snapshot ONCE plus one small overlay per shard, instead of N
	// full graph copies (KindCheckpoint). Written by shared-base fleets;
	// both kinds load through LoadAnyFleetCheckpoint.
	KindSharedCheckpoint Kind = 7
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindDataset:
		return "dataset"
	case KindLDA:
		return "lda-model"
	case KindBiasedMF:
		return "biased-mf"
	case KindPureSVD:
		return "pure-svd"
	case KindGraph:
		return "graph"
	case KindCheckpoint:
		return "fleet-checkpoint"
	case KindSharedCheckpoint:
		return "shared-fleet-checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint16(k))
	}
}

const (
	formatVersion = 1
	// maxPayload guards against absurd length prefixes from corrupted
	// headers before allocation (1 GiB).
	maxPayload = 1 << 30
)

var magic = [4]byte{'L', 'T', 'R', 'Z'}

// writeContainer frames an encoded payload and writes it out.
func writeContainer(w io.Writer, kind Kind, payload []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("persist: write magic: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(kind))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := bw.Write(payload); err != nil {
		return fmt.Errorf("persist: write payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("persist: write checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("persist: flush: %w", err)
	}
	return nil
}

// readContainer reads and verifies a container of one specific kind,
// returning the payload.
func readContainer(r io.Reader, want Kind) ([]byte, error) {
	k, payload, err := readContainerAny(r)
	if err != nil {
		return nil, err
	}
	if k != want {
		return nil, fmt.Errorf("persist: container holds a %v, want a %v", k, want)
	}
	return payload, nil
}

// readContainerAny reads and verifies a container, returning its kind and
// payload — the multi-format entry point (e.g. a fleet checkpoint may be
// legacy per-shard or shared-base; the caller dispatches on the kind).
func readContainerAny(r io.Reader) (Kind, []byte, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return 0, nil, fmt.Errorf("persist: read magic: %w", err)
	}
	if m != magic {
		return 0, nil, fmt.Errorf("persist: bad magic %q (not a longtail container)", m[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("persist: read header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != formatVersion {
		return 0, nil, fmt.Errorf("persist: unsupported format version %d (this build reads %d)", v, formatVersion)
	}
	kind := Kind(binary.LittleEndian.Uint16(hdr[2:4]))
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("persist: payload length %d exceeds limit %d (corrupt header?)", n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("persist: read payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("persist: read checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sum[:]); got != want {
		return 0, nil, fmt.Errorf("persist: checksum mismatch (payload %08x, recorded %08x): file is corrupted", got, want)
	}
	return kind, payload, nil
}

// enc is an append-only little-endian payload encoder.
type enc struct{ buf []byte }

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *enc) i(v int) { e.u64(uint64(int64(v))) }

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) f64s(v []float64) {
	e.i(len(v))
	for _, x := range v {
		e.f64(x)
	}
}

// dec is a sticky-error little-endian payload decoder.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("payload truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i() int { return int(int64(d.u64())) }

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count validates a decoded length against remaining payload, assuming
// each element needs at least elemSize bytes.
func (d *dec) count(elemSize int) int {
	n := d.i()
	if d.err != nil {
		return 0
	}
	if n < 0 || elemSize > 0 && n > (len(d.buf)-d.off)/elemSize {
		d.fail("implausible element count %d at offset %d", n, d.off)
		return 0
	}
	return n
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("persist: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

// SaveFile writes a container to path via save, atomically: the bytes go
// to a temporary file in the target directory, are fsynced, and the temp
// file is renamed over path (then the directory entry is synced). A crash
// at any point leaves either the complete old file or the complete new
// one — never a truncated container — which is what lets the checkpoint
// path treat an existing file as always-loadable.
func SaveFile(path string, save func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("persist: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir makes a rename in dir durable. Best-effort: some filesystems
// reject directory fsync, and the rename itself already guarantees
// old-or-new atomicity — only the window until the next journal flush is
// at stake.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// LoadFile opens path and decodes it via load.
func LoadFile(path string, load func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return load(bufio.NewReader(f))
}
