package persist

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"longtailrec/internal/dataset"
	"longtailrec/internal/lda"
	"longtailrec/internal/mf"
	"longtailrec/internal/svd"
)

func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var ratings []dataset.Rating
	for u := 0; u < 12; u++ {
		for i := 0; i < 15; i++ {
			if rng.Float64() < 0.5 {
				continue
			}
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: float64(1 + rng.Intn(5))})
		}
	}
	d, err := dataset.New(12, 15, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDatasetRoundTrip(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != d.NumUsers() || got.NumItems() != d.NumItems() || got.NumRatings() != d.NumRatings() {
		t.Fatalf("dims changed: %d/%d/%d vs %d/%d/%d",
			got.NumUsers(), got.NumItems(), got.NumRatings(),
			d.NumUsers(), d.NumItems(), d.NumRatings())
	}
	want := d.Ratings()
	have := got.Ratings()
	for k := range want {
		if want[k] != have[k] {
			t.Fatalf("rating %d changed: %+v vs %+v", k, have[k], want[k])
		}
	}
}

// TestGraphRoundTrip: write -> save -> load preserves every edge and the
// epoch, with the writes still pending in the delta overlay at save time
// (the silent-data-loss case: snapshotting must merge the overlay, not
// just the compacted CSR) and the universe grown past the built one.
func TestGraphRoundTrip(t *testing.T) {
	g := testDataset(t).Graph()
	// Live phase: re-rate, insert, and auto-grow — all left uncompacted.
	if err := g.UpdateRating(0, 0, 2.5); err != nil {
		if _, aerr := g.UpsertRating(0, 0, 2.5); aerr != nil {
			t.Fatal(err, aerr)
		}
	}
	if _, err := g.UpsertRating(11, 14, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRatingAutoGrow(13, 17, 5); err != nil {
		t.Fatal(err)
	}
	if g.PendingWrites() == 0 {
		t.Fatal("test needs pending overlay writes at save time")
	}

	var buf bytes.Buffer
	if err := SaveGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != g.NumUsers() || got.NumItems() != g.NumItems() {
		t.Fatalf("universe changed: %d/%d vs %d/%d",
			got.NumUsers(), got.NumItems(), g.NumUsers(), g.NumItems())
	}
	if got.Epoch() != g.Epoch() {
		t.Fatalf("epoch changed: %d vs %d", got.Epoch(), g.Epoch())
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", got.NumEdges(), g.NumEdges())
	}
	if math.Abs(got.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatalf("total weight changed: %v vs %v", got.TotalWeight(), g.TotalWeight())
	}
	for u := 0; u < g.NumUsers(); u++ {
		items, ws := g.UserItems(u)
		gotItems, gotWs := got.UserItems(u)
		if len(items) != len(gotItems) {
			t.Fatalf("user %d has %d ratings after round-trip, want %d", u, len(gotItems), len(items))
		}
		for k := range items {
			if items[k] != gotItems[k] || ws[k] != gotWs[k] {
				t.Fatalf("user %d rating %d changed: (%d,%v) vs (%d,%v)",
					u, k, gotItems[k], gotWs[k], items[k], ws[k])
			}
		}
	}
}

func TestGraphWrongKindRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDataset(&buf, testDataset(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraph(&buf); err == nil || !strings.Contains(err.Error(), "holds a dataset") {
		t.Fatalf("dataset container accepted as graph: %v", err)
	}
}

func TestSaveNilInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDataset(&buf, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if err := SaveLDA(&buf, nil); err == nil {
		t.Fatal("nil LDA accepted")
	}
	if err := SaveBiasedMF(&buf, nil); err == nil {
		t.Fatal("nil BiasedMF accepted")
	}
	if err := SavePureSVD(&buf, nil); err == nil {
		t.Fatal("nil PureSVD accepted")
	}
	if err := SaveGraph(&buf, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestLDARoundTrip(t *testing.T) {
	d := testDataset(t)
	m, err := lda.Train(d, lda.Config{NumTopics: 3, Iterations: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveLDA(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLDA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTopics() != m.NumTopics() || got.NumUsers() != m.NumUsers() || got.NumItems() != m.NumItems() {
		t.Fatal("model dimensions changed")
	}
	a1, b1 := m.Priors()
	a2, b2 := got.Priors()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("priors changed: (%v,%v) vs (%v,%v)", a2, b2, a1, b1)
	}
	for u := 0; u < m.NumUsers(); u++ {
		for i := 0; i < m.NumItems(); i++ {
			if w, g := m.Score(u, i), got.Score(u, i); w != g {
				t.Fatalf("score(%d,%d) changed: %v vs %v", u, i, g, w)
			}
		}
	}
}

func TestBiasedMFRoundTrip(t *testing.T) {
	d := testDataset(t)
	m, err := mf.TrainBiasedMF(d, mf.Options{Factors: 4, Epochs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBiasedMF(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBiasedMF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		sa := m.ScoreAll(u, nil)
		sb := got.ScoreAll(u, nil)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("score(%d,%d) changed: %v vs %v", u, i, sb[i], sa[i])
			}
		}
	}
}

func TestPureSVDRoundTrip(t *testing.T) {
	d := testDataset(t)
	m, err := svd.NewPureSVD(d, svd.Options{Rank: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePureSVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPureSVD(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		sa := m.ScoreAll(u, nil)
		sb := got.ScoreAll(u, nil)
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-15 {
				t.Fatalf("score(%d,%d) changed: %v vs %v", u, i, sb[i], sa[i])
			}
		}
	}
	// Binding to a mismatched dataset must fail, not mis-score.
	other, err := dataset.New(3, 4, []dataset.Rating{{User: 0, Item: 0, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SavePureSVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPureSVD(&buf, other); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload byte (after the 16-byte header).
	for _, pos := range []int{16, 20, len(raw) - 10} {
		mangled := append([]byte(nil), raw...)
		mangled[pos] ^= 0x40
		_, err := LoadDataset(bytes.NewReader(mangled))
		if err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, 4, 15, 16, len(raw) / 2, len(raw) - 1} {
		if _, err := LoadDataset(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestWrongMagicRejected(t *testing.T) {
	if _, err := LoadDataset(strings.NewReader("not a container at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWrongKindRejected(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLDA(&buf); err == nil || !strings.Contains(err.Error(), "holds a dataset") {
		t.Fatalf("kind mismatch not reported usefully: %v", err)
	}
}

func TestWrongVersionRejected(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version low byte
	if _, err := LoadDataset(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not reported: %v", err)
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Set the payload length to 2 GiB; the reader must refuse before
	// allocating.
	raw[8], raw[9], raw[10], raw[11] = 0, 0, 0, 0x80
	if _, err := LoadDataset(bytes.NewReader(raw)); err == nil {
		t.Fatal("2 GiB length accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDataset:  "dataset",
		KindLDA:      "lda-model",
		KindBiasedMF: "biased-mf",
		KindPureSVD:  "pure-svd",
		Kind(77):     "kind(77)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFileHelpers(t *testing.T) {
	d := testDataset(t)
	path := filepath.Join(t.TempDir(), "data.ltrz")
	if err := SaveFile(path, func(w io.Writer) error { return SaveDataset(w, d) }); err != nil {
		t.Fatal(err)
	}
	var got *dataset.Dataset
	if err := LoadFile(path, func(r io.Reader) error {
		var lerr error
		got, lerr = LoadDataset(r)
		return lerr
	}); err != nil {
		t.Fatal(err)
	}
	if got.NumRatings() != d.NumRatings() {
		t.Fatal("file round trip lost ratings")
	}
	if err := LoadFile(filepath.Join(t.TempDir(), "missing.ltrz"), func(io.Reader) error { return nil }); err == nil {
		t.Fatal("missing file accepted")
	}
}
