package assoc

import (
	"math"
	"testing"

	"longtailrec/internal/dataset"
)

func coRatedDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	// Items 0 and 1 are co-rated by 4 of 5 users; item 2 is rated once.
	var ratings []dataset.Rating
	for u := 0; u < 4; u++ {
		ratings = append(ratings,
			dataset.Rating{User: u, Item: 0, Score: 5},
			dataset.Rating{User: u, Item: 1, Score: 4})
	}
	ratings = append(ratings, dataset.Rating{User: 4, Item: 2, Score: 5})
	d, err := dataset.New(5, 3, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineFindsStrongPair(t *testing.T) {
	d := coRatedDataset(t)
	m, err := Mine(d, Options{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRules() != 2 {
		t.Fatalf("rules %d, want 2 (both directions)", m.NumRules())
	}
	rules := m.RulesFrom(0)
	if len(rules) != 1 {
		t.Fatalf("rules from 0: %+v", rules)
	}
	r := rules[0]
	if r.Consequent != 1 {
		t.Fatalf("consequent %d", r.Consequent)
	}
	if math.Abs(r.Support-0.8) > 1e-12 {
		t.Fatalf("support %v, want 0.8", r.Support)
	}
	if math.Abs(r.Confidence-1) > 1e-12 {
		t.Fatalf("confidence %v, want 1", r.Confidence)
	}
}

func TestMineThresholdsFilter(t *testing.T) {
	d := coRatedDataset(t)
	m, err := Mine(d, Options{MinSupport: 0.9, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRules() != 0 {
		t.Fatalf("high support threshold kept %d rules", m.NumRules())
	}
}

func TestScoreAllFiresRules(t *testing.T) {
	d := coRatedDataset(t)
	m, err := Mine(d, Options{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// A hypothetical user who rated item 0: rules fire into item 1.
	scores := m.ScoreAll(0, nil)
	if scores[1] <= 0 {
		t.Fatalf("scores %v", scores)
	}
	if scores[2] != 0 {
		t.Fatalf("tail item scored %v by association rules", scores[2])
	}
}

func TestAssociationRulesNeverReachTail(t *testing.T) {
	// The §1 claim this baseline exists to demonstrate: rules require head
	// support, so tail items can never be consequents.
	d := coRatedDataset(t)
	m, err := Mine(d, Options{MinSupport: 0.3, MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Rules() {
		if r.Consequent == 2 || r.Antecedent == 2 {
			t.Fatalf("tail item appears in rule %+v", r)
		}
	}
}

func TestRulesCopyIsolation(t *testing.T) {
	d := coRatedDataset(t)
	m, err := Mine(d, Options{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules := m.Rules()
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	rules[0].Confidence = -99
	if m.Rules()[0].Confidence == -99 {
		t.Fatal("Rules leaked internal storage")
	}
}
