// Package assoc implements a pairwise association-rule recommender, the
// comparator the paper's introduction singles out as structurally biased
// toward popular items: a rule item_a → item_b needs high support for both
// sides, so mined rules cover only the head of the catalog. Having the
// real mechanism available lets the benchmark harness demonstrate that
// bias rather than assert it.
package assoc

import (
	"fmt"
	"sort"

	"longtailrec/internal/dataset"
)

// Rule is a mined pairwise association A → B.
type Rule struct {
	Antecedent, Consequent int
	Support                float64 // P(A ∧ B): co-rating fraction over users
	Confidence             float64 // P(B | A)
}

// Options configure mining thresholds.
type Options struct {
	MinSupport    float64 // minimum co-rating fraction; <= 0 means 0.01
	MinConfidence float64 // minimum confidence; <= 0 means 0.1
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.01
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.1
	}
	return o
}

// Miner holds mined rules indexed by antecedent.
type Miner struct {
	data         *dataset.Dataset
	rules        []Rule
	byAntecedent map[int][]int // antecedent item -> rule indices
}

// Mine enumerates pairwise rules meeting the thresholds. Complexity is
// O(Σ_u |S_u|²) for candidate generation — fine at the corpus sizes this
// library targets.
func Mine(d *dataset.Dataset, opts Options) (*Miner, error) {
	opts = opts.withDefaults()
	nu := d.NumUsers()
	if nu == 0 {
		return nil, fmt.Errorf("assoc: empty dataset")
	}
	// Count co-occurrences.
	pairCount := make(map[[2]int]int)
	itemCount := make([]int, d.NumItems())
	for u := 0; u < nu; u++ {
		rs := d.UserRatings(u)
		items := make([]int, len(rs))
		for k, r := range rs {
			items[k] = r.Item
			itemCount[r.Item]++
		}
		sort.Ints(items)
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				pairCount[[2]int{items[a], items[b]}]++
			}
		}
	}
	m := &Miner{data: d, byAntecedent: make(map[int][]int)}
	total := float64(nu)
	for pair, cnt := range pairCount {
		support := float64(cnt) / total
		if support < opts.MinSupport {
			continue
		}
		// Both directions.
		for _, dir := range [][2]int{{pair[0], pair[1]}, {pair[1], pair[0]}} {
			ante, cons := dir[0], dir[1]
			if itemCount[ante] == 0 {
				continue
			}
			conf := float64(cnt) / float64(itemCount[ante])
			if conf < opts.MinConfidence {
				continue
			}
			m.byAntecedent[ante] = append(m.byAntecedent[ante], len(m.rules))
			m.rules = append(m.rules, Rule{Antecedent: ante, Consequent: cons, Support: support, Confidence: conf})
		}
	}
	return m, nil
}

// NumRules returns how many rules were mined.
func (m *Miner) NumRules() int { return len(m.rules) }

// Rules returns a copy of all mined rules.
func (m *Miner) Rules() []Rule {
	out := make([]Rule, len(m.rules))
	copy(out, m.rules)
	return out
}

// RulesFrom returns the rules whose antecedent is the given item, sorted by
// descending confidence.
func (m *Miner) RulesFrom(item int) []Rule {
	idx := m.byAntecedent[item]
	out := make([]Rule, len(idx))
	for k, i := range idx {
		out[k] = m.rules[i]
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].Consequent < out[b].Consequent
	})
	return out
}

// ScoreAll fills out[i] with the summed confidence of all rules firing
// from the user's rated items into item i.
func (m *Miner) ScoreAll(user int, out []float64) []float64 {
	ni := m.data.NumItems()
	if len(out) != ni {
		out = make([]float64, ni)
	}
	for i := range out {
		out[i] = 0
	}
	for _, r := range m.data.UserRatings(user) {
		for _, idx := range m.byAntecedent[r.Item] {
			rule := m.rules[idx]
			out[rule.Consequent] += rule.Confidence
		}
	}
	return out
}
