// Shared-base views: many Bipartite values over ONE immutable base.
//
// A sharded serving fleet used to give every replica a full copy of the
// graph, so memory, checkpoint size and popularity merges all scaled with
// the shard count. But the compacted CSR is immutable between
// compactions — the same property the universe already exploits
// (universe.go publishes an immutable snapshot behind an atomic pointer).
// This file applies that pattern to the adjacency itself: every Bipartite
// is a VIEW over a sharedState holding the base snapshot (CSR, degrees,
// total weight, edge count) and the node universe, both behind atomic
// pointers. A standalone graph is simply a shared state with one view, so
// the single-replica stack runs exactly the code it always did.
//
// Each view owns only its delta: the copy-on-write overlay, its write
// epoch, and scalar drift counters (weightDelta/edgeDelta) relative to
// the base. Compaction becomes a GROUP FOLD: it takes every view's write
// lock (in construction order — the one global lock order), merges all
// overlays into one freshly built CSR, publishes it as the new base and
// clears every overlay. Folding is content-neutral fleet-wide, so it
// bumps NO epoch: a view whose overlay was empty keeps serving its cached
// results (same rows, same answers), and a view whose foreign siblings'
// writes just became visible to it observes the documented cross-shard
// eventual consistency, not an invalidation event.
//
// Correctness of the merge rests on edge ownership: the edge (u, i)
// changes only through user u's home view (writes route by user), so two
// views' overlay rows for the same ITEM node differ from the base in
// disjoint user columns, and folding their diffs cannot conflict. User
// rows are only ever written by one view.

package graph

import (
	"sort"
	"sync"
	"sync/atomic"

	"longtailrec/internal/sparse"
)

// baseSnapshot is the immutable compacted core every view reads: the
// symmetric CSR plus the per-node degree vector and the graph-wide
// aggregates at fold time. Published behind sharedState.base; never
// mutated after publication.
type baseSnapshot struct {
	adj         *sparse.CSR
	degrees     []float64 // weighted degree per node; len == CSR row count
	totalWeight float64   // Σ_ij a(i,j), each edge counted twice
	numEdges    int       // undirected edge count
}

// sharedState is the storage one or more Bipartite views share.
type sharedState struct {
	// uni is the node universe — fleet-wide: an admission through any
	// view grows it for every view (ids stay dense and consistent across
	// shards; the admitting view alone pays the epoch bump).
	uni atomic.Pointer[universe]
	// base is the current immutable snapshot. Swapped only while every
	// view's write lock is held, so a reader holding any view's read lock
	// sees one consistent (base, overlay) pair.
	base atomic.Pointer[baseSnapshot]
	// growMu serializes universe growth across views (each view's write
	// lock alone cannot: two views would race the read-modify-swap).
	// Lock order: view mu first, growMu second, never the reverse.
	growMu sync.Mutex //ltr:guardmu
	// views lists every view in lock-acquisition order. Set at
	// construction (Build, ShareViews) before any concurrent use and
	// immutable afterwards.
	views []*Bipartite
}

// lockAll takes every view's write lock in construction order.
//
//ltr:lockentry
func (s *sharedState) lockAll() {
	for _, v := range s.views {
		v.mu.Lock()
	}
}

// unlockAll releases what lockAll took.
func (s *sharedState) unlockAll() {
	for i := len(s.views) - 1; i >= 0; i-- {
		s.views[i].mu.Unlock()
	}
}

// ShareViews splits g into n views over one shared base: view 0 is g
// itself, views 1..n-1 are fresh overlay-only views (epoch 0, empty
// overlay, no auto-compaction threshold). Any pending overlay writes are
// folded first so every view starts from the same published base.
// Construction-time only: call before the views serve concurrent traffic,
// and route every write for a given user through one fixed view (edge
// ownership is what makes group folds conflict-free). With n == 1 the
// graph is returned unchanged — a standalone graph already is its own
// single view.
func ShareViews(g *Bipartite, n int) []*Bipartite {
	if n <= 1 {
		return []*Bipartite{g}
	}
	g.Compact()
	views := make([]*Bipartite, n)
	views[0] = g
	for i := 1; i < n; i++ {
		views[i] = &Bipartite{shared: g.shared}
	}
	g.shared.views = views
	return views
}

// NumViews returns how many views share this graph's base (1 for a
// standalone graph).
func (g *Bipartite) NumViews() int { return len(g.shared.views) }

// SharesBaseWith reports whether g and o are views over the same shared
// base (the fleet-detection predicate: a fleet of such views can share
// one checkpoint base and one popularity scan).
func (g *Bipartite) SharesBaseWith(o *Bipartite) bool {
	return o != nil && g.shared == o.shared
}

// RestoreEpoch overwrites the view's write epoch — checkpoint-restore
// wiring, so a rebuilt view resumes its recorded cache-invalidation
// counter instead of the replay-inflated one. Not for live use.
func (g *Bipartite) RestoreEpoch(epoch uint64) { g.epoch.Store(epoch) }

// OverlayDelta returns this view's pending writes as user-side ratings:
// every (user, item, weight) where the view's live row differs from the
// shared base (insertions and re-rates; the write model has no deletes).
// Admission-only nodes contribute nothing. Sorted by (user, item) so a
// serialized delta is deterministic.
func (g *Bipartite) OverlayDelta() []Rating {
	g.mu.RLock()
	defer g.mu.RUnlock()
	base := g.shared.base.Load()
	uni := g.shared.uni.Load()
	var out []Rating
	for v, r := range g.overlay {
		if !uni.isUser(v) {
			continue
		}
		u := uni.userIndex(v)
		var bcols []int
		var bws []float64
		if v < len(base.degrees) {
			bcols, bws = base.adj.Row(v)
		}
		bi := 0
		for k, c := range r.cols {
			for bi < len(bcols) && bcols[bi] < c {
				bi++
			}
			if bi < len(bcols) && bcols[bi] == c && bws[bi] == r.weights[k] {
				continue
			}
			out = append(out, Rating{User: u, Item: uni.itemIndex(c), Weight: r.weights[k]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].User != out[b].User {
			return out[a].User < out[b].User
		}
		return out[a].Item < out[b].Item
	})
	return out
}

// FleetItemPopularity returns the exact union rater count per item across
// every view sharing this base: the base count once, plus each view's
// overlay delta. Taking every view's read lock (in lock order) pins one
// consistent (base, overlays, universe) triple, so the result cannot mix
// a pre-fold base with post-fold overlays — and writes on other views are
// each counted exactly once, because an item row's overlay delta on a
// view covers only that view's own users.
//
//ltr:lockentry
func (g *Bipartite) FleetItemPopularity() []int {
	s := g.shared
	for _, v := range s.views {
		v.mu.RLock()
	}
	defer func() {
		for i := len(s.views) - 1; i >= 0; i-- {
			s.views[i].mu.RUnlock()
		}
	}()
	base := s.base.Load()
	uni := s.uni.Load()
	pop := make([]int, uni.numItems)
	for i := 0; i < uni.numItems; i++ {
		v := uni.itemNode(i)
		baseNNZ := 0
		if v < len(base.degrees) {
			baseNNZ = base.adj.RowNNZ(v)
		}
		pop[i] = baseNNZ
		for _, view := range s.views {
			if r, ok := view.overlay[v]; ok {
				pop[i] += len(r.cols) - baseNNZ
			}
		}
	}
	return pop
}

// foldLocked merges every view's overlay into a freshly built CSR,
// publishes it as the new shared base and clears all overlays and drift
// counters. Caller holds EVERY view's write lock. Content-neutral
// fleet-wide: no epoch moves (see the file comment). With all overlays
// empty it only resets the pending-write counters — the base (and thus
// Adjacency identity) is untouched.
//
//ltr:groupfold
func (s *sharedState) foldLocked() {
	views := s.views
	pending := false
	for _, v := range views {
		if len(v.overlay) > 0 {
			pending = true
			break
		}
	}
	if !pending {
		for _, v := range views {
			v.overlayWrites = 0
		}
		return
	}
	base := s.base.Load()
	n := s.uni.Load().numNodes()
	baseN := len(base.degrees)
	totalWeight := base.totalWeight
	numEdges := base.numEdges
	for _, v := range views {
		totalWeight += v.weightDelta
		numEdges += v.edgeDelta
	}
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, 2*numEdges)
	vals := make([]float64, 0, 2*numEdges)
	degrees := make([]float64, n)
	hits := make([]*liveRow, 0, len(views))
	for v := 0; v < n; v++ {
		hits = hits[:0]
		for _, view := range views {
			if r, ok := view.overlay[v]; ok {
				hits = append(hits, r)
			}
		}
		var cols []int
		var ws []float64
		var deg float64
		switch {
		case len(hits) == 0:
			if v < baseN {
				cols, ws = base.adj.Row(v)
				deg = base.degrees[v]
			}
		case len(hits) == 1:
			// Only one view touched v — its overlay row IS the merged row
			// (overlay rows are full rows, base included).
			cols, ws, deg = hits[0].cols, hits[0].weights, hits[0].degree
		default:
			cols, ws, deg = mergeOverlayRows(base, v, baseN, hits)
		}
		colIdx = append(colIdx, cols...)
		vals = append(vals, ws...)
		rowPtr[v+1] = len(colIdx)
		degrees[v] = deg
	}
	s.base.Store(&baseSnapshot{
		adj:         newCompactCSR(n, rowPtr, colIdx, vals),
		degrees:     degrees,
		totalWeight: totalWeight,
		numEdges:    numEdges,
	})
	for _, v := range views {
		v.overlay = nil
		v.overlayWrites = 0
		v.weightDelta = 0
		v.edgeDelta = 0
	}
}

// mergeOverlayRows merges several views' overlay rows for node v (an item
// node raters from different shards wrote concurrently): start from the
// base row, apply each view's diff against the base. Edge ownership makes
// the diffs disjoint, so application order is irrelevant.
func mergeOverlayRows(base *baseSnapshot, v, baseN int, hits []*liveRow) (cols []int, ws []float64, deg float64) {
	var bcols []int
	var bws []float64
	if v < baseN {
		bcols, bws = base.adj.Row(v)
	}
	merged := make(map[int]float64, len(bcols)+2*len(hits))
	for k, c := range bcols {
		merged[c] = bws[k]
	}
	for _, r := range hits {
		bi := 0
		for k, c := range r.cols {
			for bi < len(bcols) && bcols[bi] < c {
				bi++
			}
			if bi < len(bcols) && bcols[bi] == c && bws[bi] == r.weights[k] {
				continue // unchanged base edge: not part of this view's diff
			}
			merged[c] = r.weights[k]
		}
	}
	cols = make([]int, 0, len(merged))
	for c := range merged {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	ws = make([]float64, len(cols))
	for k, c := range cols {
		ws[k] = merged[c]
		deg += merged[c]
	}
	return cols, ws, deg
}
