package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure2Ratings is the exact rating table of Figure 2 in the paper:
//
//	    M1 M2 M3 M4 M5 M6
//	U1   5  3  -  -  3  5
//	U2   5  4  5  -  4  5
//	U3   4  5  4  -  -  -
//	U4   -  -  5  5  -  -
//	U5   -  4  5  -  -  -
func figure2Ratings() []Rating {
	return []Rating{
		{0, 0, 5}, {0, 1, 3}, {0, 4, 3}, {0, 5, 5},
		{1, 0, 5}, {1, 1, 4}, {1, 2, 5}, {1, 4, 4}, {1, 5, 5},
		{2, 0, 4}, {2, 1, 5}, {2, 2, 4},
		{3, 2, 5}, {3, 3, 5},
		{4, 1, 4}, {4, 2, 5},
	}
}

func figure2Graph(t testing.TB) *Bipartite {
	g, err := FromRatings(5, 6, figure2Ratings())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildFigure2(t *testing.T) {
	g := figure2Graph(t)
	if g.NumUsers() != 5 || g.NumItems() != 6 || g.NumNodes() != 11 {
		t.Fatalf("sizes %d/%d/%d", g.NumUsers(), g.NumItems(), g.NumNodes())
	}
	if g.NumEdges() != 16 {
		t.Fatalf("edges %d, want 16", g.NumEdges())
	}
	// U2's degree: 5+4+5+4+5 = 23.
	if d := g.Degree(g.UserNode(1)); d != 23 {
		t.Fatalf("deg(U2) = %v, want 23", d)
	}
	// M4 rated only by U4 with 5.
	if d := g.Degree(g.ItemNode(3)); d != 5 {
		t.Fatalf("deg(M4) = %v, want 5", d)
	}
	// Symmetric weights.
	if g.Weight(g.UserNode(4), g.ItemNode(2)) != 5 || g.Weight(g.ItemNode(2), g.UserNode(4)) != 5 {
		t.Fatal("weight not symmetric")
	}
}

func TestNodeMapping(t *testing.T) {
	g := figure2Graph(t)
	if !g.IsUserNode(0) || g.IsItemNode(0) {
		t.Fatal("node 0 should be a user")
	}
	in := g.ItemNode(2)
	if !g.IsItemNode(in) || g.ItemIndex(in) != 2 {
		t.Fatalf("item node mapping broken: %d", in)
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(2, 2)
	if err := b.AddRating(-1, 0, 5); err == nil {
		t.Fatal("negative user accepted")
	}
	if err := b.AddRating(0, 2, 5); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if err := b.AddRating(0, 0, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := b.AddRating(0, 0, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := b.AddRating(1, 1, 3); err != nil {
		t.Fatalf("valid rating rejected: %v", err)
	}
}

func TestDuplicateRatingsSum(t *testing.T) {
	g, err := FromRatings(1, 1, []Rating{{0, 0, 2}, {0, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Weight(0, 1); w != 5 {
		t.Fatalf("duplicate edge weight %v, want 5", w)
	}
}

func TestStationaryDistribution(t *testing.T) {
	g := figure2Graph(t)
	pi := g.Stationary()
	sum := 0.0
	for v, p := range pi {
		if p < 0 {
			t.Fatalf("negative stationary prob at %d", v)
		}
		sum += p
		// Eq. 2: π_v proportional to degree.
		want := g.Degree(v) / g.TotalWeight()
		if math.Abs(p-want) > 1e-15 {
			t.Fatalf("π[%d] = %v, want %v", v, p, want)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("stationary sums to %v", sum)
	}
}

func TestTimeReversibility(t *testing.T) {
	// π_i p_ij = π_j p_ji for all edges (§3.3).
	g := figure2Graph(t)
	pi := g.Stationary()
	for v := 0; v < g.NumNodes(); v++ {
		nbrs, ws := g.Neighbors(v)
		for k, w := range nbrs {
			pvw := ws[k] / g.Degree(v)
			pwv := g.Weight(w, v) / g.Degree(w)
			if math.Abs(pi[v]*pvw-pi[w]*pwv) > 1e-15 {
				t.Fatalf("reversibility violated on edge (%d,%d)", v, w)
			}
		}
	}
}

func TestItemPopularity(t *testing.T) {
	g := figure2Graph(t)
	pop := g.ItemPopularity()
	want := []int{3, 4, 4, 1, 2, 2}
	for i := range want {
		if pop[i] != want[i] {
			t.Fatalf("popularity[%d] = %d, want %d", i, pop[i], want[i])
		}
	}
}

func TestUserItems(t *testing.T) {
	g := figure2Graph(t)
	items, weights := g.UserItems(4) // U5 rated M2:4, M3:5
	if len(items) != 2 {
		t.Fatalf("U5 has %d items", len(items))
	}
	got := map[int]float64{}
	for k, it := range items {
		got[it] = weights[k]
	}
	if got[1] != 4 || got[2] != 5 {
		t.Fatalf("U5 items = %v", got)
	}
}

func TestConnectedComponentsSingle(t *testing.T) {
	g := figure2Graph(t)
	_, count := g.ConnectedComponents()
	if count != 1 {
		t.Fatalf("Figure 2 graph has %d components, want 1", count)
	}
}

func TestConnectedComponentsIsolated(t *testing.T) {
	// User 1 and item 1 never rated: two extra singleton components.
	g, err := FromRatings(2, 2, []Rating{{0, 0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[2] {
		t.Fatal("rated pair not in same component")
	}
}

func TestExtractSubgraphWholeGraph(t *testing.T) {
	g := figure2Graph(t)
	sg, err := ExtractSubgraph(g, []int{g.UserNode(4)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Len() != g.NumNodes() {
		t.Fatalf("unlimited subgraph has %d nodes, want %d", sg.Len(), g.NumNodes())
	}
	if sg.NumItemNodes() != 6 {
		t.Fatalf("subgraph items %d, want 6", sg.NumItemNodes())
	}
}

func TestExtractSubgraphLimited(t *testing.T) {
	g := figure2Graph(t)
	sg, err := ExtractSubgraph(g, []int{g.ItemNode(1), g.ItemNode(2)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumItemNodes() < 2 {
		t.Fatal("seeds lost from subgraph")
	}
	// Seeds must be present and mapped consistently.
	for _, orig := range []int{g.ItemNode(1), g.ItemNode(2)} {
		l, ok := sg.LocalNode(orig)
		if !ok {
			t.Fatalf("seed %d missing", orig)
		}
		if sg.OriginalNode(l) != orig {
			t.Fatal("local/original mapping inconsistent")
		}
		if !sg.IsItemLocal(l) {
			t.Fatal("item seed not flagged as item")
		}
	}
}

func TestSubgraphAdjacencyMatchesParent(t *testing.T) {
	g := figure2Graph(t)
	sg, err := ExtractSubgraph(g, []int{g.UserNode(3)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	adj := sg.Adjacency()
	for li := 0; li < sg.Len(); li++ {
		for lj := 0; lj < sg.Len(); lj++ {
			want := g.Weight(sg.OriginalNode(li), sg.OriginalNode(lj))
			if got := adj.At(li, lj); got != want {
				t.Fatalf("subgraph weight (%d,%d) = %v, want %v", li, lj, got, want)
			}
		}
	}
}

func TestSubgraphItemLocals(t *testing.T) {
	g := figure2Graph(t)
	sg, err := ExtractSubgraph(g, []int{g.UserNode(0)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	locals := sg.ItemLocals()
	if len(locals) != 6 {
		t.Fatalf("ItemLocals = %d, want 6", len(locals))
	}
	for _, l := range locals {
		if !sg.IsItemLocal(l) || sg.IsUserLocal(l) {
			t.Fatal("ItemLocals returned a non-item")
		}
	}
}

func TestExtractSubgraphErrors(t *testing.T) {
	g := figure2Graph(t)
	if _, err := ExtractSubgraph(g, nil, 5); err == nil {
		t.Fatal("empty seeds accepted")
	}
	if _, err := ExtractSubgraph(g, []int{99}, 5); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

// randomGraph builds a connected-ish random bipartite graph for property tests.
func randomGraph(rng *rand.Rand, nu, ni int) *Bipartite {
	b := NewBuilder(nu, ni)
	for u := 0; u < nu; u++ {
		// Each user rates at least one item so no user is isolated.
		k := 1 + rng.Intn(ni)
		for _, i := range rng.Perm(ni)[:k] {
			_ = b.AddRating(u, i, float64(1+rng.Intn(5)))
		}
	}
	return b.Build()
}

func TestQuickStationarySumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(10), 2+r.Intn(10))
		pi := g.Stationary()
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(8), 2+r.Intn(8))
		// Sum of user degrees equals sum of item degrees (each edge
		// contributes its weight to exactly one user and one item).
		us, is := 0.0, 0.0
		for u := 0; u < g.NumUsers(); u++ {
			us += g.Degree(g.UserNode(u))
		}
		for i := 0; i < g.NumItems(); i++ {
			is += g.Degree(g.ItemNode(i))
		}
		return math.Abs(us-is) < 1e-9 && math.Abs(us+is-g.TotalWeight()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubgraphRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(10), 5+r.Intn(20))
		mu := 1 + r.Intn(6)
		seed0 := g.UserNode(r.Intn(g.NumUsers()))
		sg, err := ExtractSubgraph(g, []int{seed0}, mu)
		if err != nil {
			return false
		}
		// BFS adds at most one full neighbor fan-out past the budget; the
		// guarantee is "stop expanding once count exceeds µ", so the final
		// count never exceeds µ+1 plus the last node's item neighbors is
		// bounded by µ + 1 + maxDegree. We assert the tighter practical
		// bound: expansion stopped, i.e. count <= µ + fan-out of one node.
		maxFan := 0
		for v := 0; v < g.NumNodes(); v++ {
			nbrs, _ := g.Neighbors(v)
			if len(nbrs) > maxFan {
				maxFan = len(nbrs)
			}
		}
		return sg.NumItemNodes() <= mu+maxFan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
