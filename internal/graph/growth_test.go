// Tests for the open-universe growth path: AddUser/AddItem node
// admissions, UpsertRatingAutoGrow, snapshot round-trips, and the
// stability guarantees the serving layer depends on (node ids and row
// snapshots surviving growth).

package graph

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// growthSeedGraph builds the standard 3-user/4-item base used below.
func growthSeedGraph(t *testing.T) *Bipartite {
	t.Helper()
	g, err := FromRatings(3, 4, []Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3},
		{User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 2},
		{User: 2, Item: 3, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddUserAddItem(t *testing.T) {
	g := growthSeedGraph(t)
	if got := g.Epoch(); got != 0 {
		t.Fatalf("fresh epoch %d", got)
	}
	u := g.AddUser()
	if u != 3 {
		t.Fatalf("AddUser index %d, want 3", u)
	}
	i := g.AddItem()
	if i != 4 {
		t.Fatalf("AddItem index %d, want 4", i)
	}
	if g.NumUsers() != 4 || g.NumItems() != 5 || g.NumNodes() != 9 {
		t.Fatalf("universe %d users / %d items / %d nodes", g.NumUsers(), g.NumItems(), g.NumNodes())
	}
	if g.BaseNumUsers() != 3 || g.BaseNumItems() != 4 {
		t.Fatalf("base universe moved: %d/%d", g.BaseNumUsers(), g.BaseNumItems())
	}
	// Every admission is an accepted write.
	if got := g.Epoch(); got != 2 {
		t.Fatalf("epoch %d after two admissions, want 2", got)
	}
	// Grown nodes append at the end of the node space; base ids unchanged.
	if n := g.UserNode(3); n != 7 {
		t.Fatalf("grown user node %d, want 7", n)
	}
	if n := g.ItemNode(4); n != 8 {
		t.Fatalf("grown item node %d, want 8", n)
	}
	if g.UserNode(0) != 0 || g.ItemNode(0) != 3 {
		t.Fatal("base node ids moved")
	}
	// Kind and reverse mapping.
	if !g.IsUserNode(7) || g.IsItemNode(7) || !g.IsItemNode(8) || g.IsUserNode(8) {
		t.Fatal("grown node kinds wrong")
	}
	if g.UserIndex(7) != 3 || g.ItemIndex(8) != 4 {
		t.Fatalf("reverse mapping: user %d item %d", g.UserIndex(7), g.ItemIndex(8))
	}
	// New nodes are isolated until rated.
	if d := g.Degree(7); d != 0 {
		t.Fatalf("new user degree %v", d)
	}
	if nbrs, _ := g.Neighbors(8); len(nbrs) != 0 {
		t.Fatalf("new item has neighbors %v", nbrs)
	}
	if pop := g.ItemPopularity(); len(pop) != 5 || pop[4] != 0 {
		t.Fatalf("popularity %v", pop)
	}
	if degs := g.Degrees(); len(degs) != 9 || degs[7] != 0 || degs[8] != 0 {
		t.Fatalf("degrees %v", degs)
	}
}

func TestUpsertRatingAutoGrow(t *testing.T) {
	g := growthSeedGraph(t)
	// Unseen user AND unseen item in one write: both admitted, edge lands.
	added, err := g.UpsertRatingAutoGrow(5, 6, 4)
	if err != nil || !added {
		t.Fatalf("auto-grow upsert: added=%v err=%v", added, err)
	}
	if g.NumUsers() != 6 || g.NumItems() != 7 {
		t.Fatalf("universe %d/%d, want 6/7 (dense ids)", g.NumUsers(), g.NumItems())
	}
	// 3 new users + 3 new items + 1 edge write = 7 epoch bumps.
	if got := g.Epoch(); got != 7 {
		t.Fatalf("epoch %d, want 7", got)
	}
	if w := g.Weight(g.UserNode(5), g.ItemNode(6)); w != 4 {
		t.Fatalf("grown edge weight %v", w)
	}
	if w := g.Weight(g.ItemNode(6), g.UserNode(5)); w != 4 {
		t.Fatalf("grown edge not symmetric: %v", w)
	}
	if d := g.Degree(g.UserNode(5)); d != 4 {
		t.Fatalf("grown user degree %v", d)
	}
	// Intermediate admitted ids exist and are writable.
	if _, err := g.UpsertRatingAutoGrow(4, 5, 2); err != nil {
		t.Fatalf("write to intermediate grown ids: %v", err)
	}
	// Re-rate through the auto-grow path behaves like UpsertRating.
	added, err = g.UpsertRatingAutoGrow(5, 6, 5)
	if err != nil || added {
		t.Fatalf("re-rate: added=%v err=%v", added, err)
	}
	// In-universe writes still work through the same path.
	if _, err := g.UpsertRatingAutoGrow(0, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestUpsertRatingAutoGrowRejects(t *testing.T) {
	g := growthSeedGraph(t)
	cases := []struct{ u, i int }{
		{-1, 0},                     // negative user
		{0, -2},                     // negative item
		{3 + MaxDenseAdmissions, 0}, // absurd user jump
		{0, 4 + MaxDenseAdmissions}, // absurd item jump
		{1 << 40, 1 << 40},          // astronomically absurd
	}
	for _, c := range cases {
		_, err := g.UpsertRatingAutoGrow(c.u, c.i, 3)
		if err == nil {
			t.Fatalf("UpsertRatingAutoGrow(%d,%d) accepted", c.u, c.i)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("UpsertRatingAutoGrow(%d,%d) error %q lacks 'out of range'", c.u, c.i, err)
		}
	}
	// Invalid weights still rejected, and must not grow the universe.
	if _, err := g.UpsertRatingAutoGrow(9, 9, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := g.UpsertRatingAutoGrow(9, 9, math.NaN()); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if g.NumUsers() != 3 || g.NumItems() != 4 || g.Epoch() != 0 {
		t.Fatalf("rejected writes changed the graph: %d/%d epoch %d",
			g.NumUsers(), g.NumItems(), g.Epoch())
	}
}

// TestGrowthRowSnapshotsStable: row slices handed out before a growth stay
// valid and untouched — the copy-on-write contract extends to admissions.
func TestGrowthRowSnapshotsStable(t *testing.T) {
	g := growthSeedGraph(t)
	nbrsBefore, wsBefore := g.Neighbors(g.UserNode(0))
	nodesBefore := append([]int(nil), nbrsBefore...)
	weightsBefore := append([]float64(nil), wsBefore...)

	if _, err := g.UpsertRatingAutoGrow(10, 12, 3); err != nil {
		t.Fatal(err)
	}
	g.Compact()
	if _, err := g.UpsertRatingAutoGrow(0, 12, 2); err != nil {
		t.Fatal(err) // write to user 0 itself, post-compaction
	}
	for k := range nbrsBefore {
		if nbrsBefore[k] != nodesBefore[k] || wsBefore[k] != weightsBefore[k] {
			t.Fatal("pre-growth row snapshot mutated")
		}
	}
}

// TestGrowthCompact: compaction folds grown nodes into the CSR (empty rows
// included), clears the overlay, and leaves every live quantity unchanged.
func TestGrowthCompact(t *testing.T) {
	g := growthSeedGraph(t)
	if _, err := g.UpsertRatingAutoGrow(7, 9, 2.5); err != nil {
		t.Fatal(err)
	}
	g.AddItem() // isolated grown item, never rated
	edges, weight, epoch := g.NumEdges(), g.TotalWeight(), g.Epoch()
	pop := g.ItemPopularity()

	g.Compact()
	if g.PendingWrites() != 0 {
		t.Fatalf("pending writes %d after Compact", g.PendingWrites())
	}
	if g.Epoch() != epoch {
		t.Fatal("Compact moved the epoch")
	}
	if g.NumEdges() != edges || g.TotalWeight() != weight {
		t.Fatal("Compact changed edge content")
	}
	if r, _ := g.Adjacency().Dims(); r != g.NumNodes() {
		t.Fatalf("compacted CSR has %d rows for %d nodes", r, g.NumNodes())
	}
	pop2 := g.ItemPopularity()
	for i := range pop {
		if pop[i] != pop2[i] {
			t.Fatalf("popularity[%d] changed across Compact: %d -> %d", i, pop[i], pop2[i])
		}
	}
	// The compacted graph keeps growing.
	if _, err := g.UpsertRatingAutoGrow(8, 11, 1); err != nil {
		t.Fatal(err)
	}
	if w := g.Weight(g.UserNode(8), g.ItemNode(11)); w != 1 {
		t.Fatalf("post-compact grown edge weight %v", w)
	}
}

// TestGrowthExtractor: a SubgraphExtractor built before any growth keeps
// extracting correct subgraphs as the universe grows under it.
func TestGrowthExtractor(t *testing.T) {
	g := growthSeedGraph(t)
	ext := NewSubgraphExtractor(g)
	if _, err := ext.Extract([]int{g.UserNode(0)}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRatingAutoGrow(3, 1, 5); err != nil { // new user rates base item 1
		t.Fatal(err)
	}
	sg, err := ext.Extract([]int{g.UserNode(3)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// New user connects through item 1 to users 0 and 1 and their items.
	if l, ok := sg.LocalNode(g.UserNode(3)); !ok || l != 0 {
		t.Fatalf("seed local id (%d,%v)", l, ok)
	}
	if sg.Len() < 4 {
		t.Fatalf("subgraph of grown user too small: %d nodes", sg.Len())
	}
	if _, ok := sg.LocalNode(g.ItemNode(1)); !ok {
		t.Fatal("rated item missing from grown user's subgraph")
	}
	// Degrees must include the new edge.
	l, _ := sg.LocalNode(g.ItemNode(1))
	want := g.Degree(g.ItemNode(1))
	if got := sg.Degrees()[l]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("local degree %v, want %v", got, want)
	}
}

// TestSnapshotRoundTrip: write -> save -> load preserves every edge and
// the epoch, with pending overlay writes and grown nodes included.
func TestSnapshotRoundTrip(t *testing.T) {
	g := growthSeedGraph(t)
	if _, err := g.UpsertRatingAutoGrow(4, 6, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.UpdateRating(0, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if g.PendingWrites() == 0 {
		t.Fatal("test needs pending overlay writes")
	}
	snap := g.Snapshot()
	if snap.NumUsers != 5 || snap.NumItems != 7 {
		t.Fatalf("snapshot universe %d/%d", snap.NumUsers, snap.NumItems)
	}
	if snap.Epoch != g.Epoch() {
		t.Fatalf("snapshot epoch %d, graph %d", snap.Epoch, g.Epoch())
	}
	g2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Epoch() != g.Epoch() {
		t.Fatalf("reloaded epoch %d, want %d", g2.Epoch(), g.Epoch())
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("reloaded edges %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	if math.Abs(g2.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatalf("reloaded weight %v, want %v", g2.TotalWeight(), g.TotalWeight())
	}
	for u := 0; u < g.NumUsers(); u++ {
		items, ws := g.UserItems(u)
		for k, i := range items {
			if got := g2.Weight(g2.UserNode(u), g2.ItemNode(i)); got != ws[k] {
				t.Fatalf("edge (%d,%d) = %v after round-trip, want %v", u, i, got, ws[k])
			}
		}
		if g2.Degree(g2.UserNode(u)) != g.Degree(g.UserNode(u)) {
			t.Fatalf("user %d degree diverged", u)
		}
	}
}

// TestConcurrentGrowth: one writer grows the universe (admissions + edge
// writes + compactions) while readers extract subgraphs and walk every
// read surface. Run under -race.
func TestConcurrentGrowth(t *testing.T) {
	g := growthSeedGraph(t)
	g.SetCompactThreshold(16)
	const writes = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		defer close(stop)
		for k := 0; k < writes; k++ {
			u, i := k%50, (k*7)%60
			if _, err := g.UpsertRatingAutoGrow(u, i, 1+float64(k%5)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if k%64 == 0 {
				g.Compact()
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ext := NewSubgraphExtractor(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				nu := g.NumUsers()
				sg, err := ext.Extract([]int{g.UserNode(seed % nu)}, 10)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for l := 0; l < sg.Len(); l++ {
					sg.IsItemLocal(l)
				}
				g.Degrees()
				g.ItemPopularity()
				g.Stationary()
				g.NumEdges()
			}
		}(r)
	}
	wg.Wait()

	if g.NumUsers() != 50 || g.NumItems() != 60 {
		t.Fatalf("final universe %d/%d, want 50/60", g.NumUsers(), g.NumItems())
	}
}
