// Shared-base view unit tests: construction, group folds, per-view
// deltas, and the fleet-exact popularity merge.

package graph

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func sharedTestGraph(t *testing.T) *Bipartite {
	t.Helper()
	g, err := FromRatings(4, 5, []Rating{
		{User: 0, Item: 0, Weight: 3},
		{User: 0, Item: 2, Weight: 1},
		{User: 1, Item: 1, Weight: 5},
		{User: 2, Item: 2, Weight: 2},
		{User: 3, Item: 4, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShareViewsConstruction(t *testing.T) {
	g := sharedTestGraph(t)
	if got := g.NumViews(); got != 1 {
		t.Fatalf("standalone NumViews() = %d, want 1", got)
	}
	views := ShareViews(g, 3)
	if len(views) != 3 || views[0] != g {
		t.Fatalf("ShareViews returned %d views (views[0]==g: %v), want 3 with g first", len(views), views[0] == g)
	}
	adj := g.Adjacency()
	for i, v := range views {
		if v.NumViews() != 3 {
			t.Fatalf("view %d NumViews() = %d, want 3", i, v.NumViews())
		}
		if !v.SharesBaseWith(g) {
			t.Fatalf("view %d does not share g's base", i)
		}
		if v.Adjacency() != adj {
			t.Fatalf("view %d serves a different base CSR", i)
		}
		if v.NumUsers() != 4 || v.NumItems() != 5 {
			t.Fatalf("view %d universe = (%d,%d), want (4,5)", i, v.NumUsers(), v.NumItems())
		}
	}
	// n <= 1 is the identity.
	solo := sharedTestGraph(t)
	if vs := ShareViews(solo, 1); len(vs) != 1 || vs[0] != solo {
		t.Fatal("ShareViews(g, 1) must return g unchanged")
	}
	if sharedTestGraph(t).SharesBaseWith(g) {
		t.Fatal("independent graphs report a shared base")
	}
}

// TestSharedGroupFoldEquivalence pins fold correctness: writes routed by
// user across 3 views, folded in one group Compact, must yield exactly
// the graph a standalone replica reaches with the same stream — including
// concurrent overlay rows for one item rated from different views.
func TestSharedGroupFoldEquivalence(t *testing.T) {
	g := sharedTestGraph(t)
	views := ShareViews(g, 3)
	ref := sharedTestGraph(t)

	writes := []Rating{
		{User: 0, Item: 1, Weight: 2},   // view 0: new edge
		{User: 1, Item: 1, Weight: 1},   // view 1: re-rate, same item node as above
		{User: 2, Item: 1, Weight: 3.5}, // view 2: third view on the same item
		{User: 0, Item: 0, Weight: 4},   // view 0: re-rate
		{User: 2, Item: 3, Weight: 2},   // view 2: new edge
	}
	for _, w := range writes {
		if _, err := views[w.User%3].UpsertRating(w.User, w.Item, w.Weight); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.UpsertRating(w.User, w.Item, w.Weight); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-fold: each view sees the base plus ITS OWN overlay only.
	if got := views[1].Weight(views[1].UserNode(0), views[1].ItemNode(1)); got != 0 {
		t.Fatalf("view 1 sees view 0's unfolded write: weight = %v, want 0", got)
	}

	views[1].Compact() // any view folds the whole group
	ref.Compact()
	if !g.Adjacency().Equal(ref.Adjacency(), 1e-12) {
		t.Fatal("group fold diverged from the standalone replica")
	}
	if got, want := g.TotalWeight(), ref.TotalWeight(); got != want {
		t.Fatalf("TotalWeight = %v, want %v", got, want)
	}
	if got, want := g.NumEdges(), ref.NumEdges(); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	for i, v := range views {
		if v.PendingWrites() != 0 {
			t.Fatalf("view %d still pending after fold", i)
		}
		if v.Adjacency() != g.Adjacency() {
			t.Fatalf("view %d not republished onto the new base", i)
		}
	}
	// Epochs: per-view counts of OWN accepted writes, untouched by folds.
	for i, want := range []uint64{2, 1, 2} {
		if got := views[i].Epoch(); got != want {
			t.Fatalf("view %d epoch = %d, want %d", i, got, want)
		}
	}
}

func TestSharedOverlayDelta(t *testing.T) {
	g := sharedTestGraph(t)
	views := ShareViews(g, 2)
	if _, err := views[1].UpsertRating(1, 3, 2.5); err != nil { // addition
		t.Fatal(err)
	}
	if _, err := views[1].UpsertRating(1, 1, 4); err != nil { // re-rate
		t.Fatal(err)
	}
	if _, err := views[1].UpsertRating(3, 4, 4); err != nil { // identical no-op
		t.Fatal(err)
	}
	if d := views[0].OverlayDelta(); len(d) != 0 {
		t.Fatalf("untouched view has deltas: %+v", d)
	}
	want := []Rating{{User: 1, Item: 1, Weight: 4}, {User: 1, Item: 3, Weight: 2.5}}
	if got := views[1].OverlayDelta(); !reflect.DeepEqual(got, want) {
		t.Fatalf("OverlayDelta = %+v, want %+v", got, want)
	}
	views[0].Compact()
	if d := views[1].OverlayDelta(); len(d) != 0 {
		t.Fatalf("deltas survived the fold: %+v", d)
	}
}

// TestSharedFleetItemPopularity pins the exact merge: base counted once
// plus per-view deltas, under cross-view writes to the same item and an
// auto-grown item visible fleet-wide.
func TestSharedFleetItemPopularity(t *testing.T) {
	g := sharedTestGraph(t)
	views := ShareViews(g, 2)
	ref := sharedTestGraph(t)
	writes := []Rating{
		{User: 0, Item: 1, Weight: 2}, // view 0
		{User: 1, Item: 1, Weight: 3}, // view 1: re-rate (no count change)
		{User: 3, Item: 1, Weight: 1}, // view 1: same item, new rater
		{User: 2, Item: 5, Weight: 2}, // view 0: auto-grow admits item 5
	}
	for _, w := range writes {
		if _, err := views[w.User%2].UpsertRatingAutoGrow(w.User, w.Item, w.Weight); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.UpsertRatingAutoGrow(w.User, w.Item, w.Weight); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.ItemPopularity()
	if got := views[1].FleetItemPopularity(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-fold FleetItemPopularity = %v, want %v", got, want)
	}
	views[0].Compact()
	if got := views[0].FleetItemPopularity(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-fold FleetItemPopularity = %v, want %v", got, want)
	}
}

// TestConcurrentSharedViews races per-view writers (one goroutine per
// view, disjoint users), cross-view admissions, group folds and readers
// on every view. Run under -race via make race.
func TestConcurrentSharedViews(t *testing.T) {
	g, err := FromRatings(6, 8, []Rating{
		{User: 0, Item: 0, Weight: 1},
		{User: 1, Item: 1, Weight: 2},
		{User: 2, Item: 2, Weight: 3},
		{User: 3, Item: 3, Weight: 4},
		{User: 4, Item: 4, Weight: 5},
		{User: 5, Item: 5, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	views := ShareViews(g, 3)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				u := s + 3*(i%2) // users s, s+3: this view only
				item := (s*5 + i) % 8
				if i%10 == 9 {
					item = 8 + i/10 // admissions race across views
				}
				if _, err := views[s].UpsertRatingAutoGrow(u, item, 1+float64(i%4)); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			views[i%3].Compact()
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				v := views[(r+i)%3]
				_ = v.Degrees()
				_ = v.TotalWeight()
				if pop := v.FleetItemPopularity(); len(pop) < 8 {
					errc <- errShrunk
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Quiesced invariant: fold once more, then every view agrees on the
	// merged content and the popularity merge equals a plain item scan.
	views[0].Compact()
	want := views[0].ItemPopularity()
	for i, v := range views {
		if got := v.FleetItemPopularity(); !reflect.DeepEqual(got, want) {
			t.Fatalf("view %d merged popularity %v, want %v", i, got, want)
		}
	}
}

// TestConcurrentExtractDuringFold races per-view subgraph extractions
// (Extract spans seed validation, BFS and the CSR build under ONE view
// read lock) against group folds (which take EVERY view's write lock in
// construction order) and per-view writers. This is the exact
// interleaving the lockorder analyzer (internal/analysis/lockorder)
// proves deadlock-free statically: folds are the only multi-lock takers,
// and they acquire in the one global order. Run under -race via make
// race.
func TestConcurrentExtractDuringFold(t *testing.T) {
	g, err := FromRatings(4, 6, []Rating{
		{User: 0, Item: 0, Weight: 1},
		{User: 1, Item: 1, Weight: 2},
		{User: 2, Item: 2, Weight: 3},
		{User: 3, Item: 3, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	views := ShareViews(g, 2)
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				u := s + 2*(i%2) // users s, s+2: this view only
				if _, err := views[s].UpsertRatingAutoGrow(u, (s*3+i)%6, 1+float64(i%3)); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			views[i%2].Compact()
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := views[r]
			ex := NewSubgraphExtractor(v)
			for i := 0; i < 120; i++ {
				sg, err := ex.Extract([]int{v.UserNode(r)}, 0)
				if err != nil {
					errc <- err
					return
				}
				// The snapshot must be internally consistent: a symmetric
				// adjacency never pairs a node with a degree from another
				// epoch, so every local row sum matches the cached degree.
				for l := 0; l < sg.Len(); l++ {
					_, ws := sg.Adjacency().Row(l)
					sum := 0.0
					for _, w := range ws {
						sum += w
					}
					if d := sg.Degrees()[l]; d != sum {
						errc <- &tearError{node: l, deg: d, sum: sum}
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type tearError struct {
	node     int
	deg, sum float64
}

func (e *tearError) Error() string {
	return fmt.Sprintf("torn subgraph snapshot: local node %d cached degree %g, row sum %g", e.node, e.deg, e.sum)
}

var errShrunk = &shrinkError{}

type shrinkError struct{}

func (*shrinkError) Error() string { return "popularity vector shrank below the base universe" }
