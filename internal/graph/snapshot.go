// Atomic whole-graph snapshots for persistence.
//
// Snapshot reads every live edge — base CSR plus the pending delta overlay
// — under one read lock, so a serialized graph never silently drops
// uncompacted writes, and carries the epoch so a reloaded graph resumes
// the same cache-invalidation counter instead of restarting at zero (which
// would let results cached against the pre-save graph be served against
// the post-load one).

package graph

import "fmt"

// GraphSnapshot is a point-in-time, self-contained copy of a Bipartite:
// universe sizes, write epoch, and every undirected edge exactly once
// (listed from the user side). Node ids are canonicalized — a graph grown
// live reloads with the standard contiguous numbering — but user indices,
// item indices, edges and the epoch are preserved exactly.
//
// Canonicalization deliberately resets the base/live universe split: the
// reloaded graph's BaseNumUsers/BaseNumItems equal the snapshot's full
// (grown) sizes, as if the graph had been built from the grown corpus.
// Models trained on the pre-growth corpus therefore do not carry over a
// reloaded graph — their vectors fail the base-universe validation loudly
// instead of silently mis-indexing; retrain them against the snapshot
// (the loss-free input it exists to provide) before serving.
type GraphSnapshot struct {
	NumUsers, NumItems int
	Epoch              uint64
	Ratings            []Rating
}

// Snapshot captures the live graph, including pending overlay writes and
// nodes admitted since the last compaction. The copy is atomic: one read
// lock spans the whole traversal, so a concurrent writer cannot tear it.
func (g *Bipartite) Snapshot() GraphSnapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	uni := g.shared.uni.Load()
	snap := GraphSnapshot{
		NumUsers: uni.numUsers,
		NumItems: uni.numItems,
		Epoch:    g.epoch.Load(),
		Ratings:  make([]Rating, 0, g.shared.base.Load().numEdges+g.edgeDelta),
	}
	for u := 0; u < uni.numUsers; u++ {
		cols, weights := g.rowLocked(uni.userNode(u))
		for k, v := range cols {
			snap.Ratings = append(snap.Ratings, Rating{User: u, Item: uni.itemIndex(v), Weight: weights[k]})
		}
	}
	return snap
}

// FromSnapshot rebuilds a graph from a snapshot: batch-built over the
// snapshot universe with the recorded epoch restored. The edge set and
// every per-index quantity (weights, degrees, popularity) match the
// snapshotted graph; node ids follow the standard contiguous layout and
// the snapshot universe becomes the new base (see GraphSnapshot).
func FromSnapshot(snap GraphSnapshot) (*Bipartite, error) {
	g, err := FromRatings(snap.NumUsers, snap.NumItems, snap.Ratings)
	if err != nil {
		return nil, err
	}
	g.epoch.Store(snap.Epoch)
	return g, nil
}

// FromSnapshotWithBase rebuilds a graph from a snapshot while preserving
// the original base/live universe split: the first baseUsers users and
// baseItems items form the compiled base universe, everything beyond is
// re-admitted as live growth. This is the checkpoint-restore path — a
// server that trained entropy models against the dataset universe and
// then admitted users live must come back with the SAME BaseNumUsers and
// BaseNumItems, or the trained vectors would fail base-universe
// validation (or worse, silently mis-index) against a base that
// swallowed the growth. Edge set, universe sizes and epoch match the
// snapshot exactly, as with FromSnapshot.
func FromSnapshotWithBase(snap GraphSnapshot, baseUsers, baseItems int) (*Bipartite, error) {
	if baseUsers < 0 || baseUsers > snap.NumUsers {
		return nil, fmt.Errorf("graph: base users %d outside snapshot universe [0,%d]", baseUsers, snap.NumUsers)
	}
	if baseItems < 0 || baseItems > snap.NumItems {
		return nil, fmt.Errorf("graph: base items %d outside snapshot universe [0,%d]", baseItems, snap.NumItems)
	}
	base := make([]Rating, 0, len(snap.Ratings))
	grown := make([]Rating, 0)
	for _, r := range snap.Ratings {
		if r.User < baseUsers && r.Item < baseItems {
			base = append(base, r)
		} else {
			grown = append(grown, r)
		}
	}
	g, err := FromRatings(baseUsers, baseItems, base)
	if err != nil {
		return nil, err
	}
	for u := baseUsers; u < snap.NumUsers; u++ {
		g.AddUser()
	}
	for i := baseItems; i < snap.NumItems; i++ {
		g.AddItem()
	}
	for _, r := range grown {
		if _, err := g.UpsertRating(r.User, r.Item, r.Weight); err != nil {
			return nil, fmt.Errorf("graph: restoring grown edge (%d,%d): %w", r.User, r.Item, err)
		}
	}
	// Replayed admissions and edge writes moved the epoch; the snapshot's
	// recorded epoch is the authoritative resume point.
	g.Compact()
	g.epoch.Store(snap.Epoch)
	return g, nil
}
