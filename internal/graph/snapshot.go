// Atomic whole-graph snapshots for persistence.
//
// Snapshot reads every live edge — base CSR plus the pending delta overlay
// — under one read lock, so a serialized graph never silently drops
// uncompacted writes, and carries the epoch so a reloaded graph resumes
// the same cache-invalidation counter instead of restarting at zero (which
// would let results cached against the pre-save graph be served against
// the post-load one).

package graph

// GraphSnapshot is a point-in-time, self-contained copy of a Bipartite:
// universe sizes, write epoch, and every undirected edge exactly once
// (listed from the user side). Node ids are canonicalized — a graph grown
// live reloads with the standard contiguous numbering — but user indices,
// item indices, edges and the epoch are preserved exactly.
//
// Canonicalization deliberately resets the base/live universe split: the
// reloaded graph's BaseNumUsers/BaseNumItems equal the snapshot's full
// (grown) sizes, as if the graph had been built from the grown corpus.
// Models trained on the pre-growth corpus therefore do not carry over a
// reloaded graph — their vectors fail the base-universe validation loudly
// instead of silently mis-indexing; retrain them against the snapshot
// (the loss-free input it exists to provide) before serving.
type GraphSnapshot struct {
	NumUsers, NumItems int
	Epoch              uint64
	Ratings            []Rating
}

// Snapshot captures the live graph, including pending overlay writes and
// nodes admitted since the last compaction. The copy is atomic: one read
// lock spans the whole traversal, so a concurrent writer cannot tear it.
func (g *Bipartite) Snapshot() GraphSnapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	uni := g.uni.Load()
	snap := GraphSnapshot{
		NumUsers: uni.numUsers,
		NumItems: uni.numItems,
		Epoch:    g.epoch.Load(),
		Ratings:  make([]Rating, 0, g.numEdges),
	}
	for u := 0; u < uni.numUsers; u++ {
		cols, weights := g.rowLocked(uni.userNode(u))
		for k, v := range cols {
			snap.Ratings = append(snap.Ratings, Rating{User: u, Item: uni.itemIndex(v), Weight: weights[k]})
		}
	}
	return snap
}

// FromSnapshot rebuilds a graph from a snapshot: batch-built over the
// snapshot universe with the recorded epoch restored. The edge set and
// every per-index quantity (weights, degrees, popularity) match the
// snapshotted graph; node ids follow the standard contiguous layout and
// the snapshot universe becomes the new base (see GraphSnapshot).
func FromSnapshot(snap GraphSnapshot) (*Bipartite, error) {
	g, err := FromRatings(snap.NumUsers, snap.NumItems, snap.Ratings)
	if err != nil {
		return nil, err
	}
	g.epoch.Store(snap.Epoch)
	return g, nil
}
