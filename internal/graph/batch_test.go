package graph

import (
	"math"
	"strings"
	"testing"
)

func TestUpsertRatingsBatchSingleEpochBump(t *testing.T) {
	g := liveFixture(t)
	before := g.Epoch()

	results := g.UpsertRatingsBatch([]WriteOp{
		{User: 0, Item: 2, Score: 4, AutoGrow: false},  // new edge
		{User: 0, Item: 1, Score: 9, AutoGrow: false},  // re-rate
		{User: 0, Item: 1, Score: 9, AutoGrow: false},  // no-op (same score)
		{User: 3, Item: 4, Score: 1, AutoGrow: true},   // admits u3, i4 + edge
		{User: 9, Item: 0, Score: 2, AutoGrow: false},  // out of range → fails
		{User: 1, Item: 0, Score: -1, AutoGrow: false}, // bad weight → fails
	})
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	wantAdded := []bool{true, false, false, true, false, false}
	wantErr := []bool{false, false, false, false, true, true}
	for k := range results {
		if results[k].Added != wantAdded[k] {
			t.Errorf("op %d: Added = %v, want %v", k, results[k].Added, wantAdded[k])
		}
		if (results[k].Err != nil) != wantErr[k] {
			t.Errorf("op %d: Err = %v, want error=%v", k, results[k].Err, wantErr[k])
		}
	}
	// Accepted writes: edge(0,2) + re-rate(0,1) + [admit u3 + admit i4 +
	// edge(3,4)] = 5. No-op and failures earn nothing.
	if got := g.Epoch() - before; got != 5 {
		t.Errorf("epoch delta = %d, want 5 (one bump covering all accepted writes)", got)
	}
	if g.NumUsers() != 4 || g.NumItems() != 5 {
		t.Errorf("universe = (%d,%d), want (4,5)", g.NumUsers(), g.NumItems())
	}
	if w := g.Weight(g.UserNode(0), g.ItemNode(1)); w != 9 {
		t.Errorf("re-rated weight = %v, want 9", w)
	}
	if w := g.Weight(g.UserNode(3), g.ItemNode(4)); w != 1 {
		t.Errorf("grown edge weight = %v, want 1", w)
	}
}

// TestUpsertRatingsBatchIntraBatchGrowth checks the inside-the-lock
// validation: a later op of the same batch may target ids that only an
// earlier op of the batch admitted.
func TestUpsertRatingsBatchIntraBatchGrowth(t *testing.T) {
	g := liveFixture(t)
	results := g.UpsertRatingsBatch([]WriteOp{
		{User: 3, Item: 0, Score: 2, AutoGrow: true},  // admits u3
		{User: 3, Item: 1, Score: 1, AutoGrow: false}, // u3 now in range
	})
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("op %d failed: %v", k, r.Err)
		}
	}
	if g.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d, want 4", g.NumUsers())
	}
}

func TestUpsertRatingsBatchEmpty(t *testing.T) {
	g := liveFixture(t)
	before := g.Epoch()
	if got := g.UpsertRatingsBatch(nil); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
	if g.Epoch() != before {
		t.Errorf("empty batch moved the epoch")
	}
}

func TestCheckWriteMatchesApply(t *testing.T) {
	g := liveFixture(t)
	cases := []struct {
		name     string
		u, i     int
		w        float64
		autoGrow bool
		wantErr  string
	}{
		{"in-range", 0, 0, 1, false, ""},
		{"user-oob", 7, 0, 1, false, "out of range"},
		{"item-oob", 0, 9, 1, false, "out of range"},
		{"grow-ok", 3, 4, 1, true, ""},
		{"zero-weight", 0, 0, 0, false, "positive"},
		{"nan-weight", 0, 0, math.NaN(), false, "positive"},
	}
	for _, tc := range cases {
		err := g.CheckWrite(tc.u, tc.i, tc.w, tc.autoGrow)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	// CheckWrite must not mutate: same graph, same epoch, same universe.
	if g.Epoch() != 0 || g.NumUsers() != 3 || g.NumItems() != 4 {
		t.Errorf("CheckWrite mutated the graph: epoch=%d universe=(%d,%d)",
			g.Epoch(), g.NumUsers(), g.NumItems())
	}
}

func TestFromSnapshotWithBase(t *testing.T) {
	g := liveFixture(t)
	// Grow live: one user, one item, edges touching them, plus a re-rate
	// of a base edge.
	if _, err := g.UpsertRatingAutoGrow(3, 4, 2.5); err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpsertRating(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()

	r, err := FromSnapshotWithBase(snap, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseNumUsers() != 3 || r.BaseNumItems() != 4 {
		t.Fatalf("restored base = (%d,%d), want (3,4)",
			r.BaseNumUsers(), r.BaseNumItems())
	}
	if r.NumUsers() != g.NumUsers() || r.NumItems() != g.NumItems() {
		t.Fatalf("restored universe = (%d,%d), want (%d,%d)",
			r.NumUsers(), r.NumItems(), g.NumUsers(), g.NumItems())
	}
	if r.Epoch() != g.Epoch() {
		t.Errorf("restored epoch = %d, want %d", r.Epoch(), g.Epoch())
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("restored edges = %d, want %d", r.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g.NumUsers(); u++ {
		for i := 0; i < g.NumItems(); i++ {
			want := g.Weight(g.UserNode(u), g.ItemNode(i))
			got := r.Weight(r.UserNode(u), r.ItemNode(i))
			if want != got {
				t.Errorf("edge (%d,%d): weight %v, want %v", u, i, got, want)
			}
		}
	}

	// Contrast: plain FromSnapshot swallows growth into the base.
	p, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if p.BaseNumUsers() != 4 || p.BaseNumItems() != 5 {
		t.Fatalf("FromSnapshot base = (%d,%d), want grown (4,5)",
			p.BaseNumUsers(), p.BaseNumItems())
	}
}

func TestFromSnapshotWithBaseRejectsBadBase(t *testing.T) {
	snap := liveFixture(t).Snapshot()
	if _, err := FromSnapshotWithBase(snap, 4, 4); err == nil {
		t.Error("base users beyond snapshot universe accepted")
	}
	if _, err := FromSnapshotWithBase(snap, -1, 4); err == nil {
		t.Error("negative base users accepted")
	}
	if _, err := FromSnapshotWithBase(snap, 3, 5); err == nil {
		t.Error("base items beyond snapshot universe accepted")
	}
}
