// Write journal + subgraph fingerprints: the machinery behind fine-grained
// cache invalidation.
//
// Every accepted live write touches exactly two nodes (the user and the
// item; a node admission touches one). Each view records those node ids in
// a small bounded ring journal whose monotone head is the view's
// write-generation counter, and keeps a per-node last-write generation map.
// A walk result depends only on its extracted subgraph, so a cached result
// fingerprinted with (journal watermark at extraction, bloom of subgraph
// node ids) can be revalidated on hit: scan the journal entries newer than
// the watermark; if none of the touched nodes can be in the bloom, the
// result is provably unchanged even though the epoch moved. Journal
// overflow — more than journalCap writes since the entry was built —
// degrades soundly to "stale".
//
// The journal lives with the view's overlay machinery: writers append under
// the view's write lock (applyRatingLocked / growUnderLocks), while
// CheckFingerprint readers are lock-free (atomic head + atomic slots, with
// a post-scan overflow recheck guarding torn slot reads). A group fold
// publishes a new base but changes no graph content, so it records nothing
// — the same contract as the epoch invariant (INVARIANTS.md).

package graph

import "sync/atomic"

const (
	// journalCap is the ring capacity: how many writes a cached entry may
	// lag behind before revalidation degrades to "stale". Power of two
	// (index masking); 2048 slots = 16 KiB per view.
	journalCap = 2048

	fpWords  = 64           // bloom filter words
	fpBits   = fpWords * 64 // 4096 bits
	fpProbes = 3            // hash probes per node
)

// writeJournal is one view's bounded ring of recently-touched node ids.
// head is the view's write generation: the total number of node touches
// (2 per edge write, 1 per admission) since construction. Slot (s-1) mod
// journalCap holds the node touched by generation s. Writers append under
// the view's write lock; readers are lock-free.
type writeJournal struct {
	head  atomic.Uint64
	slots [journalCap]atomic.Uint64
}

// touchNodeLocked records node v as written: bumps the view's write
// generation, journals v, and updates v's per-node generation counter.
// Caller holds g.mu for writing (the journal's only writer ordering).
//
//ltr:lockentry
func (g *Bipartite) touchNodeLocked(v int) {
	seq := g.journal.head.Load() + 1
	// Slot store strictly before head store: a reader that observed head
	// >= seq is guaranteed to read this slot's value, not a stale one.
	g.journal.slots[(seq-1)&(journalCap-1)].Store(uint64(v))
	g.journal.head.Store(seq)
	if g.nodeGens == nil {
		g.nodeGens = make(map[int]uint64)
	}
	g.nodeGens[v] = seq
}

// WriteGen returns this view's current write generation — the journal
// watermark subgraph fingerprints are stamped with. Lock-free.
func (g *Bipartite) WriteGen() uint64 { return g.journal.head.Load() }

// NodeGen returns the write generation of node v's most recent accepted
// write on this view (0 if v was never written live here). Admissions
// count: a freshly admitted node carries the generation of its admission.
func (g *Bipartite) NodeGen(v int) uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodeGens[v]
}

// FingerprintStatus is CheckFingerprint's verdict.
type FingerprintStatus int

const (
	// FingerprintFresh: no write since the fingerprint's watermark can have
	// touched a node in its set — the cached result is provably current.
	FingerprintFresh FingerprintStatus = iota
	// FingerprintStale: some write since the watermark touched a node the
	// bloom may contain — the result must be recomputed.
	FingerprintStale
	// FingerprintOverflow: the journal no longer covers the span since the
	// watermark (too many writes); soundly degraded to stale.
	FingerprintOverflow
)

// Fingerprint is a cached result's dependency set: the write-generation
// watermark of the view it was computed against plus a fixed-size bloom
// filter of the extracted subgraph's node ids. The zero value is invalid
// (entries carrying it revalidate epoch-exactly). It is a value type — no
// heap allocation to produce, copy or store one.
type Fingerprint struct {
	// Gen is the producing view's write generation at extraction time.
	Gen   uint64
	ok    bool
	words [fpWords]uint64
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash for node ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Reset clears the fingerprint and stamps it valid at watermark gen.
//
//ltr:allocfree
func (fp *Fingerprint) Reset(gen uint64) {
	*fp = Fingerprint{Gen: gen, ok: true}
}

// Invalidate marks the fingerprint unusable: holders fall back to
// epoch-exact validation. Used when a result depends on more than its
// subgraph (e.g. the global popularity vector under LongTailOnly).
func (fp *Fingerprint) Invalidate() { fp.ok = false }

// Valid reports whether the fingerprint can be revalidated against a
// journal. The zero value is invalid.
func (fp *Fingerprint) Valid() bool { return fp.ok }

// AddNode inserts node id v into the bloom set (double hashing: fpProbes
// positions derived from one splitmix64 evaluation).
//
//ltr:allocfree
func (fp *Fingerprint) AddNode(v int) {
	h := splitmix64(uint64(v))
	h1, h2 := h>>32, h|1
	for i := uint64(0); i < fpProbes; i++ {
		pos := (h1 + i*h2) & (fpBits - 1)
		fp.words[pos>>6] |= 1 << (pos & 63)
	}
}

// MayContain reports whether node id v may be in the set. False positives
// (≈ (fill)^k) cost a spurious recomputation; false negatives cannot occur.
//
//ltr:allocfree
func (fp *Fingerprint) MayContain(v int) bool {
	h := splitmix64(uint64(v))
	h1, h2 := h>>32, h|1
	for i := uint64(0); i < fpProbes; i++ {
		pos := (h1 + i*h2) & (fpBits - 1)
		if fp.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// CheckFingerprint revalidates a cached result's fingerprint against this
// view's write journal: scan every journaled write newer than fp.Gen; if
// none touched a node the bloom may contain, the result is Fresh despite
// the epoch having moved. Lock-free — safe to call from cache lookups
// concurrent with writers; a concurrent overwrite of a scanned slot is
// caught by the post-scan overflow recheck (a slot can only be reused
// after journalCap further writes, which the recheck observes).
//
//ltr:allocfree
func (g *Bipartite) CheckFingerprint(fp *Fingerprint) FingerprintStatus {
	h := g.journal.head.Load()
	if h == fp.Gen {
		return FingerprintFresh
	}
	if h < fp.Gen {
		// A watermark from a different journal lifetime (e.g. an entry
		// surviving a snapshot restore); nothing provable — stale.
		return FingerprintStale
	}
	// >= rather than >: one slot of headroom guards the in-flight case
	// where a writer has stored its slot but not yet published head.
	if h-fp.Gen >= journalCap {
		return FingerprintOverflow
	}
	for s := fp.Gen + 1; s <= h; s++ {
		v := g.journal.slots[(s-1)&(journalCap-1)].Load()
		if fp.MayContain(int(v)) {
			return FingerprintStale
		}
	}
	if g.journal.head.Load()-fp.Gen >= journalCap {
		// Writers lapped the ring during the scan: some slot read above may
		// have been torn. Soundly degrade.
		return FingerprintOverflow
	}
	return FingerprintFresh
}
