package graph

import (
	"fmt"
	"sort"

	"longtailrec/internal/sparse"
)

// Subgraph is a node-induced local neighborhood of a Bipartite graph,
// produced by the breadth-first expansion of Algorithm 1 step 2. It keeps
// its own compact node numbering (0..len(Nodes)-1) plus the mapping back to
// the parent graph.
//
// Edges between two subgraph nodes are retained with their original
// weights; edges leaving the subgraph are dropped, so the local random walk
// is the paper's truncated approximation of the global one.
//
// A Subgraph returned by SubgraphExtractor.Extract aliases the extractor's
// scratch storage and is only valid until the extractor's next Extract
// call; the standalone ExtractSubgraph wrapper has no such restriction.
type Subgraph struct {
	parent  *Bipartite
	nodes   []int       // local id -> original node id (BFS discovery order)
	adj     *sparse.CSR // local symmetric adjacency
	degrees []float64   // cached weighted degrees of the local adjacency
	items   int         // number of item nodes contained

	// Reverse mapping: local[v] is the local id of original node v, valid
	// only when stamp[v] == epoch. Shared with (and stamped by) the
	// extractor that produced this subgraph.
	stamp []int
	local []int
	epoch int

	// writeGen is the parent view's write-generation watermark at
	// extraction time (captured under the extraction read lock, so it
	// covers exactly the graph state the subgraph snapshotted) — the
	// watermark half of a cache fingerprint.
	writeGen uint64
}

// SubgraphExtractor performs repeated BFS subgraph extractions against one
// parent graph while reusing all intermediate storage. The epoch-stamped
// visited/local arrays replace the per-query map[int]int node remapping, and
// the local CSR is built directly from the parent adjacency into flat
// scratch slices — no COO builder, no per-query map, no re-sorted column
// permutation pass.
//
// An extractor is NOT safe for concurrent use; give each worker its own
// (see core.Engine, which pools them).
type SubgraphExtractor struct {
	g     *Bipartite
	epoch int
	stamp []int // stamp[v] == epoch ⇔ v is in the current subgraph
	local []int // local id of original node v when stamped

	nodes   []int // BFS discovery order; doubles as the queue
	rowPtr  []int
	colIdx  []int
	vals    []float64
	degrees []float64
	sorter  csrRowSorter
	sub     Subgraph
}

// NewSubgraphExtractor creates an extractor bound to g. Scratch arrays grow
// lazily to the sizes the queries actually need and are then reused; the
// node-indexed stamp/local arrays are re-sized per query off the graph's
// live node count, so an extractor keeps working while the universe grows.
func NewSubgraphExtractor(g *Bipartite) *SubgraphExtractor {
	e := &SubgraphExtractor{g: g}
	e.sizeToGraph(g.NumNodes())
	return e
}

// sizeToGraph ensures the node-indexed reverse-mapping arrays cover n
// nodes. Growth allocates fresh zeroed arrays (with headroom, so a
// steadily growing universe does not reallocate per query) and restarts
// the stamp epoch; Subgraphs handed out earlier keep the old arrays and
// epoch, so their reverse lookups stay consistent.
func (e *SubgraphExtractor) sizeToGraph(n int) {
	if n <= len(e.stamp) {
		return
	}
	e.stamp = make([]int, n+n/8)
	e.local = make([]int, n+n/8)
	e.epoch = 0
}

// Graph returns the parent graph the extractor is bound to.
func (e *SubgraphExtractor) Graph() *Bipartite { return e.g }

// Extract grows a subgraph outward from the seed nodes by breadth-first
// search, following Algorithm 1: expansion stops once the subgraph contains
// more than maxItems item nodes (seeds are always kept, whatever their
// type). A non-positive maxItems means "no limit", yielding the whole
// reachable component.
//
// Seed nodes occupy local ids 0..s-1 in seed order (duplicates skipped).
// The returned Subgraph aliases the extractor's scratch and is invalidated
// by the next Extract call on the same extractor.
//
//ltr:allocfree
func (e *SubgraphExtractor) Extract(seeds []int, maxItems int) (*Subgraph, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("graph: ExtractSubgraph needs at least one seed")
	}
	g := e.g
	// One read lock spans the whole extraction (seed validation, BFS and
	// the local CSR build): the subgraph is an atomic snapshot of the live
	// graph — a concurrent write cannot tear it into an asymmetric
	// adjacency, and the node count read below cannot be outgrown while
	// rows are traversed — and the hot loop pays a single lock acquisition
	// instead of one per node. Writers block for the duration of one
	// extraction, which is the documented cost model (reads dominate).
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.NumNodes()
	e.sizeToGraph(n)
	e.epoch++
	e.nodes = e.nodes[:0]
	items := 0
	//ltr:ignore allocfree add captures only the enclosing frame and never escapes: the compiler inlines it, no closure is heap-allocated
	add := func(v int) {
		e.stamp[v] = e.epoch
		e.local[v] = len(e.nodes)
		e.nodes = append(e.nodes, v)
		if g.IsItemNode(v) {
			items++
		}
	}
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("graph: seed node %d out of range [0,%d)", s, n)
		}
		if e.stamp[s] == e.epoch {
			continue
		}
		add(s)
	}
	// BFS with an index-based head: e.nodes is simultaneously the discovery
	// list and the queue, so there is no O(n²) queue = queue[1:] re-slicing
	// and no separate queue allocation.
	for head := 0; head < len(e.nodes); head++ {
		if maxItems > 0 && items > maxItems {
			break
		}
		nbrs, _ := g.rowLocked(e.nodes[head])
		for _, w := range nbrs {
			if e.stamp[w] == e.epoch {
				continue
			}
			if maxItems > 0 && items > maxItems && g.IsItemNode(w) {
				continue
			}
			add(w)
		}
	}
	e.buildLocalCSR()
	e.sub = Subgraph{
		parent:   g,
		nodes:    e.nodes,
		adj:      sparse.NewCSRView(len(e.nodes), len(e.nodes), e.rowPtr, e.colIdx, e.vals),
		degrees:  e.degrees,
		items:    items,
		stamp:    e.stamp,
		local:    e.local,
		epoch:    e.epoch,
		writeGen: g.journal.head.Load(),
	}
	return &e.sub, nil
}

// buildLocalCSR materializes the node-induced adjacency submatrix straight
// from the parent's live rows: one pass per row filtering to stamped
// neighbors, followed by an in-place per-row column sort (local ids are
// assigned in BFS order, so the parent's sorted-by-original-id rows arrive
// permuted). Degrees (local row sums) are computed in the same pass.
// Caller (Extract) holds the parent graph's read lock.
//
//ltr:allocfree
func (e *SubgraphExtractor) buildLocalCSR() {
	nl := len(e.nodes)
	if cap(e.rowPtr) < nl+1 {
		//ltr:ignore allocfree amortized growth: re-making doubles capacity, steady state never enters this branch
		e.rowPtr = make([]int, 0, 2*(nl+1))
	}
	if cap(e.degrees) < nl {
		//ltr:ignore allocfree amortized growth: re-making doubles capacity, steady state never enters this branch
		e.degrees = make([]float64, 0, 2*nl)
	}
	e.rowPtr = e.rowPtr[:0]
	e.degrees = e.degrees[:0]
	e.colIdx = e.colIdx[:0]
	e.vals = e.vals[:0]
	e.rowPtr = append(e.rowPtr, 0)
	for _, orig := range e.nodes {
		// rowLocked (not Adjacency().Row) so pending live writes in the
		// delta overlay are part of the extracted subgraph.
		cols, vals := e.g.rowLocked(orig)
		start := len(e.colIdx)
		sum := 0.0
		for k, w := range cols {
			if e.stamp[w] == e.epoch && vals[k] != 0 {
				e.colIdx = append(e.colIdx, e.local[w])
				e.vals = append(e.vals, vals[k])
				sum += vals[k]
			}
		}
		e.sortRow(start)
		e.rowPtr = append(e.rowPtr, len(e.colIdx))
		e.degrees = append(e.degrees, sum)
	}
}

// sortRow restores the ascending-column CSR invariant for the row segment
// colIdx[start:], swapping vals along. Small rows use insertion sort;
// larger ones go through sort.Sort on a pre-allocated sorter so no closure
// or interface value is allocated per row.
//
//ltr:allocfree
func (e *SubgraphExtractor) sortRow(start int) {
	cols := e.colIdx[start:]
	vals := e.vals[start:]
	if len(cols) <= 24 {
		for i := 1; i < len(cols); i++ {
			c, v := cols[i], vals[i]
			j := i - 1
			for j >= 0 && cols[j] > c {
				cols[j+1], vals[j+1] = cols[j], vals[j]
				j--
			}
			cols[j+1], vals[j+1] = c, v
		}
		return
	}
	e.sorter.cols, e.sorter.vals = cols, vals
	sort.Sort(&e.sorter)
	e.sorter.cols, e.sorter.vals = nil, nil
}

// csrRowSorter sorts a (column, value) row segment by ascending column.
type csrRowSorter struct {
	cols []int
	vals []float64
}

func (s *csrRowSorter) Len() int           { return len(s.cols) }
func (s *csrRowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *csrRowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// ExtractSubgraph grows a subgraph outward from the seed nodes by
// breadth-first search (Algorithm 1). It is a thin wrapper over
// SubgraphExtractor for one-shot callers; the returned Subgraph owns its
// storage (the throwaway extractor is never reused, so nothing aliases).
// Note that the Subgraph keeps the extractor's two NumNodes-sized reverse-
// mapping arrays alive for its lifetime — callers that extract and retain
// many Subgraphs, or that extract per query, should hold (and pool) a
// SubgraphExtractor instead.
func ExtractSubgraph(g *Bipartite, seeds []int, maxItems int) (*Subgraph, error) {
	return NewSubgraphExtractor(g).Extract(seeds, maxItems)
}

// Len returns the number of nodes in the subgraph.
func (sg *Subgraph) Len() int { return len(sg.nodes) }

// WriteGen returns the parent view's write-generation watermark the
// subgraph was extracted at (see Bipartite.WriteGen / CheckFingerprint).
func (sg *Subgraph) WriteGen() uint64 { return sg.writeGen }

// NumItemNodes returns how many item nodes the subgraph contains.
func (sg *Subgraph) NumItemNodes() int { return sg.items }

// Adjacency returns the local symmetric adjacency matrix.
func (sg *Subgraph) Adjacency() *sparse.CSR { return sg.adj }

// Degrees returns the weighted degree vector of the local adjacency
// (aliases internal storage). Cached at extraction time so chain
// construction does not recompute row sums per query.
func (sg *Subgraph) Degrees() []float64 { return sg.degrees }

// OriginalNode maps a local id back to the parent graph's node id.
func (sg *Subgraph) OriginalNode(local int) int { return sg.nodes[local] }

// LocalNode maps a parent node id to the local id, reporting presence.
func (sg *Subgraph) LocalNode(orig int) (int, bool) {
	if orig < 0 || orig >= len(sg.stamp) || sg.stamp[orig] != sg.epoch {
		return 0, false
	}
	return sg.local[orig], true
}

// IsItemLocal reports whether local node l is an item in the parent graph.
func (sg *Subgraph) IsItemLocal(l int) bool {
	return sg.parent.IsItemNode(sg.nodes[l])
}

// IsUserLocal reports whether local node l is a user in the parent graph.
func (sg *Subgraph) IsUserLocal(l int) bool {
	return sg.parent.IsUserNode(sg.nodes[l])
}

// ItemLocals returns the local ids of all item nodes.
func (sg *Subgraph) ItemLocals() []int {
	out := make([]int, 0, sg.items)
	for l := range sg.nodes {
		if sg.IsItemLocal(l) {
			out = append(out, l)
		}
	}
	return out
}
