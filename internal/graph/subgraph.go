package graph

import (
	"fmt"

	"longtailrec/internal/sparse"
)

// Subgraph is a node-induced local neighborhood of a Bipartite graph,
// produced by the breadth-first expansion of Algorithm 1 step 2. It keeps
// its own compact node numbering (0..len(Nodes)-1) plus the mapping back to
// the parent graph.
//
// Edges between two subgraph nodes are retained with their original
// weights; edges leaving the subgraph are dropped, so the local random walk
// is the paper's truncated approximation of the global one.
type Subgraph struct {
	parent  *Bipartite
	nodes   []int       // local id -> original node id (BFS discovery order)
	localOf map[int]int // original node id -> local id
	adj     *sparse.CSR // local symmetric adjacency
	items   int         // number of item nodes contained
}

// ExtractSubgraph grows a subgraph outward from the seed nodes by
// breadth-first search, following Algorithm 1: expansion stops once the
// subgraph contains more than maxItems item nodes (seeds are always kept,
// whatever their type). A non-positive maxItems means "no limit", yielding
// the whole reachable component.
func ExtractSubgraph(g *Bipartite, seeds []int, maxItems int) (*Subgraph, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("graph: ExtractSubgraph needs at least one seed")
	}
	n := g.NumNodes()
	sg := &Subgraph{
		parent:  g,
		localOf: make(map[int]int),
	}
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("graph: seed node %d out of range [0,%d)", s, n)
		}
		if _, seen := sg.localOf[s]; seen {
			continue
		}
		sg.add(s)
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		if maxItems > 0 && sg.items > maxItems {
			break
		}
		v := queue[0]
		queue = queue[1:]
		nbrs, _ := g.Neighbors(v)
		for _, w := range nbrs {
			if _, seen := sg.localOf[w]; seen {
				continue
			}
			if maxItems > 0 && sg.items > maxItems && g.IsItemNode(w) {
				continue
			}
			sg.add(w)
			queue = append(queue, w)
		}
	}
	sg.adj = g.Adjacency().Submatrix(sg.nodes, sg.nodes)
	return sg, nil
}

func (sg *Subgraph) add(orig int) {
	sg.localOf[orig] = len(sg.nodes)
	sg.nodes = append(sg.nodes, orig)
	if sg.parent.IsItemNode(orig) {
		sg.items++
	}
}

// Len returns the number of nodes in the subgraph.
func (sg *Subgraph) Len() int { return len(sg.nodes) }

// NumItemNodes returns how many item nodes the subgraph contains.
func (sg *Subgraph) NumItemNodes() int { return sg.items }

// Adjacency returns the local symmetric adjacency matrix.
func (sg *Subgraph) Adjacency() *sparse.CSR { return sg.adj }

// OriginalNode maps a local id back to the parent graph's node id.
func (sg *Subgraph) OriginalNode(local int) int { return sg.nodes[local] }

// LocalNode maps a parent node id to the local id, reporting presence.
func (sg *Subgraph) LocalNode(orig int) (int, bool) {
	l, ok := sg.localOf[orig]
	return l, ok
}

// IsItemLocal reports whether local node l is an item in the parent graph.
func (sg *Subgraph) IsItemLocal(l int) bool {
	return sg.parent.IsItemNode(sg.nodes[l])
}

// IsUserLocal reports whether local node l is a user in the parent graph.
func (sg *Subgraph) IsUserLocal(l int) bool {
	return sg.parent.IsUserNode(sg.nodes[l])
}

// ItemLocals returns the local ids of all item nodes.
func (sg *Subgraph) ItemLocals() []int {
	out := make([]int, 0, sg.items)
	for l := range sg.nodes {
		if sg.IsItemLocal(l) {
			out = append(out, l)
		}
	}
	return out
}
