// Go native fuzz targets hardening the two data structures PR 2 makes
// load-bearing: the epoch-stamped subgraph extractor (zero-allocation BFS
// + direct local CSR) and the delta-overlay live graph. Both are checked
// against deliberately naive map-based reference implementations — the
// kind of code the optimized versions replaced.
//
// `go test` runs the seed corpus; `go test -fuzz FuzzSubgraphExtract
// ./internal/graph` explores further.

package graph

import (
	"math"
	"testing"
)

// byteDriver doles out pseudo-random decisions from fuzz input, wrapping
// around so every input length yields a full scenario.
type byteDriver struct {
	data []byte
	pos  int
}

func (d *byteDriver) next() byte {
	if len(d.data) == 0 {
		return 0
	}
	b := d.data[d.pos%len(d.data)]
	d.pos++
	return b
}

func (d *byteDriver) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return (int(d.next())<<8 | int(d.next())) % n
}

// buildFuzzGraph derives a small graph (and its rating list) from fuzz
// bytes: universe sizes 1..12 users × 1..16 items, up to 96 distinct
// edges with weights in (0, 5.12].
func buildFuzzGraph(d *byteDriver) (*Bipartite, int, int) {
	nu := 1 + d.intn(12)
	ni := 1 + d.intn(16)
	b := NewBuilder(nu, ni)
	seen := map[[2]int]bool{}
	for e := 0; e < d.intn(96); e++ {
		u, i := d.intn(nu), d.intn(ni)
		if seen[[2]int{u, i}] {
			continue
		}
		seen[[2]int{u, i}] = true
		w := float64(1+d.intn(512)) / 100
		if err := b.AddRating(u, i, w); err != nil {
			panic(err) // inputs constructed in range
		}
	}
	return b.Build(), nu, ni
}

// refSubgraph is the naive map-based reference of Algorithm 1 step 2: the
// same BFS policy as SubgraphExtractor.Extract, but with a map node
// remapping and map-of-maps adjacency.
type refSubgraph struct {
	nodes []int
	local map[int]int
	adj   map[int]map[int]float64 // local -> local -> weight
	items int
}

func extractRef(g *Bipartite, seeds []int, maxItems int) *refSubgraph {
	r := &refSubgraph{local: map[int]int{}, adj: map[int]map[int]float64{}}
	add := func(v int) {
		r.local[v] = len(r.nodes)
		r.nodes = append(r.nodes, v)
		if g.IsItemNode(v) {
			r.items++
		}
	}
	for _, s := range seeds {
		if _, ok := r.local[s]; ok {
			continue
		}
		add(s)
	}
	for head := 0; head < len(r.nodes); head++ {
		if maxItems > 0 && r.items > maxItems {
			break
		}
		nbrs, _ := g.Neighbors(r.nodes[head])
		for _, w := range nbrs {
			if _, ok := r.local[w]; ok {
				continue
			}
			if maxItems > 0 && r.items > maxItems && g.IsItemNode(w) {
				continue
			}
			add(w)
		}
	}
	for _, orig := range r.nodes {
		lv := r.local[orig]
		nbrs, ws := g.Neighbors(orig)
		for k, w := range nbrs {
			if lw, ok := r.local[w]; ok && ws[k] != 0 {
				if r.adj[lv] == nil {
					r.adj[lv] = map[int]float64{}
				}
				r.adj[lv][lw] = ws[k]
			}
		}
	}
	return r
}

// FuzzSubgraphExtract cross-checks the pooled epoch-stamped extractor
// against the naive reference on fuzz-derived graphs, seed sets and item
// budgets — node order, reverse mapping, adjacency and cached degrees.
func FuzzSubgraphExtract(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 0, 128, 7, 9, 200, 13, 42, 42, 42, 17, 99, 3, 1})
	f.Add([]byte("the quick brown fox jumps over the lazy long tail"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &byteDriver{data: data}
		g, nu, ni := buildFuzzGraph(d)
		ext := NewSubgraphExtractor(g)
		// Several extractions through ONE extractor: scratch reuse and
		// epoch stamping must not leak state across queries.
		for q := 0; q < 3; q++ {
			numSeeds := 1 + d.intn(4)
			seeds := make([]int, numSeeds)
			for k := range seeds {
				seeds[k] = d.intn(nu + ni)
			}
			maxItems := d.intn(ni + 2) // 0 = unlimited
			sg, err := ext.Extract(seeds, maxItems)
			if err != nil {
				t.Fatalf("Extract(%v, %d): %v", seeds, maxItems, err)
			}
			ref := extractRef(g, seeds, maxItems)

			if sg.Len() != len(ref.nodes) {
				t.Fatalf("q%d: %d nodes, ref %d (seeds %v max %d)", q, sg.Len(), len(ref.nodes), seeds, maxItems)
			}
			if sg.NumItemNodes() != ref.items {
				t.Fatalf("q%d: %d item nodes, ref %d", q, sg.NumItemNodes(), ref.items)
			}
			for l := 0; l < sg.Len(); l++ {
				if sg.OriginalNode(l) != ref.nodes[l] {
					t.Fatalf("q%d: node order diverges at %d: %d vs %d", q, l, sg.OriginalNode(l), ref.nodes[l])
				}
			}
			for v := 0; v < g.NumNodes(); v++ {
				gotL, gotOK := sg.LocalNode(v)
				refL, refOK := ref.local[v]
				if gotOK != refOK || (gotOK && gotL != refL) {
					t.Fatalf("q%d: LocalNode(%d) = (%d,%v), ref (%d,%v)", q, v, gotL, gotOK, refL, refOK)
				}
			}
			for l := 0; l < sg.Len(); l++ {
				cols, vals := sg.Adjacency().Row(l)
				if len(cols) != len(ref.adj[l]) {
					t.Fatalf("q%d: row %d has %d entries, ref %d", q, l, len(cols), len(ref.adj[l]))
				}
				sum := 0.0
				for k, c := range cols {
					if k > 0 && cols[k-1] >= c {
						t.Fatalf("q%d: row %d columns not strictly increasing: %v", q, l, cols)
					}
					if rv, ok := ref.adj[l][c]; !ok || rv != vals[k] {
						t.Fatalf("q%d: adj[%d][%d] = %v, ref %v (present %v)", q, l, c, vals[k], rv, ok)
					}
					sum += vals[k]
				}
				if math.Abs(sg.Degrees()[l]-sum) > 1e-9 {
					t.Fatalf("q%d: cached degree[%d] = %v, row sum %v", q, l, sg.Degrees()[l], sum)
				}
			}
		}
	})
}

// refLiveGraph is the naive reference for the delta-overlay write path: a
// plain edge map with brute-force recomputation of every derived quantity.
type refLiveGraph struct {
	nu, ni int
	edges  map[[2]int]float64
}

func (r *refLiveGraph) degree(v int) float64 {
	// An edge (u, i) touches node u and node nu+i; the ranges are disjoint.
	d := 0.0
	for e, w := range r.edges {
		if e[0] == v || r.nu+e[1] == v {
			d += w
		}
	}
	return d
}

func (r *refLiveGraph) totalWeight() float64 {
	t := 0.0
	for _, w := range r.edges {
		t += 2 * w
	}
	return t
}

// FuzzBuilderAddRating drives a fuzz-derived op sequence — batch builder
// adds, then live AddRating/UpdateRating/UpsertRating with interleaved
// compactions — and cross-checks the delta-overlay graph against the edge
// map reference, plus (after a final Compact) against a batch-built graph
// of the same final edge set.
func FuzzBuilderAddRating(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 1, 4, 200, 3, 5, 77, 12, 0, 255})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	f.Add([]byte("delta overlays merge into the CSR on a threshold"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &byteDriver{data: data}
		nu := 1 + d.intn(8)
		ni := 1 + d.intn(10)
		ref := &refLiveGraph{nu: nu, ni: ni, edges: map[[2]int]float64{}}

		// Batch phase: the frozen seed graph.
		b := NewBuilder(nu, ni)
		for e := 0; e < d.intn(30); e++ {
			u, i := d.intn(nu), d.intn(ni)
			if _, dup := ref.edges[[2]int{u, i}]; dup {
				continue
			}
			w := float64(1+d.intn(500)) / 100
			if err := b.AddRating(u, i, w); err != nil {
				t.Fatal(err)
			}
			ref.edges[[2]int{u, i}] = w
		}
		g := b.Build()
		if th := d.intn(12); th > 0 {
			g.SetCompactThreshold(th)
		}

		// Live phase.
		wantEpoch := uint64(0)
		for op := 0; op < d.intn(60); op++ {
			u, i := d.intn(nu), d.intn(ni)
			key := [2]int{u, i}
			w := float64(1+d.intn(500)) / 100
			_, exists := ref.edges[key]
			switch d.next() % 4 {
			case 0:
				err := g.AddRating(u, i, w)
				if exists {
					if err == nil {
						t.Fatalf("AddRating(%d,%d) on existing edge succeeded", u, i)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				ref.edges[key] = w
				wantEpoch++
			case 1:
				err := g.UpdateRating(u, i, w)
				if !exists {
					if err == nil {
						t.Fatalf("UpdateRating(%d,%d) on missing edge succeeded", u, i)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				if ref.edges[key] != w {
					wantEpoch++
				}
				ref.edges[key] = w
			case 2:
				added, err := g.UpsertRating(u, i, w)
				if err != nil {
					t.Fatal(err)
				}
				if added == exists {
					t.Fatalf("UpsertRating(%d,%d) added=%v but exists=%v", u, i, added, exists)
				}
				if !exists || ref.edges[key] != w {
					wantEpoch++
				}
				ref.edges[key] = w
			default:
				g.Compact()
			}
			if g.Epoch() != wantEpoch {
				t.Fatalf("op %d: epoch %d, want %d", op, g.Epoch(), wantEpoch)
			}
		}

		// Full structural comparison against the reference.
		if got, want := g.NumEdges(), len(ref.edges); got != want {
			t.Fatalf("NumEdges %d, want %d", got, want)
		}
		if math.Abs(g.TotalWeight()-ref.totalWeight()) > 1e-9 {
			t.Fatalf("TotalWeight %v, want %v", g.TotalWeight(), ref.totalWeight())
		}
		for key, w := range ref.edges {
			un, in := key[0], nu+key[1]
			if got := g.Weight(un, in); got != w {
				t.Fatalf("Weight(%d,%d) = %v, want %v", un, in, got, w)
			}
			if got := g.Weight(in, un); got != w {
				t.Fatalf("Weight(%d,%d) = %v, want %v (symmetry)", in, un, got, w)
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if math.Abs(g.Degree(v)-ref.degree(v)) > 1e-9 {
				t.Fatalf("Degree(%d) = %v, want %v", v, g.Degree(v), ref.degree(v))
			}
			cols, ws := g.Neighbors(v)
			if len(cols) != len(ws) {
				t.Fatalf("Neighbors(%d) ragged", v)
			}
			for k := 1; k < len(cols); k++ {
				if cols[k-1] >= cols[k] {
					t.Fatalf("Neighbors(%d) columns not strictly increasing: %v", v, cols)
				}
			}
		}

		// And after compaction: byte-for-byte the batch-built graph.
		g.Compact()
		if g.PendingWrites() != 0 {
			t.Fatalf("PendingWrites %d after Compact", g.PendingWrites())
		}
		var ratings []Rating
		for key, w := range ref.edges {
			ratings = append(ratings, Rating{User: key[0], Item: key[1], Weight: w})
		}
		batch, err := FromRatings(nu, ni, ratings)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Adjacency().Equal(batch.Adjacency(), 1e-12) {
			t.Fatal("compacted live graph differs from batch-built graph")
		}
	})
}

// FuzzUpsertRatingAutoGrow drives the open-universe write path — upserts
// whose user/item ids may lie beyond the current universe, interleaved
// with explicit admissions, compactions and snapshot round-trips — and
// cross-checks the grown graph against the naive edge-map reference.
// Node ids of grown nodes are layout-dependent, so every comparison goes
// through the UserNode/ItemNode mapping rather than index arithmetic.
func FuzzUpsertRatingAutoGrow(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 3, 250, 1, 0, 99, 14, 14, 200, 5})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 128, 64, 32, 16})
	f.Add([]byte("the universe grows one cold-start rating at a time"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &byteDriver{data: data}
		nu := 1 + d.intn(6)
		ni := 1 + d.intn(8)
		ref := &refLiveGraph{nu: nu, ni: ni, edges: map[[2]int]float64{}}

		b := NewBuilder(nu, ni)
		for e := 0; e < d.intn(20); e++ {
			u, i := d.intn(nu), d.intn(ni)
			if _, dup := ref.edges[[2]int{u, i}]; dup {
				continue
			}
			w := float64(1+d.intn(500)) / 100
			if err := b.AddRating(u, i, w); err != nil {
				t.Fatal(err)
			}
			ref.edges[[2]int{u, i}] = w
		}
		g := b.Build()
		if th := d.intn(10); th > 0 {
			g.SetCompactThreshold(th)
		}

		wantEpoch := uint64(0)
		wantUsers, wantItems := nu, ni
		for op := 0; op < d.intn(70); op++ {
			switch d.next() % 8 {
			case 0:
				if idx := g.AddUser(); idx != wantUsers {
					t.Fatalf("AddUser index %d, want %d", idx, wantUsers)
				}
				wantUsers++
				wantEpoch++
			case 1:
				if idx := g.AddItem(); idx != wantItems {
					t.Fatalf("AddItem index %d, want %d", idx, wantItems)
				}
				wantItems++
				wantEpoch++
			case 2:
				g.Compact()
			default:
				// Ids up to 4 past the current universe edge: grows often,
				// stays in-universe often too.
				u := d.intn(wantUsers + 4)
				i := d.intn(wantItems + 4)
				w := float64(1+d.intn(500)) / 100
				key := [2]int{u, i}
				old, exists := ref.edges[key]
				added, err := g.UpsertRatingAutoGrow(u, i, w)
				if err != nil {
					t.Fatalf("UpsertRatingAutoGrow(%d,%d): %v", u, i, err)
				}
				if added == exists {
					t.Fatalf("UpsertRatingAutoGrow(%d,%d) added=%v but exists=%v", u, i, added, exists)
				}
				if u >= wantUsers {
					wantEpoch += uint64(u - wantUsers + 1)
					wantUsers = u + 1
				}
				if i >= wantItems {
					wantEpoch += uint64(i - wantItems + 1)
					wantItems = i + 1
				}
				if !exists || old != w {
					wantEpoch++
				}
				ref.edges[key] = w
			}
			if g.NumUsers() != wantUsers || g.NumItems() != wantItems {
				t.Fatalf("op %d: universe %d/%d, want %d/%d", op, g.NumUsers(), g.NumItems(), wantUsers, wantItems)
			}
			if g.Epoch() != wantEpoch {
				t.Fatalf("op %d: epoch %d, want %d", op, g.Epoch(), wantEpoch)
			}
		}

		// Full structural comparison through the id mapping.
		if got, want := g.NumEdges(), len(ref.edges); got != want {
			t.Fatalf("NumEdges %d, want %d", got, want)
		}
		if math.Abs(g.TotalWeight()-ref.totalWeight()) > 1e-9 {
			t.Fatalf("TotalWeight %v, want %v", g.TotalWeight(), ref.totalWeight())
		}
		refUserDeg := make([]float64, wantUsers)
		refItemDeg := make([]float64, wantItems)
		refPop := make([]int, wantItems)
		for key, w := range ref.edges {
			refUserDeg[key[0]] += w
			refItemDeg[key[1]] += w
			refPop[key[1]]++
			un, in := g.UserNode(key[0]), g.ItemNode(key[1])
			if got := g.Weight(un, in); got != w {
				t.Fatalf("Weight(user %d, item %d) = %v, want %v", key[0], key[1], got, w)
			}
			if got := g.Weight(in, un); got != w {
				t.Fatalf("Weight(item %d, user %d) = %v, want %v (symmetry)", key[1], key[0], got, w)
			}
		}
		for u := 0; u < wantUsers; u++ {
			if got := g.Degree(g.UserNode(u)); math.Abs(got-refUserDeg[u]) > 1e-9 {
				t.Fatalf("user %d degree %v, want %v", u, got, refUserDeg[u])
			}
			if g.UserIndex(g.UserNode(u)) != u {
				t.Fatalf("user %d mapping not invertible", u)
			}
		}
		pop := g.ItemPopularity()
		for i := 0; i < wantItems; i++ {
			if got := g.Degree(g.ItemNode(i)); math.Abs(got-refItemDeg[i]) > 1e-9 {
				t.Fatalf("item %d degree %v, want %v", i, got, refItemDeg[i])
			}
			if pop[i] != refPop[i] {
				t.Fatalf("item %d popularity %d, want %d", i, pop[i], refPop[i])
			}
			if g.ItemIndex(g.ItemNode(i)) != i {
				t.Fatalf("item %d mapping not invertible", i)
			}
		}

		// A snapshot round-trip of the grown graph preserves edges + epoch.
		g2, err := FromSnapshot(g.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if g2.Epoch() != g.Epoch() || g2.NumEdges() != g.NumEdges() ||
			g2.NumUsers() != wantUsers || g2.NumItems() != wantItems {
			t.Fatalf("round-trip diverged: epoch %d/%d edges %d/%d universe %d×%d/%d×%d",
				g2.Epoch(), g.Epoch(), g2.NumEdges(), g.NumEdges(),
				g2.NumUsers(), g2.NumItems(), wantUsers, wantItems)
		}
		for key, w := range ref.edges {
			if got := g2.Weight(g2.UserNode(key[0]), g2.ItemNode(key[1])); got != w {
				t.Fatalf("round-trip edge (%d,%d) = %v, want %v", key[0], key[1], got, w)
			}
		}
	})
}
