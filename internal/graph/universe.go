// The growable node universe behind a Bipartite graph.
//
// The node-numbering convention of graph.go ("user u occupies node u, item
// i occupies node NumUsers+i") holds for the universe the graph was BUILT
// with. Nodes admitted live (AddUser / AddItem / UpsertRatingAutoGrow)
// are appended at the END of the node space in arrival order — users and
// items interleaved — so every existing node id, CSR row snapshot and
// overlay row stays valid while the universe grows. The mapping between
// (user index, item index) and node id therefore lives in a universe
// value; UserNode/ItemNode/UserIndex/ItemIndex/IsUserNode/IsItemNode are
// the source of truth, never arithmetic on NumUsers.
//
// A universe is immutable once published: growth builds a new value
// (appending to the previous one's slices, serialized under the graph
// write lock) and swaps it in atomically, so hot-path accessors are a
// single atomic pointer load — safe to call even while holding the graph
// lock in either mode, with no lock recursion.

package graph

import "fmt"

// grownNode records the identity of one node appended after construction.
type grownNode struct {
	index int  // user or item index
	user  bool // user node vs item node
}

// universe is the immutable node-numbering snapshot of a Bipartite.
type universe struct {
	baseUsers, baseItems int // frozen at Build: nodes [0,baseUsers) are
	// users, [baseUsers, baseUsers+baseItems) are items
	numUsers, numItems int // current logical universe sizes

	userNodes []int       // node id of user u for u >= baseUsers
	itemNodes []int       // node id of item i for i >= baseItems
	grown     []grownNode // identity of node v for v >= baseUsers+baseItems
}

// newBaseUniverse returns the universe of a freshly built graph.
func newBaseUniverse(numUsers, numItems int) *universe {
	return &universe{
		baseUsers: numUsers, baseItems: numItems,
		numUsers: numUsers, numItems: numItems,
	}
}

func (u *universe) numNodes() int { return u.baseUsers + u.baseItems + len(u.grown) }

func (u *universe) userNode(idx int) int {
	if idx < u.baseUsers {
		return idx
	}
	return u.userNodes[idx-u.baseUsers]
}

func (u *universe) itemNode(idx int) int {
	if idx < u.baseItems {
		return u.baseUsers + idx
	}
	return u.itemNodes[idx-u.baseItems]
}

func (u *universe) isUser(v int) bool {
	if v < u.baseUsers {
		return v >= 0
	}
	if v < u.baseUsers+u.baseItems {
		return false
	}
	k := v - u.baseUsers - u.baseItems
	return k < len(u.grown) && u.grown[k].user
}

func (u *universe) isItem(v int) bool {
	if v < u.baseUsers {
		return false
	}
	if v < u.baseUsers+u.baseItems {
		return true
	}
	k := v - u.baseUsers - u.baseItems
	return k < len(u.grown) && !u.grown[k].user
}

func (u *universe) userIndex(v int) int {
	if v < u.baseUsers {
		return v
	}
	return u.grown[v-u.baseUsers-u.baseItems].index
}

func (u *universe) itemIndex(v int) int {
	if v < u.baseUsers+u.baseItems {
		return v - u.baseUsers
	}
	return u.grown[v-u.baseUsers-u.baseItems].index
}

// grow derives the successor universe with newUsers users and newItems
// items appended (users first). Growth is serialized under the graph write
// lock, so appending to the predecessor's slices is safe: a published
// universe never observes elements beyond its own lengths.
func (u *universe) grow(newUsers, newItems int) *universe {
	next := &universe{
		baseUsers: u.baseUsers, baseItems: u.baseItems,
		numUsers: u.numUsers + newUsers, numItems: u.numItems + newItems,
		userNodes: u.userNodes, itemNodes: u.itemNodes, grown: u.grown,
	}
	for k := 0; k < newUsers; k++ {
		node := next.baseUsers + next.baseItems + len(next.grown)
		next.userNodes = append(next.userNodes, node)
		next.grown = append(next.grown, grownNode{index: u.numUsers + k, user: true})
	}
	for k := 0; k < newItems; k++ {
		node := next.baseUsers + next.baseItems + len(next.grown)
		next.itemNodes = append(next.itemNodes, node)
		next.grown = append(next.grown, grownNode{index: u.numItems + k, user: false})
	}
	return next
}

// MaxDenseAdmissions caps how far a single auto-grow write may extend
// either side of the universe: an id further than this beyond the current
// edge is treated as absurd (a corrupt or hostile id, not cold-start
// traffic) and rejected with an out-of-range error. The cap also bounds
// the amplification available to a single write — admissions allocate an
// overlay row each, under the write lock, and bump the epoch — so it is
// deliberately small; genuinely sparse external id spaces belong behind
// an id-mapping layer, not a larger cap. Exported as the single source of
// truth: longtail re-exports it and the serving layer's 404 error text
// embeds it, so documentation and error messages cannot drift from the
// enforced value.
const MaxDenseAdmissions = 1 << 10

// checkGrowable validates an id for the auto-grow write path.
func checkGrowable(kind string, id, current int) error {
	if id < 0 || id >= current+MaxDenseAdmissions {
		return fmt.Errorf("graph: %s %d out of range [0,%d) (auto-grow admits at most %d new ids past %d)",
			kind, id, current, MaxDenseAdmissions, current)
	}
	return nil
}
