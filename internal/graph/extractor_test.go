package graph

import (
	"math/rand"
	"testing"
)

// randomTestGraph builds a connected-ish random bipartite graph for
// extractor equivalence tests.
func randomTestGraph(t *testing.T, numUsers, numItems, edges int, seed int64) *Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(numUsers, numItems)
	for e := 0; e < edges; e++ {
		u := rng.Intn(numUsers)
		i := rng.Intn(numItems)
		if err := b.AddRating(u, i, float64(1+rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	// Spine so most nodes are reachable from user 0.
	for i := 0; i < numItems; i++ {
		if err := b.AddRating(i%numUsers, i, 3); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// requireSameSubgraph asserts two subgraphs agree on nodes, adjacency and
// cached degrees.
func requireSameSubgraph(t *testing.T, want, got *Subgraph) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("node count %d, want %d", got.Len(), want.Len())
	}
	if want.NumItemNodes() != got.NumItemNodes() {
		t.Fatalf("item count %d, want %d", got.NumItemNodes(), want.NumItemNodes())
	}
	for l := 0; l < want.Len(); l++ {
		if want.OriginalNode(l) != got.OriginalNode(l) {
			t.Fatalf("node order diverges at local %d: %d vs %d", l, got.OriginalNode(l), want.OriginalNode(l))
		}
	}
	if !want.Adjacency().Equal(got.Adjacency(), 0) {
		t.Fatal("local adjacency differs")
	}
	wd, gd := want.Degrees(), got.Degrees()
	for l := range wd {
		if wd[l] != gd[l] {
			t.Fatalf("degree[%d] = %v, want %v", l, gd[l], wd[l])
		}
	}
}

// TestExtractorReuseMatchesOneShot runs many queries through one reused
// extractor and checks each against a fresh one-shot extraction — the
// epoch-stamped scratch must never leak state between queries.
func TestExtractorReuseMatchesOneShot(t *testing.T) {
	g := randomTestGraph(t, 40, 120, 500, 1)
	ext := NewSubgraphExtractor(g)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		u := rng.Intn(g.NumUsers())
		seeds, _ := g.Neighbors(g.UserNode(u))
		if len(seeds) == 0 {
			seeds = []int{g.UserNode(u)}
		}
		maxItems := []int{0, 3, 10, 50}[q%4]
		got, err := ext.Extract(seeds, maxItems)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExtractSubgraph(g, seeds, maxItems)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSubgraph(t, want, got)
		// The reverse mapping must cover exactly the subgraph's nodes.
		for l := 0; l < got.Len(); l++ {
			orig := got.OriginalNode(l)
			if ll, ok := got.LocalNode(orig); !ok || ll != l {
				t.Fatalf("LocalNode(%d) = %d,%v, want %d,true", orig, ll, ok, l)
			}
		}
		misses := 0
		for v := 0; v < g.NumNodes(); v++ {
			if _, ok := got.LocalNode(v); !ok {
				misses++
			}
		}
		if misses != g.NumNodes()-got.Len() {
			t.Fatalf("LocalNode claims %d members, subgraph has %d", g.NumNodes()-misses, got.Len())
		}
	}
}

// TestExtractorSeedsOccupyPrefix locks in the contract the query engine
// relies on: distinct seeds take local ids 0..s-1 in order.
func TestExtractorSeedsOccupyPrefix(t *testing.T) {
	g := randomTestGraph(t, 10, 30, 100, 3)
	seeds, _ := g.Neighbors(g.UserNode(4))
	ext := NewSubgraphExtractor(g)
	sg, err := ext.Extract(seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range seeds {
		if sg.OriginalNode(k) != s {
			t.Fatalf("local %d = node %d, want seed %d", k, sg.OriginalNode(k), s)
		}
	}
}

// TestExtractorDegreesMatchAdjacency verifies the cached degree vector
// equals the row sums of the local adjacency.
func TestExtractorDegreesMatchAdjacency(t *testing.T) {
	g := randomTestGraph(t, 25, 60, 300, 4)
	sg, err := ExtractSubgraph(g, []int{g.UserNode(0)}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for l, d := range sg.Degrees() {
		if rs := sg.Adjacency().RowSum(l); rs != d {
			t.Fatalf("degree[%d] = %v, adjacency row sum %v", l, d, rs)
		}
	}
}

// TestExtractorRowsSorted checks the CSR invariant after the BFS-order
// permutation is restored by the per-row sort (including rows long enough
// to take the sort.Sort path).
func TestExtractorRowsSorted(t *testing.T) {
	// A hub user rated by everything forces a long row.
	b := NewBuilder(3, 60)
	for i := 0; i < 60; i++ {
		if err := b.AddRating(0, i, 1+float64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddRating(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(2, 59, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	sg, err := ExtractSubgraph(g, []int{g.ItemNode(30)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	adj := sg.Adjacency()
	for l := 0; l < sg.Len(); l++ {
		cols, _ := adj.Row(l)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatalf("row %d columns not strictly increasing: %v", l, cols)
			}
		}
	}
}
