package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// liveFixture builds a small graph: 3 users, 4 items.
//
//	u0 — i0(3), i1(2)
//	u1 — i1(5)
//	u2 — i2(1)
//
// Item 3 starts isolated.
func liveFixture(t *testing.T) *Bipartite {
	t.Helper()
	g, err := FromRatings(3, 4, []Rating{
		{User: 0, Item: 0, Weight: 3},
		{User: 0, Item: 1, Weight: 2},
		{User: 1, Item: 1, Weight: 5},
		{User: 2, Item: 2, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLiveAddRating(t *testing.T) {
	g := liveFixture(t)
	if got := g.Epoch(); got != 0 {
		t.Fatalf("fresh graph epoch = %d, want 0", got)
	}
	if err := g.AddRating(2, 3, 4); err != nil {
		t.Fatal(err)
	}
	if got := g.Epoch(); got != 1 {
		t.Errorf("epoch after one write = %d, want 1", got)
	}
	if got := g.NumEdges(); got != 5 {
		t.Errorf("NumEdges = %d, want 5", got)
	}
	if got := g.Weight(g.UserNode(2), g.ItemNode(3)); got != 4 {
		t.Errorf("edge weight = %v, want 4", got)
	}
	if got := g.Weight(g.ItemNode(3), g.UserNode(2)); got != 4 {
		t.Errorf("reverse edge weight = %v, want 4 (symmetry)", got)
	}
	if got := g.Degree(g.ItemNode(3)); got != 4 {
		t.Errorf("item 3 degree = %v, want 4", got)
	}
	if got := g.Degree(g.UserNode(2)); got != 5 {
		t.Errorf("user 2 degree = %v, want 1+4", got)
	}
	// Duplicate insert must fail and leave the graph untouched.
	if err := g.AddRating(2, 3, 9); err == nil {
		t.Error("duplicate AddRating did not fail")
	}
	if got := g.Epoch(); got != 1 {
		t.Errorf("failed write moved epoch to %d", got)
	}
}

func TestLiveUpdateRating(t *testing.T) {
	g := liveFixture(t)
	if err := g.UpdateRating(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.Weight(g.UserNode(1), g.ItemNode(1)); got != 2 {
		t.Errorf("updated weight = %v, want 2", got)
	}
	if got := g.Degree(g.ItemNode(1)); got != 4 {
		t.Errorf("item 1 degree = %v, want 2+2", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges changed on update: %d", got)
	}
	if err := g.UpdateRating(1, 3, 2); err == nil {
		t.Error("UpdateRating on a missing edge did not fail")
	}
	// Same-weight update is a no-op and must not move the epoch.
	before := g.Epoch()
	if err := g.UpdateRating(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.Epoch(); got != before {
		t.Errorf("no-op update moved epoch %d -> %d", before, got)
	}
}

func TestLiveUpsertRating(t *testing.T) {
	g := liveFixture(t)
	added, err := g.UpsertRating(0, 3, 1.5)
	if err != nil || !added {
		t.Fatalf("UpsertRating insert: added=%v err=%v", added, err)
	}
	added, err = g.UpsertRating(0, 3, 2.5)
	if err != nil || added {
		t.Fatalf("UpsertRating re-rate: added=%v err=%v", added, err)
	}
	if got := g.Weight(g.UserNode(0), g.ItemNode(3)); got != 2.5 {
		t.Errorf("upserted weight = %v, want 2.5", got)
	}
	if _, err := g.UpsertRating(0, 99, 1); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := g.UpsertRating(0, 1, -1); err == nil {
		t.Error("non-positive weight accepted")
	}
	if _, err := g.UpsertRating(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := g.UpsertRating(0, 1, math.Inf(1)); err == nil {
		t.Error("+Inf weight accepted")
	}
	if got := g.Epoch(); got != 2 {
		t.Errorf("rejected writes moved epoch to %d", got)
	}
}

// TestLiveRowSnapshots locks in the copy-on-write contract: a row handed to
// a reader is never mutated by later writes or compactions.
func TestLiveRowSnapshots(t *testing.T) {
	g := liveFixture(t)
	un := g.UserNode(0)
	cols0, ws0 := g.Neighbors(un)
	wantLen, want0 := len(cols0), ws0[0]
	if err := g.AddRating(0, 3, 9); err != nil {
		t.Fatal(err)
	}
	g.Compact()
	if err := g.UpdateRating(0, 0, 7); err != nil {
		t.Fatal(err)
	}
	if len(cols0) != wantLen || ws0[0] != want0 {
		t.Errorf("reader snapshot mutated: len %d->%d, w0 %v->%v", wantLen, len(cols0), want0, ws0[0])
	}
	if cols1, _ := g.Neighbors(un); len(cols1) != wantLen+1 {
		t.Errorf("live row length = %d, want %d", len(cols1), wantLen+1)
	}
}

// TestLiveCompactEquivalence asserts that a graph mutated live and then
// compacted is indistinguishable from one batch-built from the same final
// edge set.
func TestLiveCompactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nu, ni = 12, 20
	g, err := FromRatings(nu, ni, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := map[[2]int]float64{}
	for w := 0; w < 300; w++ {
		u, i := rng.Intn(nu), rng.Intn(ni)
		weight := 1 + rng.Float64()*4
		if _, err := g.UpsertRating(u, i, weight); err != nil {
			t.Fatal(err)
		}
		final[[2]int{u, i}] = weight
		if w%37 == 0 {
			g.Compact()
		}
	}
	g.Compact()
	var ratings []Rating
	for k, w := range final {
		ratings = append(ratings, Rating{User: k[0], Item: k[1], Weight: w})
	}
	ref, err := FromRatings(nu, ni, ratings)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ref.NumEdges() {
		t.Fatalf("NumEdges %d != %d", g.NumEdges(), ref.NumEdges())
	}
	if math.Abs(g.TotalWeight()-ref.TotalWeight()) > 1e-9*ref.TotalWeight() {
		t.Fatalf("TotalWeight %v != %v", g.TotalWeight(), ref.TotalWeight())
	}
	if !g.Adjacency().Equal(ref.Adjacency(), 1e-12) {
		t.Fatal("compacted adjacency differs from batch-built adjacency")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if math.Abs(g.Degree(v)-ref.Degree(v)) > 1e-9 {
			t.Fatalf("degree[%d] = %v, want %v", v, g.Degree(v), ref.Degree(v))
		}
	}
}

func TestLiveCompactThreshold(t *testing.T) {
	g := liveFixture(t)
	g.SetCompactThreshold(3)
	for w := 0; w < 2; w++ {
		if _, err := g.UpsertRating(w, 3, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.PendingWrites(); got != 2 {
		t.Fatalf("PendingWrites = %d, want 2", got)
	}
	if _, err := g.UpsertRating(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.PendingWrites(); got != 0 {
		t.Errorf("auto-compaction did not trigger: PendingWrites = %d", got)
	}
	if got := g.Adjacency().NNZ(); got != 2*7 {
		t.Errorf("compacted NNZ = %d, want 14", got)
	}
	// Compaction is invisible to the epoch.
	if got := g.Epoch(); got != 3 {
		t.Errorf("epoch = %d, want 3", got)
	}
}

// TestConcurrentLiveGraph hammers a live graph with concurrent readers
// (Neighbors/Degree/subgraph extraction) while one writer mutates and
// compacts it. Run under -race by the Makefile race target.
func TestConcurrentLiveGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const nu, ni = 30, 60
	var ratings []Rating
	for u := 0; u < nu; u++ {
		for r := 0; r < 5; r++ {
			ratings = append(ratings, Rating{User: u, Item: (u*7 + r*11) % ni, Weight: 1 + float64(r)})
		}
	}
	seen := map[[2]int]bool{}
	dedup := ratings[:0]
	for _, r := range ratings {
		if k := [2]int{r.User, r.Item}; !seen[k] {
			seen[k] = true
			dedup = append(dedup, r)
		}
	}
	g, err := FromRatings(nu, ni, dedup)
	if err != nil {
		t.Fatal(err)
	}
	g.SetCompactThreshold(16)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ext := NewSubgraphExtractor(g)
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (w*13 + q) % nu
				nbrs, _ := g.Neighbors(g.UserNode(u))
				if len(nbrs) == 0 {
					continue
				}
				if _, err := ext.Extract(nbrs, 40); err != nil {
					t.Error(err)
					return
				}
				_ = g.Degree(g.UserNode(u))
				_ = g.NumEdges()
			}
		}(w)
	}
	for w := 0; w < 400; w++ {
		if _, err := g.UpsertRating(rng.Intn(nu), rng.Intn(ni), 1+rng.Float64()*4); err != nil {
			t.Fatal(err)
		}
		if w%150 == 149 {
			g.Compact()
		}
	}
	close(stop)
	wg.Wait()
	if g.Epoch() == 0 {
		t.Error("writer made no progress")
	}
}
