// Live rating writes: the delta overlay on top of the compacted CSR.
//
// A write (AddRating / UpdateRating / UpsertRating) touches exactly two
// nodes — the user and the item. For each it installs a freshly allocated
// merged row in the overlay map (copy-on-write, so row slices handed to
// concurrent readers stay valid), updates the live degree, and bumps the
// graph epoch. Compact folds every overlay row back into a new CSR and
// clears the overlay; it does NOT bump the epoch, because compaction
// changes the representation, not the graph, and must not invalidate
// downstream result caches.

package graph

import (
	"fmt"
	"math"
	"sort"

	"longtailrec/internal/sparse"
)

// newCompactCSR wraps freshly built CSR storage. Split out so compaction
// reads as one pipeline.
func newCompactCSR(n int, rowPtr, colIdx []int, vals []float64) *sparse.CSR {
	return sparse.NewCSRView(n, n, rowPtr, colIdx, vals)
}

// liveRow is a node's fully merged adjacency row: base CSR row plus every
// pending write. cols is sorted ascending; degree is the row's weight sum.
// Rows are immutable once installed in the overlay.
type liveRow struct {
	cols    []int
	weights []float64
	degree  float64
}

// searchEdge finds w in a sorted column list.
func searchEdge(cols []int, w int) (int, bool) {
	k := sort.SearchInts(cols, w)
	return k, k < len(cols) && cols[k] == w
}

// Epoch returns the number of accepted live writes — edge writes and node
// admissions — since construction. Downstream caches key results on it: a
// bump means any earlier result may be stale. Reading it never takes the
// graph lock.
func (g *Bipartite) Epoch() uint64 { return g.epoch.Load() }

// PendingWrites returns how many accepted writes are sitting in the delta
// overlay, i.e. not yet folded into the CSR by Compact.
func (g *Bipartite) PendingWrites() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.overlayWrites
}

// SetCompactThreshold makes the graph fold the overlay into the CSR
// automatically once n writes have accumulated. n <= 0 disables
// auto-compaction (explicit Compact only). Inline auto-folding applies to
// standalone (single-view) graphs only: a shared-base view cannot fold
// from inside its own write path (a fold needs every sibling's lock, and
// folding would silently publish sibling overlays early) — the fleet
// layer drives shared folds instead (shard.Fleet.SetCompactThreshold).
//
//ltr:lockentry
func (g *Bipartite) SetCompactThreshold(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.compactThreshold = n
	if n > 0 && g.overlayWrites >= n && len(g.shared.views) == 1 {
		g.shared.foldLocked()
	}
}

// writeMode selects the duplicate-handling policy of applyRating.
type writeMode int

const (
	modeAdd    writeMode = iota // edge must not exist
	modeUpdate                  // edge must exist
	modeUpsert                  // either
)

// AddUser admits one new user to the universe, returning its index. The
// node is appended at the end of the node space and starts overlay-only
// (an empty row) until the next Compact extends the CSR; existing node
// ids and row snapshots are untouched. The epoch bumps: results computed
// against the smaller universe may be stale (e.g. top-k sets that should
// now consider the newcomer's future edges).
//
//ltr:lockentry
func (g *Bipartite) AddUser() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.shared.growMu.Lock()
	idx := g.shared.uni.Load().numUsers
	delta := g.growUnderLocks(1, 0)
	g.shared.growMu.Unlock()
	g.epoch.Add(delta)
	g.maybeCompactLocked()
	return idx
}

// AddItem admits one new item to the universe, returning its index. Same
// mechanics as AddUser.
//
//ltr:lockentry
func (g *Bipartite) AddItem() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.shared.growMu.Lock()
	idx := g.shared.uni.Load().numItems
	delta := g.growUnderLocks(0, 1)
	g.shared.growMu.Unlock()
	g.epoch.Add(delta)
	g.maybeCompactLocked()
	return idx
}

// growUnderLocks appends newUsers user nodes and newItems item nodes to
// the SHARED universe, installing an empty overlay row per node on THIS
// view (the invariant that lets rowLocked serve nodes beyond the base
// CSR; sibling views serve the same nodes through the beyond-base guard)
// and counting each admission as one accepted write on this view. It
// returns the epoch delta (one per admission) WITHOUT bumping the epoch —
// the caller decides whether each write bumps individually (the
// single-write path) or the whole batch bumps once (the group-commit
// path). Caller holds g.mu for writing AND shared.growMu (a view's own
// write lock cannot serialize the universe read-modify-swap against
// sibling views).
func (g *Bipartite) growUnderLocks(newUsers, newItems int) uint64 {
	next := g.shared.uni.Load().grow(newUsers, newItems)
	if g.overlay == nil {
		g.overlay = make(map[int]*liveRow)
	}
	for v := next.numNodes() - newUsers - newItems; v < next.numNodes(); v++ {
		g.overlay[v] = &liveRow{}
		g.touchNodeLocked(v)
	}
	g.shared.uni.Store(next)
	g.overlayWrites += newUsers + newItems
	return uint64(newUsers + newItems)
}

// maybeCompactLocked folds the overlay when the auto-compaction threshold
// is reached. Single-view graphs only (see SetCompactThreshold); a shared
// view's threshold is ignored here and the fleet folds instead. Caller
// holds g.mu for writing.
//
//ltr:lockentry
func (g *Bipartite) maybeCompactLocked() {
	if g.compactThreshold > 0 && g.overlayWrites >= g.compactThreshold && len(g.shared.views) == 1 {
		g.shared.foldLocked()
	}
}

// AddRating inserts the undirected edge (user u — item i) with weight w.
// It fails if the edge already exists (use UpdateRating or UpsertRating
// for re-rates) or if w is not positive.
func (g *Bipartite) AddRating(u, i int, w float64) error {
	_, err := g.applyRating(u, i, w, modeAdd, false)
	return err
}

// UpdateRating replaces the weight of the existing edge (u — i) with w.
// It fails if the edge is absent.
func (g *Bipartite) UpdateRating(u, i int, w float64) error {
	_, err := g.applyRating(u, i, w, modeUpdate, false)
	return err
}

// UpsertRating inserts the edge (u — i) or replaces its weight if present,
// reporting whether a new edge was created. Re-rating with the identical
// weight is a no-op: the graph is unchanged, so the epoch does not move.
func (g *Bipartite) UpsertRating(u, i int, w float64) (added bool, err error) {
	return g.applyRating(u, i, w, modeUpsert, false)
}

// UpsertRatingAutoGrow is UpsertRating for an open universe: a user or
// item id at or beyond the current universe admits the missing ids (and
// everything between, so the id spaces stay dense) before the edge write,
// instead of rejecting the rating. Negative ids, and ids more than
// MaxDenseAdmissions past the current universe edge (absurd rather than
// merely unseen), are still rejected with an out-of-range error. Each
// admitted node and the edge write itself bump the epoch.
func (g *Bipartite) UpsertRatingAutoGrow(u, i int, w float64) (added bool, err error) {
	return g.applyRating(u, i, w, modeUpsert, true)
}

// CheckWrite validates one rating write against the current universe
// without applying it: the same verdict applyRating's own pre-lock
// validation would reach. The universe only grows, so a pass here cannot
// be invalidated by concurrent writes — which is what lets the durable
// write path reject garbage BEFORE logging it, so invalid operations
// never occupy write-ahead-log space or replay time.
func (g *Bipartite) CheckWrite(u, i int, w float64, autoGrow bool) error {
	uni := g.shared.uni.Load()
	if autoGrow {
		if err := checkGrowable("user", u, uni.numUsers); err != nil {
			return err
		}
		if err := checkGrowable("item", i, uni.numItems); err != nil {
			return err
		}
	} else {
		if u < 0 || u >= uni.numUsers {
			return fmt.Errorf("graph: user %d out of range [0,%d)", u, uni.numUsers)
		}
		if i < 0 || i >= uni.numItems {
			return fmt.Errorf("graph: item %d out of range [0,%d)", i, uni.numItems)
		}
	}
	// !(w > 0) also rejects NaN, which would otherwise poison degrees and
	// totalWeight irreversibly; +Inf is rejected for the same reason.
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: edge weight %v must be positive and finite", w)
	}
	return nil
}

// applyRating validates and applies one write under the graph lock.
func (g *Bipartite) applyRating(u, i int, w float64, mode writeMode, autoGrow bool) (added bool, err error) {
	// The universe only grows, so a pre-lock validation verdict of "in
	// range" cannot be invalidated before the lock is taken.
	if err := g.CheckWrite(u, i, w, autoGrow); err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	added, delta, err := g.applyRatingLocked(u, i, w, mode, autoGrow)
	g.epoch.Add(delta)
	g.maybeCompactLocked()
	return added, err
}

// applyRatingLocked applies one pre-validated write, returning the epoch
// delta it earned (admissions plus the edge write; zero for no-ops and
// failures) WITHOUT bumping the epoch: the single-write path bumps per
// write, the batch path accumulates and bumps once — so a batch of
// concurrent writers invalidates downstream caches with one epoch
// transition instead of one per write. Caller holds g.mu for writing and
// owns auto-compaction.
//
//ltr:lockentry
func (g *Bipartite) applyRatingLocked(u, i int, w float64, mode writeMode, autoGrow bool) (added bool, delta uint64, err error) {
	if autoGrow {
		g.shared.growMu.Lock()
		// Re-read under growMu: another write on this view — or an
		// admission through a sibling view — may have grown the universe
		// since validation, and the deficit must be computed against the
		// universe this grow will actually extend.
		uni := g.shared.uni.Load()
		newUsers, newItems := u-uni.numUsers+1, i-uni.numItems+1
		if newUsers < 0 {
			newUsers = 0
		}
		if newItems < 0 {
			newItems = 0
		}
		if newUsers > 0 || newItems > 0 {
			delta += g.growUnderLocks(newUsers, newItems)
		}
		g.shared.growMu.Unlock()
	}
	uni := g.shared.uni.Load()
	un, in := uni.userNode(u), uni.itemNode(i)

	cols, weights := g.rowLocked(un)
	k, exists := searchEdge(cols, in)
	switch {
	case exists && mode == modeAdd:
		return false, delta, fmt.Errorf("graph: rating (user %d, item %d) already exists", u, i)
	case !exists && mode == modeUpdate:
		return false, delta, fmt.Errorf("graph: rating (user %d, item %d) does not exist", u, i)
	}
	old := 0.0
	if exists {
		old = weights[k]
		if old == w {
			return false, delta, nil // true no-op: no epoch for the edge
		}
	}
	g.setEdgeLocked(un, in, w)
	g.setEdgeLocked(in, un, w)
	g.touchNodeLocked(un)
	g.touchNodeLocked(in)
	g.weightDelta += 2 * (w - old)
	if !exists {
		g.edgeDelta++
	}
	g.overlayWrites++
	return !exists, delta + 1, nil
}

// WriteOp is one rating write of a batch: an upsert, admitting unseen
// ids first when AutoGrow is set.
type WriteOp struct {
	User, Item int
	Score      float64
	AutoGrow   bool
}

// WriteResult is one WriteOp's outcome.
type WriteResult struct {
	// Added reports whether a new edge was created (false for re-rates,
	// no-ops and failures).
	Added bool
	// Err is the per-op verdict; other ops in the batch are unaffected.
	Err error
}

// UpsertRatingsBatch applies a batch of upserts under ONE lock
// acquisition with ONE epoch bump covering every accepted write — the
// group-commit write path. The epoch still advances by exactly the
// number of accepted writes (admissions + edge writes), preserving the
// "epoch = total accepted writes" meaning; what batching changes is the
// number of distinct epoch transitions downstream caches observe: one
// per batch instead of one per write. Results align with ops by index;
// a failed op does not disturb its neighbors. Auto-compaction runs once,
// after the whole batch.
func (g *Bipartite) UpsertRatingsBatch(ops []WriteOp) []WriteResult {
	results := make([]WriteResult, len(ops))
	if len(ops) == 0 {
		return results
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var delta uint64
	for k, op := range ops {
		// Validate inside the lock: earlier ops of this very batch may
		// have grown the universe the later ops depend on.
		if err := g.CheckWrite(op.User, op.Item, op.Score, op.AutoGrow); err != nil {
			results[k] = WriteResult{Err: err}
			continue
		}
		added, d, err := g.applyRatingLocked(op.User, op.Item, op.Score, modeUpsert, op.AutoGrow)
		results[k] = WriteResult{Added: added, Err: err}
		delta += d
	}
	g.epoch.Add(delta)
	g.maybeCompactLocked()
	return results
}

// setEdgeLocked installs a fresh overlay row for node v with the edge to w
// set to weight (inserting or replacing). Caller holds g.mu for writing.
func (g *Bipartite) setEdgeLocked(v, w int, weight float64) {
	cols, weights := g.rowLocked(v)
	k, exists := searchEdge(cols, w)
	row := &liveRow{degree: g.degreeLocked(v)}
	if exists {
		row.cols = append(make([]int, 0, len(cols)), cols...)
		row.weights = append(make([]float64, 0, len(weights)), weights...)
		row.degree += weight - row.weights[k]
		row.weights[k] = weight
	} else {
		row.cols = make([]int, 0, len(cols)+1)
		row.cols = append(append(append(row.cols, cols[:k]...), w), cols[k:]...)
		row.weights = make([]float64, 0, len(weights)+1)
		row.weights = append(append(append(row.weights, weights[:k]...), weight), weights[k:]...)
		row.degree += weight
	}
	if g.overlay == nil {
		g.overlay = make(map[int]*liveRow)
	}
	g.overlay[v] = row
}

// Compact folds every pending overlay row into a freshly built CSR —
// sized to the current universe, so nodes admitted since the last
// compaction get real (possibly empty) CSR rows — and publishes it as the
// new base, clearing the overlay. On a shared-base view this is a GROUP
// FOLD: it takes every sibling's write lock and folds every view's
// overlay into the one new base (see shared.go). The graph content is
// unchanged — fleet-wide, folding only moves pending writes from overlays
// into the base — so no epoch is bumped and cached results keyed on
// epochs stay valid. Readers holding row slices from before the
// compaction are unaffected (the old storage is never mutated).
//
//ltr:lockentry
func (g *Bipartite) Compact() {
	s := g.shared
	if len(s.views) == 1 {
		g.mu.Lock()
		s.foldLocked()
		g.mu.Unlock()
		return
	}
	s.lockAll()
	s.foldLocked()
	s.unlockAll()
}
