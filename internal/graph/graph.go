// Package graph models the undirected, edge-weighted user–item bipartite
// graph of Section 3.1 of the paper: users and items are nodes, a rating
// w(u,i) is an undirected edge whose weight is the rating score.
//
// Node numbering convention (used throughout the library): for the
// universe the graph was built with, user u occupies node u and item i
// occupies node NumUsers+i. Users and items admitted live (AddUser,
// AddItem, UpsertRatingAutoGrow — see universe.go) are appended at the end
// of the node space in arrival order, so existing node ids never move;
// UserNode/ItemNode/UserIndex/ItemIndex are the authoritative mapping. The
// adjacency matrix is stored symmetric in CSR form, so random-walk
// transition probabilities p_ij = a(i,j)/d_i (Eq. 1) fall out of row
// normalization.
//
// A Bipartite is built in bulk (Builder) and then serves reads; on top of
// the frozen CSR it also accepts live rating writes through a delta
// overlay (see live.go): AddRating/UpdateRating/UpsertRating mutate a
// per-node copy-on-write overlay that Compact folds back into the CSR,
// and every accepted write — including a universe-growing node admission —
// bumps a monotonically increasing graph epoch that downstream caches key
// on. Reads are safe concurrently with one writer; rows returned by
// Neighbors are immutable snapshots.
package graph

import (
	"fmt"
	"sync"
	"sync/atomic"

	"longtailrec/internal/sparse"
)

// Rating is one user–item edge with its weight (the rating score).
type Rating struct {
	User, Item int
	Weight     float64
}

// Bipartite is a user–item graph over a growable user/item universe —
// precisely, one VIEW over a shared immutable base (see shared.go). The
// bulk of the adjacency lives in the shared compacted CSR; live writes
// accumulate in this view's sparse per-node overlay until Compact (or the
// auto-compaction threshold) folds them, and nodes admitted live stay
// overlay-only (an empty row on the admitting view) until the next fold
// extends the CSR. A standalone graph is a shared state with exactly one
// view, so the single-graph behavior is unchanged; ShareViews splits one
// graph into N views for sharded serving. All exported methods are safe
// for concurrent use.
type Bipartite struct {
	// shared holds the storage common to every view: the immutable base
	// snapshot (CSR + degrees + aggregates) and the node universe, both
	// behind atomic pointers so identity accessors (NumUsers, UserNode,
	// IsItemNode, ...) never take the graph lock and are safe to call from
	// code already holding it in either mode. Set at construction, never
	// reassigned.
	shared *sharedState

	// epoch counts THIS VIEW's accepted live writes (edge writes and node
	// admissions) since construction; it is atomic so cache lookups can
	// read it without taking the graph lock. A group fold moves no epoch.
	epoch atomic.Uint64

	// mu is this view's lock: RLock for reads of overlay/deltas, Lock for
	// writes. Participates in the fleet-wide lock protocol — the group
	// fold takes EVERY view's mu in construction order (ltr-vet enforces
	// the protocol; see internal/analysis/lockorder).
	mu sync.RWMutex //ltr:viewmu

	// overlay maps a node id to its full live row (base row merged with
	// every pending write this view accepted touching it). Rows are
	// copy-on-write: a write always installs a freshly allocated row, so
	// slices previously handed to readers stay valid forever. A node beyond
	// the shared CSR's row count without an overlay row reads as an empty
	// row (it was admitted through a sibling view and has no edges here).
	overlay          map[int]*liveRow
	overlayWrites    int     // accepted writes since the last fold
	weightDelta      float64 // this view's totalWeight drift vs the base
	edgeDelta        int     // this view's numEdges drift vs the base
	compactThreshold int     // auto-fold when overlayWrites reaches this; <= 0 disables (single view only)

	// journal is the bounded ring of recently-touched node ids behind
	// fine-grained cache invalidation (see journal.go). Appended to under
	// mu alongside the overlay; read lock-free by CheckFingerprint. A fold
	// records nothing — folding changes representation, not content.
	journal writeJournal
	// nodeGens maps a node id to the write generation of its most recent
	// accepted write on this view. Guarded by mu; allocated lazily like the
	// overlay.
	nodeGens map[int]uint64
}

// Builder accumulates ratings before freezing them into a Bipartite.
type Builder struct {
	numUsers, numItems int
	coo                *sparse.COO
}

// NewBuilder creates a builder for a graph with the given universe sizes.
func NewBuilder(numUsers, numItems int) *Builder {
	if numUsers < 0 || numItems < 0 {
		panic(fmt.Sprintf("graph: NewBuilder(%d, %d)", numUsers, numItems))
	}
	n := numUsers + numItems
	return &Builder{
		numUsers: numUsers,
		numItems: numItems,
		coo:      sparse.NewCOO(n, n),
	}
}

// AddRating records the undirected edge (user u — item i) with weight w.
// Duplicate pairs are summed. Non-positive weights are rejected since the
// paper's graph has strictly positive edge weights.
func (b *Builder) AddRating(u, i int, w float64) error {
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("graph: user %d out of range [0,%d)", u, b.numUsers)
	}
	if i < 0 || i >= b.numItems {
		return fmt.Errorf("graph: item %d out of range [0,%d)", i, b.numItems)
	}
	if w <= 0 {
		return fmt.Errorf("graph: edge weight %v must be positive", w)
	}
	un, in := u, b.numUsers+i
	b.coo.Add(un, in, w)
	b.coo.Add(in, un, w)
	return nil
}

// Build freezes the builder into a graph (epoch 0, empty overlay): a
// single view over its own freshly built base snapshot.
func (b *Builder) Build() *Bipartite {
	adj := b.coo.ToCSR()
	n := b.numUsers + b.numItems
	base := &baseSnapshot{
		adj:      adj,
		degrees:  make([]float64, n),
		numEdges: adj.NNZ() / 2,
	}
	for v := 0; v < n; v++ {
		d := adj.RowSum(v)
		base.degrees[v] = d
		base.totalWeight += d
	}
	g := &Bipartite{shared: &sharedState{}}
	g.shared.uni.Store(newBaseUniverse(b.numUsers, b.numItems))
	g.shared.base.Store(base)
	g.shared.views = []*Bipartite{g}
	return g
}

// FromRatings builds a graph directly from a rating slice.
func FromRatings(numUsers, numItems int, ratings []Rating) (*Bipartite, error) {
	b := NewBuilder(numUsers, numItems)
	for _, r := range ratings {
		if err := b.AddRating(r.User, r.Item, r.Weight); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// NumUsers returns the current number of user nodes (live: node
// admissions grow it).
func (g *Bipartite) NumUsers() int { return g.shared.uni.Load().numUsers }

// NumItems returns the current number of item nodes (live).
func (g *Bipartite) NumItems() int { return g.shared.uni.Load().numItems }

// NumNodes returns the total node count (live).
func (g *Bipartite) NumNodes() int { return g.shared.uni.Load().numNodes() }

// BaseNumUsers returns the user-universe size frozen at Build, before any
// live admissions — the universe that snapshot-trained models cover.
func (g *Bipartite) BaseNumUsers() int { return g.shared.uni.Load().baseUsers }

// BaseNumItems returns the item-universe size frozen at Build.
func (g *Bipartite) BaseNumItems() int { return g.shared.uni.Load().baseItems }

// NumEdges returns the number of undirected edges, including pending
// overlay writes.
func (g *Bipartite) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shared.base.Load().numEdges + g.edgeDelta
}

// UserNode maps a user index to its node id.
func (g *Bipartite) UserNode(u int) int {
	uni := g.shared.uni.Load()
	if u < 0 || u >= uni.numUsers {
		panic(fmt.Sprintf("graph: user %d out of range", u))
	}
	return uni.userNode(u)
}

// ItemNode maps an item index to its node id.
func (g *Bipartite) ItemNode(i int) int {
	uni := g.shared.uni.Load()
	if i < 0 || i >= uni.numItems {
		panic(fmt.Sprintf("graph: item %d out of range", i))
	}
	return uni.itemNode(i)
}

// IsUserNode reports whether node v is a user.
func (g *Bipartite) IsUserNode(v int) bool { return g.shared.uni.Load().isUser(v) }

// IsItemNode reports whether node v is an item.
func (g *Bipartite) IsItemNode(v int) bool { return g.shared.uni.Load().isItem(v) }

// UserIndex maps a user node id back to its user index.
func (g *Bipartite) UserIndex(v int) int {
	uni := g.shared.uni.Load()
	if !uni.isUser(v) {
		panic(fmt.Sprintf("graph: node %d is not a user", v))
	}
	return uni.userIndex(v)
}

// ItemIndex maps an item node id back to its item index.
func (g *Bipartite) ItemIndex(v int) int {
	uni := g.shared.uni.Load()
	if !uni.isItem(v) {
		panic(fmt.Sprintf("graph: node %d is not an item", v))
	}
	return uni.itemIndex(v)
}

// rowLocked returns the live row of node v: the overlay row when v has
// pending writes, the base CSR row otherwise; a node beyond the base (a
// sibling view's admission this view has no writes for) reads as an empty
// row. Caller holds g.mu (either mode), which pins the base (a group fold
// needs every view's write lock). The returned slices are immutable.
func (g *Bipartite) rowLocked(v int) (cols []int, weights []float64) {
	if r, ok := g.overlay[v]; ok {
		return r.cols, r.weights
	}
	if base := g.shared.base.Load(); v < len(base.degrees) {
		return base.adj.Row(v)
	}
	return nil, nil
}

// degreeLocked returns the live weighted degree of v. Caller holds g.mu.
func (g *Bipartite) degreeLocked(v int) float64 {
	if r, ok := g.overlay[v]; ok {
		return r.degree
	}
	if base := g.shared.base.Load(); v < len(base.degrees) {
		return base.degrees[v]
	}
	return 0
}

// Degree returns the live weighted degree d_v of node v.
func (g *Bipartite) Degree(v int) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.degreeLocked(v)
}

// Degrees returns the live weighted degree vector. When no writes are
// pending this aliases internal storage (do not modify); with a non-empty
// overlay it is a freshly allocated merged copy. Nodes admitted since the
// last compaction are included (they live in the overlay until then).
func (g *Bipartite) Degrees() []float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	base := g.shared.base.Load()
	n := g.shared.uni.Load().numNodes()
	if len(g.overlay) == 0 && n == len(base.degrees) {
		return base.degrees
	}
	out := make([]float64, n)
	copy(out, base.degrees)
	for v, r := range g.overlay {
		out[v] = r.degree
	}
	return out
}

// TotalWeight returns Σ_ij a(i,j) with each undirected edge counted twice,
// the normalizer of the stationary distribution (Eq. 2). Live.
func (g *Bipartite) TotalWeight() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shared.base.Load().totalWeight + g.weightDelta
}

// Adjacency returns the compacted symmetric adjacency matrix (shared; do
// not modify). It is a snapshot: pending overlay writes are NOT included —
// call Compact first for a fully merged view, or use Neighbors for live
// per-node rows.
func (g *Bipartite) Adjacency() *sparse.CSR {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shared.base.Load().adj
}

// Neighbors returns the adjacent node ids and edge weights of v, including
// pending overlay writes. The slices are immutable snapshots: they stay
// valid indefinitely (later writes install fresh rows rather than mutating
// them) but no longer reflect the graph once v is written to again.
func (g *Bipartite) Neighbors(v int) (nodes []int, weights []float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rowLocked(v)
}

// Weight returns the live edge weight between nodes v and w (0 if absent).
func (g *Bipartite) Weight(v, w int) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	cols, weights := g.rowLocked(v)
	if k, ok := searchEdge(cols, w); ok {
		return weights[k]
	}
	return 0
}

// Stationary returns the stationary distribution π of the random walk
// (Eq. 2): π_v = d_v / Σ_w d_w. Nodes in different components still get
// degree-proportional mass, consistent with the formula.
func (g *Bipartite) Stationary() []float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pi := make([]float64, g.NumNodes())
	total := g.shared.base.Load().totalWeight + g.weightDelta
	if total == 0 {
		return pi
	}
	for v := range pi {
		pi[v] = g.degreeLocked(v) / total
	}
	return pi
}

// ItemPopularity returns, for every item, the number of users who rated it
// (its rating frequency — the paper's popularity measure in §5.2.2). Live.
func (g *Bipartite) ItemPopularity() []int {
	return g.ItemPopularityInto(nil)
}

// ItemPopularityInto is ItemPopularity writing into caller-provided
// storage when it has the capacity — the allocation-free variant the
// query engine's long-tail filter uses with pooled scratch. The filled
// slice (re-sliced to the live item count, or freshly allocated with
// growth headroom when buf is too small) is returned.
func (g *Bipartite) ItemPopularityInto(buf []int) []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	uni := g.shared.uni.Load()
	base := g.shared.base.Load()
	var pop []int
	if cap(buf) >= uni.numItems {
		pop = buf[:uni.numItems]
	} else {
		pop = make([]int, uni.numItems, uni.numItems+uni.numItems/8)
	}
	for i := 0; i < uni.numItems; i++ {
		v := uni.itemNode(i)
		switch r, ok := g.overlay[v]; {
		case ok:
			pop[i] = len(r.cols)
		case v < len(base.degrees):
			pop[i] = base.adj.RowNNZ(v)
		default:
			pop[i] = 0
		}
	}
	return pop
}

// UserItems returns the item indices rated by user u (the set S_u) along
// with the rating weights. The returned slices are freshly allocated.
func (g *Bipartite) UserItems(u int) (items []int, weights []float64) {
	nodes, ws := g.Neighbors(g.UserNode(u))
	items = make([]int, len(nodes))
	weights = make([]float64, len(nodes))
	for k, v := range nodes {
		items[k] = g.ItemIndex(v)
		weights[k] = ws[k]
	}
	return items, weights
}

// ConnectedComponents labels every node with a component id (0-based,
// ordered by discovery) and returns the labels plus the component count.
// Isolated nodes (degree 0) each form their own component.
func (g *Bipartite) ConnectedComponents() (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbrs, _ := g.Neighbors(v)
			for _, w := range nbrs {
				if labels[w] == -1 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}
