// Package graph models the undirected, edge-weighted user–item bipartite
// graph of Section 3.1 of the paper: users and items are nodes, a rating
// w(u,i) is an undirected edge whose weight is the rating score.
//
// Node numbering convention (used throughout the library): user u occupies
// node u, item i occupies node NumUsers+i. The adjacency matrix is stored
// symmetric in CSR form, so random-walk transition probabilities
// p_ij = a(i,j)/d_i (Eq. 1) fall out of row normalization.
package graph

import (
	"fmt"

	"longtailrec/internal/sparse"
)

// Rating is one user–item edge with its weight (the rating score).
type Rating struct {
	User, Item int
	Weight     float64
}

// Bipartite is an immutable user–item graph.
type Bipartite struct {
	numUsers, numItems int
	adj                *sparse.CSR // (NU+NI)×(NU+NI), symmetric
	degrees            []float64   // weighted degree d_i per node
	totalWeight        float64     // Σ_ij a(i,j) (each edge counted twice)
}

// Builder accumulates ratings before freezing them into a Bipartite.
type Builder struct {
	numUsers, numItems int
	coo                *sparse.COO
}

// NewBuilder creates a builder for a graph with the given universe sizes.
func NewBuilder(numUsers, numItems int) *Builder {
	if numUsers < 0 || numItems < 0 {
		panic(fmt.Sprintf("graph: NewBuilder(%d, %d)", numUsers, numItems))
	}
	n := numUsers + numItems
	return &Builder{
		numUsers: numUsers,
		numItems: numItems,
		coo:      sparse.NewCOO(n, n),
	}
}

// AddRating records the undirected edge (user u — item i) with weight w.
// Duplicate pairs are summed. Non-positive weights are rejected since the
// paper's graph has strictly positive edge weights.
func (b *Builder) AddRating(u, i int, w float64) error {
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("graph: user %d out of range [0,%d)", u, b.numUsers)
	}
	if i < 0 || i >= b.numItems {
		return fmt.Errorf("graph: item %d out of range [0,%d)", i, b.numItems)
	}
	if w <= 0 {
		return fmt.Errorf("graph: edge weight %v must be positive", w)
	}
	un, in := u, b.numUsers+i
	b.coo.Add(un, in, w)
	b.coo.Add(in, un, w)
	return nil
}

// Build freezes the builder into an immutable graph.
func (b *Builder) Build() *Bipartite {
	adj := b.coo.ToCSR()
	n := b.numUsers + b.numItems
	g := &Bipartite{
		numUsers: b.numUsers,
		numItems: b.numItems,
		adj:      adj,
		degrees:  make([]float64, n),
	}
	for v := 0; v < n; v++ {
		d := adj.RowSum(v)
		g.degrees[v] = d
		g.totalWeight += d
	}
	return g
}

// FromRatings builds a graph directly from a rating slice.
func FromRatings(numUsers, numItems int, ratings []Rating) (*Bipartite, error) {
	b := NewBuilder(numUsers, numItems)
	for _, r := range ratings {
		if err := b.AddRating(r.User, r.Item, r.Weight); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// NumUsers returns the number of user nodes.
func (g *Bipartite) NumUsers() int { return g.numUsers }

// NumItems returns the number of item nodes.
func (g *Bipartite) NumItems() int { return g.numItems }

// NumNodes returns the total node count.
func (g *Bipartite) NumNodes() int { return g.numUsers + g.numItems }

// NumEdges returns the number of undirected edges.
func (g *Bipartite) NumEdges() int { return g.adj.NNZ() / 2 }

// UserNode maps a user index to its node id.
func (g *Bipartite) UserNode(u int) int {
	if u < 0 || u >= g.numUsers {
		panic(fmt.Sprintf("graph: user %d out of range", u))
	}
	return u
}

// ItemNode maps an item index to its node id.
func (g *Bipartite) ItemNode(i int) int {
	if i < 0 || i >= g.numItems {
		panic(fmt.Sprintf("graph: item %d out of range", i))
	}
	return g.numUsers + i
}

// IsUserNode reports whether node v is a user.
func (g *Bipartite) IsUserNode(v int) bool { return v >= 0 && v < g.numUsers }

// IsItemNode reports whether node v is an item.
func (g *Bipartite) IsItemNode(v int) bool {
	return v >= g.numUsers && v < g.numUsers+g.numItems
}

// ItemIndex maps an item node id back to its item index.
func (g *Bipartite) ItemIndex(v int) int {
	if !g.IsItemNode(v) {
		panic(fmt.Sprintf("graph: node %d is not an item", v))
	}
	return v - g.numUsers
}

// Degree returns the weighted degree d_v of node v.
func (g *Bipartite) Degree(v int) float64 { return g.degrees[v] }

// Degrees returns the weighted degree vector (aliases internal storage).
func (g *Bipartite) Degrees() []float64 { return g.degrees }

// TotalWeight returns Σ_ij a(i,j) with each undirected edge counted twice,
// the normalizer of the stationary distribution (Eq. 2).
func (g *Bipartite) TotalWeight() float64 { return g.totalWeight }

// Adjacency returns the symmetric adjacency matrix (shared; do not modify).
func (g *Bipartite) Adjacency() *sparse.CSR { return g.adj }

// Neighbors returns the adjacent node ids and edge weights of v. The slices
// alias internal storage and must not be modified.
func (g *Bipartite) Neighbors(v int) (nodes []int, weights []float64) {
	return g.adj.Row(v)
}

// Weight returns the edge weight between nodes v and w (0 if absent).
func (g *Bipartite) Weight(v, w int) float64 { return g.adj.At(v, w) }

// Stationary returns the stationary distribution π of the random walk
// (Eq. 2): π_v = d_v / Σ_w d_w. Nodes in different components still get
// degree-proportional mass, consistent with the formula.
func (g *Bipartite) Stationary() []float64 {
	pi := make([]float64, g.NumNodes())
	if g.totalWeight == 0 {
		return pi
	}
	for v, d := range g.degrees {
		pi[v] = d / g.totalWeight
	}
	return pi
}

// ItemPopularity returns, for every item, the number of users who rated it
// (its rating frequency — the paper's popularity measure in §5.2.2).
func (g *Bipartite) ItemPopularity() []int {
	pop := make([]int, g.numItems)
	for i := 0; i < g.numItems; i++ {
		pop[i] = g.adj.RowNNZ(g.ItemNode(i))
	}
	return pop
}

// UserItems returns the item indices rated by user u (the set S_u) along
// with the rating weights. The returned slices are freshly allocated.
func (g *Bipartite) UserItems(u int) (items []int, weights []float64) {
	nodes, ws := g.Neighbors(g.UserNode(u))
	items = make([]int, len(nodes))
	weights = make([]float64, len(nodes))
	for k, v := range nodes {
		items[k] = g.ItemIndex(v)
		weights[k] = ws[k]
	}
	return items, weights
}

// ConnectedComponents labels every node with a component id (0-based,
// ordered by discovery) and returns the labels plus the component count.
// Isolated nodes (degree 0) each form their own component.
func (g *Bipartite) ConnectedComponents() (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbrs, _ := g.Neighbors(v)
			for _, w := range nbrs {
				if labels[w] == -1 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}
