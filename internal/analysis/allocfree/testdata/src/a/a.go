// Package a exercises the allocfree analyzer: the heap-escaping
// constructs it rejects inside //ltr:allocfree functions and the
// amortized idioms it allows.
package a

import (
	"errors"
	"fmt"
)

type point struct{ x, y int }

//ltr:allocfree
func BadMake(n int) {
	s := make([]int, n) // want `calls make`
	_ = s
}

//ltr:allocfree
func BadNew() {
	p := new(point) // want `calls new`
	_ = p
}

//ltr:allocfree
func BadSliceLit() {
	s := []int{1, 2, 3} // want `builds a \[\]int literal`
	_ = s
}

//ltr:allocfree
func BadMapLit() {
	m := map[string]int{} // want `builds a map\[string\]int literal`
	_ = m
}

//ltr:allocfree
func BadPtrLit() *point {
	return &point{1, 2} // want `takes the address of a composite literal`
}

// OKValueLit is clean: a value composite literal stays on the stack.
//
//ltr:allocfree
func OKValueLit() point {
	return point{1, 2}
}

//ltr:allocfree
func BadClosure(n int) func() int {
	return func() int { return n } // want `contains a function literal`
}

//ltr:allocfree
func BadGo() {
	go helper() // want `starts a goroutine`
}

//ltr:allocfree
func BadConcat(a, b string) string {
	return a + b // want `concatenates strings`
}

//ltr:allocfree
func BadAppend(dst, src []int) []int {
	out := append(dst, src...) // want `appends into fresh storage \(dst\)`
	return out
}

// OKAppend is clean: self-append and preallocated refill are the two
// amortized idioms.
//
//ltr:allocfree
func OKAppend(buf []int, v int) []int {
	buf = append(buf, v)
	buf = append(buf[:0], v)
	return buf
}

//ltr:allocfree
func BadFmt(err error) {
	fmt.Println(err) // want `calls fmt\.Println on the steady path`
}

//ltr:allocfree
func BadErrors(msg string) {
	err := errors.New(msg) // want `calls errors\.New on the steady path`
	_ = err
}

// OKColdReturn is clean: error construction inside a return statement is
// the cold path.
//
//ltr:allocfree
func OKColdReturn(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

// OKPanic is clean: panic arguments are cold.
//
//ltr:allocfree
func OKPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
}

//ltr:allocfree
func BadBox(n int) {
	sink(n) // want `passes a int to an interface parameter`
}

// OKBoxPointer is clean: interfaces hold pointers directly, no copy.
//
//ltr:allocfree
func OKBoxPointer(p *point) {
	sink(p)
}

//ltr:allocfree
func BadConv(b []byte) string {
	return string(b) // want `converts between string and slice`
}

// OKIgnored shows suppression with a mandatory reason.
//
//ltr:allocfree
func OKIgnored(n int) int {
	//ltr:ignore allocfree non-escaping closure, inlined by the compiler
	f := func() int { return n }
	return f()
}

// FreeAlloc is clean: unannotated functions may allocate freely.
func FreeAlloc(n int) []int {
	return make([]int, n)
}

func helper() {}

func sink(v interface{}) { _ = v }
