// Package allocfree is the static complement of the 25 allocs/op bench
// gate: a function annotated //ltr:allocfree claims its steady-state body
// performs no heap allocation, and this analyzer rejects the constructs
// that would break the claim:
//
//   - make / new calls
//   - slice and map composite literals, and address-taken composite
//     literals (&T{...})
//   - append that is not the amortized self-append idiom (x = append(x,
//     ...)) or a refill of preallocated backing (append(x[:0], ...))
//   - function literals (closures capture locals onto the heap)
//   - go statements
//   - fmt / log / errors calls outside a return statement or panic
//     argument (cold failure paths may allocate; the steady path may not)
//   - string concatenation and string<->slice conversions
//   - interface conversions of non-pointer concrete values (boxing) in
//     call arguments and explicit conversions
//
// The check is per-function and syntactic: it does not chase callees (the
// benchmark gate owns the composition), it keeps the annotated leaf
// kernels honest.
package allocfree

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"longtailrec/internal/analysis/directives"
)

// Analyzer is the allocfree checker.
var Analyzer = &analysis.Analyzer{
	Name:     "allocfree",
	Doc:      "check that //ltr:allocfree functions contain no heap-escaping constructs (make, escaping literals, growing append, closures, fmt on the hot path, boxing)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	rep := directives.NewSuppressor(pass, "allocfree")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !directives.FuncMarked(fn, directives.VerbAllocFree) {
			return
		}
		checkBody(pass, rep, fn)
	})
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	rep  *directives.Suppressor
	fn   *ast.FuncDecl
	// coldOK holds fmt/log/errors calls sanctioned by their position
	// (inside a return statement or panic argument).
	coldOK map[*ast.CallExpr]bool
	// handledAppends are append calls already checked together with their
	// assignment's left-hand side, so the bare-call walk skips them.
	handledAppends map[*ast.CallExpr]bool
}

func checkBody(pass *analysis.Pass, rep *directives.Suppressor, fn *ast.FuncDecl) {
	c := &checker{
		pass: pass, rep: rep, fn: fn,
		coldOK:         map[*ast.CallExpr]bool{},
		handledAppends: map[*ast.CallExpr]bool{},
	}
	// Mark the cold-path sanctioned calls first: any fmt/log/errors call
	// nested in a return statement or in a panic(...) argument.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			c.markCold(n)
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "panic") {
				// The panic call itself is cold too: boxing its argument
				// happens only on the failing path.
				c.coldOK[n] = true
				c.markCold(n)
			}
		}
		return true
	})
	ast.Inspect(fn.Body, c.visit)
}

func (c *checker) markCold(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && c.isColdAllocPkgCall(call) {
			c.coldOK[call] = true
		}
		return true
	})
}

func (c *checker) errorf(n ast.Node, format string, args ...interface{}) {
	c.rep.Reportf(n.Pos(), "//ltr:allocfree function %s "+format, append([]interface{}{c.fn.Name.Name}, args...)...)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		c.errorf(n, "contains a function literal: closures capture locals onto the heap")
		return false // inner constructs are covered by the closure diagnostic
	case *ast.GoStmt:
		c.errorf(n, "starts a goroutine: go statements allocate")
	case *ast.CompositeLit:
		t := c.pass.TypesInfo.TypeOf(n)
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			c.errorf(n, "builds a %s literal, which allocates backing storage", types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
		}
	case *ast.UnaryExpr:
		if lit, ok := n.X.(*ast.CompositeLit); ok {
			c.errorf(n, "takes the address of a composite literal (&%s{...}), which heap-allocates", types.TypeString(c.pass.TypesInfo.TypeOf(lit), types.RelativeTo(c.pass.Pkg)))
		}
	case *ast.BinaryExpr:
		if n.Op.String() == "+" && isString(c.pass.TypesInfo.TypeOf(n)) {
			c.errorf(n, "concatenates strings, which allocates")
		}
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(c.pass, call.Fun, "append") {
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				c.checkAppend(call, lhs)
				c.handledAppends[call] = true
			}
		}
	case *ast.CallExpr:
		c.checkCall(n)
	}
	return true
}

func (c *checker) checkCall(call *ast.CallExpr) {
	switch {
	case isBuiltin(c.pass, call.Fun, "make"):
		c.errorf(call, "calls make, which allocates")
		return
	case isBuiltin(c.pass, call.Fun, "new"):
		c.errorf(call, "calls new, which allocates")
		return
	case isBuiltin(c.pass, call.Fun, "append"):
		// Bare append expression whose result is not self-assigned: the
		// assignment case is handled (and possibly allowed) in visit; an
		// append reaching here is a grow-into-new-variable append.
		if !c.handledAppends[call] {
			c.checkAppend(call, nil)
		}
		return
	}
	if c.pass.TypesInfo.Types[call.Fun].IsType() {
		c.checkConversion(call)
		return
	}
	if c.isColdAllocPkgCall(call) && !c.coldOK[call] {
		c.errorf(call, "calls %s on the steady path: fmt/log/errors allocate; only return statements and panic arguments may", types.ExprString(call.Fun))
	}
	c.checkBoxing(call)
}

// checkAppend allows the two amortized idioms: self-append (x = append(x,
// ...)) and refill of preallocated backing (append(x[:0], ...) /
// append(x[:n], ...)).
func (c *checker) checkAppend(call *ast.CallExpr, lhs ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := call.Args[0].(*ast.SliceExpr); ok {
		return // append(x[:0], ...): refilling preallocated backing
	}
	if lhs != nil && types.ExprString(lhs) == types.ExprString(call.Args[0]) {
		return // x = append(x, ...): amortized growth of persistent scratch
	}
	c.errorf(call, "appends into fresh storage (%s): only self-append (x = append(x, ...)) or preallocated refill (append(x[:0], ...)) are allocation-free", types.ExprString(call.Args[0]))
}

// checkConversion flags conversions that allocate: string <-> byte/rune
// slices, and boxing a non-pointer concrete value into an interface.
func (c *checker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := c.pass.TypesInfo.TypeOf(call.Fun)
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	switch {
	case isString(to) && !isString(from), !isString(to) && isSlice(to) && isString(from):
		c.errorf(call, "converts between string and slice, which copies and allocates")
	case types.IsInterface(to) && !types.IsInterface(from) && !isPointerLike(from):
		c.errorf(call, "boxes a %s into an interface, which heap-allocates the value", types.TypeString(from, types.RelativeTo(c.pass.Pkg)))
	}
}

// checkBoxing flags call arguments whose concrete non-pointer values land
// in interface parameters (fmt-style boxing without fmt). Sanctioned
// cold-path calls (fmt/log/errors inside returns and panic arguments) may
// box freely: the cold path is allowed to allocate wholesale.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	if c.coldOK[call] {
		return
	}
	sigT := c.pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at) && !isPointerLike(at) && !isUntypedNil(c.pass, arg) {
			c.errorf(arg, "passes a %s to an interface parameter, which may box it onto the heap", types.TypeString(at, types.RelativeTo(c.pass.Pkg)))
		}
	}
}

// isColdAllocPkgCall reports whether call targets the fmt, log or errors
// packages — the sanctioned-on-cold-paths allocators.
func (c *checker) isColdAllocPkgCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "fmt", "log", "errors":
		return true
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltinObj := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltinObj
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isPointerLike reports types whose interface boxing does not allocate a
// copy of the pointed-to value: pointers, maps, channels, funcs, unsafe
// pointers. (Slices and strings still copy headers onto the heap.)
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
