package allocfree_test

import (
	"testing"

	"longtailrec/internal/analysis/allocfree"
	"longtailrec/internal/analysis/atest"
)

func TestAllocFree(t *testing.T) {
	atest.Run(t, atest.TestData(t), allocfree.Analyzer, "a")
}
