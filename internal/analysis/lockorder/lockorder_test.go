package lockorder_test

import (
	"testing"

	"longtailrec/internal/analysis/atest"
	"longtailrec/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	atest.Run(t, atest.TestData(t), lockorder.Analyzer, "a")
}
