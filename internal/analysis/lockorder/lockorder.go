// Package lockorder enforces the shared-view lock protocol introduced by
// the shared-base sharding refactor (internal/graph/shared.go):
//
//   - The group fold runs only with EVERY view's write lock held, taken in
//     construction order. Functions marked //ltr:groupfold may therefore
//     only be called from audited //ltr:lockentry (or other groupfold)
//     functions.
//   - Taking a //ltr:viewmu lock inside a loop, or taking the viewmu of
//     two distinct values in one function, is multi-view locking — only
//     lockentry functions may do it, and a loop that locks views must
//     iterate ascending (construction order); a descending lock loop is an
//     error even in a lockentry function.
//   - A //ltr:guardmu mutex (the universe-growth serializer) may only be
//     locked by lockentry functions.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"longtailrec/internal/analysis/directives"
)

// Analyzer is the lockorder checker.
var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "check the shared-view lock protocol: group folds and multi-view locking only in //ltr:lockentry functions, view-lock loops ascending",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}

func run(pass *analysis.Pass) (interface{}, error) {
	viewMu := directives.MarkedFieldObjects(pass, directives.VerbViewMu)
	guardMu := directives.MarkedFieldObjects(pass, directives.VerbGuardMu)
	lockEntry := directives.MarkedFuncObjects(pass, directives.VerbLockEntry)
	groupFold := directives.MarkedFuncObjects(pass, directives.VerbGroupFold)
	if len(viewMu) == 0 && len(guardMu) == 0 && len(groupFold) == 0 {
		return nil, nil // package declares no lock protocol
	}
	rep := directives.NewSuppressor(pass, "lockorder")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		fnObj := pass.TypesInfo.Defs[fn.Name]
		entry := fnObj != nil && (lockEntry[fnObj] || groupFold[fnObj])
		checkFunc(pass, rep, fn, entry, viewMu, guardMu, lockEntry, groupFold)
	})
	return nil, nil
}

// checkFunc walks one function body tracking the enclosing-loop stack.
func checkFunc(pass *analysis.Pass, rep *directives.Suppressor, fn *ast.FuncDecl, entry bool,
	viewMu, guardMu, lockEntry, groupFold map[types.Object]bool) {

	// lockedBases collects the distinct mutex-owner expressions whose
	// viewmu this function locks; a second distinct base outside a
	// lockentry function is hand-rolled multi-view locking.
	lockedBases := map[string]token.Pos{}
	var loops []ast.Node // enclosing for/range statements, innermost last

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(loopBody(n), walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			checkCall(pass, rep, fn, n, entry, loops, lockedBases, viewMu, guardMu, groupFold)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func checkCall(pass *analysis.Pass, rep *directives.Suppressor, fn *ast.FuncDecl, call *ast.CallExpr,
	entry bool, loops []ast.Node, lockedBases map[string]token.Pos,
	viewMu, guardMu, groupFold map[types.Object]bool) {

	// Group-fold reachability: only audited entry points may call a fold.
	if callee := typeutil.Callee(pass.TypesInfo, call); callee != nil && groupFold[callee] {
		if !entry {
			rep.Reportf(call.Pos(), "call to group fold %s outside an //ltr:lockentry function: a fold requires every view's write lock, taken in construction order", callee.Name())
		}
	}

	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
		return
	}
	muField := fieldObject(pass, sel.X)
	if muField == nil {
		return
	}
	switch {
	case viewMu[muField]:
		if !lockMethods[method] {
			return // unlock order is the reverse; only acquisitions can deadlock
		}
		base := baseExprString(sel.X)
		if len(loops) > 0 {
			if descendingLoop(loops[len(loops)-1]) {
				rep.Reportf(call.Pos(), "view lock %s taken in a descending loop: the group fold must take view locks in ascending construction order", method)
			}
			if !entry {
				rep.Reportf(call.Pos(), "view lock %s taken in a loop outside an //ltr:lockentry function: multi-view locking must go through the audited group-fold entry points", method)
			}
		}
		if prev, dup := firstOtherBase(lockedBases, base); dup && !entry {
			rep.Reportf(call.Pos(), "second view lock (%s.%s after %s) outside an //ltr:lockentry function: locking two views must go through the audited group-fold entry points", base, method, prev)
		}
		if _, seen := lockedBases[base]; !seen {
			lockedBases[base] = call.Pos()
		}
	case guardMu[muField]:
		if !entry {
			rep.Reportf(call.Pos(), "guard mutex %s.%s outside an //ltr:lockentry function: universe growth is serialized only through audited entry points", baseExprString(sel.X), method)
		}
	}
}

// fieldObject resolves an expression like g.mu (or s.views[i].mu) to the
// struct-field object of the mutex, or nil.
func fieldObject(pass *analysis.Pass, e ast.Expr) types.Object {
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.TypesInfo.Selections[se]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// baseExprString canonicalizes the owner of a mutex selector (the X of
// X.mu) for distinct-base detection.
func baseExprString(e ast.Expr) string {
	if se, ok := e.(*ast.SelectorExpr); ok {
		return types.ExprString(se.X)
	}
	return types.ExprString(e)
}

// firstOtherBase reports a previously locked base different from base.
func firstOtherBase(locked map[string]token.Pos, base string) (string, bool) {
	for b := range locked {
		if b != base {
			return b, true
		}
	}
	return "", false
}

// descendingLoop reports whether a for statement steps its induction
// variable downwards (i--, i -= 1).
func descendingLoop(n ast.Node) bool {
	f, ok := n.(*ast.ForStmt)
	if !ok || f.Post == nil {
		return false
	}
	switch post := f.Post.(type) {
	case *ast.IncDecStmt:
		return post.Tok == token.DEC
	case *ast.AssignStmt:
		return post.Tok == token.SUB_ASSIGN
	}
	return false
}
