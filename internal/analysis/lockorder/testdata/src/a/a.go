// Package a exercises the lockorder analyzer: group-fold reachability,
// view-lock loops, multi-view locking, descending loops, guard mutexes.
package a

import "sync"

type View struct {
	mu sync.RWMutex //ltr:viewmu
	n  int
}

type State struct {
	growMu sync.Mutex //ltr:guardmu
	views  []*View
}

//ltr:groupfold
func (s *State) fold() {}

// lockAll is the audited entry point: looping over view locks and calling
// the fold is legal here.
//
//ltr:lockentry
func (s *State) lockAll() {
	for _, v := range s.views {
		v.mu.Lock()
	}
	s.fold()
}

// Read is clean: a single view lock, no loop, no second view.
func (v *View) Read() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.n
}

func (s *State) badFold() {
	s.fold() // want `call to group fold fold outside an //ltr:lockentry function`
}

func (s *State) badLoop() {
	for _, v := range s.views {
		v.mu.RLock() // want `view lock RLock taken in a loop outside an //ltr:lockentry function`
		v.mu.RUnlock()
	}
}

func badPair(a, b *View) {
	a.mu.Lock()
	b.mu.Lock() // want `second view lock \(b\.Lock after a\) outside an //ltr:lockentry function`
	b.mu.Unlock()
	a.mu.Unlock()
}

// Even an audited entry point must take view locks in ascending
// construction order.
//
//ltr:lockentry
func (s *State) badDescending() {
	for i := len(s.views) - 1; i >= 0; i-- {
		s.views[i].mu.Lock() // want `view lock Lock taken in a descending loop`
	}
}

func (s *State) badGuard() {
	s.growMu.Lock()   // want `guard mutex s\.Lock outside an //ltr:lockentry function`
	s.growMu.Unlock() // want `guard mutex s\.Unlock outside an //ltr:lockentry function`
}

// okIgnored shows same-line suppression with a mandatory reason.
func (s *State) okIgnored() {
	s.growMu.Lock()   //ltr:ignore lockorder suppression smoke test, audited by hand
	s.growMu.Unlock() //ltr:ignore lockorder suppression smoke test, audited by hand
}
