// Package b marks an exported field atomic so package a can test that the
// IsAtomicField fact crosses the package boundary.
package b

import "sync/atomic"

type Shared struct {
	Epoch uint64
}

func (s *Shared) Bump() {
	atomic.AddUint64(&s.Epoch, 1)
}
