// Package a exercises the atomicfield analyzer: mixed atomic/plain access
// to fields and globals, typed-atomic copies, cross-package facts.
package a

import (
	"sync/atomic"

	"b"
)

type Counter struct {
	n uint64
	m uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) BadRead() uint64 {
	return c.n // want `non-atomic access to n`
}

func (c *Counter) GoodRead() uint64 {
	return atomic.LoadUint64(&c.n)
}

// PlainOK is clean: m is never touched by sync/atomic.
func (c *Counter) PlainOK() uint64 {
	return c.m
}

type Typed struct {
	epoch atomic.Uint64
}

func Copy(t *Typed) {
	e := t.epoch // want `assignment copies atomic\.Uint64 value t\.epoch`
	_ = e.Load()
}

// MethodOK is clean: method calls select through the pointer.
func MethodOK(t *Typed) uint64 {
	return t.epoch.Load()
}

var global int64

func BumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func BadGlobal() int64 {
	return global // want `non-atomic access to global`
}

// CrossPackage proves the fact exported by package b reaches importers.
func CrossPackage(s *b.Shared) uint64 {
	return s.Epoch // want `non-atomic access to Epoch`
}

// IgnoredRead shows suppression with a mandatory reason.
func IgnoredRead(c *Counter) uint64 {
	//ltr:ignore atomicfield init-time read before any goroutine starts
	return c.n
}
