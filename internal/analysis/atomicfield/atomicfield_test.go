package atomicfield_test

import (
	"testing"

	"longtailrec/internal/analysis/atest"
	"longtailrec/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	atest.Run(t, atest.TestData(t), atomicfield.Analyzer, "a")
}
