// Package atomicfield enforces the epoch/shared-pointer discipline: a
// struct field that is accessed through sync/atomic anywhere must be
// accessed atomically everywhere (mixing atomic.LoadUint64(&s.f) with a
// plain read of s.f is a data race the race detector only sees on the
// racy interleaving), and a value of one of the typed atomic types
// (atomic.Uint64, atomic.Pointer[T], ...) must never be copied — a copy
// forks the counter and silently decouples readers from writers.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"longtailrec/internal/analysis/directives"
)

// IsAtomicField is the exported fact: the field is accessed via
// sync/atomic in its defining package, so every package must access it
// atomically.
type IsAtomicField struct{}

func (*IsAtomicField) AFact()         {}
func (*IsAtomicField) String() string { return "atomicField" }

// Analyzer is the atomicfield checker.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "check that fields accessed via sync/atomic are accessed atomically everywhere, and that typed atomic values (atomic.Uint64, atomic.Pointer, ...) are never copied",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*IsAtomicField)(nil)},
	Run:       run,
}

// rawAtomicFuncs are the sync/atomic functions whose &-argument marks a
// field as atomically accessed.
func isRawAtomicFunc(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(obj.Name(), p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	rep := directives.NewSuppressor(pass, "atomicfield")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: collect the objects (fields and package-level vars) that are
	// accessed through raw sync/atomic calls, and remember the exact
	// &-argument expressions so pass 2 does not flag them.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Expr]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee = pass.TypesInfo.Uses[fun.Sel]
		case *ast.Ident:
			callee = pass.TypesInfo.Uses[fun]
		}
		if !isRawAtomicFunc(callee) || len(call.Args) == 0 {
			return
		}
		un, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok {
			return
		}
		obj := addressedObject(pass, un.X)
		if obj == nil {
			return
		}
		if obj.Pkg() == pass.Pkg {
			atomicObjs[obj] = true
			if _, isField := fieldOwner(obj); isField || obj.Parent() == pass.Pkg.Scope() {
				pass.ExportObjectFact(obj, &IsAtomicField{})
			}
		}
		sanctioned[un.X] = true
	})

	// Pass 2: flag every other use of those objects, plus uses of imported
	// objects carrying the fact from their defining package.
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.Ident)(nil)}, func(n ast.Node) {
		var obj types.Object
		var expr ast.Expr
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal {
				obj, expr = s.Obj(), n
			}
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[n]; o != nil {
				if v, ok := o.(*types.Var); ok && !v.IsField() && v.Parent() == pass.Pkg.Scope() {
					obj, expr = o, n
				}
			}
		}
		if obj == nil || sanctioned[expr] {
			return
		}
		marked := atomicObjs[obj]
		if !marked && obj.Pkg() != pass.Pkg {
			marked = pass.ImportObjectFact(obj, &IsAtomicField{})
		}
		if marked {
			rep.Reportf(expr.Pos(), "non-atomic access to %s: the field is accessed via sync/atomic elsewhere, so every access must go through sync/atomic", obj.Name())
		}
	})

	// Pass 3: typed atomic values must not be copied. Any expression whose
	// type is a sync/atomic named type appearing in a value context
	// (assignment source, call argument, return result, composite-literal
	// element) is a copy — method calls select through a pointer and &x
	// has pointer type, so neither trips this.
	ins.Preorder([]ast.Node{
		(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.CallExpr)(nil),
		(*ast.ReturnStmt)(nil), (*ast.CompositeLit)(nil),
	}, func(n ast.Node) {
		flag := func(e ast.Expr, what string) {
			if t := atomicValueType(pass, e); t != "" {
				rep.Reportf(e.Pos(), "%s copies %s value %s: typed atomic values must be accessed through their methods and never copied", what, t, types.ExprString(e))
			}
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				flag(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				flag(v, "declaration")
			}
		case *ast.CallExpr:
			if pass.TypesInfo.Types[n.Fun].IsType() {
				return // conversion, not a call (conversions of atomics do not typecheck anyway)
			}
			for _, a := range n.Args {
				flag(a, "call argument")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flag(r, "return statement")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				flag(el, "composite literal")
			}
		}
	})
	return nil, nil
}

// addressedObject resolves the &-operand of a raw atomic call to the field
// or variable object it addresses.
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.IndexExpr:
		return addressedObject(pass, e.X)
	}
	return nil
}

// fieldOwner reports whether obj is a struct field.
func fieldOwner(obj types.Object) (*types.Var, bool) {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil, false
	}
	return v, true
}

// atomicValueType returns the display name of e's type when it is one of
// the sync/atomic typed values (non-pointer), else "".
func atomicValueType(pass *analysis.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Instantiated generics (atomic.Pointer[T]) are *types.Named too;
		// aliases and pointers are not copies.
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return "atomic." + obj.Name()
	}
	return ""
}
