// Package atest is a minimal analysistest replacement: it loads packages
// from an analyzer's testdata/src tree, runs the analyzer (with its
// Requires and fact flow) through the shared driver runner, and checks
// the reported diagnostics against `// want "regexp"` comments in the
// test sources.
//
// The stock golang.org/x/tools/go/analysis/analysistest is not part of
// the toolchain's vendored x/tools subset, so this harness re-implements
// the slice of it the suite needs: stdlib imports are type-checked from
// GOROOT source (offline), sibling testdata packages resolve recursively
// (so cross-package fact tests work), and want expectations match
// diagnostics line by line.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"longtailrec/internal/analysis/driver"
)

// TestData returns the caller's testdata directory (go test runs with the
// package directory as working directory).
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("atest: getwd: %v", err)
	}
	return filepath.Join(wd, "testdata")
}

// One fileset and one source importer per test binary: the importer
// type-checks stdlib packages from GOROOT source and caches them, so only
// the first Run in a binary pays that cost.
var (
	loadMu      sync.Mutex
	sharedFset  = token.NewFileSet()
	stdImporter types.Importer
)

// Run loads each package path from testdata/src/<path>, runs the analyzer
// over the loaded program, and checks diagnostics in the named packages
// against their // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()
	if stdImporter == nil {
		stdImporter = importer.ForCompiler(sharedFset, "source", nil)
	}

	imp := &testImporter{
		srcRoot: filepath.Join(testdata, "src"),
		pkgs:    map[string]*driver.Package{},
	}
	roots := map[string]bool{}
	for _, path := range paths {
		if _, err := imp.Import(path); err != nil {
			t.Fatalf("atest: loading %s: %v", path, err)
		}
		roots[path] = true
	}

	prog := driver.NewProgram(sharedFset, imp.order)
	diags, err := prog.Analyze([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("atest: running %s: %v", a.Name, err)
	}

	// Only the named packages' files carry expectations; diagnostics the
	// analyzer reports in helper dependency packages are out of scope.
	checkFiles := map[string]bool{}
	for _, p := range imp.order {
		if !roots[p.Path] {
			continue
		}
		for _, f := range p.Files {
			checkFiles[sharedFset.Position(f.Pos()).Filename] = true
		}
	}

	wants := collectWants(t, imp.order, roots)
	matched := map[*want]bool{}
	for _, d := range diags {
		if !checkFiles[d.Pos.Filename] {
			continue
		}
		var ok bool
		for _, w := range wants[lineKey{d.Pos.Filename, d.Pos.Line}] {
			if !matched[w] && w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posString(d.Pos), d.Message)
		}
	}
	var all []*want
	for _, ws := range wants {
		all = append(all, ws...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].file != all[j].file {
			return all[i].file < all[j].file
		}
		return all[i].line < all[j].line
	})
	for _, w := range all {
		if !matched[w] {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// testImporter resolves import paths against testdata/src first (loading
// those packages from source, recursively) and falls back to the GOROOT
// source importer for everything else.
type testImporter struct {
	srcRoot string
	pkgs    map[string]*driver.Package
	order   []*driver.Package // dependency order: deps before importers
}

func (imp *testImporter) Import(path string) (*types.Package, error) {
	if p, ok := imp.pkgs[path]; ok {
		return p.Types, nil
	}
	dir := filepath.Join(imp.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return imp.loadDir(path, dir)
	}
	return stdImporter.Import(path)
}

func (imp *testImporter) loadDir(path, dir string) (*types.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, err
	}
	p := &driver.Package{Path: path, Files: files, Types: tpkg, Info: info}
	imp.pkgs[path] = p
	imp.order = append(imp.order, p) // deps were appended during Check's imports
	return tpkg, nil
}

type lineKey struct {
	file string
	line int
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts `// want "re" `+"`re`"+` ...` expectations from
// the named packages' comments, keyed by the comment's line.
func collectWants(t *testing.T, pkgs []*driver.Package, roots map[string]bool) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, p := range pkgs {
		if !roots[p.Path] {
			continue
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := sharedFset.Position(c.Pos())
					for _, pat := range parseWant(t, pos, c.Text) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", posString(pos), pat, err)
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &want{pos.Filename, pos.Line, re})
					}
				}
			}
		}
	}
	return wants
}

// parseWant returns the quoted patterns of a `// want` (or `/* want */`)
// comment, empty for other comments. Patterns are Go string literals:
// "..." or backquoted. The block form exists so an expectation can sit on
// the same line as a flagged line comment (comments cannot nest).
func parseWant(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	} else {
		text = strings.TrimPrefix(text, "//")
	}
	body, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
	if !ok {
		return nil
	}
	var pats []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Fatalf("%s: unterminated want pattern", posString(pos))
			}
			lit = rest[:end+1]
			rest = rest[end+1:]
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", posString(pos))
			}
			lit = rest[:end+2]
			rest = rest[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted strings, got %q", posString(pos), rest)
		}
		pat, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", posString(pos), lit, err)
		}
		pats = append(pats, pat)
		rest = strings.TrimSpace(rest)
	}
	return pats
}
