// Package analysis assembles the ltr-vet analyzer suite: the custom
// go/analysis checkers that machine-check this repo's concurrency,
// pooling, and hot-path invariants. cmd/ltr-vet runs All() over the
// module; the analyzers' own tests exercise them one at a time.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"longtailrec/internal/analysis/allocfree"
	"longtailrec/internal/analysis/atomicfield"
	"longtailrec/internal/analysis/ctxflow"
	"longtailrec/internal/analysis/directives"
	"longtailrec/internal/analysis/lockorder"
	"longtailrec/internal/analysis/poolreturn"
)

// All returns the full suite in name order, matching
// directives.AnalyzerNames (the names //ltr:ignore accepts).
func All() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		allocfree.Analyzer,
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
		directives.Analyzer,
		poolreturn.Analyzer,
	}
}
