package directives_test

import (
	"testing"

	"longtailrec/internal/analysis/atest"
	"longtailrec/internal/analysis/directives"
)

func TestDirectives(t *testing.T) {
	atest.Run(t, atest.TestData(t), directives.Analyzer, "a")
}
