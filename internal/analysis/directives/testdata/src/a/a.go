// Package a exercises the ltrdirective analyzer: directive placement,
// unknown verbs, and the //ltr:ignore grammar.
package a

import "sync"

type S struct {
	mu sync.RWMutex //ltr:viewmu
	g  sync.Mutex   //ltr:guardmu
	/* want `ltr:viewmu directive must be attached to a sync.Mutex or sync.RWMutex struct field` */ //ltr:viewmu
	n                                                                                               int
}

//ltr:lockentry
func Entry(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.n
}

//ltr:groupfold
func Fold() {}

//ltr:allocfree
func Hot(x int) int { return x }

/* want `unknown ltr directive "frobnicate"` */ //ltr:frobnicate
func Bad1()                                     {}

/* want `ltr:allocfree directive must be in the doc comment of a function declaration` */ //ltr:allocfree
var X int

/* want `ltr:ignore directive needs at least one analyzer name` */ //ltr:ignore
func Bad2()                                                        {}

/* want `ltr:ignore names unknown analyzer "bogus"` */ //ltr:ignore bogus because reasons
func Bad3()                                            {}

/* want `ltr:ignore directive needs a reason after the analyzer names` */ //ltr:ignore ctxflow
func Bad4()                                                               {}

func Bad5() {
	/* want `ltr:lockentry directive must be in the doc comment of a function declaration` */ //ltr:lockentry
	_ = X
}

// A valid ignore of ltrdirective itself suppresses the unknown-verb
// diagnostic on the next line.
//
//ltr:ignore ltrdirective deliberately malformed to prove self-suppression
//ltr:frobnozzle
func Ok6() {}
