package directives

import (
	"go/ast"
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		text string
		verb string
		rest string
		ok   bool
	}{
		{"//ltr:lockentry", "lockentry", "", true},
		{"//ltr:ignore ctxflow audit trail", "ignore", "ctxflow audit trail", true},
		{"//ltr:ignore\tpoolreturn reason", "ignore", "poolreturn reason", true},
		{"// ltr:lockentry", "", "", false},
		{"// plain comment", "", "", false},
		{"/*ltr:lockentry*/", "", "", false},
	}
	for _, c := range cases {
		verb, rest, ok := Parse(&ast.Comment{Text: c.text})
		if verb != c.verb || rest != c.rest || ok != c.ok {
			t.Errorf("Parse(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, verb, rest, ok, c.verb, c.rest, c.ok)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		rest   string
		names  []string
		reason string
	}{
		{"", nil, ""},
		{"ctxflow", []string{"ctxflow"}, ""},
		{"ctxflow audit trail must survive", []string{"ctxflow"}, "audit trail must survive"},
		{"ctxflow,poolreturn shared scratch audited", []string{"ctxflow", "poolreturn"}, "shared scratch audited"},
	}
	for _, c := range cases {
		ig := parseIgnore(c.rest, 0)
		if !reflect.DeepEqual(ig.Names, c.names) || ig.Reason != c.reason {
			t.Errorf("parseIgnore(%q) = (%v, %q), want (%v, %q)",
				c.rest, ig.Names, ig.Reason, c.names, c.reason)
		}
	}
}
