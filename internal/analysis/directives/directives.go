// Package directives defines the //ltr: directive-comment language shared
// by every ltr-vet analyzer, and the ltrdirective analyzer that validates
// directive usage itself.
//
// The stack's concurrency and hot-path invariants are enforced by custom
// analyzers (see internal/analysis); directive comments are how the source
// marks the audited exceptions and annotated entry points:
//
//	//ltr:viewmu                  on a mutex struct field: a per-view lock
//	                              participating in the global construction-
//	                              order lock protocol (graph.Bipartite.mu).
//	//ltr:guardmu                 on a mutex struct field: a serialization
//	                              lock only audited entry points may take
//	                              (sharedState.growMu).
//	//ltr:lockentry               on a function: an audited entry point of
//	                              the lock protocol (may loop over view
//	                              locks, lock several views, take guard
//	                              mutexes, call group folds).
//	//ltr:groupfold               on a function: a fleet-wide fold that
//	                              requires EVERY view lock to be held; only
//	                              lockentry/groupfold functions may call it.
//	//ltr:allocfree               on a function: the body must stay free of
//	                              heap-escaping constructs (the static
//	                              complement of the 25 allocs/op bench gate).
//	//ltr:ignore <names> <reason> on or directly above a flagged line:
//	                              suppress the named analyzers' diagnostics
//	                              there. Names are comma-separated; a
//	                              non-empty reason is mandatory.
package directives

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix starts every ltr directive comment.
const Prefix = "//ltr:"

// Directive verbs.
const (
	VerbIgnore    = "ignore"
	VerbViewMu    = "viewmu"
	VerbGuardMu   = "guardmu"
	VerbLockEntry = "lockentry"
	VerbGroupFold = "groupfold"
	VerbAllocFree = "allocfree"
)

// funcVerbs may only annotate function declarations; fieldVerbs only
// mutex-typed struct fields.
var (
	funcVerbs  = map[string]bool{VerbLockEntry: true, VerbGroupFold: true, VerbAllocFree: true}
	fieldVerbs = map[string]bool{VerbViewMu: true, VerbGuardMu: true}
)

// AnalyzerNames is the canonical name set of the ltr-vet suite — the names
// an //ltr:ignore directive may suppress. internal/analysis asserts its
// registry matches this list.
var AnalyzerNames = []string{
	"allocfree",
	"atomicfield",
	"ctxflow",
	"lockorder",
	"ltrdirective",
	"poolreturn",
}

func knownAnalyzer(name string) bool {
	for _, n := range AnalyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// Parse splits one comment into its directive verb and trailing argument
// text. ok is false for non-directive comments.
func Parse(c *ast.Comment) (verb, rest string, ok bool) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(c.Text, Prefix)
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// Ignore is one parsed //ltr:ignore directive.
type Ignore struct {
	Names  []string // analyzer names the directive suppresses
	Reason string
	Pos    token.Pos
}

// parseIgnore splits the argument text of an ignore directive: the first
// field is a comma-separated analyzer list, everything after it the reason.
func parseIgnore(rest string, pos token.Pos) Ignore {
	ig := Ignore{Pos: pos}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ig
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			ig.Names = append(ig.Names, n)
		}
	}
	ig.Reason = strings.TrimSpace(rest[len(fields[0]):])
	return ig
}

// FuncMarked reports whether fn's doc comment carries the directive verb.
func FuncMarked(fn *ast.FuncDecl, verb string) bool {
	return groupHasVerb(fn.Doc, verb)
}

func groupHasVerb(g *ast.CommentGroup, verb string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if v, _, ok := Parse(c); ok && v == verb {
			return true
		}
	}
	return false
}

// MarkedFieldObjects returns the types.Object of every struct field in the
// package whose doc or line comment carries the directive verb.
func MarkedFieldObjects(pass *analysis.Pass, verb string) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !groupHasVerb(field.Doc, verb) && !groupHasVerb(field.Comment, verb) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// MarkedFuncObjects returns the types.Object of every function declared in
// the package whose doc comment carries the directive verb.
func MarkedFuncObjects(pass *analysis.Pass, verb string) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || !FuncMarked(fn, verb) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// Suppressor filters one analyzer's diagnostics through the package's
// //ltr:ignore directives. A directive suppresses diagnostics reported on
// its own line and on the line directly below it (the standalone
// comment-above-the-statement placement).
type Suppressor struct {
	pass    *analysis.Pass
	ignored map[string]map[int]bool // filename -> suppressed lines
}

// NewSuppressor builds the ignore line index for the named analyzer over
// the pass's files.
func NewSuppressor(pass *analysis.Pass, name string) *Suppressor {
	s := &Suppressor{pass: pass, ignored: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				verb, rest, ok := Parse(c)
				if !ok || verb != VerbIgnore {
					continue
				}
				ig := parseIgnore(rest, c.Pos())
				if ig.Reason == "" {
					continue // invalid; ltrdirective reports it, nothing is suppressed
				}
				for _, n := range ig.Names {
					if n != name {
						continue
					}
					p := pass.Fset.Position(c.Pos())
					lines := s.ignored[p.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						s.ignored[p.Filename] = lines
					}
					lines[p.Line] = true
					lines[p.Line+1] = true
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is covered by an ignore.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	return s.ignored[p.Filename][p.Line]
}

// Reportf reports a diagnostic unless an ignore directive covers it.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...interface{}) {
	if s.Suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// Analyzer validates every //ltr: directive in the package: unknown verbs,
// misplaced function/field directives, ignore directives without a reason
// or naming unknown analyzers.
var Analyzer = &analysis.Analyzer{
	Name: "ltrdirective",
	Doc:  "check that //ltr: directive comments are well-formed: known verbs, valid placement, ignores with analyzer names and a reason",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) (interface{}, error) {
	rep := NewSuppressor(pass, "ltrdirective")
	for _, f := range pass.Files {
		attached := attachedDirectiveComments(f)
		for _, g := range f.Comments {
			for _, c := range g.List {
				verb, rest, ok := Parse(c)
				if !ok {
					continue
				}
				switch {
				case verb == VerbIgnore:
					checkIgnore(rep, c, rest)
				case funcVerbs[verb]:
					if attached[c] != attachFunc {
						rep.Reportf(c.Pos(), "ltr:%s directive must be in the doc comment of a function declaration", verb)
					}
				case fieldVerbs[verb]:
					if attached[c] != attachField {
						rep.Reportf(c.Pos(), "ltr:%s directive must be attached to a sync.Mutex or sync.RWMutex struct field", verb)
					}
				default:
					rep.Reportf(c.Pos(), "unknown ltr directive %q (known: ignore, viewmu, guardmu, lockentry, groupfold, allocfree)", verb)
				}
			}
		}
	}
	return nil, nil
}

func checkIgnore(rep *Suppressor, c *ast.Comment, rest string) {
	ig := parseIgnore(rest, c.Pos())
	if len(ig.Names) == 0 {
		rep.Reportf(c.Pos(), "ltr:ignore directive needs at least one analyzer name (known: %s)", strings.Join(AnalyzerNames, ", "))
		return
	}
	for _, n := range ig.Names {
		if !knownAnalyzer(n) {
			rep.Reportf(c.Pos(), "ltr:ignore names unknown analyzer %q (known: %s)", n, strings.Join(AnalyzerNames, ", "))
		}
	}
	if ig.Reason == "" {
		rep.Reportf(c.Pos(), "ltr:ignore directive needs a reason after the analyzer names")
	}
}

type attachKind int

const (
	attachNone attachKind = iota
	attachFunc
	attachField
)

// attachedDirectiveComments maps each directive comment of the file to the
// declaration kind it annotates: a function doc comment, or a mutex-typed
// struct field's doc/line comment.
func attachedDirectiveComments(f *ast.File) map[*ast.Comment]attachKind {
	out := make(map[*ast.Comment]attachKind)
	mark := func(g *ast.CommentGroup, kind attachKind) {
		if g == nil {
			return
		}
		for _, c := range g.List {
			if _, _, ok := Parse(c); ok {
				out[c] = kind
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			mark(n.Doc, attachFunc)
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if isMutexType(field.Type) {
					mark(field.Doc, attachField)
					mark(field.Comment, attachField)
				}
			}
		}
		return true
	})
	return out
}

// isMutexType matches the sync.Mutex / sync.RWMutex type expressions a
// viewmu/guardmu directive may annotate (syntactic: the directive analyzer
// runs before the marked package's locking semantics are in question).
func isMutexType(e ast.Expr) bool {
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := se.X.(*ast.Ident)
	if !ok || id.Name != "sync" {
		return false
	}
	return se.Sel.Name == "Mutex" || se.Sel.Name == "RWMutex"
}

// SortedNames returns the known analyzer names, sorted — a convenience for
// deterministic documentation output.
func SortedNames() []string {
	out := append([]string(nil), AnalyzerNames...)
	sort.Strings(out)
	return out
}
