package analysis_test

import (
	"os"
	"reflect"
	"sort"
	"testing"

	goanalysis "golang.org/x/tools/go/analysis"

	ltranalysis "longtailrec/internal/analysis"
	"longtailrec/internal/analysis/directives"
	"longtailrec/internal/analysis/driver"
)

// TestRegistryMatchesDirectiveNames pins the registry to the name set
// //ltr:ignore accepts: adding an analyzer without teaching the directive
// language about it (or vice versa) fails here.
func TestRegistryMatchesDirectiveNames(t *testing.T) {
	var names []string
	for _, a := range ltranalysis.All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	if want := directives.SortedNames(); !reflect.DeepEqual(names, want) {
		t.Fatalf("registry names %v do not match directives.AnalyzerNames %v", names, want)
	}
}

func TestSuiteValidates(t *testing.T) {
	if err := goanalysis.Validate(ltranalysis.All()); err != nil {
		t.Fatal(err)
	}
}

// TestRepoInvariantsClean is the regression gate: the full suite must run
// clean over the module itself. Every accepted finding carries an
// explained //ltr:ignore; a new diagnostic here is either a real
// invariant violation or a missing audit note.
func TestRepoInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := driver.Load(wd, "longtailrec/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := prog.Analyze(ltranalysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
