// Package poolreturn checks that every sync.Pool.Get is paired with a Put
// that dominates all exits of the function: either a deferred Put on the
// same pool, or a Put call (or an ownership-transferring return of the
// pooled value) on every control-flow path from the Get to the function's
// exit — including early error returns and ctx-cancellation early-outs,
// the paths that historically leak pooled engine scratch.
package poolreturn

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"longtailrec/internal/analysis/directives"
)

// Analyzer is the poolreturn checker.
var Analyzer = &analysis.Analyzer{
	Name:     "poolreturn",
	Doc:      "check that every sync.Pool.Get has a Put (deferred, on all return paths, or ownership-transferring return) on the same pool",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	rep := directives.NewSuppressor(pass, "poolreturn")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
			g = cfgs.FuncDecl(n)
		case *ast.FuncLit:
			body = n.Body
			g = cfgs.FuncLit(n)
		}
		if body == nil || g == nil {
			return
		}
		checkFunc(pass, rep, body, g)
	})
	return nil, nil
}

// poolOf returns the pool identity behind a call expression X.Get() /
// X.Put(v): the types.Object of the field or variable holding the
// sync.Pool, or nil if the call is not a pool method.
func poolOf(pass *analysis.Pass, call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return nil
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[x]; ok {
			return s.Obj()
		}
		return pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

// checkFunc verifies every Get directly inside body (nested function
// literals are visited as their own functions).
func checkFunc(pass *analysis.Pass, rep *directives.Suppressor, body *ast.BlockStmt, g *cfg.CFG) {
	type getSite struct {
		call *ast.CallExpr
		pool types.Object
		v    types.Object // variable the result is bound to, if any
	}
	var gets []getSite
	deferred := map[types.Object]bool{} // pools with a deferred Put in this body

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately
		case *ast.DeferStmt:
			if p := poolOf(pass, n.Call, "Put"); p != nil {
				deferred[p] = true
			}
		case *ast.AssignStmt:
			// v := pool.Get().(*T)  |  v := pool.Get()
			for i, rhs := range n.Rhs {
				call := getCall(rhs)
				if call == nil {
					continue
				}
				p := poolOf(pass, call, "Get")
				if p == nil {
					continue
				}
				var v types.Object
				// v := pool.Get().(*T) and the comma-ok form both bind the
				// pooled value to the first (aligned) left-hand side.
				if i < len(n.Lhs) && (len(n.Lhs) == len(n.Rhs) || len(n.Rhs) == 1) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if o := pass.TypesInfo.Defs[id]; o != nil {
							v = o
						} else {
							v = pass.TypesInfo.Uses[id]
						}
					}
				}
				gets = append(gets, getSite{call: call, pool: p, v: v})
			}
		case *ast.ExprStmt:
			if call := getCall(n.X); call != nil {
				if p := poolOf(pass, call, "Get"); p != nil {
					rep.Reportf(call.Pos(), "result of %s.Get() is discarded: the pooled value can never be Put back", types.ExprString(call.Fun.(*ast.SelectorExpr).X))
					gets = append(gets, getSite{}) // consumed; skip path analysis
				}
			}
		}
		return true
	})

	for _, site := range gets {
		if site.call == nil || deferred[site.pool] {
			continue
		}
		if !putOnAllPaths(pass, g, site.call, site.pool, site.v) {
			rep.Reportf(site.call.Pos(), "%s.Get() is not Put back on every path to the function's exit: defer the Put or return it on each path (including error and cancellation early-outs)", types.ExprString(site.call.Fun.(*ast.SelectorExpr).X))
		}
	}
}

// getCall unwraps `pool.Get()` possibly inside a type assertion.
func getCall(e ast.Expr) *ast.CallExpr {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return call
}

// putOnAllPaths walks the CFG from the block containing the Get call and
// reports whether every path to an exit passes a Put on the same pool or a
// return statement carrying the pooled variable (ownership transfer).
func putOnAllPaths(pass *analysis.Pass, g *cfg.CFG, get *ast.CallExpr, pool, v types.Object) bool {
	clears := func(n ast.Node, from token.Pos) bool {
		ok := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if m.Pos() > from && poolOf(pass, m, "Put") == pool {
					ok = true
				}
			case *ast.ReturnStmt:
				if m.Pos() > from && v != nil && returnsVar(pass, m, v) {
					ok = true
				}
			}
			return !ok
		})
		return ok
	}

	var start *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if containsPos(n, get.Pos()) {
				start = b
			}
		}
	}
	if start == nil {
		return false // conservatively flag: the Get is in unreachable code
	}

	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block, from token.Pos) bool
	walk = func(b *cfg.Block, from token.Pos) bool {
		if seen[b] {
			return true // a cycle: termination is some other block's job
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if clears(n, from) {
				return true
			}
		}
		if len(b.Succs) == 0 {
			return false // reached an exit without a Put
		}
		for _, s := range b.Succs {
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	return walk(start, get.Pos())
}

func containsPos(n ast.Node, p token.Pos) bool {
	return n.Pos() <= p && p < n.End()
}

func returnsVar(pass *analysis.Pass, r *ast.ReturnStmt, v types.Object) bool {
	found := false
	for _, res := range r.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				found = true
			}
			return !found
		})
	}
	return found
}
