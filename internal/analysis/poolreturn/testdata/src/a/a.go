// Package a exercises the poolreturn analyzer: deferred Puts, Puts on
// every path, ownership-transferring returns, leaks on early-outs.
package a

import (
	"context"
	"sync"
)

var pool sync.Pool

type T struct{ buf []byte }

// Deferred is clean: the deferred Put covers every exit.
func Deferred() {
	v := pool.Get().(*T)
	defer pool.Put(v)
	_ = v.buf
}

// AllPaths is clean: each return path Puts first.
func AllPaths(err error) error {
	v := pool.Get().(*T)
	if err != nil {
		pool.Put(v)
		return err
	}
	pool.Put(v)
	return nil
}

// Transfer is clean: returning the pooled value transfers ownership to
// the caller.
func Transfer() *T {
	v := pool.Get().(*T)
	return v
}

// CommaOK is clean: the comma-ok assertion still binds the value and the
// deferred Put covers it.
func CommaOK() {
	v, _ := pool.Get().(*T)
	defer pool.Put(v)
	_ = v
}

func LeakOnCancel(ctx context.Context) error {
	v := pool.Get().(*T) // want `pool\.Get\(\) is not Put back on every path`
	if ctx.Err() != nil {
		return ctx.Err() // the early-out skips the Put below
	}
	pool.Put(v)
	return nil
}

func Discarded() {
	pool.Get() // want `result of pool\.Get\(\) is discarded`
}

type Engine struct{ pool sync.Pool }

func (e *Engine) NeverPut() {
	s := e.pool.Get().(*T) // want `e\.pool\.Get\(\) is not Put back on every path`
	_ = s
}

// Ignored shows above-the-line suppression with a mandatory reason.
func Ignored() {
	//ltr:ignore poolreturn ownership intentionally dropped in this test
	v := pool.Get().(*T)
	_ = v
}
