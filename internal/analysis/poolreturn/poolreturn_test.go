package poolreturn_test

import (
	"testing"

	"longtailrec/internal/analysis/atest"
	"longtailrec/internal/analysis/poolreturn"
)

func TestPoolReturn(t *testing.T) {
	atest.Run(t, atest.TestData(t), poolreturn.Analyzer, "a")
}
