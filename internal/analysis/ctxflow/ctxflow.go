// Package ctxflow enforces context propagation on the Request query path:
// a function that receives a context.Context must thread it through, never
// mint a fresh root with context.Background() or context.TODO(). A fresh
// root silently detaches the work from the caller's deadline and
// cancellation — exactly the bug class the Request ctx plumbing (engine
// extraction boundaries, per-τ-sweep checks, per-request batch contexts)
// exists to prevent.
package ctxflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"longtailrec/internal/analysis/directives"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "check that functions receiving a context.Context never call context.Background or context.TODO; propagate the caller's context",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	rep := directives.NewSuppressor(pass, "ctxflow")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			ftype, body = n.Type, n.Body
		case *ast.FuncLit:
			ftype, body = n.Type, n.Body
		}
		if body == nil || !hasContextParam(pass, ftype) {
			return
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // nested literals get their own visit (and verdict)
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := freshRootCall(pass, call); name != "" {
				rep.Reportf(call.Pos(), "function receives a context.Context but calls context.%s(): propagate the caller's context so deadlines and cancellation reach this work", name)
			}
			return true
		})
	})
	return nil, nil
}

// hasContextParam reports whether the function type declares a parameter
// of type context.Context.
func hasContextParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, f := range ftype.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// freshRootCall returns "Background" or "TODO" when call mints a fresh
// root context, else "".
func freshRootCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}
