// Package a exercises the ctxflow analyzer: fresh context roots inside
// functions that already receive a context.
package a

import "context"

func Bad(ctx context.Context) error {
	return work(context.Background()) // want `calls context\.Background\(\)`
}

func BadTODO(ctx context.Context) {
	_ = work(context.TODO()) // want `calls context\.TODO\(\)`
}

// Good is clean: the caller's context flows through.
func Good(ctx context.Context) error {
	return work(ctx)
}

// Root is clean: no context parameter, so minting a root is this
// function's own legitimate decision.
func Root() error {
	return work(context.Background())
}

// NestedOK is clean: the literal has no context parameter of its own, so
// the fresh root belongs to it, not to the enclosing function.
func NestedOK(ctx context.Context) {
	go func() {
		_ = work(context.Background())
	}()
	_ = ctx
}

func NestedBad(ctx context.Context) {
	f := func(inner context.Context) {
		_ = work(context.Background()) // want `calls context\.Background\(\)`
	}
	f(ctx)
}

// Ignored shows suppression with a mandatory reason.
func Ignored(ctx context.Context) {
	//ltr:ignore ctxflow audit trail must survive request cancellation
	_ = work(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
