package ctxflow_test

import (
	"testing"

	"longtailrec/internal/analysis/atest"
	"longtailrec/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	atest.Run(t, atest.TestData(t), ctxflow.Analyzer, "a")
}
