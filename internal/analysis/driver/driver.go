// Package driver loads Go packages and runs go/analysis analyzers over
// them — the minimal multichecker core behind cmd/ltr-vet.
//
// The stock drivers (multichecker, analysistest) sit on go/packages; this
// driver instead shells out to `go list -deps -export -json` and
// type-checks every package of the current module from source in one
// shared type world, importing everything outside the module (stdlib,
// vendored golang.org/x/tools) from compiler export data. One shared
// world means types.Object identities hold across module packages, so
// analyzer facts flow between packages as plain in-memory values — no
// fact serialization, no per-package child processes.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one source-loaded package of the program.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of packages sharing one FileSet and one type
// world, in dependency order.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	facts *FactStore
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path, Dir string }
	Imports    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a directory inside the target module),
// type-checks every module package from source and prepares export-data
// imports for the rest.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.String())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}

	// The module under analysis is the module of the last listed package:
	// `go list -deps` emits dependencies first, so the roots (always in
	// the target module) come last.
	var modPath string
	for _, p := range listed {
		if p.Module != nil {
			modPath = p.Module.Path
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("driver: no module found among listed packages")
	}

	fset := token.NewFileSet()
	exports := map[string]string{} // import path -> export data file
	sourcePkgs := map[string]*listedPackage{}
	var order []string // module packages in dependency (go list post-) order
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("driver: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module != nil && p.Module.Path == modPath {
			sourcePkgs[p.ImportPath] = p
			order = append(order, p.ImportPath)
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	prog := &Program{Fset: fset, facts: NewFactStore()}
	checked := map[string]*types.Package{}
	imp := &progImporter{
		checked: checked,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	for _, path := range order {
		lp := sourcePkgs[path]
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("driver: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: sizes()}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: typecheck %s: %v", path, err)
		}
		checked[path] = tpkg
		prog.Pkgs = append(prog.Pkgs, &Package{Path: path, Files: files, Types: tpkg, Info: info})
	}
	return prog, nil
}

// progImporter resolves module-internal imports to the shared source-
// checked packages and everything else through gc export data.
type progImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.checked[path]; ok {
		return p, nil
	}
	return i.gc.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

func sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Analyze runs the analyzers (and, transitively, their Requires) over
// every package of the program in dependency order and returns the
// position-sorted diagnostics.
func (p *Program) Analyze(analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	type key struct {
		a   *analysis.Analyzer
		pkg *Package
	}
	results := map[key]interface{}{}

	var runOne func(a *analysis.Analyzer, pkg *Package) (interface{}, error)
	runOne = func(a *analysis.Analyzer, pkg *Package) (interface{}, error) {
		k := key{a, pkg}
		if r, ok := results[k]; ok {
			return r, nil
		}
		deps := map[*analysis.Analyzer]interface{}{}
		for _, req := range a.Requires {
			r, err := runOne(req, pkg)
			if err != nil {
				return nil, err
			}
			deps[req] = r
		}
		pass := p.newPass(a, pkg, deps, func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		})
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		if a.ResultType != nil && res != nil && reflect.TypeOf(res) != a.ResultType {
			return nil, fmt.Errorf("analyzer %s returned %T, want %v", a.Name, res, a.ResultType)
		}
		results[k] = res
		return res, nil
	}

	for _, pkg := range p.Pkgs {
		for _, a := range analyzers {
			if _, err := runOne(a, pkg); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// newPass assembles an analysis.Pass over one package for one analyzer.
func (p *Program) newPass(a *analysis.Analyzer, pkg *Package, deps map[*analysis.Analyzer]interface{}, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:          a,
		Fset:              p.Fset,
		Files:             pkg.Files,
		Pkg:               pkg.Types,
		TypesInfo:         pkg.Info,
		TypesSizes:        sizes(),
		ResultOf:          deps,
		Report:            report,
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(obj types.Object, fact analysis.Fact) bool { return p.facts.ImportObject(a, obj, fact) },
		ExportObjectFact:  func(obj types.Object, fact analysis.Fact) { p.facts.ExportObject(a, obj, fact) },
		ImportPackageFact: func(tp *types.Package, fact analysis.Fact) bool { return p.facts.ImportPackage(a, tp, fact) },
		ExportPackageFact: func(fact analysis.Fact) { p.facts.ExportPackage(a, pkg.Types, fact) },
		AllObjectFacts:    func() []analysis.ObjectFact { return p.facts.AllObjects(a) },
		AllPackageFacts:   func() []analysis.PackageFact { return p.facts.AllPackages(a) },
	}
}

// FactStore holds analyzer facts keyed by (analyzer, object/package, fact
// type). Object identity works across packages because the whole module
// shares one type world.
type FactStore struct {
	obj map[objFactKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	a   *analysis.Analyzer
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	a   *analysis.Analyzer
	pkg *types.Package
	t   reflect.Type
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{obj: map[objFactKey]analysis.Fact{}, pkg: map[pkgFactKey]analysis.Fact{}}
}

// ExportObject records a fact about obj.
func (s *FactStore) ExportObject(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) {
	s.obj[objFactKey{a, obj, reflect.TypeOf(fact)}] = fact
}

// ImportObject copies a previously exported fact about obj into fact.
func (s *FactStore) ImportObject(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) bool {
	got, ok := s.obj[objFactKey{a, obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportPackage records a fact about pkg.
func (s *FactStore) ExportPackage(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) {
	s.pkg[pkgFactKey{a, pkg, reflect.TypeOf(fact)}] = fact
}

// ImportPackage copies a previously exported fact about pkg into fact.
func (s *FactStore) ImportPackage(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) bool {
	got, ok := s.pkg[pkgFactKey{a, pkg, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// AllObjects lists the analyzer's object facts.
func (s *FactStore) AllObjects(a *analysis.Analyzer) []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, f := range s.obj {
		if k.a == a {
			out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
		}
	}
	return out
}

// AllPackages lists the analyzer's package facts.
func (s *FactStore) AllPackages(a *analysis.Analyzer) []analysis.PackageFact {
	var out []analysis.PackageFact
	for k, f := range s.pkg {
		if k.a == a {
			out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
		}
	}
	return out
}

// NewProgram assembles a Program from pre-loaded packages (dependency
// order) — the entry point for the analysistest-style harness, which
// parses and type-checks testdata packages itself.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	return &Program{Fset: fset, Pkgs: pkgs, facts: NewFactStore()}
}
