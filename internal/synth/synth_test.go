package synth

import (
	"math"
	"reflect"
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumUsers: 0, NumItems: 5}); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := Generate(Config{NumUsers: 5, NumItems: 5, NoiseRate: 1.5}); err == nil {
		t.Fatal("noise > 1 accepted")
	}
}

func smallConfig(seed int64) Config {
	return Config{
		NumUsers:           120,
		NumItems:           200,
		NumGenres:          4,
		SubgenresPerGenre:  3,
		MeanRatingsPerUser: 20,
		MinRatingsPerUser:  5,
		Seed:               seed,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	w, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	d := w.Data
	if d.NumUsers() != 120 || d.NumItems() != 200 {
		t.Fatalf("universe %d/%d", d.NumUsers(), d.NumItems())
	}
	// Every user must reach the activity floor.
	for u := 0; u < d.NumUsers(); u++ {
		if d.UserDegree(u) < 5 {
			t.Fatalf("user %d has %d ratings, floor 5", u, d.UserDegree(u))
		}
	}
	// Scores on the 1–5 star scale.
	for _, r := range d.Ratings() {
		if r.Score < 1 || r.Score > 5 || r.Score != math.Round(r.Score) {
			t.Fatalf("score %v not an integer star", r.Score)
		}
	}
	// Ground truth present and consistent.
	if len(w.ItemGenre) != 200 || len(w.UserPrefs) != 120 {
		t.Fatal("ground truth sizes wrong")
	}
	for i, g := range w.ItemGenre {
		if g < 0 || g >= 4 {
			t.Fatalf("item %d genre %d", i, g)
		}
	}
	for _, prefs := range w.UserPrefs {
		sum := 0.0
		for _, p := range prefs {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("user prefs sum to %v", sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRatings() != b.Data.NumRatings() {
		t.Fatal("same seed produced different corpora")
	}
	ra, rb := a.Data.Ratings(), b.Data.Ratings()
	for k := range ra {
		if ra[k] != rb[k] {
			t.Fatalf("rating %d differs: %+v vs %+v", k, ra[k], rb[k])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRatings() == b.Data.NumRatings() {
		same := true
		ra, rb := a.Data.Ratings(), b.Data.Ratings()
		for k := range ra {
			if ra[k] != rb[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestPopularitySkew(t *testing.T) {
	// The generated catalog must have a long tail: top 10% of items carry
	// far more ratings than the bottom 50%.
	w, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	pop := w.Data.ItemPopularity()
	sorted := append([]int(nil), pop...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	top, bottom := 0, 0
	for i := 0; i < len(sorted)/10; i++ {
		top += sorted[i]
	}
	for i := len(sorted) / 2; i < len(sorted); i++ {
		bottom += sorted[i]
	}
	if top <= bottom {
		t.Fatalf("no popularity skew: top 10%% carries %d vs bottom 50%% %d", top, bottom)
	}
}

func TestUsersPreferTheirGenres(t *testing.T) {
	// Ratings must cluster on each user's preferred genres: in-top-genre
	// rating share must clearly beat the uniform share.
	w, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	inTop, total := 0, 0
	for u := 0; u < w.Data.NumUsers(); u++ {
		// Top genre of the user.
		best, bestP := 0, 0.0
		for g, p := range w.UserPrefs[u] {
			if p > bestP {
				best, bestP = g, p
			}
		}
		for _, r := range w.Data.UserRatings(u) {
			total++
			if w.ItemGenre[r.Item] == best {
				inTop++
			}
		}
	}
	share := float64(inTop) / float64(total)
	if share < 0.35 { // uniform would be 0.25 over 4 genres
		t.Fatalf("in-genre share %.3f too close to uniform", share)
	}
}

func TestScoresTrackAffinity(t *testing.T) {
	w, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Mean score of high-affinity ratings must exceed low-affinity ones.
	var hi, lo, nHi, nLo float64
	for _, r := range w.Data.Ratings() {
		if w.TasteAffinity(r.User, r.Item) > 0.8 {
			hi += r.Score
			nHi++
		} else if w.TasteAffinity(r.User, r.Item) < 0.2 {
			lo += r.Score
			nLo++
		}
	}
	if nHi < 10 || nLo < 10 {
		t.Skip("not enough contrast samples")
	}
	if hi/nHi <= lo/nLo {
		t.Fatalf("high-affinity mean %.2f not above low-affinity %.2f", hi/nHi, lo/nLo)
	}
}

func TestOntologyCoversCatalog(t *testing.T) {
	w, err := Generate(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if w.Ontology.Len() != w.Data.NumItems() {
		t.Fatalf("ontology covers %d of %d items", w.Ontology.Len(), w.Data.NumItems())
	}
	// Same-genre items must be more ontology-similar than cross-genre.
	var sameGenre, crossGenre []float64
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			s := w.Ontology.ItemSimilarity(i, j)
			if w.ItemGenre[i] == w.ItemGenre[j] {
				sameGenre = append(sameGenre, s)
			} else {
				crossGenre = append(crossGenre, s)
			}
		}
	}
	mean := func(xs []float64) float64 {
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t / float64(len(xs))
	}
	if mean(sameGenre) <= mean(crossGenre) {
		t.Fatalf("ontology does not separate genres: %v vs %v", mean(sameGenre), mean(crossGenre))
	}
}

func TestTasteAffinityRange(t *testing.T) {
	w, err := Generate(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	foundTop := false
	for u := 0; u < 20; u++ {
		for i := 0; i < w.Data.NumItems(); i++ {
			a := w.TasteAffinity(u, i)
			if a < 0 || a > 1+1e-12 {
				t.Fatalf("affinity %v out of range", a)
			}
			if a > 0.999 {
				foundTop = true
			}
		}
	}
	if !foundTop {
		t.Fatal("no item reaches affinity 1 for any user")
	}
}

func TestMovieLensLikeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration generation is slow")
	}
	w, err := Generate(MovieLensLike())
	if err != nil {
		t.Fatal(err)
	}
	s := w.Data.Summarize()
	// §5.1.2: density ~4.26%, tail fraction ~66%. Accept generous bands.
	if s.Density < 0.02 || s.Density > 0.10 {
		t.Fatalf("MovieLens-like density %.4f outside [0.02, 0.10]", s.Density)
	}
	if s.TailItemFraction < 0.45 || s.TailItemFraction > 0.85 {
		t.Fatalf("MovieLens-like tail fraction %.3f outside [0.45, 0.85]", s.TailItemFraction)
	}
	if s.MinUserDegree < 10 {
		t.Fatalf("min user degree %d", s.MinUserDegree)
	}
}

func TestDoubanLikeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration generation is slow")
	}
	ml, err := Generate(MovieLensLike())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(DoubanLike())
	if err != nil {
		t.Fatal(err)
	}
	sMl, sDb := ml.Data.Summarize(), db.Data.Summarize()
	if sDb.Density >= sMl.Density {
		t.Fatalf("Douban-like density %.4f not below MovieLens-like %.4f", sDb.Density, sMl.Density)
	}
	if sDb.TailItemFraction < sMl.TailItemFraction-0.05 {
		t.Fatalf("Douban-like tail %.3f should be at least MovieLens-like %.3f",
			sDb.TailItemFraction, sMl.TailItemFraction)
	}
}

func TestNames(t *testing.T) {
	w, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if w.GenreName(3) != "Genre-03" {
		t.Fatalf("genre name %q", w.GenreName(3))
	}
	if w.ItemName(42) != "Item-00042" {
		t.Fatalf("item name %q", w.ItemName(42))
	}
}

// TestGenerateClustered pins the clustered corpus contract: dense
// per-cluster id blocks, NO cross-cluster ratings (the merged graph has
// exactly Clusters connected components — what the fine-grained cache
// invalidation benchmarks rely on), merged ground truth confined to the
// owning cluster's genre block, and determinism.
func TestGenerateClustered(t *testing.T) {
	cfg := ClusteredLike()
	cfg.Clusters, cfg.NumUsers, cfg.NumItems = 4, 240, 160
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Data.NumUsers() != 240 || w.Data.NumItems() != 160 {
		t.Fatalf("universe = (%d, %d)", w.Data.NumUsers(), w.Data.NumItems())
	}
	uPer, iPer := cfg.UsersPerCluster(), cfg.ItemsPerCluster()
	if uPer != 60 || iPer != 40 {
		t.Fatalf("cluster geometry = (%d, %d), want (60, 40)", uPer, iPer)
	}
	for _, r := range w.Data.Ratings() {
		if r.User/uPer != r.Item/iPer {
			t.Fatalf("cross-cluster rating: user %d (cluster %d) rated item %d (cluster %d)",
				r.User, r.User/uPer, r.Item, r.Item/iPer)
		}
	}
	// Every cluster actually has ratings.
	perCluster := make([]int, cfg.Clusters)
	for _, r := range w.Data.Ratings() {
		perCluster[r.User/uPer]++
	}
	for c, n := range perCluster {
		if n == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
	}
	// Ground truth: an item's genre lands in its cluster's genre block,
	// and a user's preference mass stays inside their own block.
	g := cfg.withDefaults().NumGenres
	for i, ig := range w.ItemGenre {
		if c := i / iPer; ig < c*g || ig >= (c+1)*g {
			t.Fatalf("item %d (cluster %d) has genre %d outside block [%d, %d)", i, c, ig, c*g, (c+1)*g)
		}
	}
	for u, prefs := range w.UserPrefs {
		if len(prefs) != cfg.Clusters*g {
			t.Fatalf("user %d prefs dimension %d, want %d", u, len(prefs), cfg.Clusters*g)
		}
		c := u / uPer
		for gi, p := range prefs {
			if p != 0 && (gi < c*g || gi >= (c+1)*g) {
				t.Fatalf("user %d (cluster %d) has preference mass %v at genre %d", u, c, p, gi)
			}
		}
	}
	// Determinism.
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Data.Ratings(), again.Data.Ratings()) {
		t.Fatal("clustered generation is not deterministic")
	}
	// Indivisible universes are rejected, not silently truncated.
	bad := cfg
	bad.NumUsers = 241
	if _, err := Generate(bad); err == nil {
		t.Fatal("indivisible user count accepted")
	}
}
