// Package synth generates the synthetic rating corpora that substitute for
// the paper's MovieLens and Douban datasets (see DESIGN.md §4). The
// generator is a latent-genre preference model:
//
//   - every item gets a genre, a subgenre within it, and a Zipf-distributed
//     base popularity (the Figure 1 long-tail curve);
//   - every user draws a Dirichlet genre-preference vector (its
//     concentration controls how taste-specific users are — the quantity
//     the entropy-cost model of §4.2 exploits) and a Pareto-distributed
//     activity level (MovieLens users rated 20–737 movies);
//   - each rating picks a genre from the user's preferences, then an item
//     within the genre proportional to popularity, and scores it by taste
//     affinity plus noise on the 1–5 star scale.
//
// Because every graph algorithm in the library consumes only the weighted
// bipartite graph, a corpus with the right popularity skew and taste
// clustering exercises the same code paths as the real data. The generator
// also emits the ground truth the evaluation needs: item genres (for the
// ontology similarity of §5.2.4) and user preferences (for the simulated
// user study of §5.2.7).
package synth

import (
	"fmt"
	"math"

	"longtailrec/internal/dataset"
	"longtailrec/internal/ontology"
	"longtailrec/internal/randutil"
)

// Config parameterizes a synthetic world.
type Config struct {
	NumUsers, NumItems int
	NumGenres          int     // latent taste clusters; <= 0 means 8
	SubgenresPerGenre  int     // ontology fan-out; <= 0 means 4
	MeanRatingsPerUser float64 // Pareto mean of per-user activity; <= 0 means 30
	MinRatingsPerUser  int     // activity floor; <= 0 means 8
	ActivityExponent   float64 // Pareto shape for activity; <= 0 means 2.2
	PopularityExponent float64 // Zipf exponent for item popularity; <= 0 means 1.0
	TasteConcentration float64 // Dirichlet α over genres; <= 0 means 0.3
	NoiseRate          float64 // chance a rating ignores taste; < 0 means 0.1
	// Clusters, when > 1, partitions the universe into that many fully
	// independent sub-corpora: users and items are split evenly, each
	// block is generated on its own (own genres, popularity curve and
	// noise draws), and the blocks share NO edges — the merged graph has
	// exactly Clusters connected components. This is the community-
	// structured regime real catalogs exhibit and the fine-grained cache
	// invalidation machinery exploits: a write inside one cluster can
	// never touch a walk extracted in another. NumUsers and NumItems must
	// be divisible by Clusters.
	Clusters int
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.NumGenres <= 0 {
		c.NumGenres = 8
	}
	if c.SubgenresPerGenre <= 0 {
		c.SubgenresPerGenre = 4
	}
	if c.MeanRatingsPerUser <= 0 {
		c.MeanRatingsPerUser = 30
	}
	if c.MinRatingsPerUser <= 0 {
		c.MinRatingsPerUser = 8
	}
	if c.ActivityExponent <= 0 {
		c.ActivityExponent = 2.2
	}
	if c.PopularityExponent <= 0 {
		c.PopularityExponent = 1.0
	}
	if c.TasteConcentration <= 0 {
		c.TasteConcentration = 0.3
	}
	if c.NoiseRate < 0 {
		c.NoiseRate = 0.1
	}
	return c
}

// MovieLensLike returns a configuration calibrated to the §5.1.2 shape of
// MovieLens 1M at laptop scale: a denser matrix (~4–5%) whose 20%-of-
// ratings long tail holds roughly two-thirds of the catalog.
func MovieLensLike() Config {
	return Config{
		// MovieLens 1M has 6040 users over 3883 movies (ratio ≈ 1.6);
		// keeping users > items preserves the paper's §4 premise that the
		// average item carries more ratings than the average user, which
		// is why item-based AT beats user-based HT.
		NumUsers:           2200,
		NumItems:           1400,
		NumGenres:          8,
		SubgenresPerGenre:  10,
		MeanRatingsPerUser: 55,
		MinRatingsPerUser:  20,
		ActivityExponent:   2.3,
		PopularityExponent: 1.2,
		TasteConcentration: 0.35,
		NoiseRate:          0.12,
		Seed:               1,
	}
}

// DoubanLike returns a configuration calibrated to the Douban book corpus
// shape: a much sparser matrix over a larger catalog with a heavier tail
// (the paper reports ~73% of books in the 20% tail, density 0.039%).
func DoubanLike() Config {
	return Config{
		// Douban: 383K users over 90K books (ratio ≈ 4.3), far sparser
		// than MovieLens, heavier tail. Scaled down with the user:item
		// ratio and the items-carry-more-information property preserved.
		NumUsers:           5200,
		NumItems:           1800,
		NumGenres:          12,
		SubgenresPerGenre:  12,
		MeanRatingsPerUser: 16,
		MinRatingsPerUser:  5,
		ActivityExponent:   2.1,
		PopularityExponent: 1.3,
		TasteConcentration: 0.25,
		NoiseRate:          0.08,
		Seed:               2,
	}
}

// ClusteredLike returns a community-structured corpus: 8 independent
// taste islands (no cross-cluster ratings at all), each a small
// MovieLens-shaped world of 300 users over 200 items. Overall scale
// matches the movielens world; the difference is topology — every walk
// subgraph is confined to its island, so precision cache invalidation
// has real structure to exploit (see PERFORMANCE.md).
func ClusteredLike() Config {
	return Config{
		Clusters:           8,
		NumUsers:           2400,
		NumItems:           1600,
		NumGenres:          4,
		SubgenresPerGenre:  6,
		MeanRatingsPerUser: 40,
		MinRatingsPerUser:  12,
		ActivityExponent:   2.3,
		PopularityExponent: 1.1,
		TasteConcentration: 0.3,
		NoiseRate:          0.1,
		Seed:               3,
	}
}

// World is a generated corpus plus its ground truth.
type World struct {
	Data         *dataset.Dataset
	Config       Config
	ItemGenre    []int       // per item: latent genre
	ItemSubgenre []int       // per item: subgenre within the genre
	UserPrefs    [][]float64 // per user: ground-truth genre distribution
	Ontology     *ontology.Tree
	popularity   []float64 // generator's base popularity weights
}

// Generate builds a world from the configuration. Generation is
// deterministic given Config.Seed.
func Generate(cfg Config) (*World, error) {
	if cfg.NumUsers < 1 || cfg.NumItems < 1 {
		return nil, fmt.Errorf("synth: need positive universe sizes, got %d users, %d items", cfg.NumUsers, cfg.NumItems)
	}
	cfg = cfg.withDefaults()
	if cfg.NoiseRate > 1 {
		return nil, fmt.Errorf("synth: NoiseRate %v > 1", cfg.NoiseRate)
	}
	if cfg.Clusters > 1 {
		return generateClustered(cfg)
	}
	rng := randutil.New(cfg.Seed)
	w := &World{
		Config:       cfg,
		ItemGenre:    make([]int, cfg.NumItems),
		ItemSubgenre: make([]int, cfg.NumItems),
		UserPrefs:    make([][]float64, cfg.NumUsers),
		Ontology:     ontology.New(),
	}

	// Item genres round-robin over a random permutation (so genres are
	// balanced), popularity Zipf over a second independent permutation
	// (so each genre has its own head and tail).
	perm := randutil.Perm(rng, cfg.NumItems)
	for rank, item := range perm {
		w.ItemGenre[item] = rank % cfg.NumGenres
		w.ItemSubgenre[item] = rng.Intn(cfg.SubgenresPerGenre)
	}
	zipf := randutil.ZipfWeights(cfg.NumItems, cfg.PopularityExponent, 2)
	popPerm := randutil.Perm(rng, cfg.NumItems)
	w.popularity = make([]float64, cfg.NumItems)
	for rank, item := range popPerm {
		w.popularity[item] = zipf[rank]
	}
	for item := 0; item < cfg.NumItems; item++ {
		// No shared root segment: items in different genres have zero
		// ontology similarity, so the Table 3 measurement discriminates
		// between taste-matched and off-taste recommendations.
		path := []string{
			fmt.Sprintf("Genre-%02d", w.ItemGenre[item]),
			fmt.Sprintf("Sub-%02d-%d", w.ItemGenre[item], w.ItemSubgenre[item]),
			fmt.Sprintf("Item-%05d", item),
		}
		if err := w.Ontology.Assign(item, path); err != nil {
			return nil, fmt.Errorf("synth: ontology: %w", err)
		}
	}

	// Per-genre item lists and popularity prefix sums for O(log n) draws.
	genreItems := make([][]int, cfg.NumGenres)
	for item, g := range w.ItemGenre {
		genreItems[g] = append(genreItems[g], item)
	}
	genreCum := make([][]float64, cfg.NumGenres)
	for g, items := range genreItems {
		ws := make([]float64, len(items))
		for k, item := range items {
			ws[k] = w.popularity[item]
		}
		genreCum[g] = randutil.CumSum(ws)
	}
	globalCum := randutil.CumSum(w.popularity)

	// Users.
	var ratings []dataset.Rating
	maxPerUser := cfg.NumItems / 2
	if maxPerUser < cfg.MinRatingsPerUser {
		maxPerUser = cfg.MinRatingsPerUser
	}
	for u := 0; u < cfg.NumUsers; u++ {
		w.UserPrefs[u] = randutil.Dirichlet(rng, cfg.TasteConcentration, cfg.NumGenres)
		n := paretoActivity(rng, cfg)
		if n > maxPerUser {
			n = maxPerUser
		}
		seen := make(map[int]struct{}, n)
		attempts := 0
		for len(seen) < n && attempts < 20*n {
			attempts++
			var item int
			if randutil.Bernoulli(rng, cfg.NoiseRate) {
				item = randutil.SearchCum(rng, globalCum)
			} else {
				g := randutil.Categorical(rng, w.UserPrefs[u])
				if len(genreItems[g]) == 0 {
					continue
				}
				item = genreItems[g][randutil.SearchCum(rng, genreCum[g])]
			}
			if _, dup := seen[item]; dup {
				continue
			}
			seen[item] = struct{}{}
			ratings = append(ratings, dataset.Rating{
				User: u, Item: item,
				Score: w.score(rng, u, item),
			})
		}
	}
	d, err := dataset.New(cfg.NumUsers, cfg.NumItems, ratings)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	w.Data = d
	return w, nil
}

// generateClustered builds Config.Clusters fully independent sub-worlds
// and merges them into one universe with dense id offsets: cluster c owns
// users [c·U/K, (c+1)·U/K) and items [c·I/K, (c+1)·I/K), and no rating
// crosses a cluster boundary. Genre ids are offset per cluster too, so
// the merged ground truth (ItemGenre, UserPrefs over K·NumGenres genres,
// ontology paths) stays consistent: TasteAffinity and the Table 3
// ontology measurements work unchanged on the merged world.
func generateClustered(cfg Config) (*World, error) {
	k := cfg.Clusters
	if cfg.NumUsers%k != 0 || cfg.NumItems%k != 0 {
		return nil, fmt.Errorf("synth: universe %d users × %d items not divisible by %d clusters", cfg.NumUsers, cfg.NumItems, k)
	}
	subUsers, subItems := cfg.NumUsers/k, cfg.NumItems/k
	merged := &World{
		Config:       cfg,
		ItemGenre:    make([]int, cfg.NumItems),
		ItemSubgenre: make([]int, cfg.NumItems),
		UserPrefs:    make([][]float64, cfg.NumUsers),
		Ontology:     ontology.New(),
		popularity:   make([]float64, cfg.NumItems),
	}
	var ratings []dataset.Rating
	for c := 0; c < k; c++ {
		sub := cfg
		sub.Clusters = 0
		sub.NumUsers, sub.NumItems = subUsers, subItems
		// Distinct deterministic seed per cluster; the large odd stride
		// keeps the per-cluster streams from overlapping for nearby seeds.
		sub.Seed = cfg.Seed + int64(c+1)*1_000_003
		w, err := Generate(sub)
		if err != nil {
			return nil, fmt.Errorf("synth: cluster %d: %w", c, err)
		}
		uOff, iOff, gOff := c*subUsers, c*subItems, c*cfg.NumGenres
		for i := 0; i < subItems; i++ {
			merged.ItemGenre[iOff+i] = gOff + w.ItemGenre[i]
			merged.ItemSubgenre[iOff+i] = w.ItemSubgenre[i]
			merged.popularity[iOff+i] = w.popularity[i]
			path := []string{
				fmt.Sprintf("Genre-%02d", merged.ItemGenre[iOff+i]),
				fmt.Sprintf("Sub-%02d-%d", merged.ItemGenre[iOff+i], w.ItemSubgenre[i]),
				fmt.Sprintf("Item-%05d", iOff+i),
			}
			if err := merged.Ontology.Assign(iOff+i, path); err != nil {
				return nil, fmt.Errorf("synth: cluster %d ontology: %w", c, err)
			}
		}
		for u := 0; u < subUsers; u++ {
			prefs := make([]float64, k*cfg.NumGenres)
			copy(prefs[gOff:], w.UserPrefs[u])
			merged.UserPrefs[uOff+u] = prefs
		}
		for _, r := range w.Data.Ratings() {
			ratings = append(ratings, dataset.Rating{
				User: uOff + r.User, Item: iOff + r.Item, Score: r.Score,
			})
		}
	}
	d, err := dataset.New(cfg.NumUsers, cfg.NumItems, ratings)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	merged.Data = d
	return merged, nil
}

// UsersPerCluster returns how many users one cluster block owns (the
// whole universe for an unclustered config): user u lives in cluster
// u / UsersPerCluster().
func (c Config) UsersPerCluster() int {
	if c.Clusters > 1 {
		return c.NumUsers / c.Clusters
	}
	return c.NumUsers
}

// ItemsPerCluster returns how many items one cluster block owns: writes
// that must stay inside user u's cluster pick items in
// [cluster·ItemsPerCluster(), (cluster+1)·ItemsPerCluster()).
func (c Config) ItemsPerCluster() int {
	if c.Clusters > 1 {
		return c.NumItems / c.Clusters
	}
	return c.NumItems
}

// paretoActivity draws a user's rating count: a Pareto tail above the
// configured floor, with mean ≈ MeanRatingsPerUser.
func paretoActivity(rng interface{ Float64() float64 }, cfg Config) int {
	alpha := cfg.ActivityExponent
	// Pareto mean = xmin·α/(α-1) → choose xmin to hit the target mean.
	xmin := cfg.MeanRatingsPerUser * (alpha - 1) / alpha
	if xmin < float64(cfg.MinRatingsPerUser) {
		xmin = float64(cfg.MinRatingsPerUser)
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	n := int(math.Round(xmin * math.Pow(u, -1/alpha)))
	if n < cfg.MinRatingsPerUser {
		n = cfg.MinRatingsPerUser
	}
	return n
}

// score converts taste affinity into a 1–5 star rating with noise.
func (w *World) score(rng interface{ NormFloat64() float64 }, u, item int) float64 {
	aff := w.TasteAffinity(u, item)
	raw := 1.5 + 3.5*aff + 0.6*rng.NormFloat64()
	s := math.Round(raw)
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

// TasteAffinity returns the ground-truth match between user u and item i
// in [0, 1]: the user's preference for the item's genre, normalized by
// their strongest preference.
func (w *World) TasteAffinity(u, i int) float64 {
	prefs := w.UserPrefs[u]
	maxP := 0.0
	for _, p := range prefs {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		return 0
	}
	return prefs[w.ItemGenre[i]] / maxP
}

// GenreName returns the ontology label of a genre, for Table 1-style topic
// readouts.
func (w *World) GenreName(g int) string {
	return fmt.Sprintf("Genre-%02d", g)
}

// ItemName returns the ontology leaf label of an item.
func (w *World) ItemName(i int) string {
	return fmt.Sprintf("Item-%05d", i)
}
