// Package ontology implements the category-tree similarity of §5.2.4: the
// paper maps Douban books into dangdang's hierarchical catalog and scores
// two items by the length of their categories' longest common prefix
// divided by the length of the longer path (Eq. 18); a recommendation is
// relevant to a user if it is similar to any of their preferred items
// (Eq. 19).
//
// Category paths are rooted sequences like
// ["Book", "Computer & Internet", "Database", "Data Mining"]. Items are
// assigned to leaf categories; unassigned items have zero similarity to
// everything.
package ontology

import (
	"fmt"
	"strings"
)

// Tree maps items to category paths.
type Tree struct {
	paths map[int][]string
}

// New returns an empty ontology.
func New() *Tree {
	return &Tree{paths: make(map[int][]string)}
}

// Assign records item's category path (copied). An empty path is invalid.
func (t *Tree) Assign(item int, path []string) error {
	if len(path) == 0 {
		return fmt.Errorf("ontology: empty path for item %d", item)
	}
	for k, seg := range path {
		if strings.TrimSpace(seg) == "" {
			return fmt.Errorf("ontology: blank segment %d in path for item %d", k, item)
		}
	}
	cp := make([]string, len(path))
	copy(cp, path)
	t.paths[item] = cp
	return nil
}

// Path returns item's category path and whether it is assigned. The slice
// must not be modified.
func (t *Tree) Path(item int) ([]string, bool) {
	p, ok := t.paths[item]
	return p, ok
}

// Len returns the number of assigned items.
func (t *Tree) Len() int { return len(t.paths) }

// PathSimilarity computes Eq. 18 on raw category paths:
// |longest common prefix| / max(|a|, |b|).
func PathSimilarity(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	common := 0
	for common < len(a) && common < len(b) && a[common] == b[common] {
		common++
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	return float64(common) / float64(maxLen)
}

// ItemSimilarity computes Eq. 18 between two items; unassigned items score
// zero against everything.
func (t *Tree) ItemSimilarity(a, b int) float64 {
	pa, ok := t.paths[a]
	if !ok {
		return 0
	}
	pb, ok := t.paths[b]
	if !ok {
		return 0
	}
	return PathSimilarity(pa, pb)
}

// UserSimilarity computes Eq. 19: the relevance of item i to a user whose
// preferred item set is prefs — the maximum ontology similarity between i
// and any preferred item.
func (t *Tree) UserSimilarity(prefs []int, i int) float64 {
	best := 0.0
	for _, j := range prefs {
		if s := t.ItemSimilarity(i, j); s > best {
			best = s
		}
	}
	return best
}

// MeanListSimilarity averages UserSimilarity over a recommendation list —
// the per-user quantity that Table 3 aggregates.
func (t *Tree) MeanListSimilarity(prefs, recs []int) float64 {
	if len(recs) == 0 {
		return 0
	}
	total := 0.0
	for _, i := range recs {
		total += t.UserSimilarity(prefs, i)
	}
	return total / float64(len(recs))
}
