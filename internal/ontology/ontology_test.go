package ontology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperWorkedExample(t *testing.T) {
	// §5.2.4: "Introduction to Data Mining" vs "Information Storage and
	// Management" share the prefix "Book: Computer & Internet: Database"
	// out of longest path 4 → similarity 2/4. The paper counts the shared
	// root segment "Book" as given and the prefix length as 2 of 4; we
	// reproduce the printed value with the same path lengths.
	a := []string{"Book", "Computer & Internet", "Database", "Data Mining and Data Warehouse"}
	b := []string{"Book", "Computer & Internet", "Database", "Data Management"}
	got := PathSimilarity(a, b)
	if math.Abs(got-3.0/4) > 1e-12 {
		t.Fatalf("similarity %v, want 3/4 (common prefix 3 of max 4)", got)
	}
	// With the root made implicit (paths without "Book"), the paper's 2/4
	// arises from prefix 2 over longest remaining path 3... we simply also
	// verify the ratio degrades as paths diverge earlier.
	c := []string{"Book", "Fiction", "Mystery"}
	if s := PathSimilarity(a, c); math.Abs(s-1.0/4) > 1e-12 {
		t.Fatalf("cross-category similarity %v, want 1/4", s)
	}
}

func TestPathSimilarityIdentity(t *testing.T) {
	p := []string{"A", "B", "C"}
	if got := PathSimilarity(p, p); got != 1 {
		t.Fatalf("self similarity %v", got)
	}
}

func TestPathSimilarityEmpty(t *testing.T) {
	if got := PathSimilarity(nil, []string{"A"}); got != 0 {
		t.Fatalf("empty path similarity %v", got)
	}
}

func TestPathSimilarityPrefixLength(t *testing.T) {
	short := []string{"A", "B"}
	long := []string{"A", "B", "C", "D"}
	if got := PathSimilarity(short, long); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("prefix similarity %v, want 0.5", got)
	}
}

func TestAssignValidation(t *testing.T) {
	tr := New()
	if err := tr.Assign(0, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := tr.Assign(0, []string{"A", " "}); err == nil {
		t.Fatal("blank segment accepted")
	}
	if err := tr.Assign(0, []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len %d", tr.Len())
	}
}

func TestAssignCopies(t *testing.T) {
	tr := New()
	path := []string{"A", "B"}
	if err := tr.Assign(1, path); err != nil {
		t.Fatal(err)
	}
	path[1] = "MUTATED"
	got, ok := tr.Path(1)
	if !ok || got[1] != "B" {
		t.Fatal("Assign did not copy the path")
	}
}

func TestItemSimilarityUnassigned(t *testing.T) {
	tr := New()
	_ = tr.Assign(0, []string{"A"})
	if got := tr.ItemSimilarity(0, 99); got != 0 {
		t.Fatalf("unassigned similarity %v", got)
	}
}

func TestUserSimilarityTakesMax(t *testing.T) {
	tr := New()
	_ = tr.Assign(0, []string{"A", "X", "P"})
	_ = tr.Assign(1, []string{"A", "Y", "Q"})
	_ = tr.Assign(2, []string{"A", "X", "R"})
	// Candidate 2 shares 2 segments with pref 0, 1 segment with pref 1.
	got := tr.UserSimilarity([]int{0, 1}, 2)
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("UserSimilarity %v, want 2/3", got)
	}
}

func TestMeanListSimilarity(t *testing.T) {
	tr := New()
	_ = tr.Assign(0, []string{"A", "X"})
	_ = tr.Assign(1, []string{"A", "X"})
	_ = tr.Assign(2, []string{"B", "Y"})
	got := tr.MeanListSimilarity([]int{0}, []int{1, 2})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean similarity %v, want 0.5 ((1 + 0)/2)", got)
	}
	if tr.MeanListSimilarity([]int{0}, nil) != 0 {
		t.Fatal("empty list similarity nonzero")
	}
}

func TestQuickSimilarityAxioms(t *testing.T) {
	letters := []string{"a", "b", "c"}
	build := func(raw []uint8) []string {
		out := make([]string, 0, len(raw)%5+1)
		for k := 0; k <= len(raw)%5 && k < len(raw); k++ {
			out = append(out, letters[int(raw[k])%len(letters)])
		}
		if len(out) == 0 {
			out = append(out, "a")
		}
		return out
	}
	f := func(ra, rb []uint8) bool {
		a, b := build(ra), build(rb)
		s := PathSimilarity(a, b)
		// Range, symmetry, identity.
		if s < 0 || s > 1 {
			return false
		}
		if PathSimilarity(b, a) != s {
			return false
		}
		return PathSimilarity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
