package mf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"longtailrec/internal/dataset"
)

// blockDataset builds a two-block rating matrix with clear low-rank
// structure: users 0..nu/2 love items 0..ni/2 (score 5) and dislike the
// rest (score 1); the other half is mirrored. A 10% sprinkle of ratings is
// left out to keep the matrix sparse.
func blockDataset(t testing.TB, nu, ni int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ratings []dataset.Rating
	for u := 0; u < nu; u++ {
		for i := 0; i < ni; i++ {
			if rng.Float64() < 0.3 {
				continue // hold out ~30% of the grid
			}
			score := 1.0
			if (u < nu/2) == (i < ni/2) {
				score = 5.0
			}
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: score})
		}
	}
	d, err := dataset.New(nu, ni, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrainBiasedMFValidation(t *testing.T) {
	if _, err := TrainBiasedMF(nil, DefaultOptions()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d := blockDataset(t, 8, 8, 1)
	if _, err := TrainBiasedMF(d, Options{Reg: -1}); err == nil {
		t.Fatal("negative regularization accepted")
	}
	empty, err := dataset.New(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainBiasedMF(empty, DefaultOptions()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBiasedMFFitsBlockStructure(t *testing.T) {
	d := blockDataset(t, 20, 20, 2)
	m, err := TrainBiasedMF(d, Options{Factors: 4, Epochs: 60, LearnRate: 0.02, Reg: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := RMSE(m, d.Ratings()); got > 0.5 {
		t.Fatalf("training RMSE %.3f on trivially low-rank data, want < 0.5", got)
	}
	// A loved-block item must outscore a disliked-block item for user 0.
	scores := m.ScoreAll(0, nil)
	if scores[0] <= scores[19] {
		t.Fatalf("user 0: in-block item scored %.2f <= out-of-block %.2f", scores[0], scores[19])
	}
}

func TestBiasedMFTraceDecreases(t *testing.T) {
	d := blockDataset(t, 16, 16, 3)
	m, err := TrainBiasedMF(d, Options{Factors: 4, Epochs: 30, LearnRate: 0.02, Reg: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 30 {
		t.Fatalf("trace length %d, want 30", len(tr))
	}
	if tr[len(tr)-1] >= tr[0] {
		t.Fatalf("training RMSE did not improve: first %.3f, last %.3f", tr[0], tr[len(tr)-1])
	}
}

func TestBiasedMFDeterminism(t *testing.T) {
	d := blockDataset(t, 12, 12, 4)
	opts := Options{Factors: 3, Epochs: 10, LearnRate: 0.01, Reg: 0.02, Seed: 42}
	a, err := TrainBiasedMF(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBiasedMF(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		sa := a.ScoreAll(u, nil)
		sb := b.ScoreAll(u, nil)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("same seed, different prediction for (%d,%d): %v vs %v", u, i, sa[i], sb[i])
			}
		}
	}
}

func TestBiasedMFScoreAllMatchesScore(t *testing.T) {
	d := blockDataset(t, 10, 14, 5)
	m, err := TrainBiasedMF(d, Options{Factors: 3, Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		all := m.ScoreAll(u, nil)
		for i := 0; i < d.NumItems(); i++ {
			if diff := math.Abs(all[i] - m.Score(u, i)); diff > 1e-12 {
				t.Fatalf("ScoreAll/Score disagree at (%d,%d) by %v", u, i, diff)
			}
		}
	}
}

func TestBiasedMFScoreAllReusesBuffer(t *testing.T) {
	d := blockDataset(t, 8, 8, 6)
	m, err := TrainBiasedMF(d, Options{Factors: 2, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, d.NumItems())
	out := m.ScoreAll(0, buf)
	if &out[0] != &buf[0] {
		t.Fatal("correctly sized buffer was not reused")
	}
	short := make([]float64, 2)
	out = m.ScoreAll(0, short)
	if len(out) != d.NumItems() {
		t.Fatalf("missized buffer: got len %d, want %d", len(out), d.NumItems())
	}
}

func TestBiasedMFBetterThanGlobalMean(t *testing.T) {
	d := blockDataset(t, 20, 20, 7)
	m, err := TrainBiasedMF(d, Options{Factors: 4, Epochs: 40, LearnRate: 0.02, Reg: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Global-mean RMSE on the two-block data is ~2 (scores are 1 or 5).
	mean := m.GlobalMean()
	sse := 0.0
	for _, r := range d.Ratings() {
		e := r.Score - mean
		sse += e * e
	}
	meanRMSE := math.Sqrt(sse / float64(d.NumRatings()))
	if fit := RMSE(m, d.Ratings()); fit >= meanRMSE/2 {
		t.Fatalf("MF RMSE %.3f not clearly better than global-mean %.3f", fit, meanRMSE)
	}
}

func TestDefaultOptionsApplied(t *testing.T) {
	opts, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Factors != 20 || opts.Epochs != 20 {
		t.Fatalf("defaults: %+v", opts)
	}
	if opts.LearnRate != 0.005 || opts.LearnRateDecay != 1 {
		t.Fatalf("defaults: %+v", opts)
	}
	if opts.InitScale <= 0 {
		t.Fatalf("InitScale default missing: %+v", opts)
	}
}

func TestMAEAndRMSEEmpty(t *testing.T) {
	d := blockDataset(t, 8, 8, 8)
	m, err := TrainBiasedMF(d, Options{Factors: 2, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if RMSE(m, nil) != 0 || MAE(m, nil) != 0 {
		t.Fatal("empty rating slice should measure 0")
	}
	if MAE(m, d.Ratings()) > RMSE(m, d.Ratings())+1e-12 {
		t.Fatal("MAE exceeded RMSE (Jensen violation)")
	}
}

func TestBiasedMFPredictionsFinite(t *testing.T) {
	d := blockDataset(t, 15, 15, 9)
	m, err := TrainBiasedMF(d, Options{Factors: 5, Epochs: 20, LearnRate: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Property: every (u, i) prediction is finite, including cold pairs.
	f := func(u, i uint8) bool {
		uu := int(u) % d.NumUsers()
		ii := int(i) % d.NumItems()
		s := m.Score(uu, ii)
		return !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLearnRateDecayConverges(t *testing.T) {
	d := blockDataset(t, 16, 16, 10)
	// An aggressive learn rate with decay must still end below where it
	// started; this exercises the decay path.
	m, err := TrainBiasedMF(d, Options{Factors: 4, Epochs: 30, LearnRate: 0.05, LearnRateDecay: 0.9, Reg: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if tr[len(tr)-1] >= tr[0] {
		t.Fatalf("decayed SGD diverged: first %.3f last %.3f", tr[0], tr[len(tr)-1])
	}
}
