// Asymmetric-SVD (Koren, KDD 2008 §4): the user is represented purely
// through the items they rated, with no free user factor —
//
//	r̂_ui = μ + b_u + b_i + q_i · |R(u)|^{-1/2}·Σ_{j∈R(u)} [(r_uj − b_uj)·x_j + y_j]
//
// where b_uj = μ + b_u + b_j is the baseline estimate. Because users are a
// function of item factors only, new users are served without retraining —
// the property Koren advertises and the reason the paper's §4 motivates
// item-centric models ("every item has more information to use").

package mf

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/dataset"
)

// AsySVD is a trained Asymmetric-SVD model.
type AsySVD struct {
	numUsers, numItems int
	factors            int
	mu                 float64
	bu, bi             []float64
	q, x, y            []float64 // stride = factors
	ratings            [][]dataset.Rating
	norm               []float64 // |R(u)|^{-1/2} per user
	trace              []float64
}

// TrainAsySVD fits an Asymmetric-SVD model to the dataset.
func TrainAsySVD(d *dataset.Dataset, opts Options) (*AsySVD, error) {
	if d == nil {
		return nil, fmt.Errorf("mf: nil dataset")
	}
	if d.NumRatings() == 0 {
		return nil, fmt.Errorf("mf: empty dataset")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	f := opts.Factors
	m := &AsySVD{
		numUsers: d.NumUsers(),
		numItems: d.NumItems(),
		factors:  f,
		mu:       globalMean(d),
		bu:       make([]float64, d.NumUsers()),
		bi:       make([]float64, d.NumItems()),
		q:        make([]float64, d.NumItems()*f),
		x:        make([]float64, d.NumItems()*f),
		y:        make([]float64, d.NumItems()*f),
		ratings:  make([][]dataset.Rating, d.NumUsers()),
		norm:     make([]float64, d.NumUsers()),
	}
	for u := 0; u < d.NumUsers(); u++ {
		rs := d.UserRatings(u)
		m.ratings[u] = rs
		if len(rs) > 0 {
			m.norm[u] = 1 / math.Sqrt(float64(len(rs)))
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	initFactors(rng, m.q, opts.InitScale)
	// x and y start at zero: the model begins as the bias-only baseline.

	all := d.Ratings()
	order := newOrder(len(all))
	lr := opts.LearnRate
	z := make([]float64, f)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sse := 0.0
		for _, k := range order {
			r := all[k]
			qi := m.q[r.Item*f : (r.Item+1)*f]
			nrm := m.norm[r.User]
			m.compose(r.User, z)
			pred := m.mu + m.bu[r.User] + m.bi[r.Item] + dot(z, qi)
			e := r.Score - pred
			sse += e * e
			m.bu[r.User] += lr * (e - opts.Reg*m.bu[r.User])
			m.bi[r.Item] += lr * (e - opts.Reg*m.bi[r.Item])
			for j := 0; j < f; j++ {
				qi[j] += lr * (e*z[j] - opts.Reg*qi[j])
			}
			for _, ur := range m.ratings[r.User] {
				resid := ur.Score - (m.mu + m.bu[r.User] + m.bi[ur.Item])
				xj := m.x[ur.Item*f : (ur.Item+1)*f]
				yj := m.y[ur.Item*f : (ur.Item+1)*f]
				for j := 0; j < f; j++ {
					g := e * nrm * qi[j]
					xj[j] += lr * (g*resid - opts.Reg*xj[j])
					yj[j] += lr * (g - opts.Reg*yj[j])
				}
			}
		}
		m.trace = append(m.trace, math.Sqrt(sse/float64(len(all))))
		lr *= opts.LearnRateDecay
	}
	return m, nil
}

// compose builds the virtual user vector into dst:
// |R(u)|^{-1/2}·Σ_{j∈R(u)} [(r_uj − b_uj)·x_j + y_j].
func (m *AsySVD) compose(u int, dst []float64) {
	f := m.factors
	for j := 0; j < f; j++ {
		dst[j] = 0
	}
	nrm := m.norm[u]
	if nrm == 0 {
		return
	}
	for _, r := range m.ratings[u] {
		resid := r.Score - (m.mu + m.bu[u] + m.bi[r.Item])
		xj := m.x[r.Item*f : (r.Item+1)*f]
		yj := m.y[r.Item*f : (r.Item+1)*f]
		for j := 0; j < f; j++ {
			dst[j] += resid*xj[j] + yj[j]
		}
	}
	for j := 0; j < f; j++ {
		dst[j] *= nrm
	}
}

// Factors returns the latent dimensionality.
func (m *AsySVD) Factors() int { return m.factors }

// Trace returns the training RMSE measured online during each epoch.
func (m *AsySVD) Trace() []float64 {
	out := make([]float64, len(m.trace))
	copy(out, m.trace)
	return out
}

// Score predicts r̂_ui.
func (m *AsySVD) Score(u, i int) float64 {
	f := m.factors
	z := make([]float64, f)
	m.compose(u, z)
	return m.mu + m.bu[u] + m.bi[i] + dot(z, m.q[i*f:(i+1)*f])
}

// ScoreAll fills out[i] = r̂_ui for every item; out is reused when it has
// the right length.
func (m *AsySVD) ScoreAll(u int, out []float64) []float64 {
	if len(out) != m.numItems {
		out = make([]float64, m.numItems)
	}
	f := m.factors
	z := make([]float64, f)
	m.compose(u, z)
	base := m.mu + m.bu[u]
	for i := 0; i < m.numItems; i++ {
		out[i] = base + m.bi[i] + dot(z, m.q[i*f:(i+1)*f])
	}
	return out
}

// ScoreNewUser predicts scores for a user unseen at training time, given
// only their ratings — AsySVD's headline capability. The ratings must
// reference item indices within the trained universe; the unknown user
// bias is taken as 0.
func (m *AsySVD) ScoreNewUser(ratings []dataset.Rating, out []float64) ([]float64, error) {
	if len(out) != m.numItems {
		out = make([]float64, m.numItems)
	}
	f := m.factors
	z := make([]float64, f)
	if len(ratings) > 0 {
		nrm := 1 / math.Sqrt(float64(len(ratings)))
		for _, r := range ratings {
			if r.Item < 0 || r.Item >= m.numItems {
				return nil, fmt.Errorf("mf: new-user rating item %d out of range [0,%d)", r.Item, m.numItems)
			}
			resid := r.Score - (m.mu + m.bi[r.Item])
			xj := m.x[r.Item*f : (r.Item+1)*f]
			yj := m.y[r.Item*f : (r.Item+1)*f]
			for j := 0; j < f; j++ {
				z[j] += resid*xj[j] + yj[j]
			}
		}
		for j := 0; j < f; j++ {
			z[j] *= nrm
		}
	}
	for i := 0; i < m.numItems; i++ {
		out[i] = m.mu + m.bi[i] + dot(z, m.q[i*f:(i+1)*f])
	}
	return out, nil
}
