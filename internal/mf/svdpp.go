// SVD++ (Koren, KDD 2008): the user factor is augmented with an implicit
// term built from the set of items the user rated, regardless of score —
// r̂_ui = μ + b_u + b_i + q_i·(p_u + |N(u)|^{-1/2}·Σ_{j∈N(u)} y_j).
// The paper's §5.1.1 cites it (via [16]) as one of the strong models
// PureSVD nevertheless beats on top-N recommendation.

package mf

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/dataset"
)

// SVDPP is a trained SVD++ model.
type SVDPP struct {
	numUsers, numItems int
	factors            int
	mu                 float64
	bu, bi             []float64
	p, q, y            []float64 // stride = factors
	items              [][]int   // N(u): item list per user
	norm               []float64 // |N(u)|^{-1/2} per user (0 for cold users)
	trace              []float64
}

// TrainSVDPP fits an SVD++ model to the dataset.
func TrainSVDPP(d *dataset.Dataset, opts Options) (*SVDPP, error) {
	if d == nil {
		return nil, fmt.Errorf("mf: nil dataset")
	}
	if d.NumRatings() == 0 {
		return nil, fmt.Errorf("mf: empty dataset")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	f := opts.Factors
	m := &SVDPP{
		numUsers: d.NumUsers(),
		numItems: d.NumItems(),
		factors:  f,
		mu:       globalMean(d),
		bu:       make([]float64, d.NumUsers()),
		bi:       make([]float64, d.NumItems()),
		p:        make([]float64, d.NumUsers()*f),
		q:        make([]float64, d.NumItems()*f),
		y:        make([]float64, d.NumItems()*f),
		items:    make([][]int, d.NumUsers()),
		norm:     make([]float64, d.NumUsers()),
	}
	for u := 0; u < d.NumUsers(); u++ {
		rs := d.UserRatings(u)
		items := make([]int, len(rs))
		for k, r := range rs {
			items[k] = r.Item
		}
		m.items[u] = items
		if len(items) > 0 {
			m.norm[u] = 1 / math.Sqrt(float64(len(items)))
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	initFactors(rng, m.p, opts.InitScale)
	initFactors(rng, m.q, opts.InitScale)
	// y starts at zero so the model begins as plain biased MF and learns
	// the implicit term only where it helps.

	ratings := d.Ratings()
	order := newOrder(len(ratings))
	lr := opts.LearnRate
	z := make([]float64, f)    // composite user vector p_u + norm·Σ y_j
	ysum := make([]float64, f) // Σ_{j∈N(u)} y_j
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sse := 0.0
		for _, k := range order {
			r := ratings[k]
			pu := m.p[r.User*f : (r.User+1)*f]
			qi := m.q[r.Item*f : (r.Item+1)*f]
			nu := m.items[r.User]
			nrm := m.norm[r.User]
			for j := 0; j < f; j++ {
				ysum[j] = 0
			}
			for _, it := range nu {
				yj := m.y[it*f : (it+1)*f]
				for j := 0; j < f; j++ {
					ysum[j] += yj[j]
				}
			}
			for j := 0; j < f; j++ {
				z[j] = pu[j] + nrm*ysum[j]
			}
			pred := m.mu + m.bu[r.User] + m.bi[r.Item] + dot(z, qi)
			e := r.Score - pred
			sse += e * e
			m.bu[r.User] += lr * (e - opts.Reg*m.bu[r.User])
			m.bi[r.Item] += lr * (e - opts.Reg*m.bi[r.Item])
			for j := 0; j < f; j++ {
				puj, qij := pu[j], qi[j]
				pu[j] += lr * (e*qij - opts.Reg*puj)
				qi[j] += lr * (e*z[j] - opts.Reg*qij)
			}
			// Scatter the implicit-factor gradient over N(u).
			for _, it := range nu {
				yj := m.y[it*f : (it+1)*f]
				for j := 0; j < f; j++ {
					yj[j] += lr * (e*nrm*qi[j] - opts.Reg*yj[j])
				}
			}
		}
		m.trace = append(m.trace, math.Sqrt(sse/float64(len(ratings))))
		lr *= opts.LearnRateDecay
	}
	return m, nil
}

// Factors returns the latent dimensionality.
func (m *SVDPP) Factors() int { return m.factors }

// Trace returns the training RMSE measured online during each epoch.
func (m *SVDPP) Trace() []float64 {
	out := make([]float64, len(m.trace))
	copy(out, m.trace)
	return out
}

// userVector composes p_u + |N(u)|^{-1/2}·Σ y_j into dst.
func (m *SVDPP) userVector(u int, dst []float64) {
	f := m.factors
	pu := m.p[u*f : (u+1)*f]
	copy(dst, pu)
	nrm := m.norm[u]
	if nrm == 0 {
		return
	}
	for _, it := range m.items[u] {
		yj := m.y[it*f : (it+1)*f]
		for j := 0; j < f; j++ {
			dst[j] += nrm * yj[j]
		}
	}
}

// Score predicts r̂_ui.
func (m *SVDPP) Score(u, i int) float64 {
	f := m.factors
	z := make([]float64, f)
	m.userVector(u, z)
	return m.mu + m.bu[u] + m.bi[i] + dot(z, m.q[i*f:(i+1)*f])
}

// ScoreAll fills out[i] = r̂_ui for every item; out is reused when it has
// the right length.
func (m *SVDPP) ScoreAll(u int, out []float64) []float64 {
	if len(out) != m.numItems {
		out = make([]float64, m.numItems)
	}
	f := m.factors
	z := make([]float64, f)
	m.userVector(u, z)
	base := m.mu + m.bu[u]
	for i := 0; i < m.numItems; i++ {
		out[i] = base + m.bi[i] + dot(z, m.q[i*f:(i+1)*f])
	}
	return out
}
