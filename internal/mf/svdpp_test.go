package mf

import (
	"math"
	"testing"

	"longtailrec/internal/dataset"
)

func TestTrainSVDPPValidation(t *testing.T) {
	if _, err := TrainSVDPP(nil, DefaultOptions()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d := blockDataset(t, 8, 8, 1)
	if _, err := TrainSVDPP(d, Options{Reg: -0.5}); err == nil {
		t.Fatal("negative regularization accepted")
	}
}

func TestSVDPPFitsBlockStructure(t *testing.T) {
	d := blockDataset(t, 20, 20, 20)
	m, err := TrainSVDPP(d, Options{Factors: 4, Epochs: 50, LearnRate: 0.02, Reg: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := RMSE(m, d.Ratings()); got > 0.6 {
		t.Fatalf("training RMSE %.3f, want < 0.6", got)
	}
	scores := m.ScoreAll(0, nil)
	if scores[0] <= scores[19] {
		t.Fatalf("user 0: in-block item %.2f <= out-of-block %.2f", scores[0], scores[19])
	}
}

func TestSVDPPTraceDecreases(t *testing.T) {
	d := blockDataset(t, 16, 16, 21)
	m, err := TrainSVDPP(d, Options{Factors: 4, Epochs: 25, LearnRate: 0.02, Reg: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 25 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[len(tr)-1] >= tr[0] {
		t.Fatalf("no improvement: %.3f -> %.3f", tr[0], tr[len(tr)-1])
	}
}

func TestSVDPPScoreAllMatchesScore(t *testing.T) {
	d := blockDataset(t, 10, 12, 22)
	m, err := TrainSVDPP(d, Options{Factors: 3, Epochs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		all := m.ScoreAll(u, nil)
		for i := 0; i < d.NumItems(); i++ {
			if diff := math.Abs(all[i] - m.Score(u, i)); diff > 1e-12 {
				t.Fatalf("disagree at (%d,%d) by %v", u, i, diff)
			}
		}
	}
}

func TestSVDPPDeterminism(t *testing.T) {
	d := blockDataset(t, 12, 12, 23)
	opts := Options{Factors: 3, Epochs: 8, LearnRate: 0.01, Reg: 0.02, Seed: 99}
	a, err := TrainSVDPP(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSVDPP(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		if a.Score(u, 0) != b.Score(u, 0) {
			t.Fatalf("same seed diverged for user %d", u)
		}
	}
}

func TestSVDPPColdUserGetsBaseline(t *testing.T) {
	// User 3 has one rating; a user universe slot with zero ratings is
	// impossible through dataset.New plus graph, but SVD++ must still not
	// blow up on a minimal-history user.
	d, err := dataset.New(4, 4, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4},
		{User: 1, Item: 0, Score: 5}, {User: 1, Item: 2, Score: 2},
		{User: 2, Item: 1, Score: 3}, {User: 2, Item: 3, Score: 4},
		{User: 3, Item: 2, Score: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSVDPP(d, Options{Factors: 2, Epochs: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if s := m.Score(3, i); math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("cold-ish user score(3,%d) = %v", i, s)
		}
	}
}

func TestAsySVDValidation(t *testing.T) {
	if _, err := TrainAsySVD(nil, DefaultOptions()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d := blockDataset(t, 8, 8, 30)
	if _, err := TrainAsySVD(d, Options{Reg: -2}); err == nil {
		t.Fatal("negative regularization accepted")
	}
}

func TestAsySVDFitsBlockStructure(t *testing.T) {
	d := blockDataset(t, 20, 20, 31)
	m, err := TrainAsySVD(d, Options{Factors: 4, Epochs: 50, LearnRate: 0.02, Reg: 0.01, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := RMSE(m, d.Ratings()); got > 0.8 {
		t.Fatalf("training RMSE %.3f, want < 0.8", got)
	}
	scores := m.ScoreAll(0, nil)
	if scores[0] <= scores[19] {
		t.Fatalf("user 0: in-block %.2f <= out-of-block %.2f", scores[0], scores[19])
	}
}

func TestAsySVDTraceDecreases(t *testing.T) {
	d := blockDataset(t, 16, 16, 32)
	m, err := TrainAsySVD(d, Options{Factors: 4, Epochs: 20, LearnRate: 0.02, Reg: 0.01, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if tr[len(tr)-1] >= tr[0] {
		t.Fatalf("no improvement: %.3f -> %.3f", tr[0], tr[len(tr)-1])
	}
}

func TestAsySVDScoreAllMatchesScore(t *testing.T) {
	d := blockDataset(t, 10, 12, 33)
	m, err := TrainAsySVD(d, Options{Factors: 3, Epochs: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		all := m.ScoreAll(u, nil)
		for i := 0; i < d.NumItems(); i++ {
			if diff := math.Abs(all[i] - m.Score(u, i)); diff > 1e-12 {
				t.Fatalf("disagree at (%d,%d) by %v", u, i, diff)
			}
		}
	}
}

func TestAsySVDNewUserFoldIn(t *testing.T) {
	d := blockDataset(t, 20, 20, 34)
	m, err := TrainAsySVD(d, Options{Factors: 4, Epochs: 40, LearnRate: 0.02, Reg: 0.01, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new user who loves the first block must have first-block
	// items outrank second-block items, with zero retraining.
	newRatings := []dataset.Rating{
		{Item: 0, Score: 5}, {Item: 1, Score: 5}, {Item: 2, Score: 5},
		{Item: 15, Score: 1}, {Item: 16, Score: 1},
	}
	scores, err := m.ScoreNewUser(newRatings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scores[4] <= scores[18] {
		t.Fatalf("fold-in failed: unrated in-block item %.2f <= out-of-block %.2f", scores[4], scores[18])
	}
	// Out-of-range items must error, not panic.
	if _, err := m.ScoreNewUser([]dataset.Rating{{Item: 99, Score: 5}}, nil); err == nil {
		t.Fatal("out-of-range fold-in item accepted")
	}
	// An empty history degrades to the bias-only baseline.
	base, err := m.ScoreNewUser(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range base {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("baseline score[%d] = %v", i, s)
		}
	}
}

func TestAsySVDColdUserFinite(t *testing.T) {
	d, err := dataset.New(3, 3, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 3},
		{User: 1, Item: 1, Score: 4}, {User: 1, Item: 2, Score: 2},
		{User: 2, Item: 0, Score: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainAsySVD(d, Options{Factors: 2, Epochs: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		for i := 0; i < 3; i++ {
			if s := m.Score(u, i); math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("score(%d,%d) = %v", u, i, s)
			}
		}
	}
}
