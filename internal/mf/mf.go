// Package mf implements the gradient-descent matrix-factorization
// recommenders the paper positions PureSVD against (§2, §5.1.1): the
// regularized biased MF popularized by the Netflix Prize, Koren's SVD++
// (KDD 2008) which folds implicit feedback into the user factor, and the
// item-based Asymmetric-SVD (AsySVD) variant that represents users purely
// through the items they rated. Cremonesi, Koren & Turrin (RecSys 2010)
// report that PureSVD beats all three on top-N tasks — reproducing that
// ordering on the long-tail Recall@N protocol is this package's purpose.
//
// All three models share the baseline predictor μ + b_u + b_i and are
// trained by stochastic gradient descent over the observed ratings only
// (unlike PureSVD, which zero-fills). Training is deterministic for a
// fixed Options.Seed.
package mf

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/dataset"
)

// Model is the common scoring surface of every factorization in this
// package. Score predicts a single rating; ScoreAll fills out[i] with the
// predicted rating of every item for u (allocating when out is missized),
// which is what the top-N ranking protocol consumes.
type Model interface {
	Score(u, i int) float64
	ScoreAll(u int, out []float64) []float64
}

// Options configure SGD training, shared by all models in this package.
type Options struct {
	// Factors is the latent dimensionality; <= 0 means 20.
	Factors int
	// Epochs is the number of SGD sweeps over the ratings; <= 0 means 20.
	Epochs int
	// LearnRate is the SGD step size; <= 0 means 0.005.
	LearnRate float64
	// LearnRateDecay multiplies the step size after every epoch; values
	// outside (0, 1] mean 1 (no decay).
	LearnRateDecay float64
	// Reg is the L2 regularization weight; negative is an error, 0 is
	// allowed, and an unset (zero) value with UseDefaultReg left false
	// stays 0. DefaultOptions sets 0.02.
	Reg float64
	// InitScale is the standard deviation of the factor initialization;
	// <= 0 means 0.1/√Factors.
	InitScale float64
	// Seed drives factor initialization and the per-epoch rating shuffle.
	Seed int64
}

// DefaultOptions returns the conventional Netflix-Prize-era settings:
// 20 factors, 20 epochs, learn rate 0.005, regularization 0.02.
func DefaultOptions() Options {
	return Options{Factors: 20, Epochs: 20, LearnRate: 0.005, Reg: 0.02}
}

func (o Options) withDefaults() (Options, error) {
	if o.Reg < 0 {
		return o, fmt.Errorf("mf: negative regularization %v", o.Reg)
	}
	if o.Factors <= 0 {
		o.Factors = 20
	}
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.LearnRate <= 0 {
		o.LearnRate = 0.005
	}
	if o.LearnRateDecay <= 0 || o.LearnRateDecay > 1 {
		o.LearnRateDecay = 1
	}
	if o.InitScale <= 0 {
		o.InitScale = 0.1 / math.Sqrt(float64(o.Factors))
	}
	return o, nil
}

// BiasedMF is the regularized biased matrix factorization
// r̂_ui = μ + b_u + b_i + p_u·q_i, trained by SGD on observed ratings.
type BiasedMF struct {
	numUsers, numItems int
	factors            int
	mu                 float64
	bu, bi             []float64
	p, q               []float64 // row-major user/item factors, stride = factors
	trace              []float64 // training RMSE after each epoch
}

// TrainBiasedMF fits a BiasedMF to the dataset.
func TrainBiasedMF(d *dataset.Dataset, opts Options) (*BiasedMF, error) {
	if d == nil {
		return nil, fmt.Errorf("mf: nil dataset")
	}
	if d.NumRatings() == 0 {
		return nil, fmt.Errorf("mf: empty dataset")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	f := opts.Factors
	m := &BiasedMF{
		numUsers: d.NumUsers(),
		numItems: d.NumItems(),
		factors:  f,
		mu:       globalMean(d),
		bu:       make([]float64, d.NumUsers()),
		bi:       make([]float64, d.NumItems()),
		p:        make([]float64, d.NumUsers()*f),
		q:        make([]float64, d.NumItems()*f),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	initFactors(rng, m.p, opts.InitScale)
	initFactors(rng, m.q, opts.InitScale)

	ratings := d.Ratings()
	order := newOrder(len(ratings))
	lr := opts.LearnRate
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sse := 0.0
		for _, k := range order {
			r := ratings[k]
			pu := m.p[r.User*f : (r.User+1)*f]
			qi := m.q[r.Item*f : (r.Item+1)*f]
			pred := m.mu + m.bu[r.User] + m.bi[r.Item] + dot(pu, qi)
			e := r.Score - pred
			sse += e * e
			m.bu[r.User] += lr * (e - opts.Reg*m.bu[r.User])
			m.bi[r.Item] += lr * (e - opts.Reg*m.bi[r.Item])
			for j := 0; j < f; j++ {
				puj, qij := pu[j], qi[j]
				pu[j] += lr * (e*qij - opts.Reg*puj)
				qi[j] += lr * (e*puj - opts.Reg*qij)
			}
		}
		m.trace = append(m.trace, math.Sqrt(sse/float64(len(ratings))))
		lr *= opts.LearnRateDecay
	}
	return m, nil
}

// Factors returns the latent dimensionality.
func (m *BiasedMF) Factors() int { return m.factors }

// GlobalMean returns μ, the mean training rating.
func (m *BiasedMF) GlobalMean() float64 { return m.mu }

// Trace returns the training RMSE measured online during each epoch.
func (m *BiasedMF) Trace() []float64 {
	out := make([]float64, len(m.trace))
	copy(out, m.trace)
	return out
}

// Score predicts r̂_ui.
func (m *BiasedMF) Score(u, i int) float64 {
	f := m.factors
	return m.mu + m.bu[u] + m.bi[i] + dot(m.p[u*f:(u+1)*f], m.q[i*f:(i+1)*f])
}

// ScoreAll fills out[i] = r̂_ui for every item; out is reused when it has
// the right length.
func (m *BiasedMF) ScoreAll(u int, out []float64) []float64 {
	if len(out) != m.numItems {
		out = make([]float64, m.numItems)
	}
	f := m.factors
	pu := m.p[u*f : (u+1)*f]
	base := m.mu + m.bu[u]
	for i := 0; i < m.numItems; i++ {
		out[i] = base + m.bi[i] + dot(pu, m.q[i*f:(i+1)*f])
	}
	return out
}

// BiasedMFParams is the full trained state of a BiasedMF, exposed for
// persistence (see internal/persist). Slices alias nothing: Params copies
// out and FromBiasedMFParams copies in.
type BiasedMFParams struct {
	NumUsers, NumItems, Factors int
	Mu                          float64
	BU, BI                      []float64 // user / item biases
	P, Q                        []float64 // row-major factors, stride = Factors
}

// Params snapshots the trained parameters.
func (m *BiasedMF) Params() BiasedMFParams {
	return BiasedMFParams{
		NumUsers: m.numUsers, NumItems: m.numItems, Factors: m.factors,
		Mu: m.mu,
		BU: append([]float64(nil), m.bu...),
		BI: append([]float64(nil), m.bi...),
		P:  append([]float64(nil), m.p...),
		Q:  append([]float64(nil), m.q...),
	}
}

// FromBiasedMFParams reconstructs a model from persisted parameters.
func FromBiasedMFParams(p BiasedMFParams) (*BiasedMF, error) {
	if p.NumUsers <= 0 || p.NumItems <= 0 || p.Factors <= 0 {
		return nil, fmt.Errorf("mf: params dimensions (%d users, %d items, %d factors) must be positive",
			p.NumUsers, p.NumItems, p.Factors)
	}
	if len(p.BU) != p.NumUsers || len(p.BI) != p.NumItems {
		return nil, fmt.Errorf("mf: params bias lengths (%d, %d) do not match universe (%d, %d)",
			len(p.BU), len(p.BI), p.NumUsers, p.NumItems)
	}
	if len(p.P) != p.NumUsers*p.Factors || len(p.Q) != p.NumItems*p.Factors {
		return nil, fmt.Errorf("mf: params factor lengths (%d, %d) do not match %d×%d / %d×%d",
			len(p.P), len(p.Q), p.NumUsers, p.Factors, p.NumItems, p.Factors)
	}
	return &BiasedMF{
		numUsers: p.NumUsers, numItems: p.NumItems, factors: p.Factors,
		mu: p.Mu,
		bu: append([]float64(nil), p.BU...),
		bi: append([]float64(nil), p.BI...),
		p:  append([]float64(nil), p.P...),
		q:  append([]float64(nil), p.Q...),
	}, nil
}

// RMSE measures root-mean-squared prediction error over a rating slice —
// the Netflix Prize metric, useful for held-out fit checks even though the
// paper's protocol is rank-based.
func RMSE(m Model, ratings []dataset.Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sse := 0.0
	for _, r := range ratings {
		e := r.Score - m.Score(r.User, r.Item)
		sse += e * e
	}
	return math.Sqrt(sse / float64(len(ratings)))
}

// MAE measures mean absolute prediction error over a rating slice.
func MAE(m Model, ratings []dataset.Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sae := 0.0
	for _, r := range ratings {
		sae += math.Abs(r.Score - m.Score(r.User, r.Item))
	}
	return sae / float64(len(ratings))
}

func globalMean(d *dataset.Dataset) float64 {
	total := 0.0
	for _, r := range d.Ratings() {
		total += r.Score
	}
	return total / float64(d.NumRatings())
}

func initFactors(rng *rand.Rand, v []float64, scale float64) {
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
}

func newOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func dot(a, b []float64) float64 {
	acc := 0.0
	for i, v := range a {
		acc += v * b[i]
	}
	return acc
}
