// Sharded-serving handler tests: the /v1/stats per-shard breakdown, the
// transparent routing of the ratings/recommend handlers, and the
// dense-admission cap surfacing in the 404 error text.

package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"longtailrec"
	"longtailrec/internal/graph"
)

// shardedSystem is testSystem's corpus behind a sharded, cached,
// auto-growing serving configuration.
func shardedSystem(t testing.TB, shards int) *longtail.System {
	t.Helper()
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4}, {User: 0, Item: 2, Score: 5},
		{User: 1, Item: 0, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 3, Score: 3},
		{User: 2, Item: 1, Score: 5}, {User: 2, Item: 3, Score: 4},
		{User: 3, Item: 4, Score: 5}, {User: 3, Item: 5, Score: 4}, {User: 3, Item: 6, Score: 5},
		{User: 4, Item: 4, Score: 4}, {User: 4, Item: 6, Score: 5}, {User: 4, Item: 7, Score: 3},
		{User: 5, Item: 5, Score: 5}, {User: 5, Item: 7, Score: 4},
		{User: 6, Item: 3, Score: 3}, {User: 6, Item: 4, Score: 3}, // bridge
	}
	d, err := longtail.NewDataset(8, 8, ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.ServingConfig(256, 0)
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.ShardCount = shards
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func shardedServer(t testing.TB, shards int) (*longtail.System, *httptest.Server) {
	t.Helper()
	sys := shardedSystem(t, shards)
	srv, err := New(sys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

// TestStatsShardsShape asserts the /v1/stats shards array at both ends
// of the deployment spectrum: length 1 when unsharded, length 4 with a
// per-shard epoch/cache/universe entry each when sharded.
func TestStatsShardsShape(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, ts := shardedServer(t, shards)
			var st StatsResponse
			getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
			if len(st.Shards) != shards {
				t.Fatalf("stats reported %d shards, want %d", len(st.Shards), shards)
			}
			var capTotal int
			for i, sh := range st.Shards {
				if sh.Shard != i {
					t.Fatalf("shard entry %d has id %d", i, sh.Shard)
				}
				if sh.Epoch != 0 || sh.PendingWrites != 0 {
					t.Fatalf("fresh shard %d reports epoch %d / pending %d", i, sh.Epoch, sh.PendingWrites)
				}
				if sh.LiveNumUsers != 8 || sh.LiveNumItems != 8 {
					t.Fatalf("shard %d universe = (%d, %d), want (8, 8)", i, sh.LiveNumUsers, sh.LiveNumItems)
				}
				if sh.Cache == nil {
					t.Fatalf("shard %d missing cache counters with caching enabled", i)
				}
				capTotal += sh.Cache.Capacity
			}
			if st.Cache == nil {
				t.Fatal("aggregate cache counters missing")
			}
			if capTotal != st.Cache.Capacity {
				t.Fatalf("per-shard capacities sum to %d, aggregate says %d", capTotal, st.Cache.Capacity)
			}
			if st.Epoch != 0 {
				t.Fatalf("fresh fleet epoch = %d", st.Epoch)
			}
		})
	}
}

// TestShardedWriteLeavesOtherShardsWarm drives the acceptance scenario
// end to end over HTTP: POST /v1/ratings on one shard, then verify via
// the response envelopes and /v1/stats that only that shard's epoch
// moved and the other shards' cached recommendations survived.
func TestShardedWriteLeavesOtherShardsWarm(t *testing.T) {
	sys, ts := shardedServer(t, 4)
	users := []int{0, 1, 2, 3, 4, 5, 6}

	// Warm every user's cache entry, then confirm the hits.
	for round := 0; round < 2; round++ {
		for _, u := range users {
			var rec RecommendResponse
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, u), http.StatusOK, &rec)
			if round == 1 && !rec.CacheHit {
				t.Fatalf("user %d not served from cache after warm round", u)
			}
		}
	}

	writer := 1
	writtenShard := sys.ShardFor(writer)
	resp, err := http.Post(ts.URL+"/v1/ratings", "application/json",
		bytes.NewBufferString(`{"user":1,"item":6,"score":4.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/ratings = %d, want 201", resp.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if len(st.Shards) != 4 {
		t.Fatalf("stats reported %d shards", len(st.Shards))
	}
	for i, sh := range st.Shards {
		want := uint64(0)
		if i == writtenShard {
			want = 1
		}
		if sh.Epoch != want {
			t.Fatalf("shard %d epoch = %d, want %d", i, sh.Epoch, want)
		}
	}
	if st.Epoch != 1 {
		t.Fatalf("fleet epoch = %d, want 1", st.Epoch)
	}

	// Other shards' entries stay live; the written shard recomputes.
	for _, u := range users {
		var rec RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, u), http.StatusOK, &rec)
		if sys.ShardFor(u) == writtenShard {
			if rec.CacheHit {
				t.Fatalf("user %d on the written shard served a stale cached result", u)
			}
		} else if !rec.CacheHit {
			t.Fatalf("user %d on an unwritten shard lost its cached entry", u)
		}
	}
}

// TestRatingsCapIn404Message pins the dense-admission cap surfacing in
// the live-write 404 body: the error text a client sees quotes
// graph.MaxDenseAdmissions itself, so documentation, error message and
// enforced limit cannot drift apart.
func TestRatingsCapIn404Message(t *testing.T) {
	_, ts := shardedServer(t, 2)
	numUsers := 8
	absurd := numUsers + graph.MaxDenseAdmissions // first rejected id
	body := fmt.Sprintf(`{"user":%d,"item":0,"score":3}`, absurd)
	resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absurd id write = %d, want 404 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), strconv.Itoa(graph.MaxDenseAdmissions)) {
		t.Fatalf("404 body %q does not quote the admission cap %d", raw, graph.MaxDenseAdmissions)
	}
}

// clusterSystem is shardedSystem without the bridge user: two fully
// disconnected rating clusters (users 0-2 over items 0-3, users 3-5 over
// items 4-7), so a write inside one cluster provably cannot touch the
// other cluster's subgraphs — the setup under which fingerprint
// revalidation keeps entries alive across epoch movement.
func clusterServer(t testing.TB, shards int) (*longtail.System, *httptest.Server) {
	t.Helper()
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4}, {User: 0, Item: 2, Score: 5},
		{User: 1, Item: 0, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 3, Score: 3},
		{User: 2, Item: 1, Score: 5}, {User: 2, Item: 3, Score: 4},
		{User: 3, Item: 4, Score: 5}, {User: 3, Item: 5, Score: 4}, {User: 3, Item: 6, Score: 5},
		{User: 4, Item: 4, Score: 4}, {User: 4, Item: 6, Score: 5}, {User: 4, Item: 7, Score: 3},
		{User: 5, Item: 5, Score: 5}, {User: 5, Item: 7, Score: 4},
	}
	d, err := longtail.NewDataset(6, 8, ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.ServingConfig(256, 0)
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.ShardCount = shards
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

// TestStatsFingerprintCounters drives the precision-invalidation counters
// end to end over HTTP at both deployment shapes: after a write in one
// cluster, the other cluster's warmed entry survives as a fingerprint-
// proven hit (fingerprint_hits), the writer's own entry is rejected
// (fingerprint_rejects), and both counters surface in the aggregate and
// the written shard's /v1/stats entries.
func TestStatsFingerprintCounters(t *testing.T) {
	for _, tc := range []struct {
		shards       int
		writer, item int // new in-cluster-B edge; writer shares a shard with user 0
	}{
		{shards: 1, writer: 3, item: 7},
		{shards: 4, writer: 4, item: 5},
	} {
		t.Run(fmt.Sprintf("shards=%d", tc.shards), func(t *testing.T) {
			sys, ts := clusterServer(t, tc.shards)
			if got := sys.ShardFor(tc.writer); got != sys.ShardFor(0) {
				t.Fatalf("writer %d on shard %d, reader 0 on shard %d: test needs them colocated",
					tc.writer, got, sys.ShardFor(0))
			}
			// Warm both users' entries, then the write.
			var rec RecommendResponse
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=0&k=3", ts.URL), http.StatusOK, &rec)
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, tc.writer), http.StatusOK, &rec)
			body := fmt.Sprintf(`{"user":%d,"item":%d,"score":4.5}`, tc.writer, tc.item)
			resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("POST /v1/ratings = %d, want 201", resp.StatusCode)
			}

			// Reader 0's entry survives the epoch bump: the write touched
			// only cluster-B nodes, outside user 0's subgraph bloom.
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=0&k=3", ts.URL), http.StatusOK, &rec)
			if !rec.CacheHit {
				t.Fatal("cross-cluster write evicted a provably untouched entry")
			}
			// The writer's own entry must NOT survive — its subgraph
			// contains the written nodes.
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, tc.writer), http.StatusOK, &rec)
			if rec.CacheHit {
				t.Fatal("writer's own stale entry served after its write")
			}

			var st StatsResponse
			getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
			if st.Cache == nil {
				t.Fatal("aggregate cache section missing")
			}
			if st.Cache.FingerprintHits != 1 {
				t.Fatalf("fingerprint_hits = %d, want 1 (stats %+v)", st.Cache.FingerprintHits, *st.Cache)
			}
			if st.Cache.FingerprintRejects != 1 {
				t.Fatalf("fingerprint_rejects = %d, want 1 (stats %+v)", st.Cache.FingerprintRejects, *st.Cache)
			}
			if st.Cache.JournalOverflows != 0 {
				t.Fatalf("journal_overflows = %d, want 0", st.Cache.JournalOverflows)
			}
			if len(st.Shards) != tc.shards {
				t.Fatalf("stats reported %d shards, want %d", len(st.Shards), tc.shards)
			}
			written := sys.ShardFor(tc.writer)
			for i, sh := range st.Shards {
				if sh.Cache == nil {
					t.Fatalf("shard %d missing cache counters", i)
				}
				wantHits, wantRejects := uint64(0), uint64(0)
				if i == written {
					wantHits, wantRejects = 1, 1
				}
				if sh.Cache.FingerprintHits != wantHits || sh.Cache.FingerprintRejects != wantRejects {
					t.Fatalf("shard %d fingerprint counters = (%d, %d), want (%d, %d)",
						i, sh.Cache.FingerprintHits, sh.Cache.FingerprintRejects, wantHits, wantRejects)
				}
			}

			// The JSON wire names themselves: decode the raw body and check
			// the cache section spells the documented keys.
			raw := struct {
				Cache map[string]any `json:"cache"`
			}{}
			getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &raw)
			for _, k := range []string{"fingerprint_hits", "fingerprint_rejects", "journal_overflows"} {
				if _, ok := raw.Cache[k]; !ok {
					t.Fatalf("stats cache section missing %q: %v", k, raw.Cache)
				}
			}
		})
	}
}
