// Sharded-serving handler tests: the /v1/stats per-shard breakdown, the
// transparent routing of the ratings/recommend handlers, and the
// dense-admission cap surfacing in the 404 error text.

package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"longtailrec"
	"longtailrec/internal/graph"
)

// shardedSystem is testSystem's corpus behind a sharded, cached,
// auto-growing serving configuration.
func shardedSystem(t testing.TB, shards int) *longtail.System {
	t.Helper()
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4}, {User: 0, Item: 2, Score: 5},
		{User: 1, Item: 0, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 3, Score: 3},
		{User: 2, Item: 1, Score: 5}, {User: 2, Item: 3, Score: 4},
		{User: 3, Item: 4, Score: 5}, {User: 3, Item: 5, Score: 4}, {User: 3, Item: 6, Score: 5},
		{User: 4, Item: 4, Score: 4}, {User: 4, Item: 6, Score: 5}, {User: 4, Item: 7, Score: 3},
		{User: 5, Item: 5, Score: 5}, {User: 5, Item: 7, Score: 4},
		{User: 6, Item: 3, Score: 3}, {User: 6, Item: 4, Score: 3}, // bridge
	}
	d, err := longtail.NewDataset(8, 8, ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.ServingConfig(256, 0)
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.ShardCount = shards
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func shardedServer(t testing.TB, shards int) (*longtail.System, *httptest.Server) {
	t.Helper()
	sys := shardedSystem(t, shards)
	srv, err := New(sys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

// TestStatsShardsShape asserts the /v1/stats shards array at both ends
// of the deployment spectrum: length 1 when unsharded, length 4 with a
// per-shard epoch/cache/universe entry each when sharded.
func TestStatsShardsShape(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, ts := shardedServer(t, shards)
			var st StatsResponse
			getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
			if len(st.Shards) != shards {
				t.Fatalf("stats reported %d shards, want %d", len(st.Shards), shards)
			}
			var capTotal int
			for i, sh := range st.Shards {
				if sh.Shard != i {
					t.Fatalf("shard entry %d has id %d", i, sh.Shard)
				}
				if sh.Epoch != 0 || sh.PendingWrites != 0 {
					t.Fatalf("fresh shard %d reports epoch %d / pending %d", i, sh.Epoch, sh.PendingWrites)
				}
				if sh.LiveNumUsers != 8 || sh.LiveNumItems != 8 {
					t.Fatalf("shard %d universe = (%d, %d), want (8, 8)", i, sh.LiveNumUsers, sh.LiveNumItems)
				}
				if sh.Cache == nil {
					t.Fatalf("shard %d missing cache counters with caching enabled", i)
				}
				capTotal += sh.Cache.Capacity
			}
			if st.Cache == nil {
				t.Fatal("aggregate cache counters missing")
			}
			if capTotal != st.Cache.Capacity {
				t.Fatalf("per-shard capacities sum to %d, aggregate says %d", capTotal, st.Cache.Capacity)
			}
			if st.Epoch != 0 {
				t.Fatalf("fresh fleet epoch = %d", st.Epoch)
			}
		})
	}
}

// TestShardedWriteLeavesOtherShardsWarm drives the acceptance scenario
// end to end over HTTP: POST /v1/ratings on one shard, then verify via
// the response envelopes and /v1/stats that only that shard's epoch
// moved and the other shards' cached recommendations survived.
func TestShardedWriteLeavesOtherShardsWarm(t *testing.T) {
	sys, ts := shardedServer(t, 4)
	users := []int{0, 1, 2, 3, 4, 5, 6}

	// Warm every user's cache entry, then confirm the hits.
	for round := 0; round < 2; round++ {
		for _, u := range users {
			var rec RecommendResponse
			getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, u), http.StatusOK, &rec)
			if round == 1 && !rec.CacheHit {
				t.Fatalf("user %d not served from cache after warm round", u)
			}
		}
	}

	writer := 1
	writtenShard := sys.ShardFor(writer)
	resp, err := http.Post(ts.URL+"/v1/ratings", "application/json",
		bytes.NewBufferString(`{"user":1,"item":6,"score":4.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/ratings = %d, want 201", resp.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if len(st.Shards) != 4 {
		t.Fatalf("stats reported %d shards", len(st.Shards))
	}
	for i, sh := range st.Shards {
		want := uint64(0)
		if i == writtenShard {
			want = 1
		}
		if sh.Epoch != want {
			t.Fatalf("shard %d epoch = %d, want %d", i, sh.Epoch, want)
		}
	}
	if st.Epoch != 1 {
		t.Fatalf("fleet epoch = %d, want 1", st.Epoch)
	}

	// Other shards' entries stay live; the written shard recomputes.
	for _, u := range users {
		var rec RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=3", ts.URL, u), http.StatusOK, &rec)
		if sys.ShardFor(u) == writtenShard {
			if rec.CacheHit {
				t.Fatalf("user %d on the written shard served a stale cached result", u)
			}
		} else if !rec.CacheHit {
			t.Fatalf("user %d on an unwritten shard lost its cached entry", u)
		}
	}
}

// TestRatingsCapIn404Message pins the dense-admission cap surfacing in
// the live-write 404 body: the error text a client sees quotes
// graph.MaxDenseAdmissions itself, so documentation, error message and
// enforced limit cannot drift apart.
func TestRatingsCapIn404Message(t *testing.T) {
	_, ts := shardedServer(t, 2)
	numUsers := 8
	absurd := numUsers + graph.MaxDenseAdmissions // first rejected id
	body := fmt.Sprintf(`{"user":%d,"item":0,"score":3}`, absurd)
	resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absurd id write = %d, want 404 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), strconv.Itoa(graph.MaxDenseAdmissions)) {
		t.Fatalf("404 body %q does not quote the admission cap %d", raw, graph.MaxDenseAdmissions)
	}
}
