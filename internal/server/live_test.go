// Tests for the live serving layer: POST /v1/ratings and the epoch/cache
// counters on /v1/stats.

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"longtailrec"
	"longtailrec/internal/core"
)

// cachedTestServer builds a server over a System with the result cache on.
func cachedTestServer(t testing.TB) (*longtail.System, *httptest.Server) {
	t.Helper()
	sys := testSystem(t)
	ratings := sys.Data().Ratings()
	d, err := longtail.NewDataset(sys.Data().NumUsers(), sys.Data().NumItems(), ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.CacheSize = 64
	cachedSys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cachedSys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return cachedSys, ts
}

func postJSON(t testing.TB, url string, body any, wantStatus int, into any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, data)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, data)
		}
	}
}

func TestRatingsEndpoint(t *testing.T) {
	sys, ts := cachedTestServer(t)

	// New edge: 201, epoch 1, added.
	var rr RatingResponse
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 7, Item: 0, Score: 5}, http.StatusCreated, &rr)
	if !rr.Added || rr.Epoch != 1 {
		t.Fatalf("insert response %+v", rr)
	}
	// Re-rate: 200, epoch 2, not added.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 7, Item: 0, Score: 3}, http.StatusOK, &rr)
	if rr.Added || rr.Epoch != 2 {
		t.Fatalf("re-rate response %+v", rr)
	}
	if got := sys.Epoch(); got != 2 {
		t.Fatalf("system epoch %d, want 2", got)
	}

	// The previously cold user 7 is now servable via the live graph.
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=7&k=3", http.StatusOK, &rec)
	if len(rec.Items) == 0 {
		t.Fatal("no recommendations for freshly rated user")
	}
	for _, it := range rec.Items {
		if it.Item == 0 {
			t.Fatalf("rated item 0 recommended: %+v", rec.Items)
		}
	}
}

func TestRatingsEndpointErrors(t *testing.T) {
	_, ts := cachedTestServer(t)
	post := func(body string, wantStatus int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %q = %d, want %d", body, resp.StatusCode, wantStatus)
		}
	}
	post(`{not json`, http.StatusBadRequest)
	post(`{"user":0,"item":0,"score":5,"bogus":1}`, http.StatusBadRequest)
	post(`{"user":0,"item":0,"score":-1}`, http.StatusBadRequest)
	post(`{"user":999,"item":0,"score":4}`, http.StatusNotFound)
	post(`{"user":0,"item":999,"score":4}`, http.StatusNotFound)
	// GET on the POST-only route is a 405.
	resp, err := http.Get(ts.URL + "/v1/ratings")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ratings = %d, want 405", resp.StatusCode)
	}
}

// growTestServer builds a server over a System with the universe open
// (AutoGrow) and the result cache on.
func growTestServer(t testing.TB) (*longtail.System, *httptest.Server) {
	t.Helper()
	base := testSystem(t)
	d, err := longtail.NewDataset(base.Data().NumUsers(), base.Data().NumItems(), base.Data().Ratings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.ServingConfig(64, 16)
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

// TestOpenUniverseIngest is the end-to-end cold-start flow: a rating from
// an unseen user for an unseen item is a 201 (not a 4xx), bumps the
// epoch, grows the live universe, and — once the newcomer links the new
// item into an existing taste cluster — a recommendation for an existing
// user can surface the brand-new item.
func TestOpenUniverseIngest(t *testing.T) {
	sys, ts := growTestServer(t)

	// Unseen user 8 AND unseen item 8 (universe is 8×8): admitted, 201.
	var rr RatingResponse
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 8, Item: 8, Score: 5}, http.StatusCreated, &rr)
	if !rr.Added {
		t.Fatalf("auto-grow insert response %+v", rr)
	}
	// 1 new user + 1 new item + 1 edge = 3 accepted writes.
	if rr.Epoch != 3 || sys.Epoch() != 3 {
		t.Fatalf("epoch %d (response %d), want 3", sys.Epoch(), rr.Epoch)
	}
	if nu, ni := sys.Universe(); nu != 9 || ni != 9 {
		t.Fatalf("live universe %d/%d, want 9/9", nu, ni)
	}

	// The newcomer also rates item 0, linking item 8 into the cluster of
	// users 0 and 1.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 8, Item: 0, Score: 4}, http.StatusCreated, &rr)

	// An existing user's walk can now reach — and surface — the new item.
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=8", http.StatusOK, &rec)
	if rec.Fallback {
		t.Fatalf("established user served the fallback: %+v", rec)
	}
	found := false
	for _, it := range rec.Items {
		if it.Item == 8 {
			found = true
			if !it.LongTail {
				t.Fatalf("brand-new item not marked long-tail: %+v", it)
			}
			if it.Popularity != 1 {
				t.Fatalf("brand-new item popularity %d, want 1", it.Popularity)
			}
		}
	}
	if !found {
		t.Fatalf("live-admitted item 8 absent from user 0's recommendations: %+v", rec.Items)
	}

	// The newcomer itself is immediately servable by the live walk.
	getJSON(t, ts.URL+"/v1/recommend?user=8&k=3", http.StatusOK, &rec)
	if rec.Fallback || len(rec.Items) == 0 {
		t.Fatalf("grown user not served personalized recs: %+v", rec)
	}
	for _, it := range rec.Items {
		if it.Item == 8 || it.Item == 0 {
			t.Fatalf("rated item recommended back to grown user: %+v", rec.Items)
		}
	}

	// A brand-new user with NO history gets the popularity fallback, not
	// an error.
	sys.Graph().AddUser() // user 9 exists, zero edges
	getJSON(t, ts.URL+"/v1/recommend?user=9&k=3", http.StatusOK, &rec)
	if !rec.Fallback || len(rec.Items) == 0 {
		t.Fatalf("history-less user not served the fallback: %+v", rec)
	}

	// /v1/stats reports both the corpus snapshot and the live universe.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.NumUsers != 8 || st.NumItems != 8 {
		t.Fatalf("corpus counts moved: %+v", st)
	}
	if st.LiveNumUsers != 10 || st.LiveNumItems != 9 {
		t.Fatalf("live universe %d/%d, want 10/9", st.LiveNumUsers, st.LiveNumItems)
	}

	// Batch recommend accepts grown user ids.
	var br RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,8&k=3", http.StatusOK, &br)
	if len(br.Results) != 2 || len(br.Results[1].Items) == 0 {
		t.Fatalf("batch with grown user: %+v", br)
	}
}

// TestRatingsErrorTable is the table-driven cut over the write and read
// error paths: client mistakes must map to 4xx (404 for unknown ids, 400
// for malformed input), never 500 — with auto-grow deciding whether an
// unseen id is admitted or unknown.
func TestRatingsErrorTable(t *testing.T) {
	post := func(ts *httptest.Server) func(body string, wantStatus int) {
		return func(body string, wantStatus int) {
			t.Helper()
			resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != wantStatus {
				t.Fatalf("POST %q = %d, want %d", body, resp.StatusCode, wantStatus)
			}
		}
	}

	t.Run("closed universe", func(t *testing.T) {
		_, ts := cachedTestServer(t) // AutoGrow off
		p := post(ts)
		p(`{not json`, http.StatusBadRequest)
		p(`{"user":0,"item":0,"score":5,"bogus":1}`, http.StatusBadRequest)
		p(`{"user":0,"item":0,"score":0}`, http.StatusBadRequest)
		p(`{"user":8,"item":0,"score":4}`, http.StatusNotFound)  // unseen user rejected
		p(`{"user":0,"item":8,"score":4}`, http.StatusNotFound)  // unseen item rejected
		p(`{"user":-1,"item":0,"score":4}`, http.StatusNotFound) // negative
	})

	t.Run("open universe", func(t *testing.T) {
		_, ts := growTestServer(t) // AutoGrow on
		p := post(ts)
		p(`{not json`, http.StatusBadRequest)
		p(`{"user":0,"item":0,"score":5,"bogus":1}`, http.StatusBadRequest)
		p(`{"user":0,"item":0,"score":-2}`, http.StatusBadRequest)
		p(`{"user":-1,"item":0,"score":4}`, http.StatusNotFound)      // negative still 404
		p(`{"user":0,"item":-7,"score":4}`, http.StatusNotFound)      // negative still 404
		p(`{"user":9000000,"item":0,"score":4}`, http.StatusNotFound) // absurd jump still 404
		p(`{"user":0,"item":9000000,"score":4}`, http.StatusNotFound) // absurd jump still 404
		p(`{"user":10,"item":10,"score":4}`, http.StatusCreated)      // unseen: admitted
		p(`{"user":10,"item":10,"score":2}`, http.StatusOK)           // re-rate the grown edge
	})

	t.Run("recommend paths", func(t *testing.T) {
		_, ts := growTestServer(t)
		get := func(query string, wantStatus int) {
			t.Helper()
			resp, err := http.Get(ts.URL + "/v1/recommend" + query)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != wantStatus {
				t.Fatalf("GET %q = %d, want %d", query, resp.StatusCode, wantStatus)
			}
		}
		get("?user=-1", http.StatusNotFound)            // negative
		get("?user=99", http.StatusNotFound)            // beyond live universe
		get("?user=0&algo=Nope", http.StatusBadRequest) // unknown algorithm
		get("?user=7", http.StatusOK)                   // cold user: fallback, not 404/500
		// A snapshot baseline asked about a grown user also degrades to the
		// fallback (the model predates the user) rather than erroring.
		var rr RatingResponse
		postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 8, Item: 0, Score: 4}, http.StatusCreated, &rr)
		var rec RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=8&algo=MostPopular&k=3", http.StatusOK, &rec)
		if !rec.Fallback {
			t.Fatalf("snapshot baseline for grown user not degraded: %+v", rec)
		}
	})
}

// TestErrStatusMapping pins the error -> HTTP status table directly.
func TestErrStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", core.ErrColdUser), http.StatusNotFound},
		{errors.New("longtail: unknown algorithm \"X\""), http.StatusBadRequest},
		{errors.New("graph: edge weight -1 must be positive and finite"), http.StatusBadRequest},
		{errors.New("graph: rating (user 1, item 2) already exists"), http.StatusConflict},
		{errors.New("graph: rating (user 1, item 2) does not exist"), http.StatusNotFound},
		{errors.New("graph: user 99 out of range [0,8)"), http.StatusNotFound},
		{errors.New("graph: user 9000000 out of range [0,8) (auto-grow admits at most 1024 new ids past 8)"), http.StatusNotFound},
		{errors.New("something unexpected"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := errStatus(c.err); got != c.want {
			t.Errorf("errStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestStatsCacheCounters drives repeat and post-write queries and checks
// the /v1/stats serving section tracks them.
func TestStatsCacheCounters(t *testing.T) {
	_, ts := cachedTestServer(t)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache == nil {
		t.Fatal("cache section missing with caching enabled")
	}
	if st.Epoch != 0 || st.Cache.Hits+st.Cache.Misses != 0 {
		t.Fatalf("fresh stats %+v / %+v", st, *st.Cache)
	}

	var cold, warm RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &cold)
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &warm)
	if !reflect.DeepEqual(cold.Items, warm.Items) {
		t.Fatalf("cached response diverged:\n%+v\n%+v", cold.Items, warm.Items)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 || st.Cache.Size != 1 {
		t.Fatalf("after repeat query: %+v", *st.Cache)
	}
	if st.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.Cache.HitRate)
	}

	// A write bumps the epoch; the next identical query is a miss.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 6, Item: 0, Score: 4}, http.StatusCreated, nil)
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &warm)
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", st.Epoch)
	}
	if st.Cache.Misses != 2 {
		t.Fatalf("post-write query served stale: %+v", *st.Cache)
	}
	if st.PendingWrites != 1 {
		t.Fatalf("pending writes %d, want 1", st.PendingWrites)
	}
}

// TestStatsCacheDisabled: without a cache the section is omitted but the
// epoch still reports.
func TestStatsCacheDisabled(t *testing.T) {
	_, ts := testServer(t) // DefaultConfig: CacheSize 0
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache != nil {
		t.Fatalf("cache section present with caching disabled: %+v", *st.Cache)
	}
}
