// Tests for the live serving layer: POST /v1/ratings and the epoch/cache
// counters on /v1/stats.

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"longtailrec"
)

// cachedTestServer builds a server over a System with the result cache on.
func cachedTestServer(t testing.TB) (*longtail.System, *httptest.Server) {
	t.Helper()
	sys := testSystem(t)
	ratings := sys.Data().Ratings()
	d, err := longtail.NewDataset(sys.Data().NumUsers(), sys.Data().NumItems(), ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.CacheSize = 64
	cachedSys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cachedSys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return cachedSys, ts
}

func postJSON(t testing.TB, url string, body any, wantStatus int, into any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, data)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, data)
		}
	}
}

func TestRatingsEndpoint(t *testing.T) {
	sys, ts := cachedTestServer(t)

	// New edge: 201, epoch 1, added.
	var rr RatingResponse
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 7, Item: 0, Score: 5}, http.StatusCreated, &rr)
	if !rr.Added || rr.Epoch != 1 {
		t.Fatalf("insert response %+v", rr)
	}
	// Re-rate: 200, epoch 2, not added.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 7, Item: 0, Score: 3}, http.StatusOK, &rr)
	if rr.Added || rr.Epoch != 2 {
		t.Fatalf("re-rate response %+v", rr)
	}
	if got := sys.Epoch(); got != 2 {
		t.Fatalf("system epoch %d, want 2", got)
	}

	// The previously cold user 7 is now servable via the live graph.
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=7&k=3", http.StatusOK, &rec)
	if len(rec.Items) == 0 {
		t.Fatal("no recommendations for freshly rated user")
	}
	for _, it := range rec.Items {
		if it.Item == 0 {
			t.Fatalf("rated item 0 recommended: %+v", rec.Items)
		}
	}
}

func TestRatingsEndpointErrors(t *testing.T) {
	_, ts := cachedTestServer(t)
	post := func(body string, wantStatus int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %q = %d, want %d", body, resp.StatusCode, wantStatus)
		}
	}
	post(`{not json`, http.StatusBadRequest)
	post(`{"user":0,"item":0,"score":5,"bogus":1}`, http.StatusBadRequest)
	post(`{"user":0,"item":0,"score":-1}`, http.StatusBadRequest)
	post(`{"user":999,"item":0,"score":4}`, http.StatusNotFound)
	post(`{"user":0,"item":999,"score":4}`, http.StatusNotFound)
	// GET on the POST-only route is a 405.
	resp, err := http.Get(ts.URL + "/v1/ratings")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ratings = %d, want 405", resp.StatusCode)
	}
}

// TestStatsCacheCounters drives repeat and post-write queries and checks
// the /v1/stats serving section tracks them.
func TestStatsCacheCounters(t *testing.T) {
	_, ts := cachedTestServer(t)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache == nil {
		t.Fatal("cache section missing with caching enabled")
	}
	if st.Epoch != 0 || st.Cache.Hits+st.Cache.Misses != 0 {
		t.Fatalf("fresh stats %+v / %+v", st, *st.Cache)
	}

	var cold, warm RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &cold)
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &warm)
	if !reflect.DeepEqual(cold.Items, warm.Items) {
		t.Fatalf("cached response diverged:\n%+v\n%+v", cold.Items, warm.Items)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 || st.Cache.Size != 1 {
		t.Fatalf("after repeat query: %+v", *st.Cache)
	}
	if st.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.Cache.HitRate)
	}

	// A write bumps the epoch; the next identical query is a miss.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 6, Item: 0, Score: 4}, http.StatusCreated, nil)
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &warm)
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", st.Epoch)
	}
	if st.Cache.Misses != 2 {
		t.Fatalf("post-write query served stale: %+v", *st.Cache)
	}
	if st.PendingWrites != 1 {
		t.Fatalf("pending writes %d, want 1", st.PendingWrites)
	}
}

// TestStatsCacheDisabled: without a cache the section is omitted but the
// epoch still reports.
func TestStatsCacheDisabled(t *testing.T) {
	_, ts := testServer(t) // DefaultConfig: CacheSize 0
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Cache != nil {
		t.Fatalf("cache section present with caching disabled: %+v", *st.Cache)
	}
}
