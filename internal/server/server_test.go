package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"longtailrec"
	"longtailrec/internal/core"
)

// testSystem builds a small but connected corpus: two taste blocks plus a
// bridge user, and user 7 left cold (no ratings).
func testSystem(t testing.TB) *longtail.System {
	t.Helper()
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4}, {User: 0, Item: 2, Score: 5},
		{User: 1, Item: 0, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 3, Score: 3},
		{User: 2, Item: 1, Score: 5}, {User: 2, Item: 3, Score: 4},
		{User: 3, Item: 4, Score: 5}, {User: 3, Item: 5, Score: 4}, {User: 3, Item: 6, Score: 5},
		{User: 4, Item: 4, Score: 4}, {User: 4, Item: 6, Score: 5}, {User: 4, Item: 7, Score: 3},
		{User: 5, Item: 5, Score: 5}, {User: 5, Item: 7, Score: 4},
		{User: 6, Item: 3, Score: 3}, {User: 6, Item: 4, Score: 3}, // bridge
	}
	d, err := longtail.NewDataset(8, 8, ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testSystem(t), Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t testing.TB, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, body)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestHealth(t *testing.T) {
	_, ts := testServer(t)
	var h HealthResponse
	getJSON(t, ts.URL+"/v1/health", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("health %+v", h)
	}
}

func TestStats(t *testing.T) {
	_, ts := testServer(t)
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.NumUsers != 8 || st.NumItems != 8 || st.NumRatings != 18 {
		t.Fatalf("stats %+v", st)
	}
	if st.Density <= 0 || st.MeanScore <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAlgorithms(t *testing.T) {
	_, ts := testServer(t)
	var a AlgorithmsResponse
	getJSON(t, ts.URL+"/v1/algorithms", http.StatusOK, &a)
	if a.Default != "AT" {
		t.Fatalf("default %q", a.Default)
	}
	found := false
	for _, name := range a.Algorithms {
		if name == "AC2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("AC2 missing from %v", a.Algorithms)
	}
}

func TestRecommend(t *testing.T) {
	_, ts := testServer(t)
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=3", http.StatusOK, &rec)
	if rec.Algorithm != "AT" {
		t.Fatalf("algorithm %q, want default AT", rec.Algorithm)
	}
	if len(rec.Items) == 0 || len(rec.Items) > 3 {
		t.Fatalf("items %+v", rec.Items)
	}
	rated := map[int]bool{0: true, 1: true, 2: true}
	for _, it := range rec.Items {
		if rated[it.Item] {
			t.Fatalf("recommended already-rated item %d", it.Item)
		}
		if it.Popularity <= 0 {
			t.Fatalf("item %d popularity %d", it.Item, it.Popularity)
		}
	}
}

func TestRecommendExplicitAlgo(t *testing.T) {
	_, ts := testServer(t)
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=1&algo=HT&k=2", http.StatusOK, &rec)
	if rec.Algorithm != "HT" {
		t.Fatalf("algorithm %q", rec.Algorithm)
	}
}

func TestRecommendErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		query string
		want  int
	}{
		{"", http.StatusBadRequest},                  // missing user
		{"?user=abc", http.StatusBadRequest},         // non-integer
		{"?user=0&k=0", http.StatusBadRequest},       // k too small
		{"?user=0&k=101", http.StatusBadRequest},     // k over MaxK
		{"?user=0&k=zz", http.StatusBadRequest},      // bad k
		{"?user=0&algo=Nope", http.StatusBadRequest}, // unknown algorithm
		{"?user=99", http.StatusNotFound},            // out of range
		{"?user=-3", http.StatusNotFound},            // negative user
	}
	for _, c := range cases {
		var e map[string]string
		getJSON(t, ts.URL+"/v1/recommend"+c.query, c.want, &e)
		if e["error"] == "" {
			t.Fatalf("%s: no error message", c.query)
		}
	}
}

// TestRecommendColdUserFallback: a user inside the universe but with no
// rating history is served the deterministic live-popularity list (marked
// as a fallback) instead of a cold-user error.
func TestRecommendColdUserFallback(t *testing.T) {
	_, ts := testServer(t) // user 7 has no ratings
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=7&k=3", http.StatusOK, &rec)
	if !rec.Fallback {
		t.Fatalf("cold user response not marked fallback: %+v", rec)
	}
	if len(rec.Items) != 3 {
		t.Fatalf("fallback returned %d items, want 3", len(rec.Items))
	}
	for i := 1; i < len(rec.Items); i++ {
		prev, cur := rec.Items[i-1], rec.Items[i]
		if cur.Popularity > prev.Popularity ||
			(cur.Popularity == prev.Popularity && cur.Item < prev.Item) {
			t.Fatalf("fallback not in deterministic popularity order: %+v", rec.Items)
		}
	}
	// Determinism: repeat query, identical body.
	var again RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=7&k=3", http.StatusOK, &again)
	if !reflect.DeepEqual(rec, again) {
		t.Fatalf("fallback not deterministic:\n%+v\n%+v", rec, again)
	}
}

func TestExplain(t *testing.T) {
	_, ts := testServer(t)
	// Find something AT recommends to user 0, then explain it.
	var rec RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=1", http.StatusOK, &rec)
	if len(rec.Items) == 0 {
		t.Fatal("no recommendation to explain")
	}
	var ex ExplainResponse
	url := fmt.Sprintf("%s/v1/explain?user=0&item=%d", ts.URL, rec.Items[0].Item)
	getJSON(t, url, http.StatusOK, &ex)
	if len(ex.Anchors) == 0 {
		t.Fatal("no anchors")
	}
	total := 0.0
	for _, a := range ex.Anchors {
		if a.Probability <= 0 || a.Probability > 1 {
			t.Fatalf("anchor %+v", a)
		}
		total += a.Probability
	}
	if total > 1.0001 {
		t.Fatalf("anchor probabilities sum to %v", total)
	}
}

func TestExplainErrors(t *testing.T) {
	_, ts := testServer(t)
	var e map[string]string
	getJSON(t, ts.URL+"/v1/explain?user=0", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/explain?item=4", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/explain?user=0&item=400", http.StatusNotFound, &e)
}

func TestUserProfile(t *testing.T) {
	_, ts := testServer(t)
	var u UserResponse
	getJSON(t, ts.URL+"/v1/users/0", http.StatusOK, &u)
	if u.Degree != 3 || len(u.Ratings) != 3 {
		t.Fatalf("user profile %+v", u)
	}
	var e map[string]string
	getJSON(t, ts.URL+"/v1/users/99", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/users/zz", http.StatusBadRequest, &e)
}

func TestItemProfile(t *testing.T) {
	_, ts := testServer(t)
	var it ItemResponse
	getJSON(t, ts.URL+"/v1/items/0", http.StatusOK, &it)
	if it.Popularity != 2 {
		t.Fatalf("item 0 popularity %d, want 2", it.Popularity)
	}
	if it.MeanScore != 4.5 {
		t.Fatalf("item 0 mean score %v, want 4.5", it.MeanScore)
	}
	var e map[string]string
	getJSON(t, ts.URL+"/v1/items/99", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/items/xx", http.StatusBadRequest, &e)
}

func TestSimilarItems(t *testing.T) {
	_, ts := testServer(t)
	var sim SimilarResponse
	getJSON(t, ts.URL+"/v1/items/0/similar?k=5", http.StatusOK, &sim)
	if sim.Item != 0 {
		t.Fatalf("echoed item %d", sim.Item)
	}
	if len(sim.Similar) == 0 {
		t.Fatal("no neighbors for a co-rated item")
	}
	for i, e := range sim.Similar {
		if e.Item == 0 {
			t.Fatal("item is its own neighbor")
		}
		if e.Similarity <= 0 || e.Similarity > 1+1e-12 {
			t.Fatalf("similarity %v", e.Similarity)
		}
		if i > 0 && e.Similarity > sim.Similar[i-1].Similarity {
			t.Fatal("neighbors not sorted by similarity")
		}
	}
	// Items 0 and 2 share two raters (users 0, 1); item 0's top neighbors
	// must include item 2.
	found := false
	for _, e := range sim.Similar {
		if e.Item == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("co-rated item 2 missing from %+v", sim.Similar)
	}
}

func TestSimilarItemsErrors(t *testing.T) {
	_, ts := testServer(t)
	var e map[string]string
	getJSON(t, ts.URL+"/v1/items/99/similar", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/items/zz/similar", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/items/0/similar?k=0", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/items/0/similar?k=9999", http.StatusBadRequest, &e)
}

func TestLongTailFlagConsistent(t *testing.T) {
	srv, ts := testServer(t)
	for i := 0; i < 8; i++ {
		var it ItemResponse
		getJSON(t, fmt.Sprintf("%s/v1/items/%d", ts.URL, i), http.StatusOK, &it)
		_, want := srv.tail[i]
		if it.LongTail != want {
			t.Fatalf("item %d long_tail=%v, precomputed %v", i, it.LongTail, want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// Generate traffic: two successes on the same logical route, one error.
	var u UserResponse
	getJSON(t, ts.URL+"/v1/users/0", http.StatusOK, &u)
	getJSON(t, ts.URL+"/v1/users/1", http.StatusOK, &u)
	var e map[string]string
	getJSON(t, ts.URL+"/v1/users/99", http.StatusNotFound, &e)

	var m MetricsResponse
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if m.UptimeSeconds < 0 {
		t.Fatalf("uptime %v", m.UptimeSeconds)
	}
	users, ok := m.Endpoints["GET /v1/users/{id}"]
	if !ok {
		t.Fatalf("user route not aggregated: %+v", m.Endpoints)
	}
	if users.Requests != 3 || users.Errors != 1 {
		t.Fatalf("user route stats %+v", users)
	}
	if users.MeanLatencyMS < 0 {
		t.Fatalf("latency %v", users.MeanLatencyMS)
	}
}

func TestNormalizePath(t *testing.T) {
	for in, want := range map[string]string{
		"/v1/users/123":         "/v1/users/{id}",
		"/v1/items/5/similar":   "/v1/items/{id}/similar",
		"/v1/stats":             "/v1/stats",
		"/v1/recommend":         "/v1/recommend",
		"/v1/items/abc/similar": "/v1/items/abc/similar",
	} {
		if got := normalizePath(in); got != want {
			t.Fatalf("normalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUnknownRouteIs404(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/recommend?user=0", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// panicSource explodes on Algorithm, to exercise the recovery middleware.
type panicSource struct{ Source }

func (panicSource) Recommend(context.Context, string, core.Request) (core.Response, error) {
	panic("kaboom")
}

func TestPanicRecovery(t *testing.T) {
	sys := testSystem(t)
	srv, err := New(panicSource{sys}, Options{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var e map[string]string
	getJSON(t, ts.URL+"/v1/recommend?user=0", http.StatusInternalServerError, &e)
	if !strings.Contains(e["error"], "internal error") {
		t.Fatalf("error %q", e["error"])
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/recommend?user=%d&k=3&algo=HT", ts.URL, i%7)
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("user %d: status %d", i%7, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, err := New(testSystem(t), Options{
		Addr:   "127.0.0.1:0",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	// Shutdown before any request; ListenAndServe must return nil.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ListenAndServe after shutdown: %v", err)
	}
}

// Interface conformance: *longtail.System must satisfy Source.
var _ Source = (*longtail.System)(nil)

// TestRecommendOptionParams is the table-driven sweep over the
// per-request option parameters of GET /v1/recommend: the happy paths
// shape the result, the malformed ones are client errors (400), and the
// response carries the full envelope (epoch, cache_hit).
func TestRecommendOptionParams(t *testing.T) {
	_, ts := testServer(t)

	// Establish the unfiltered ranking for user 0 (rated 0,1,2).
	var base RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=8&algo=AT", http.StatusOK, &base)
	if len(base.Items) < 2 {
		t.Fatalf("base ranking too small for the test: %+v", base.Items)
	}
	first := base.Items[0].Item
	second := base.Items[1].Item

	t.Run("exclude", func(t *testing.T) {
		var rec RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=0&k=8&algo=AT&exclude=%d", ts.URL, first), http.StatusOK, &rec)
		for _, it := range rec.Items {
			if it.Item == first {
				t.Fatalf("excluded item %d served: %+v", first, rec.Items)
			}
		}
		if len(rec.Items) != len(base.Items)-1 {
			t.Fatalf("exclusion removed %d items, want exactly 1", len(base.Items)-len(rec.Items))
		}
	})

	t.Run("candidates", func(t *testing.T) {
		var rec RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=0&k=8&algo=AT&candidates=%d,%d", ts.URL, first, second), http.StatusOK, &rec)
		if len(rec.Items) != 2 {
			t.Fatalf("slate of 2 served %d items: %+v", len(rec.Items), rec.Items)
		}
		for _, it := range rec.Items {
			if it.Item != first && it.Item != second {
				t.Fatalf("off-slate item %d served", it.Item)
			}
		}
	})

	t.Run("long_tail_only", func(t *testing.T) {
		var rec RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=0&k=8&algo=AT&long_tail_only=0.5", http.StatusOK, &rec)
		// The corpus has 8 items; the 0.5-percentile cutoff must exclude
		// the most-popular ones. Every served item's popularity must be
		// at or below every excluded base item's popularity.
		served := map[int]bool{}
		maxServed := 0
		for _, it := range rec.Items {
			served[it.Item] = true
			if it.Popularity > maxServed {
				maxServed = it.Popularity
			}
		}
		for _, it := range base.Items {
			if !served[it.Item] && it.Popularity < maxServed {
				t.Fatalf("long_tail_only kept popularity %d but dropped %d: %+v vs %+v", maxServed, it.Popularity, rec.Items, base.Items)
			}
		}
	})

	t.Run("envelope", func(t *testing.T) {
		var rec RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=0&k=3&algo=AT", http.StatusOK, &rec)
		if rec.CacheHit {
			t.Fatal("cache_hit true on an uncached system")
		}
		// Epoch is 0 on a fresh graph; a live write must move it.
		body := strings.NewReader(`{"user":0,"item":3,"score":4}`)
		resp, err := http.Post(ts.URL+"/v1/ratings", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		var after RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=0&k=3&algo=AT", http.StatusOK, &after)
		if after.Epoch != rec.Epoch+1 {
			t.Fatalf("epoch %d -> %d, want +1", rec.Epoch, after.Epoch)
		}
	})

	t.Run("bad-params", func(t *testing.T) {
		cases := []string{
			"?user=0&exclude=abc",
			"?user=0&exclude=1,x",
			"?user=0&exclude=-4",
			"?user=0&candidates=zz",
			"?user=0&candidates=-1",
			"?user=0&long_tail_only=abc",
			"?user=0&long_tail_only=1.5",
			"?user=0&long_tail_only=-0.1",
			"?user=0&long_tail_only=NaN",
			"?user=0&fallback=maybe",
		}
		for _, q := range cases {
			var e map[string]string
			getJSON(t, ts.URL+"/v1/recommend"+q, http.StatusBadRequest, &e)
			if e["error"] == "" {
				t.Fatalf("%s: no error message", q)
			}
		}
	})

	t.Run("fallback-false-cold-user", func(t *testing.T) {
		// User 7 is cold: the default degrades to the popularity list,
		// ?fallback=false restores the hard 404.
		var e map[string]string
		getJSON(t, ts.URL+"/v1/recommend?user=7&k=3&fallback=false", http.StatusNotFound, &e)
		var rec RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=7&k=3&fallback=true", http.StatusOK, &rec)
		if !rec.Fallback {
			t.Fatalf("fallback response not marked: %+v", rec)
		}
	})

	t.Run("fallback-honors-options", func(t *testing.T) {
		var rec RecommendResponse
		getJSON(t, ts.URL+"/v1/recommend?user=7&k=8&exclude=0", http.StatusOK, &rec)
		if !rec.Fallback {
			t.Fatalf("expected fallback for cold user: %+v", rec)
		}
		for _, it := range rec.Items {
			if it.Item == 0 {
				t.Fatalf("fallback served excluded item 0: %+v", rec.Items)
			}
		}
	})
}

// TestRecommendBatchOptions: the batch endpoint accepts the same option
// params and propagates them to every user.
func TestRecommendBatchOptions(t *testing.T) {
	_, ts := testServer(t)
	var batch RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,1&k=8&algo=AT&exclude=3", http.StatusOK, &batch)
	for _, entry := range batch.Results {
		for _, it := range entry.Items {
			if it.Item == 3 {
				t.Fatalf("user %d served excluded item 3", entry.User)
			}
		}
	}
	var e map[string]string
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,1&long_tail_only=9", http.StatusBadRequest, &e)

	// fallback=true fills cold user 7's entry from the popularity list.
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,7&k=3&algo=AT&fallback=true", http.StatusOK, &batch)
	if len(batch.Results) != 2 || !batch.Results[1].Fallback || len(batch.Results[1].Items) == 0 {
		t.Fatalf("cold batch entry not degraded: %+v", batch.Results)
	}
	// Default (no fallback): cold users get empty lists, unmarked.
	var plain RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,7&k=3&algo=AT", http.StatusOK, &plain)
	if plain.Results[1].Fallback || len(plain.Results[1].Items) != 0 {
		t.Fatalf("cold batch entry changed contract: %+v", plain.Results)
	}
}

// slowSystem builds a System whose walk solves run for minutes unless
// the request context cancels them mid-sweep.
func slowSystem(t testing.TB) *longtail.System {
	t.Helper()
	ratings := []longtail.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 4},
		{User: 1, Item: 0, Score: 4}, {User: 1, Item: 2, Score: 5},
		{User: 2, Item: 1, Score: 5}, {User: 2, Item: 2, Score: 4},
	}
	d, err := longtail.NewDataset(3, 3, ratings)
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.Walk.Iterations = 500_000_000
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRecommendClientTimeoutCancelsWalk is the acceptance test for
// context propagation: a client-side timeout on
// GET /v1/recommend?user=U&k=K&long_tail_only=P cancels the in-flight
// walk — the handler returns within a bound that is orders of magnitude
// below the uncancelled solve time, and the server stays serviceable.
func TestRecommendClientTimeoutCancelsWalk(t *testing.T) {
	srv, err := New(slowSystem(t), Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err = client.Get(ts.URL + "/v1/recommend?user=0&k=2&long_tail_only=0.9")
	if err == nil {
		t.Fatal("expected the client timeout to fire")
	}
	// The handler must observe the cancellation promptly: wait for the
	// request to be recorded in the metrics (it only lands there when
	// the handler returns) well before the uncancelled solve could end.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m MetricsResponse
		getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
		done := false
		for route, e := range m.Endpoints {
			if strings.Contains(route, "/v1/recommend") && !strings.Contains(route, "batch") && e.Requests > 0 {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled walk still running after 10s — context not propagated into the engine")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("handler held the walk for %v after client abandoned", elapsed)
	}
}

// TestRecommendServerRequestTimeout: Options.RequestTimeout deadlines
// the query server-side and surfaces 504 to a patient client.
func TestRecommendServerRequestTimeout(t *testing.T) {
	srv, err := New(slowSystem(t), Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
		RequestTimeout:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	start := time.Now()
	var e map[string]string
	getJSON(t, ts.URL+"/v1/recommend?user=0&k=2", http.StatusGatewayTimeout, &e)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if e["error"] == "" {
		t.Fatal("no error message")
	}
	// Batch honors the deadline too.
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,1&k=2", http.StatusGatewayTimeout, &e)
}
