// In-process request metrics, exposed at GET /v1/metrics. Hand-rolled
// counters (stdlib-only) rather than a metrics dependency: requests and
// errors by endpoint, plus cumulative latency for mean-latency readouts.

package server

import (
	"net/http"
	"sync"
	"time"
)

// metrics accumulates per-endpoint counters. Safe for concurrent use.
type metrics struct {
	mu    sync.Mutex
	start time.Time
	byKey map[string]*endpointStats
}

type endpointStats struct {
	Requests     int64
	Errors       int64 // responses with status >= 400
	TotalLatency time.Duration
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), byKey: make(map[string]*endpointStats)}
}

// observe records one served request.
func (m *metrics) observe(key string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.byKey[key]
	if st == nil {
		st = &endpointStats{}
		m.byKey[key] = st
	}
	st.Requests++
	if status >= 400 {
		st.Errors++
	}
	st.TotalLatency += elapsed
}

// EndpointMetrics is one endpoint's row in the /v1/metrics body.
type EndpointMetrics struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// MetricsResponse is the /v1/metrics body.
type MetricsResponse struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.mu.Lock()
	out := MetricsResponse{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Endpoints:     make(map[string]EndpointMetrics, len(s.metrics.byKey)),
	}
	for key, st := range s.metrics.byKey {
		em := EndpointMetrics{Requests: st.Requests, Errors: st.Errors}
		if st.Requests > 0 {
			em.MeanLatencyMS = float64(st.TotalLatency.Milliseconds()) / float64(st.Requests)
		}
		out.Endpoints[key] = em
	}
	s.metrics.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
