// Tests for the durability section of /v1/stats: wal_enabled,
// durable_seq, pending_batch and last_checkpoint_epoch.

package server

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"longtailrec"
)

// durableTestServer builds a server over a WAL-backed System serving the
// testSystem corpus from walDir.
func durableTestServer(t testing.TB, walDir string) (*longtail.System, *httptest.Server) {
	t.Helper()
	base := testSystem(t)
	d, err := longtail.NewDataset(base.Data().NumUsers(), base.Data().NumItems(), base.Data().Ratings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := longtail.DefaultConfig()
	cfg.LDA.NumTopics = 2
	cfg.LDA.Iterations = 5
	cfg.SVDRank = 2
	cfg.AutoGrow = true
	cfg.WALDir = walDir
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := New(sys, Options{
		DefaultAlgorithm: "AT",
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

func TestStatsDurabilityFields(t *testing.T) {
	sys, ts := durableTestServer(t, t.TempDir())

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if !st.WALEnabled {
		t.Fatal("wal_enabled false on a WAL-backed server")
	}
	if st.DurableSeq != 0 || st.PendingBatch != 0 || st.LastCheckpointEpoch != 0 {
		t.Fatalf("fresh durability stats = (seq=%d, pending=%d, ckpt=%d), want zeros",
			st.DurableSeq, st.PendingBatch, st.LastCheckpointEpoch)
	}

	// Two accepted writes advance durable_seq to 2: every acked write is
	// in the log.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 0, Item: 5, Score: 4}, http.StatusCreated, nil)
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 8, Item: 8, Score: 3}, http.StatusCreated, nil)
	// A rejected write must NOT advance it.
	postJSON(t, ts.URL+"/v1/ratings", RatingRequest{User: 0, Item: 0, Score: -1}, http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.DurableSeq != 2 {
		t.Fatalf("durable_seq = %d after 2 accepted writes, want 2", st.DurableSeq)
	}
	if st.PendingBatch != 0 {
		t.Fatalf("pending_batch = %d with no writer in flight, want 0", st.PendingBatch)
	}

	// A checkpoint records the epoch it captured.
	if err := sys.SnapshotRefresh(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.LastCheckpointEpoch != st.Epoch {
		t.Fatalf("last_checkpoint_epoch = %d just after a refresh, want the fleet epoch %d",
			st.LastCheckpointEpoch, st.Epoch)
	}
	if st.LastCheckpointEpoch == 0 {
		t.Fatal("last_checkpoint_epoch still 0 after writes and a refresh")
	}
}

func TestStatsDurabilityDisabled(t *testing.T) {
	_, ts := testServer(t) // no WALDir
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.WALEnabled {
		t.Fatal("wal_enabled true on an in-memory server")
	}
	if st.DurableSeq != 0 || st.PendingBatch != 0 || st.LastCheckpointEpoch != 0 {
		t.Fatalf("durability fields nonzero without a WAL: (seq=%d, pending=%d, ckpt=%d)",
			st.DurableSeq, st.PendingBatch, st.LastCheckpointEpoch)
	}
}
