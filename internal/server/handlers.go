// Endpoint handlers and their response shapes.

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"longtailrec/internal/cache"
	"longtailrec/internal/core"
)

// HealthResponse is the /v1/health body.
type HealthResponse struct {
	Status string `json:"status"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// CacheStatsResponse is the result-cache section of /v1/stats: the counters
// behind the hit-rate vs recompute-cost tradeoff PERFORMANCE.md documents.
type CacheStatsResponse struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"` // singleflight piggybacks
	Evictions uint64 `json:"evictions"`
	// Precision-invalidation counters: hits proven fresh by subgraph
	// fingerprint despite epoch movement, entries dropped on fingerprint
	// evidence, and rejects caused by write-journal overflow.
	FingerprintHits    uint64  `json:"fingerprint_hits"`
	FingerprintRejects uint64  `json:"fingerprint_rejects"`
	JournalOverflows   uint64  `json:"journal_overflows"`
	Size               int     `json:"size"`
	Capacity           int     `json:"capacity"`
	HitRate            float64 `json:"hit_rate"` // (hits+shared) / lookups
}

// ShardStatsResponse is one serving shard's slice of /v1/stats: its own
// epoch, pending writes, live universe and cache counters. Each shard's
// epoch moves independently — a live write invalidates only its own
// shard's cached results.
type ShardStatsResponse struct {
	Shard         int                 `json:"shard"`
	Epoch         uint64              `json:"epoch"`
	PendingWrites int                 `json:"pending_writes"`
	LiveNumUsers  int                 `json:"live_num_users"`
	LiveNumItems  int                 `json:"live_num_items"`
	Cache         *CacheStatsResponse `json:"cache,omitempty"` // nil when caching is disabled
}

// StatsResponse is the /v1/stats body — the §5.1.2 corpus description plus
// the live-serving state: fleet-wide epoch, pending writes and cache
// counters, and the per-shard breakdown.
type StatsResponse struct {
	NumUsers         int     `json:"num_users"`
	NumItems         int     `json:"num_items"`
	NumRatings       int     `json:"num_ratings"`
	Density          float64 `json:"density"`
	MeanScore        float64 `json:"mean_score"`
	TailItemFraction float64 `json:"tail_item_fraction"`

	// LiveNumUsers/LiveNumItems are the fleet-wide serving universe
	// sizes, which grow past the corpus counts above as unseen users and
	// items arrive through the auto-grow write path.
	LiveNumUsers  int                 `json:"live_num_users"`
	LiveNumItems  int                 `json:"live_num_items"`
	Epoch         uint64              `json:"epoch"` // total accepted writes across shards
	PendingWrites int                 `json:"pending_writes"`
	Cache         *CacheStatsResponse `json:"cache,omitempty"` // summed across shards; nil when disabled
	// Shards is the per-shard breakdown, indexed by shard id — always
	// present, length 1 on a single-replica deployment.
	Shards []ShardStatsResponse `json:"shards"`

	// Durability: where the write-ahead log stands. WALEnabled is false
	// (and the other three zero) when the server runs without -wal-dir.
	// DurableSeq is the next WAL sequence to assign — every accepted
	// write below it is fsync'd. PendingBatch is how many writes sit in
	// the in-flight group-commit batch, acknowledged to no one yet.
	// LastCheckpointEpoch is the fleet epoch the most recent checkpoint
	// captured (zero before the first).
	WALEnabled          bool   `json:"wal_enabled"`
	DurableSeq          uint64 `json:"durable_seq"`
	PendingBatch        int    `json:"pending_batch"`
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
}

// cacheStatsResponse renders cache counters with their derived hit rate.
func cacheStatsResponse(cs cache.Stats) *CacheStatsResponse {
	rate := 0.0
	if lookups := cs.Hits + cs.Misses + cs.Shared; lookups > 0 {
		rate = float64(cs.Hits+cs.Shared) / float64(lookups)
	}
	return &CacheStatsResponse{
		Hits:               cs.Hits,
		Misses:             cs.Misses,
		Shared:             cs.Shared,
		Evictions:          cs.Evictions,
		FingerprintHits:    cs.FingerprintHits,
		FingerprintRejects: cs.FingerprintRejects,
		JournalOverflows:   cs.JournalOverflows,
		Size:               cs.Size,
		Capacity:           cs.Capacity,
		HitRate:            rate,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.src.Data().Summarize()
	serving := s.src.ServingStats()
	liveUsers, liveItems := s.src.Universe()
	resp := StatsResponse{
		NumUsers:         st.NumUsers,
		NumItems:         st.NumItems,
		NumRatings:       st.NumRatings,
		Density:          st.Density,
		MeanScore:        st.MeanScore,
		TailItemFraction: st.TailItemFraction,
		LiveNumUsers:     liveUsers,
		LiveNumItems:     liveItems,
		Epoch:            serving.Epoch,
		PendingWrites:    serving.PendingWrites,
		Shards:           make([]ShardStatsResponse, 0, len(serving.Shards)),

		WALEnabled:          serving.Durability.Enabled,
		DurableSeq:          serving.Durability.DurableSeq,
		PendingBatch:        serving.Durability.PendingBatch,
		LastCheckpointEpoch: serving.Durability.LastCheckpointEpoch,
	}
	if serving.CacheEnabled {
		resp.Cache = cacheStatsResponse(serving.Cache)
	}
	for _, sh := range serving.Shards {
		shardResp := ShardStatsResponse{
			Shard:         sh.Shard,
			Epoch:         sh.Epoch,
			PendingWrites: sh.PendingWrites,
			LiveNumUsers:  sh.NumUsers,
			LiveNumItems:  sh.NumItems,
		}
		if sh.CacheEnabled {
			shardResp.Cache = cacheStatsResponse(sh.Cache)
		}
		resp.Shards = append(resp.Shards, shardResp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// RatingRequest is the POST /v1/ratings body: one live rating event.
type RatingRequest struct {
	User  int     `json:"user"`
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

// RatingResponse acknowledges a live rating write. Added distinguishes a
// new edge (201) from a re-rate (200); Epoch is the graph epoch after the
// write — cached results from earlier epochs are no longer served.
type RatingResponse struct {
	User  int     `json:"user"`
	Item  int     `json:"item"`
	Score float64 `json:"score"`
	Added bool    `json:"added"`
	Epoch uint64  `json:"epoch"`
}

// handleAddRating ingests one rating through the live write path: the edge
// lands in the graph's delta overlay, the epoch bumps, and every cached
// recommendation computed before it becomes unreachable.
func (s *Server) handleAddRating(w http.ResponseWriter, r *http.Request) {
	var req RatingRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid rating body: %v", err)
		return
	}
	added, epoch, err := s.src.ApplyRating(req.User, req.Item, req.Score)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	status := http.StatusOK
	if added {
		status = http.StatusCreated
	}
	writeJSON(w, status, RatingResponse{
		User:  req.User,
		Item:  req.Item,
		Score: req.Score,
		Added: added,
		Epoch: epoch,
	})
}

// AlgorithmsResponse is the /v1/algorithms body.
type AlgorithmsResponse struct {
	Algorithms []string `json:"algorithms"`
	Default    string   `json:"default"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, AlgorithmsResponse{
		Algorithms: s.src.Algorithms(),
		Default:    s.opts.DefaultAlgorithm,
	})
}

// RecommendedItem is one entry of a recommendation list.
type RecommendedItem struct {
	Item       int     `json:"item"`
	Score      float64 `json:"score"`
	Popularity int     `json:"popularity"`
	LongTail   bool    `json:"long_tail"`
}

// RecommendResponse is the /v1/recommend body — the full Response
// envelope. Fallback marks a degraded response: the user has no rating
// history the algorithm can anchor on, so the items are the
// deterministic live-popularity list instead of a personalized ranking.
// Epoch is the graph epoch the result was computed (or cached) at, and
// CacheHit reports whether the serving cache answered.
type RecommendResponse struct {
	User      int               `json:"user"`
	Algorithm string            `json:"algorithm"`
	Fallback  bool              `json:"fallback,omitempty"`
	Epoch     uint64            `json:"epoch"`
	CacheHit  bool              `json:"cache_hit"`
	Items     []RecommendedItem `json:"items"`
}

// parseRequestOptions reads the shared per-request option parameters —
// exclude, candidates, long_tail_only, fallback — into a core.Request
// (User/K/Ctx left for the caller). A non-nil error is a client error.
func parseRequestOptions(r *http.Request, fallbackDefault bool) (core.Request, error) {
	var req core.Request
	exclude, err := queryIntList(r, "exclude")
	if err != nil {
		return req, err
	}
	candidates, err := queryIntList(r, "candidates")
	if err != nil {
		return req, err
	}
	longTail, err := queryFloat(r, "long_tail_only", 0)
	if err != nil {
		return req, err
	}
	// Range (and NaN) validation of long_tail_only is core's:
	// Request.validate rejects it as ErrInvalidOptions, which errStatus
	// maps to 400 — one definition of the accepted range.
	allowFallback, err := queryBool(r, "fallback", fallbackDefault)
	if err != nil {
		return req, err
	}
	req.ExcludeItems = exclude
	req.CandidateItems = candidates
	req.LongTailOnly = longTail
	req.AllowFallback = allowFallback
	return req, nil
}

// queryCtx derives the context every recommendation query runs under:
// the client's request context (so a dropped connection cancels the
// walk), bounded by Options.RequestTimeout when configured.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k <= 0 || k > s.opts.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1,%d], got %d", s.opts.MaxK, k)
		return
	}
	// Fallback defaults on: cold-start traffic gets the deterministic
	// live-popularity list (minus whatever the user HAS rated) instead
	// of a failure; ?fallback=false restores the hard 404.
	req, err := parseRequestOptions(r, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.User, req.K = user, k
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = s.opts.DefaultAlgorithm
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	resp, err := s.src.Recommend(ctx, algo, req)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RecommendResponse{
		User:      user,
		Algorithm: resp.Algo,
		Fallback:  resp.Fallback,
		Epoch:     resp.Epoch,
		CacheHit:  resp.CacheHit,
		// Decorate with the serving shard's own popularity view: one
		// catalog scan, consistent with the graph that ranked the items.
		Items: s.renderItems(resp.Items, s.src.LiveItemPopularityFor(user)),
	})
}

// BatchEntry is one user's slice of a batch recommendation response. Cold
// users (no rated items) are served with an empty list, or the
// popularity fallback (marked) when ?fallback=true.
type BatchEntry struct {
	User     int               `json:"user"`
	Fallback bool              `json:"fallback,omitempty"`
	Items    []RecommendedItem `json:"items"`
}

// RecommendBatchResponse is the /v1/recommend/batch body.
type RecommendBatchResponse struct {
	Algorithm string       `json:"algorithm"`
	Results   []BatchEntry `json:"results"`
}

// handleRecommendBatch serves ?users=1,2,3 in one call, fanning the queries
// out across cores through the pooled walk query engine (Engine.
// RecommendBatch) when the algorithm supports concurrent scoring.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	rawUsers := r.URL.Query().Get("users")
	if rawUsers == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter %q", "users")
		return
	}
	fields := strings.Split(rawUsers, ",")
	if len(fields) > s.opts.MaxBatchUsers {
		writeError(w, http.StatusBadRequest, "batch of %d users exceeds limit %d", len(fields), s.opts.MaxBatchUsers)
		return
	}
	numUsers, _ := s.src.Universe()
	users := make([]int, 0, len(fields))
	for _, f := range fields {
		u, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			writeError(w, http.StatusBadRequest, "parameter %q: %q is not an integer", "users", f)
			return
		}
		if u < 0 || u >= numUsers {
			writeError(w, http.StatusNotFound, "user %d out of range [0,%d)", u, numUsers)
			return
		}
		users = append(users, u)
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k <= 0 || k > s.opts.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1,%d], got %d", s.opts.MaxK, k)
		return
	}
	parallelism, err := queryInt(r, "parallelism", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Cap the client-supplied worker count at the core count: beyond it the
	// CPU-bound engine gains nothing, and each extra worker pins a
	// graph-sized scratch from the pool.
	if maxPar := runtime.GOMAXPROCS(0); parallelism > maxPar {
		parallelism = maxPar
	}
	// The same option params as /v1/recommend apply to every user of the
	// batch. Fallback defaults off here, preserving the historical
	// batch contract (cold users get empty lists).
	template, err := parseRequestOptions(r, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = s.opts.DefaultAlgorithm
	}
	reqs := make([]core.Request, len(users))
	for i, u := range users {
		req := template
		req.User, req.K = u, k
		reqs[i] = req
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	resps, err := s.src.RecommendRequests(ctx, algo, reqs, parallelism)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	// The batch spans shards, so decorate from the fleet-wide merged
	// popularity: its per-shard scans amortize over the whole user list,
	// unlike the single-request path which uses the serving shard's view.
	pop := s.src.LiveItemPopularity()
	results := make([]BatchEntry, len(users))
	for i, u := range users {
		results[i] = BatchEntry{User: u, Fallback: resps[i].Fallback, Items: s.renderItems(resps[i].Items, pop)}
	}
	writeJSON(w, http.StatusOK, RecommendBatchResponse{Algorithm: algo, Results: results})
}

// renderItems decorates a scored list with popularity and long-tail
// membership — the shared response shape of the single and batch
// recommendation endpoints. pop is the live catalog popularity vector,
// computed once per request by the caller. Items past the ends of the
// startup snapshots (admitted live) are the nichest the catalog has:
// they render with their live popularity (0 if a write races) and
// long-tail membership true.
func (s *Server) renderItems(scored []core.Scored, pop []int) []RecommendedItem {
	snapItems := s.src.Data().NumItems()
	items := make([]RecommendedItem, len(scored))
	for i, sc := range scored {
		_, tail := s.tail[sc.Item]
		p := 0
		if sc.Item < len(pop) {
			p = pop[sc.Item]
		}
		items[i] = RecommendedItem{
			Item:       sc.Item,
			Score:      sc.Score,
			Popularity: p,
			LongTail:   tail || sc.Item >= snapItems,
		}
	}
	return items
}

// ExplainAnchor attributes a share of the recommendation to a rated item.
type ExplainAnchor struct {
	Item        int     `json:"item"`
	Probability float64 `json:"probability"`
}

// ExplainResponse is the /v1/explain body.
type ExplainResponse struct {
	User    int             `json:"user"`
	Item    int             `json:"item"`
	Anchors []ExplainAnchor `json:"anchors"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	item, err := queryInt(r, "item", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	anchors, err := s.src.Explain(user, item)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	out := make([]ExplainAnchor, len(anchors))
	for i, a := range anchors {
		out[i] = ExplainAnchor{Item: a.Item, Probability: a.Probability}
	}
	writeJSON(w, http.StatusOK, ExplainResponse{User: user, Item: item, Anchors: out})
}

// UserRating is one (item, score) pair of a user profile.
type UserRating struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

// UserResponse is the /v1/users/{id} body.
type UserResponse struct {
	User    int          `json:"user"`
	Degree  int          `json:"degree"`
	Ratings []UserRating `json:"ratings"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "user id %q is not an integer", r.PathValue("id"))
		return
	}
	d := s.src.Data()
	if id < 0 || id >= d.NumUsers() {
		writeError(w, http.StatusNotFound, "user %d out of range [0,%d)", id, d.NumUsers())
		return
	}
	rs := d.UserRatings(id)
	ratings := make([]UserRating, len(rs))
	for i, rt := range rs {
		ratings[i] = UserRating{Item: rt.Item, Score: rt.Score}
	}
	writeJSON(w, http.StatusOK, UserResponse{User: id, Degree: len(ratings), Ratings: ratings})
}

// SimilarEntry is one neighbor in a /v1/items/{id}/similar response.
type SimilarEntry struct {
	Item       int     `json:"item"`
	Similarity float64 `json:"similarity"`
	Popularity int     `json:"popularity"`
	LongTail   bool    `json:"long_tail"`
}

// SimilarResponse is the /v1/items/{id}/similar body.
type SimilarResponse struct {
	Item    int            `json:"item"`
	Similar []SimilarEntry `json:"similar"`
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "item id %q is not an integer", r.PathValue("id"))
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k <= 0 || k > s.opts.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1,%d], got %d", s.opts.MaxK, k)
		return
	}
	sims, err := s.src.SimilarItems(id, k)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	pop := s.src.Data().ItemPopularity()
	out := make([]SimilarEntry, len(sims))
	for i, sim := range sims {
		_, tail := s.tail[sim.Item]
		out[i] = SimilarEntry{
			Item:       sim.Item,
			Similarity: sim.Similarity,
			Popularity: pop[sim.Item],
			LongTail:   tail,
		}
	}
	writeJSON(w, http.StatusOK, SimilarResponse{Item: id, Similar: out})
}

// ItemResponse is the /v1/items/{id} body.
type ItemResponse struct {
	Item       int     `json:"item"`
	Popularity int     `json:"popularity"`
	MeanScore  float64 `json:"mean_score"`
	LongTail   bool    `json:"long_tail"`
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "item id %q is not an integer", r.PathValue("id"))
		return
	}
	d := s.src.Data()
	if id < 0 || id >= d.NumItems() {
		writeError(w, http.StatusNotFound, "item %d out of range [0,%d)", id, d.NumItems())
		return
	}
	rs := d.ItemRatings(id)
	mean := 0.0
	for _, rt := range rs {
		mean += rt.Score
	}
	if len(rs) > 0 {
		mean /= float64(len(rs))
	}
	_, tail := s.tail[id]
	writeJSON(w, http.StatusOK, ItemResponse{
		Item:       id,
		Popularity: len(rs),
		MeanScore:  mean,
		LongTail:   tail,
	})
}
