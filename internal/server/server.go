// Package server exposes a trained recommendation System over HTTP/JSON —
// the online half of a production deployment (the offline half being
// internal/persist model artifacts). Endpoints:
//
//	GET  /v1/health                     liveness probe
//	GET  /v1/stats                      corpus statistics (§5.1.2 view),
//	                                    fleet-wide epoch and cache counters
//	                                    plus a per-shard "shards" breakdown
//	                                    (epoch, cache, live universe per
//	                                    serving replica; length 1 when
//	                                    unsharded)
//	GET  /v1/algorithms                 available algorithm names
//	GET  /v1/recommend?user=&algo=&k=   top-k recommendations; per-request
//	                                    options: &exclude=i1,i2 (extra
//	                                    exclusions), &candidates=i1,i2
//	                                    (restrict to a slate),
//	                                    &long_tail_only=P (popularity-
//	                                    percentile cutoff in (0,1]),
//	                                    &fallback=false (hard 404 for cold
//	                                    users). The response envelope
//	                                    reports fallback, epoch, cache_hit.
//	GET  /v1/recommend/batch?users=&algo=&k=&parallelism=
//	                                    top-k lists for many users, scored
//	                                    concurrently across cores; accepts
//	                                    the same option params
//
// Both recommendation endpoints propagate the client's request context
// into the walk engine — a dropped connection or Options.RequestTimeout
// cancels an in-flight walk between τ sweeps (499/504).
//
//	POST /v1/ratings                    live rating ingest: body
//	                                    {"user":u,"item":i,"score":s}
//	                                    upserts one edge, bumps the graph
//	                                    epoch and thereby invalidates
//	                                    cached results
//	GET  /v1/explain?user=&item=        absorption-probability explanation
//	GET  /v1/users/{id}                 user profile: ratings, degree
//	GET  /v1/items/{id}                 item profile: popularity, tail membership
//	GET  /v1/items/{id}/similar?k=      item-to-item cosine neighbors
//	GET  /v1/metrics                    request counters and mean latency
//
// Live writes land in the serving graph (and are visible to the walk
// recommenders immediately). When the Source shards its serving across
// user-partitioned replicas (longtail.Config.ShardCount), both the
// recommendation and ratings handlers route transparently — the Source
// owns the user→shard assignment — and a write invalidates only its own
// shard's cached results. When the Source is configured for auto-grow,
// POST /v1/ratings also accepts user and item ids the system has never
// seen — cold-start traffic grows the universe instead of 404ing; only
// negative ids, and ids more than graph.MaxDenseAdmissions past the
// universe edge, are rejected (404, with the cap embedded in the error
// text). GET /v1/recommend for a user with no history degrades to a
// deterministic popularity fallback (marked "fallback": true) rather
// than failing. The dataset-backed views (/v1/users, /v1/items, corpus
// counts) describe the corpus the system was built from and refresh on
// snapshot reload.
//
// Errors are JSON {"error": "..."} with conventional status codes; every
// handler is wrapped in panic recovery so one bad request cannot take the
// process down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"longtailrec/internal/cf"
	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
)

// Source is the recommendation capability the server fronts.
// *longtail.System satisfies it.
type Source interface {
	// Algorithm resolves a recommender by name.
	Algorithm(name string) (core.Recommender, error)
	// Algorithms lists the accepted names.
	Algorithms() []string
	// Recommend serves one context-aware Request through the named
	// algorithm: per-request options honored, cold users degraded to the
	// popularity fallback when the request allows it.
	Recommend(ctx context.Context, algo string, req core.Request) (core.Response, error)
	// RecommendRequests serves many Requests in one call, concurrently
	// when the algorithm supports it, honoring each request's context.
	// Cold users yield a zero Response (or a fallback one when allowed).
	RecommendRequests(ctx context.Context, algo string, reqs []core.Request, parallelism int) ([]core.Response, error)
	// Data returns the training dataset.
	Data() *dataset.Dataset
	// Explain attributes a would-be recommendation over the user's rated
	// items.
	Explain(u, candidate int) ([]core.Anchor, error)
	// SimilarItems returns the item-to-item neighbors of an item.
	SimilarItems(item, k int) ([]cf.SimilarItem, error)
	// ApplyRating ingests one live rating write (insert or re-rate) into
	// the serving graph, reporting whether a new edge was created and the
	// graph epoch after the write. Sources configured for auto-grow admit
	// unseen user/item ids here.
	ApplyRating(user, item int, score float64) (added bool, epoch uint64, err error)
	// ServingStats reports the live-serving state: graph epoch, pending
	// delta-overlay writes and result-cache counters.
	ServingStats() core.ServingStats
	// Universe returns the live serving universe (users, items) including
	// ids admitted through ApplyRating — the bound the recommendation
	// endpoints validate against, as opposed to the Data() snapshot.
	Universe() (numUsers, numItems int)
	// LiveItemPopularity returns each item's live rater count, covering
	// items admitted after startup — the fleet-wide view (one catalog
	// scan per shard when serving is sharded).
	LiveItemPopularity() []int
	// LiveItemPopularityFor returns the live rater counts as seen by the
	// given user's serving shard: the view consistent with that user's
	// recommendations, at one catalog scan regardless of shard count —
	// what the single-request render path uses.
	LiveItemPopularityFor(user int) []int
	// PopularItems returns the k most-popular items of the live graph the
	// user has not rated, deterministically ordered — the degraded
	// response when an algorithm cannot anchor on the user.
	PopularItems(user, k int) []core.Scored
}

// Options configure the server.
type Options struct {
	// Addr is the listen address; "" means ":8080".
	Addr string
	// DefaultAlgorithm serves /v1/recommend when ?algo= is absent;
	// "" means "AC2" (the paper's best variant).
	DefaultAlgorithm string
	// MaxK caps the ?k= parameter; <= 0 means 100.
	MaxK int
	// MaxBatchUsers caps the ?users= list of /v1/recommend/batch;
	// <= 0 means 500.
	MaxBatchUsers int
	// TailShare defines the long-tail split reported by /v1/items;
	// <= 0 means 0.20 (the 80/20 rule).
	TailShare float64
	// Logger receives request logs and panics; nil means the standard
	// logger.
	Logger *log.Logger
	// ShutdownTimeout bounds graceful Shutdown; <= 0 means 5s.
	ShutdownTimeout time.Duration
	// RequestTimeout, when > 0, deadlines every recommendation query: the
	// handler derives a context.WithTimeout from the request context, so
	// a slow walk is cancelled mid-sweep instead of holding the
	// connection. <= 0 means no server-side deadline (the client's own
	// cancellation still propagates).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.DefaultAlgorithm == "" {
		o.DefaultAlgorithm = "AC2"
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.MaxBatchUsers <= 0 {
		o.MaxBatchUsers = 500
	}
	if o.TailShare <= 0 {
		o.TailShare = 0.20
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	if o.ShutdownTimeout <= 0 {
		o.ShutdownTimeout = 5 * time.Second
	}
	return o
}

// Server is a configured HTTP front end over a Source.
type Server struct {
	src     Source
	opts    Options
	tail    map[int]struct{} // long-tail item set, computed once
	mux     *http.ServeMux
	http    *http.Server
	metrics *metrics
}

// New builds a Server. The Source must already be trained/indexed; New
// precomputes the long-tail split so /v1/items answers in O(1).
func New(src Source, opts Options) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("server: nil source")
	}
	opts = opts.withDefaults()
	s := &Server{
		src:     src,
		opts:    opts,
		tail:    src.Data().LongTailItems(opts.TailShare),
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
	}
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("GET /v1/recommend/batch", s.handleRecommendBatch)
	s.mux.HandleFunc("POST /v1/ratings", s.handleAddRating)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/users/{id}", s.handleUser)
	s.mux.HandleFunc("GET /v1/items/{id}", s.handleItem)
	s.mux.HandleFunc("GET /v1/items/{id}/similar", s.handleSimilar)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.http = &http.Server{
		Addr:              opts.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// Handler returns the full middleware-wrapped handler, usable directly in
// tests via httptest.
func (s *Server) Handler() http.Handler {
	return s.recoverPanics(s.logRequests(s.mux))
}

// ListenAndServe serves until Shutdown or a listener error. Returns nil on
// graceful shutdown.
func (s *Server) ListenAndServe() error {
	err := s.http.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests, bounded by Options.ShutdownTimeout.
func (s *Server) Shutdown(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, s.opts.ShutdownTimeout)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// --- middleware ---

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.metrics.observe(r.Method+" "+normalizePath(r.URL.Path), sw.status, elapsed)
		s.opts.Logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond))
	})
}

// normalizePath collapses numeric path segments to "{id}" so
// /v1/users/1 and /v1/users/2 aggregate under one metrics key.
func normalizePath(path string) string {
	segs := strings.Split(path, "/")
	changed := false
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		if _, err := strconv.Atoi(seg); err == nil {
			segs[i] = "{id}"
			changed = true
		}
	}
	if !changed {
		return path
	}
	return strings.Join(segs, "/")
}

func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.opts.Logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter records the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// --- JSON plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding a value we constructed cannot fail except on a dead
	// connection, which there is no way to report anyway.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryInt parses an integer query parameter, with def used when absent
// (def < 0 marks the parameter required).
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def < 0 {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not an integer", name, raw)
	}
	return v, nil
}

// queryFloat parses a float query parameter, def used when absent.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not a number", name, raw)
	}
	return v, nil
}

// queryBool parses a boolean query parameter, def used when absent.
func queryBool(r *http.Request, name string, def bool) (bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("parameter %q: %q is not a boolean", name, raw)
	}
	return v, nil
}

// queryIntList parses a comma-separated integer list parameter. Absent
// means nil; an explicitly empty value ("candidates=") means an empty
// non-nil list, so clients can express an empty candidate slate.
func queryIntList(r *http.Request, name string) ([]int, error) {
	if !r.URL.Query().Has(name) {
		return nil, nil
	}
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return []int{}, nil
	}
	fields := strings.Split(raw, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %q is not an integer", name, f)
		}
		// Domain validation (e.g. no negative ids) is core's:
		// Request.Validate rejects it as ErrInvalidOptions → 400.
		out = append(out, v)
	}
	return out, nil
}

// errStatus maps a recommendation or live-write error to an HTTP status:
// cold users and out-of-range (including auto-grow-rejected) ids are 404,
// duplicate-edge conflicts are 409, malformed inputs are 400 — none of
// these client-caused failures may surface as a 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The server-side RequestTimeout (or the client's own deadline)
		// expired mid-query.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// 499 is the de-facto "client closed request" status (nginx);
		// the client is usually gone, but the log should not say 500.
		return 499
	case errors.Is(err, core.ErrInvalidOptions):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrOptionsUnsupported):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrColdUser):
		return http.StatusNotFound
	case errors.Is(err, core.ErrUserOutOfRange):
		return http.StatusNotFound
	case strings.Contains(err.Error(), "unknown algorithm"):
		return http.StatusBadRequest
	case strings.Contains(err.Error(), "must be positive"):
		return http.StatusBadRequest
	case strings.Contains(err.Error(), "already exists"):
		return http.StatusConflict
	case strings.Contains(err.Error(), "does not exist"):
		return http.StatusNotFound
	case strings.Contains(err.Error(), "out of range"):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
