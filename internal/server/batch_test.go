package server

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRecommendBatch(t *testing.T) {
	_, ts := testServer(t)
	var resp RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,3,6&k=3&algo=AT&parallelism=2", http.StatusOK, &resp)
	if resp.Algorithm != "AT" {
		t.Fatalf("algorithm %q", resp.Algorithm)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	wantUsers := []int{0, 3, 6}
	for i, entry := range resp.Results {
		if entry.User != wantUsers[i] {
			t.Fatalf("result %d is user %d, want %d", i, entry.User, wantUsers[i])
		}
		if len(entry.Items) == 0 {
			t.Fatalf("user %d got no items", entry.User)
		}
		if len(entry.Items) > 3 {
			t.Fatalf("user %d got %d items, want <= 3", entry.User, len(entry.Items))
		}
	}
}

func TestRecommendBatchMatchesSingle(t *testing.T) {
	_, ts := testServer(t)
	var batch RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=1,4&k=5&algo=HT", http.StatusOK, &batch)
	for _, entry := range batch.Results {
		var single RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&k=5&algo=HT", ts.URL, entry.User), http.StatusOK, &single)
		if len(single.Items) != len(entry.Items) {
			t.Fatalf("user %d: batch %d items, single %d", entry.User, len(entry.Items), len(single.Items))
		}
		for j := range single.Items {
			if single.Items[j] != entry.Items[j] {
				t.Fatalf("user %d slot %d: batch %+v, single %+v", entry.User, j, entry.Items[j], single.Items[j])
			}
		}
	}
}

func TestRecommendBatchColdUserEmptyList(t *testing.T) {
	_, ts := testServer(t)
	var resp RecommendBatchResponse
	getJSON(t, ts.URL+"/v1/recommend/batch?users=0,7&algo=AT", http.StatusOK, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if len(resp.Results[0].Items) == 0 {
		t.Fatal("warm user 0 got no items")
	}
	if len(resp.Results[1].Items) != 0 {
		t.Fatalf("cold user 7 got %d items", len(resp.Results[1].Items))
	}
}

func TestRecommendBatchErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		query string
		code  int
	}{
		{"", http.StatusBadRequest},                       // missing users
		{"?users=1,zap", http.StatusBadRequest},           // non-integer user
		{"?users=99", http.StatusNotFound},                // out of range
		{"?users=1&k=0", http.StatusBadRequest},           // bad k
		{"?users=1&k=10000", http.StatusBadRequest},       // k over MaxK
		{"?users=1&algo=Nope", http.StatusBadRequest},     // unknown algorithm
		{"?users=1&parallelism=x", http.StatusBadRequest}, // bad parallelism
	}
	for _, c := range cases {
		var e map[string]string
		getJSON(t, ts.URL+"/v1/recommend/batch"+c.query, c.code, &e)
		if e["error"] == "" {
			t.Fatalf("%q: no error message", c.query)
		}
	}
}

func TestRecommendBatchSizeLimit(t *testing.T) {
	srv, err := New(testSystem(t), Options{MaxBatchUsers: 2, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/recommend/batch?users=0,1,2&algo=AT", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}
