// FuzzWALDecode hardens the record decoder against hostile input: the
// bytes a crashed, truncated, bit-rotted or adversarially crafted log
// file could present. The decoder must never panic or over-allocate,
// must reject everything that is not an exact encoding, and must
// round-trip everything that is.

package wal

import (
	"bytes"
	"errors"
	"testing"
)

func FuzzWALDecode(f *testing.F) {
	// Seeds: valid records, a torn frame, flipped bytes, absurd lengths.
	var valid []byte
	valid = AppendRecord(valid, Record{Op: OpUpsert, User: 42, Item: 7, Score: 3.5})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	mut := append([]byte(nil), valid...)
	mut[9] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTornRecord) {
				t.Fatalf("decode error %v is not ErrTornRecord", err)
			}
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Op != OpUpsert && rec.Op != OpUpsertAutoGrow {
			t.Fatalf("decode accepted unknown op %d", rec.Op)
		}
		// Round-trip: a record the decoder accepts must re-encode to the
		// exact bytes it was decoded from.
		reenc := AppendRecord(nil, rec)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data[:n])
		}
	})
}
