package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	logVersion = 1
	// headerLen is the fixed file header: magic(4) + version(2) +
	// reserved(2) + base seq(8) + header crc(4).
	headerLen = 20
)

var logMagic = [4]byte{'L', 'T', 'R', 'W'}

// Log is an append-only, fsync'd record log. Records carry global
// sequence numbers that survive truncation: the file header stores the
// sequence of its first record, so a checkpoint can name the exact
// prefix it covers and recovery can skip records already folded in.
//
// All methods are safe for concurrent use; the intended topology is one
// appender (the group-commit ingester) plus Seq reads from the stats
// path and occasional Replay/ResetTo calls from the snapshot-refresh
// loop (which the ingester's barrier serializes against appends).
type Log struct {
	path string

	mu   sync.Mutex
	f    *os.File
	base uint64 // global seq of the first record in the file
	seq  uint64 // global seq of the next record to append
	size int64  // durable byte size of the valid prefix
	// failed is set when an append error leaves the file in a state the
	// log cannot restore (truncate-back failed too): every later append
	// fails fast rather than risking interleaved garbage.
	failed error
}

// Open opens (or creates) the log at path and recovers its durable
// prefix: records are scanned front to back, and the first torn or
// corrupt record — the expected remnant of a crash mid-append — ends the
// scan. The file is truncated back to the durable prefix so the next
// append extends clean data.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{path: path, f: f}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// encodeHeader frames the file header for the given base sequence.
func encodeHeader(base uint64) [headerLen]byte {
	var h [headerLen]byte
	copy(h[0:4], logMagic[:])
	binary.LittleEndian.PutUint16(h[4:6], logVersion)
	binary.LittleEndian.PutUint64(h[8:16], base)
	binary.LittleEndian.PutUint32(h[16:20], crc32.ChecksumIEEE(h[0:16]))
	return h
}

// decodeHeader validates a file header and returns its base sequence.
func decodeHeader(h []byte) (uint64, error) {
	if len(h) < headerLen {
		return 0, fmt.Errorf("wal: %d-byte header fragment", len(h))
	}
	if [4]byte(h[0:4]) != logMagic {
		return 0, fmt.Errorf("wal: bad magic %q (not a write-ahead log)", h[0:4])
	}
	if v := binary.LittleEndian.Uint16(h[4:6]); v != logVersion {
		return 0, fmt.Errorf("wal: unsupported log version %d (this build reads %d)", v, logVersion)
	}
	if got, want := crc32.ChecksumIEEE(h[0:16]), binary.LittleEndian.Uint32(h[16:20]); got != want {
		return 0, fmt.Errorf("wal: header checksum mismatch (%08x vs recorded %08x)", got, want)
	}
	return binary.LittleEndian.Uint64(h[8:16]), nil
}

// recover scans the file, establishes base/seq/size and truncates any
// torn tail. A zero-length file gets a fresh header (base 0).
func (l *Log) recover() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", l.path, err)
	}
	if len(data) == 0 {
		h := encodeHeader(0)
		if _, err := l.f.Write(h[:]); err != nil {
			return fmt.Errorf("wal: write header: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync header: %w", err)
		}
		l.size = headerLen
		return nil
	}
	base, err := decodeHeader(data)
	if err != nil {
		return err
	}
	l.base, l.seq = base, base
	off := headerLen
	for off < len(data) {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			// Torn tail (crash mid-append) — or any later garbage, which
			// is indistinguishable once framing is lost. The durable
			// prefix ends here.
			break
		}
		off += n
		l.seq++
	}
	l.size = int64(off)
	if int64(len(data)) > l.size {
		if err := l.f.Truncate(l.size); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return nil
}

// BaseSeq returns the global sequence of the first record in the file —
// everything below it has been folded into a checkpoint and truncated.
func (l *Log) BaseSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Seq returns the global sequence of the next record to append; records
// [BaseSeq, Seq) are durable in this file.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Append encodes recs, writes them and fsyncs — one write plus one sync
// for the whole batch, the cost the group-commit ingester amortizes
// across every writer in it. On error nothing is acknowledged: the log
// truncates back to its last durable prefix so a partial write cannot
// linger as a phantom tail, and the caller's writers should retry. If
// even the truncate fails the log is marked failed and every later
// append errors fast.
func (l *Log) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.f == nil {
		return ErrClosed
	}
	buf := make([]byte, 0, len(recs)*(recFrameLen+recPayloadLen))
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	if _, err := l.f.Write(buf); err != nil {
		return l.appendFailedLocked(fmt.Errorf("wal: append: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.appendFailedLocked(fmt.Errorf("wal: fsync: %w", err))
	}
	l.size += int64(len(buf))
	l.seq += uint64(len(recs))
	return nil
}

// appendFailedLocked restores the durable prefix after a failed append.
// The batch is not acknowledged either way; what matters is that the
// file does not keep half a batch that a later successful append would
// bury mid-stream.
func (l *Log) appendFailedLocked(err error) error {
	if terr := l.f.Truncate(l.size); terr != nil {
		l.failed = fmt.Errorf("wal: log unusable after failed append (%v) and failed truncate-back: %w", err, terr)
		return l.failed
	}
	if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
		l.failed = fmt.Errorf("wal: log unusable after failed append (%v) and failed seek: %w", err, serr)
		return l.failed
	}
	return err
}

// Replay streams every durable record with sequence >= minSeq to fn, in
// append order with its global sequence. It reads the file through a
// fresh handle, so it is safe alongside the appender; records appended
// after the Replay call begins may or may not be seen. A torn tail ends
// the stream cleanly; fn returning an error aborts the replay with that
// error.
func (l *Log) Replay(minSeq uint64, fn func(seq uint64, rec Record) error) error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	base, err := decodeHeader(data)
	if err != nil {
		return err
	}
	off, seq := headerLen, base
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			return nil // torn tail: durable prefix ends here
		}
		if seq >= minSeq {
			if err := fn(seq, rec); err != nil {
				return err
			}
		}
		off += n
		seq++
	}
	return nil
}

// ResetTo truncates the log after a checkpoint: the file is atomically
// replaced (temp file + rename, both fsync'd) by an empty log whose base
// sequence is base — normally the Seq() the checkpoint covered. A crash
// at any point leaves either the old complete log (replay over the new
// checkpoint is idempotent and seq-gated) or the new empty one. Callers
// must serialize ResetTo against Append (the ingester barrier does).
func (l *Log) ResetTo(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if base < l.base {
		return fmt.Errorf("wal: reset to seq %d below base %d", base, l.base)
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	h := encodeHeader(base)
	if _, err := tmp.Write(h[:]); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: reset: %w", err)
	}
	syncDir(filepath.Dir(l.path))
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen after reset: %w", err)
	}
	if _, err := f.Seek(headerLen, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: reopen after reset: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.base, l.seq, l.size, l.failed = base, base, headerLen, nil
	return nil
}

// Close releases the file handle. Appended records are already durable
// (every Append fsyncs), so Close adds no durability of its own.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file inside it survives a
// crash. Best-effort: some platforms/filesystems reject directory syncs,
// and the rename itself is still atomic there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// ErrClosed is returned for submissions to a closed ingester (and
// appends to a closed log).
var ErrClosed = errors.New("wal: closed")
