package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		op := OpUpsert
		if i%3 == 0 {
			op = OpUpsertAutoGrow
		}
		recs[i] = Record{Op: op, User: i * 7, Item: i*3 + 1, Score: float64(i%5) + 0.5}
	}
	return recs
}

func openLog(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log, minSeq uint64) []Record {
	t.Helper()
	var got []Record
	if err := l.Replay(minSeq, func(_ uint64, rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	recs := testRecords(10)
	if err := l.Append(recs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[4:]); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", l.Seq())
	}
	got := collect(t, l, 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Reopen: the durable prefix survives and sequencing resumes.
	l.Close()
	l2 := openLog(t, path)
	if l2.Seq() != 10 || l2.BaseSeq() != 0 {
		t.Fatalf("reopened Seq/Base = %d/%d, want 10/0", l2.Seq(), l2.BaseSeq())
	}
	if err := l2.Append(testRecords(1)); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 11 {
		t.Fatalf("Seq after reopen-append = %d, want 11", l2.Seq())
	}
}

// TestLogTornTailEveryOffset is the crash-recovery contract: truncating
// the file at EVERY byte offset inside the final record must recover
// exactly the records before it — never an error, never a phantom
// record, and the log must stay appendable afterwards.
func TestLogTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	l := openLog(t, full)
	recs := testRecords(5)
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(data) - headerLen) / len(recs)
	lastStart := len(data) - recLen
	for cut := lastStart; cut < len(data); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if want := uint64(len(recs) - 1); tl.Seq() != want {
			t.Fatalf("cut at %d: Seq = %d, want %d", cut, tl.Seq(), want)
		}
		got := collect(t, tl, 0)
		if len(got) != len(recs)-1 {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), len(recs)-1)
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("cut at %d: record %d diverged", cut, i)
			}
		}
		// The torn tail was truncated away: appending must extend the
		// durable prefix cleanly.
		if err := tl.Append(recs[len(recs)-1:]); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if got := collect(t, tl, 0); len(got) != len(recs) || got[len(recs)-1] != recs[len(recs)-1] {
			t.Fatalf("cut at %d: post-recovery append not replayable", cut)
		}
		tl.Close()
		os.Remove(path)
	}
}

// TestLogTornTailBitFlip: a corrupted byte anywhere in the final record
// (not just truncation) must also yield the durable prefix.
func TestLogTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openLog(t, path)
	recs := testRecords(4)
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(data) - headerLen) / len(recs)
	for off := len(data) - recLen; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := Open(path)
		if err != nil {
			t.Fatalf("flip at %d: Open: %v", off, err)
		}
		if got := collect(t, tl, 0); len(got) != len(recs)-1 {
			t.Fatalf("flip at %d: replayed %d records, want %d", off, len(got), len(recs)-1)
		}
		tl.Close()
	}
}

func TestLogResetToPreservesSequencing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	if err := l.Append(testRecords(6)); err != nil {
		t.Fatal(err)
	}
	if err := l.ResetTo(l.Seq()); err != nil {
		t.Fatal(err)
	}
	if l.BaseSeq() != 6 || l.Seq() != 6 {
		t.Fatalf("after reset Base/Seq = %d/%d, want 6/6", l.BaseSeq(), l.Seq())
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("reset log replayed %d records, want 0", len(got))
	}
	if err := l.Append(testRecords(2)); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := l.Replay(0, func(seq uint64, _ Record) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 6 || seqs[1] != 7 {
		t.Fatalf("post-reset seqs = %v, want [6 7]", seqs)
	}
	// Reopen preserves the base.
	l.Close()
	l2 := openLog(t, path)
	if l2.BaseSeq() != 6 || l2.Seq() != 8 {
		t.Fatalf("reopened Base/Seq = %d/%d, want 6/8", l2.BaseSeq(), l2.Seq())
	}
	// Replay gated on a checkpoint seq skips folded-in records.
	if got := collect(t, l2, 7); len(got) != 1 {
		t.Fatalf("gated replay returned %d records, want 1", len(got))
	}
}

func TestLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("definitely not a wal header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
}

func TestIngesterGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	var mu sync.Mutex
	applies := 0
	applied := 0
	apply := func(recs []Record) []int {
		mu.Lock()
		applies++
		applied += len(recs)
		mu.Unlock()
		out := make([]int, len(recs))
		for i := range out {
			out[i] = recs[i].User
		}
		return out
	}
	ing, err := NewIngester(l, apply, BatchOptions{MaxBatch: 8, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 32
	var wg sync.WaitGroup
	errs := make([]error, writers)
	outs := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = ing.Submit(Record{Op: OpUpsert, User: w, Item: 1, Score: 1})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
		if outs[w] != w {
			t.Fatalf("writer %d: apply outcome %d misrouted", w, outs[w])
		}
	}
	mu.Lock()
	if applied != writers {
		t.Fatalf("applied %d records, want %d", applied, writers)
	}
	if applies >= writers {
		t.Fatalf("got %d batches for %d writers: no group commit happened", applies, writers)
	}
	mu.Unlock()
	if l.Seq() != writers {
		t.Fatalf("durable seq %d, want %d", l.Seq(), writers)
	}
	ing.Close()
	if _, err := ing.Submit(Record{Op: OpUpsert}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestIngesterDurabilityFailureFailsAcks: when the log cannot make a
// batch durable, every writer in it gets an error and the apply function
// never runs — acks imply durability, always.
func TestIngesterDurabilityFailureFailsAcks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	l.Close() // sabotage: appends now fail
	applies := 0
	ing, err := NewIngester(l, func(recs []Record) []struct{} {
		applies++
		return make([]struct{}, len(recs))
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if _, err := ing.Submit(Record{Op: OpUpsert, User: 1, Item: 1, Score: 1}); err == nil {
		t.Fatal("submit acked without durability")
	}
	if applies != 0 {
		t.Fatalf("apply ran %d times on a non-durable batch", applies)
	}
}

func TestIngesterBarrierExcludesApplies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	inApply := false
	ing, err := NewIngester(l, func(recs []Record) []struct{} {
		inApply = true
		defer func() { inApply = false }()
		time.Sleep(time.Millisecond)
		return make([]struct{}, len(recs))
	}, BatchOptions{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ing.Submit(Record{Op: OpUpsert, User: w, Item: 1, Score: 1})
		}(w)
	}
	ran := false
	if err := ing.Barrier(func() {
		ran = true
		// The flusher runs applies and barriers on one goroutine, so an
		// in-flight apply here would mean the barrier contract is broken.
		if inApply {
			t.Error("barrier ran concurrently with an apply")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("barrier function did not run")
	}
	wg.Wait()
	if err := ing.Barrier(nil); err != nil {
		t.Fatalf("nil barrier: %v", err)
	}
}

// TestIngesterCloseFlushesPending: writes in flight at Close are either
// acknowledged durable or rejected with ErrClosed — never acknowledged
// without being applied and logged.
func TestIngesterCloseFlushesPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	var mu sync.Mutex
	applied := 0
	ing, err := NewIngester(l, func(recs []Record) []struct{} {
		mu.Lock()
		applied += len(recs)
		mu.Unlock()
		return make([]struct{}, len(recs))
	}, BatchOptions{MaxBatch: 4, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	acked := make([]bool, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := ing.Submit(Record{Op: OpUpsert, User: w, Item: 1, Score: 1}); err == nil {
				acked[w] = true
			} else if !errors.Is(err, ErrClosed) {
				t.Errorf("writer %d: unexpected error %v", w, err)
			}
		}(w)
	}
	ing.Close() // races the writers deliberately
	wg.Wait()
	acks := 0
	for _, ok := range acked {
		if ok {
			acks++
		}
	}
	mu.Lock()
	got := applied
	mu.Unlock()
	if got < acks {
		t.Fatalf("%d acks but only %d applied: ack without apply", acks, got)
	}
	if l.Seq() < uint64(acks) {
		t.Fatalf("%d acks but only %d durable: ack without durability", acks, l.Seq())
	}
	if ing.Pending() != 0 {
		t.Fatalf("pending = %d after close, want 0", ing.Pending())
	}
}
