// Package wal is the durability layer of the live write path: an
// append-only, checksummed, fsync'd log of rating operations plus a
// group-commit ingester that amortizes the fsync (and the downstream
// overlay application and epoch bump) across every writer that arrived
// while the previous batch was committing.
//
// The contract the serving stack builds on: a write is acknowledged only
// after the batch containing it is durable on disk. Crash recovery
// replays the log over the last checkpoint and recovers exactly the
// durable prefix — a torn or truncated final record is detected by its
// per-record CRC and cleanly discarded, never mistaken for data.
//
// On-disk layout: a 16-byte file header (magic, format version, the
// global sequence number of the first record) followed by records, each
// framed as
//
//	length  uint32  payload byte count
//	crc32   uint32  IEEE checksum of payload
//	payload [length]byte
//
// so any prefix of the file that parses is exactly a prefix of the
// accepted write stream. All integers are little-endian.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Op identifies what a logged record does when replayed.
type Op uint8

// Record operations. The numeric values are part of the on-disk format:
// never reorder or reuse them.
const (
	// OpUpsert writes one rating edge inside the existing universe.
	OpUpsert Op = 1
	// OpUpsertAutoGrow writes one rating edge, admitting the user/item
	// ids first if the graph has never seen them.
	OpUpsertAutoGrow Op = 2
)

// Record is one logged rating operation — the unit of durability.
type Record struct {
	Op    Op
	User  int
	Item  int
	Score float64
}

const (
	// recFrameLen is the per-record frame: length + crc.
	recFrameLen = 8
	// recPayloadLen is the fixed payload of a version-1 record:
	// op(1) + user(8) + item(8) + score(8).
	recPayloadLen = 25
	// maxRecordLen bounds the length field before any allocation, so a
	// corrupted (or hostile) header cannot make the decoder balloon.
	maxRecordLen = 1 << 10
)

// ErrTornRecord marks a record that is incomplete or fails its checksum —
// the expected state of a log's final record after a crash mid-append.
// Recovery treats it as the end of the durable prefix, not as corruption
// of the log as a whole.
var ErrTornRecord = errors.New("wal: torn record")

// AppendRecord encodes one record (frame + payload) onto buf.
func AppendRecord(buf []byte, rec Record) []byte {
	var payload [recPayloadLen]byte
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[1:9], uint64(int64(rec.User)))
	binary.LittleEndian.PutUint64(payload[9:17], uint64(int64(rec.Item)))
	binary.LittleEndian.PutUint64(payload[17:25], math.Float64bits(rec.Score))
	var frame [recFrameLen]byte
	binary.LittleEndian.PutUint32(frame[0:4], recPayloadLen)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload[:]))
	buf = append(buf, frame[:]...)
	return append(buf, payload[:]...)
}

// DecodeRecord decodes the first record of b, returning it and the number
// of bytes it occupied. A record that is truncated, oversized, fails its
// CRC, or decodes to an unknown operation returns ErrTornRecord (wrapped
// with the reason): with length-prefixed framing a flipped byte anywhere
// makes the rest of the stream unparseable, so every decode failure marks
// the end of the durable prefix.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recFrameLen {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame fragment", ErrTornRecord, len(b))
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: implausible record length %d", ErrTornRecord, length)
	}
	if uint32(len(b)-recFrameLen) < length {
		return Record{}, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTornRecord, len(b)-recFrameLen, length)
	}
	payload := b[recFrameLen : recFrameLen+int(length)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch (payload %08x, recorded %08x)", ErrTornRecord, got, want)
	}
	if length != recPayloadLen {
		return Record{}, 0, fmt.Errorf("%w: unknown record size %d", ErrTornRecord, length)
	}
	rec := Record{
		Op:    Op(payload[0]),
		User:  int(int64(binary.LittleEndian.Uint64(payload[1:9]))),
		Item:  int(int64(binary.LittleEndian.Uint64(payload[9:17]))),
		Score: math.Float64frombits(binary.LittleEndian.Uint64(payload[17:25])),
	}
	if rec.Op != OpUpsert && rec.Op != OpUpsertAutoGrow {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrTornRecord, rec.Op)
	}
	return rec, recFrameLen + int(length), nil
}
