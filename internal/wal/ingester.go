package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BatchOptions tune the group-commit window.
type BatchOptions struct {
	// MaxBatch caps how many writers one commit may carry. <= 0 means 64.
	MaxBatch int
	// MaxDelay is how long the first writer of a batch may wait for
	// company before the batch commits anyway — the write-latency vs
	// fsync-amortization trade-off. <= 0 means no timed wait: a batch
	// commits immediately with whatever writers queued while the
	// previous commit was in flight (pure piggybacking, the
	// lowest-latency setting; fsyncs amortize only under concurrency).
	MaxDelay time.Duration
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay < 0 {
		o.MaxDelay = 0
	}
	return o
}

// Ingester is the group-commit front of a Log: concurrent writers submit
// one record each and block; a single flusher goroutine collects them
// into batches, makes each batch durable with ONE log append + fsync,
// applies it through the caller's apply function (one overlay
// application and epoch bump per batch, in the serving stack), and only
// then releases the writers — so an acknowledged write is durable by
// construction, and an fsync failure fails every ack in the batch (the
// writes are NOT applied; the writers retry).
//
// R is the per-record apply outcome handed back to each writer.
type Ingester[R any] struct {
	log   *Log
	apply func([]Record) []R
	opts  BatchOptions

	submitCh chan ingReq[R]
	done     chan struct{} // closed by Close: no new submissions
	drained  chan struct{} // closed when the flusher has exited
	pending  atomic.Int64  // submitted, not yet acknowledged

	closeOnce sync.Once
}

type ingReq[R any] struct {
	rec     Record
	resp    chan ingResp[R]
	barrier func() // when set: run alone, between batches
}

type ingResp[R any] struct {
	result R
	err    error
}

// NewIngester starts the flusher. apply is called once per durable batch
// with the records in submission order and must return one result per
// record, aligned by index; it runs on the flusher goroutine, serialized
// with every other apply and Barrier call.
func NewIngester[R any](log *Log, apply func([]Record) []R, opts BatchOptions) (*Ingester[R], error) {
	if log == nil {
		return nil, fmt.Errorf("wal: ingester needs a log")
	}
	if apply == nil {
		return nil, fmt.Errorf("wal: ingester needs an apply function")
	}
	q := &Ingester[R]{
		log:      log,
		apply:    apply,
		opts:     opts.withDefaults(),
		submitCh: make(chan ingReq[R]),
		done:     make(chan struct{}),
		drained:  make(chan struct{}),
	}
	go q.run()
	return q, nil
}

// Submit hands one record to the current group-commit batch and blocks
// until that batch is durable and applied. The error is the durability
// verdict: a non-nil error (fsync failure, closed ingester) means the
// write was neither persisted nor applied and can be retried; with a nil
// error the returned R carries the apply outcome.
func (q *Ingester[R]) Submit(rec Record) (R, error) {
	var zero R
	resp := make(chan ingResp[R], 1)
	select {
	case q.submitCh <- ingReq[R]{rec: rec, resp: resp}:
	case <-q.done:
		return zero, ErrClosed
	}
	q.pending.Add(1)
	r := <-resp
	q.pending.Add(-1)
	return r.result, r.err
}

// Barrier runs fn on the flusher goroutine, between batches: no apply is
// in flight while fn runs, which is what the snapshot-refresh cycle
// needs to read a batch-consistent fleet and truncate the log. Blocks
// until fn returns; ErrClosed after Close (the caller then owns the
// quiesced stack and can run fn directly).
func (q *Ingester[R]) Barrier(fn func()) error {
	if fn == nil {
		return nil
	}
	resp := make(chan ingResp[R], 1)
	select {
	case q.submitCh <- ingReq[R]{barrier: fn, resp: resp}:
	case <-q.done:
		return ErrClosed
	}
	<-resp
	return nil
}

// Pending returns how many submitted writes await their batch commit —
// the "pending_batch" durability gauge.
func (q *Ingester[R]) Pending() int { return int(q.pending.Load()) }

// Close stops accepting submissions, commits whatever is queued (the
// graceful-shutdown flush), waits for the flusher to exit and returns.
// Racing submitters that lost to Close get ErrClosed. Idempotent.
func (q *Ingester[R]) Close() {
	q.closeOnce.Do(func() { close(q.done) })
	<-q.drained
}

// run is the flusher: it forms batches from the submission stream and
// commits each one. One goroutine, so applies and barriers never overlap.
func (q *Ingester[R]) run() {
	defer close(q.drained)
	for {
		// Wait for the first writer of the next batch.
		var first ingReq[R]
		select {
		case first = <-q.submitCh:
		case <-q.done:
			q.drainAndExit(nil)
			return
		}
		if first.barrier != nil {
			first.barrier()
			first.resp <- ingResp[R]{}
			continue
		}
		batch := []ingReq[R]{first}
		var barrier *ingReq[R]
		if q.opts.MaxDelay > 0 {
			timer := time.NewTimer(q.opts.MaxDelay)
		fill:
			for len(batch) < q.opts.MaxBatch {
				select {
				case req := <-q.submitCh:
					if req.barrier != nil {
						barrier = &req
						break fill
					}
					batch = append(batch, req)
				case <-timer.C:
					break fill
				case <-q.done:
					timer.Stop()
					q.drainAndExit(batch)
					return
				}
			}
			timer.Stop()
		} else {
			// No timed window: piggyback whatever is already queued.
		greedy:
			for len(batch) < q.opts.MaxBatch {
				select {
				case req := <-q.submitCh:
					if req.barrier != nil {
						barrier = &req
						break greedy
					}
					batch = append(batch, req)
				default:
					break greedy
				}
			}
		}
		q.commit(batch)
		if barrier != nil {
			barrier.barrier()
			barrier.resp <- ingResp[R]{}
		}
	}
}

// drainAndExit handles Close: it collects every submission that won the
// race against done, commits the final batch, and returns.
func (q *Ingester[R]) drainAndExit(batch []ingReq[R]) {
	for {
		select {
		case req := <-q.submitCh:
			if req.barrier != nil {
				req.barrier()
				req.resp <- ingResp[R]{}
				continue
			}
			batch = append(batch, req)
		default:
			q.commit(batch)
			return
		}
	}
}

// commit makes one batch durable and applies it. On a durability error
// every writer in the batch is failed and nothing is applied.
func (q *Ingester[R]) commit(batch []ingReq[R]) {
	if len(batch) == 0 {
		return
	}
	recs := make([]Record, len(batch))
	for i, req := range batch {
		recs[i] = req.rec
	}
	if err := q.log.Append(recs); err != nil {
		err = fmt.Errorf("wal: batch not durable (retryable): %w", err)
		for _, req := range batch {
			req.resp <- ingResp[R]{err: err}
		}
		return
	}
	results := q.apply(recs)
	for i, req := range batch {
		req.resp <- ingResp[R]{result: results[i]}
	}
}
