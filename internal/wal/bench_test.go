package wal

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the group-commit economics: one fsync per
// batch, so acks/sec scales with the batch size until the disk write
// itself dominates. The acks/sec metric is the number the MaxDelay
// trade-off in PERFORMANCE.md is tuned against.
func BenchmarkWALAppend(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			l, err := Open(filepath.Join(b.TempDir(), "wal.log"))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			recs := testBenchRecords(batch)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := l.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if elapsed > 0 {
				b.ReportMetric(float64(batch)*float64(b.N)/elapsed.Seconds(), "acks/s")
			}
		})
	}
}

func testBenchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Op: OpUpsert, User: i, Item: i + 1, Score: 2.5}
	}
	return recs
}
