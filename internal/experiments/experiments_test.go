package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"longtailrec/internal/eval"
)

// tinyScale keeps the end-to-end experiment tests fast.
func tinyScale() Scale {
	return Scale{TestRatings: 15, Negatives: 60, PanelUsers: 12, Evaluators: 6, MaxN: 20, ListSize: 10}
}

var (
	envOnce sync.Once
	envML   *Env
	envErr  error
)

// sharedEnv builds one MovieLens-like environment for all tests.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envML, envErr = NewEnv("movielens", tinyScale(), 7)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envML
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv("nope", tinyScale(), 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEnvShape(t *testing.T) {
	env := sharedEnv(t)
	if env.Kind != "movielens" {
		t.Fatalf("kind %q", env.Kind)
	}
	if len(env.Split.Test) != tinyScale().TestRatings {
		t.Fatalf("test size %d", len(env.Split.Test))
	}
	if len(env.Panel) != tinyScale().PanelUsers {
		t.Fatalf("panel size %d", len(env.Panel))
	}
	if env.Split.Train.NumRatings() >= env.World.Data.NumRatings() {
		t.Fatal("nothing held out")
	}
}

func TestFigure2Experiment(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"M4", "M1", "M5", "M6"}
	if len(res.Ranking) != 4 {
		t.Fatalf("ranking %v", res.Ranking)
	}
	for k, w := range wantOrder {
		if res.Ranking[k] != w {
			t.Fatalf("ranking %v, want %v", res.Ranking, wantOrder)
		}
	}
	// Values pinned to our exact solver (constant 1.04 ratio to the paper).
	if math.Abs(res.HittingTimes["M4"]-18.4) > 0.05 {
		t.Fatalf("H(U5|M4) = %v", res.HittingTimes["M4"])
	}
	if !strings.Contains(res.Text, "M4") {
		t.Fatal("text rendering missing M4")
	}
}

func TestTable1Experiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table1(env, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Topics) != 2 {
		t.Fatalf("topics %d", len(res.Topics))
	}
	for _, topic := range res.Topics {
		if len(topic) != 5 {
			t.Fatalf("topic size %d", len(topic))
		}
	}
	if res.Purity < 0.5 {
		t.Fatalf("topic purity %v — LDA failed to find genres", res.Purity)
	}
	if !strings.Contains(res.Text, "Topic 1") {
		t.Fatal("text missing topic header")
	}
}

func TestFigure5Experiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := Figure5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 7 {
		t.Fatalf("algorithms %d", len(res.Results))
	}
	names := map[string]bool{}
	for _, r := range res.Results {
		names[r.Name] = true
		if len(r.Recall) != tinyScale().MaxN {
			t.Fatalf("%s curve length %d", r.Name, len(r.Recall))
		}
		prev := 0.0
		for n, v := range r.Recall {
			if v < prev || v < 0 || v > 1 {
				t.Fatalf("%s recall@%d = %v", r.Name, n+1, v)
			}
			prev = v
		}
	}
	for _, want := range []string{"AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestListExperiments(t *testing.T) {
	env := sharedEnv(t)
	res, err := ListExperiments(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 7 {
		t.Fatalf("metrics %d", len(res.Metrics))
	}
	byName := map[string]float64{}
	for _, m := range res.Metrics {
		byName[m.Name] = m.MeanPopularity
		if m.Diversity < 0 || m.Diversity > 1 {
			t.Fatalf("%s diversity %v", m.Name, m.Diversity)
		}
	}
	// The Figure 6 headline: the graph algorithms recommend far less
	// popular items than the factor models.
	for _, walk := range []string{"AC2", "AT", "HT"} {
		for _, factor := range []string{"PureSVD", "LDA"} {
			if byName[walk] >= byName[factor] {
				t.Fatalf("%s popularity %v not below %s %v", walk, byName[walk], factor, byName[factor])
			}
		}
	}
	f6 := Figure6Text(res)
	if !strings.Contains(f6, "P@1") {
		t.Fatal("figure 6 text missing positions")
	}
}

func TestTable4Experiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table4(env, []int{200, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Whole-graph row must label µ as the catalog size.
	if res.Rows[1].Mu != env.Split.Train.NumItems() {
		t.Fatalf("whole-graph µ label %d", res.Rows[1].Mu)
	}
	for _, row := range res.Rows {
		if row.SecondsPerUser < 0 || row.Diversity < 0 || row.Diversity > 1 {
			t.Fatalf("bad row %+v", row)
		}
	}
}

func TestTable6Experiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("algorithms %d", len(res.Results))
	}
	byName := map[string]float64{}
	for _, r := range res.Results {
		byName[r.Name] = r.Novelty
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("%s score %v", r.Name, r.Score)
		}
	}
	// The Table 6 headline: AC2's recommendations are far more novel than
	// PureSVD's and LDA's.
	if byName["AC2"] <= byName["PureSVD"] || byName["AC2"] <= byName["LDA"] {
		t.Fatalf("AC2 novelty %v not above PureSVD %v / LDA %v",
			byName["AC2"], byName["PureSVD"], byName["LDA"])
	}
}

func TestSalesDiversityExperiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := SalesDiversityExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 9 { // 7 paper algorithms + AC3 + MostPopular
		t.Fatalf("algorithms %d", len(res.Results))
	}
	byName := map[string]eval.SalesDiversity{}
	for _, r := range res.Results {
		byName[r.Name] = r
		if r.Gini < 0 || r.Gini > 1 || r.Coverage < 0 || r.Coverage > 1 {
			t.Fatalf("%s out of range: %+v", r.Name, r)
		}
	}
	// MostPopular must concentrate exposure harder than AC2 and reach
	// almost no tail items.
	if byName["MostPopular"].Coverage >= byName["AC2"].Coverage {
		t.Fatalf("MostPopular coverage %v not below AC2 %v",
			byName["MostPopular"].Coverage, byName["AC2"].Coverage)
	}
	if byName["MostPopular"].TailShare >= byName["AC2"].TailShare {
		t.Fatalf("MostPopular tail share %v not below AC2 %v",
			byName["MostPopular"].TailShare, byName["AC2"].TailShare)
	}
}

func TestRankingExperiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := RankingExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 7 {
		t.Fatalf("algorithms %d", len(res.Results))
	}
	for _, r := range res.Results {
		if r.MRR < 0 || r.MRR > 1 || r.NDCG < 0 || r.NDCG > 1 {
			t.Fatalf("%s out of range: %+v", r.Name, r)
		}
		if r.NDCG+1e-12 < r.MRR {
			t.Fatalf("%s NDCG %v below MRR %v (log2 gain dominates reciprocal)", r.Name, r.NDCG, r.MRR)
		}
	}
}

func TestBeyondAccuracyExperiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := BeyondAccuracyExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 8 { // 7 paper algorithms + MostPopular
		t.Fatalf("algorithms %d", len(res.Results))
	}
	byName := map[string]eval.BeyondAccuracy{}
	for _, r := range res.Results {
		byName[r.Name] = r
		if r.Novelty < 0 || r.Serendipity < 0 || r.Serendipity > 1 {
			t.Fatalf("%s out of range: %+v", r.Name, r)
		}
		if r.Coverage <= 0 || r.Coverage > 1 {
			t.Fatalf("%s coverage: %+v", r.Name, r)
		}
	}
	// The walk methods must recommend more novel items than the
	// popularity floor — the paper's central claim in one number.
	if byName["AC2"].Novelty <= byName["MostPopular"].Novelty {
		t.Fatalf("AC2 novelty %v not above MostPopular %v",
			byName["AC2"].Novelty, byName["MostPopular"].Novelty)
	}
	if !strings.Contains(res.Text, "novelty(bits)") {
		t.Fatalf("text missing header: %s", res.Text)
	}
}

func TestStratifiedExperiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := StratifiedExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 7 || len(res.Intervals) != 7 {
		t.Fatalf("shape: %d results, %d intervals", len(res.Results), len(res.Intervals))
	}
	for k, r := range res.Results {
		total := 0
		for _, s := range r.Strata {
			total += s.Cases
		}
		if total != len(env.Split.Test) {
			t.Fatalf("%s: strata cover %d of %d cases", r.Name, total, len(env.Split.Test))
		}
		iv := res.Intervals[k]
		if iv.Lo > iv.Point || iv.Hi < iv.Point {
			t.Fatalf("%s: CI [%v,%v] excludes point %v", r.Name, iv.Lo, iv.Hi, iv.Point)
		}
	}
	if !strings.Contains(res.Text, "95% CI") {
		t.Fatalf("text missing CI column: %s", res.Text)
	}
}

func TestThroughputExperiment(t *testing.T) {
	env := sharedEnv(t)
	res, err := ThroughputExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no throughput rows")
	}
	for _, row := range res.Rows {
		if row.UsersPerSec <= 0 {
			t.Fatalf("%s@%d: users/sec %v", row.Algorithm, row.Parallelism, row.UsersPerSec)
		}
		if row.Speedup <= 0 {
			t.Fatalf("%s@%d: speedup %v", row.Algorithm, row.Parallelism, row.Speedup)
		}
	}
	if res.Rows[0].Parallelism != 1 || res.Rows[0].Speedup != 1 {
		t.Fatalf("first row not the parallelism-1 baseline: %+v", res.Rows[0])
	}
	if !strings.Contains(res.Text, "users/sec") {
		t.Fatalf("text missing users/sec column: %s", res.Text)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("names %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
}

func TestRenderTableAlignment(t *testing.T) {
	text := renderTable("T", []string{"a", "long-header"}, [][]string{{"xxxxx", "1"}})
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "== T ==") {
		t.Fatalf("title line %q", lines[0])
	}
}
